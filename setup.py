"""Shim for environments without the `wheel` package (legacy editable installs).

The version is parsed out of ``src/repro/_version.py`` — the single
authoritative place — so packaging never drifts from
``repro.__version__`` and never has to import the package (which would
require its runtime dependencies at build time).
"""
import re
from pathlib import Path

from setuptools import setup

_VERSION_FILE = Path(__file__).parent / "src" / "repro" / "_version.py"
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    _VERSION_FILE.read_text(),
    re.MULTILINE,
).group(1)

setup(version=VERSION)

"""Fig 4 — impact of row size (avg nnz/row), split small/large at 256 MB.

Asserted shapes: ~2x between short and long rows on CPU and GPU (stronger
in each device's favourable size band); an order of magnitude on the FPGA,
whose VSL padding explodes for highly sparse matrices.
"""

import numpy as np

from repro.analysis import box_stats, format_table

from conftest import emit

DEVICES = ("AMD-EPYC-64", "Tesla-A100", "Alveo-U280")
SPLIT_MB = 256.0


def _fig4(dataset_sweep):
    sections = []
    medians = {}
    for dev in DEVICES:
        rows = [r for r in dataset_sweep.rows if r["device"] == dev]
        table_rows = []
        for size_label, pred in (
            ("small", lambda r: r["req_footprint_mb"] < SPLIT_MB),
            ("large", lambda r: r["req_footprint_mb"] >= SPLIT_MB),
        ):
            subset = [r for r in rows if pred(r)]
            for avg in (5, 10, 20, 50, 100, 500):
                values = [r["gflops"] for r in subset
                          if r["req_avg_nnz"] == avg]
                if not values:
                    continue
                s = box_stats(values)
                table_rows.append([
                    size_label, avg, s.n, round(s.q1, 1),
                    round(s.median, 1), round(s.q3, 1),
                ])
                medians[(dev, size_label, avg)] = s.median
        sections.append(format_table(
            ["size", "avg nnz/row", "n", "q1", "median", "q3"],
            table_rows, title=f"Fig 4 panel: {dev} (GFLOPS)",
        ))
    return "\n\n".join(sections), medians


def test_fig4_rowsize(benchmark, dataset_sweep):
    text, med = _fig4(dataset_sweep)
    benchmark(lambda: _fig4(dataset_sweep))
    emit("fig4_rowsize", text)

    def ratio(dev, size, lo=5, hi=500):
        if (dev, size, hi) in med and (dev, size, lo) in med:
            return med[(dev, size, hi)] / med[(dev, size, lo)]
        return None

    # CPU favourable band is small matrices; GPU's is large ones.
    cpu = ratio("AMD-EPYC-64", "small")
    gpu = ratio("Tesla-A100", "large")
    assert cpu is not None and cpu > 1.5
    assert gpu is not None and gpu > 1.5

    # FPGA: large rows are dramatically faster (paper: 7.5x small matrices,
    # ~20x large ones).
    fpga_small = ratio("Alveo-U280", "small")
    assert fpga_small is not None and fpga_small > 4.0

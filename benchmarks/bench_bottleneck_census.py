"""Bottleneck census — the quantitative form of the paper's conclusion.

"SpMV remains a memory-bound algorithm, but low ILP shows up for short
rows, memory latency is mostly pronounced on GPUs, and load imbalance is
effectively handled by most storage formats."  The census reports, per
device, what fraction of the dataset each bottleneck dominates.
"""

from repro.analysis import bottleneck_census, format_table

from conftest import emit


def _census_table(dataset_sweep):
    census = bottleneck_census(dataset_sweep.rows, by="device")
    rows = []
    for dev, fractions in census.items():
        rows.append([
            dev,
            round(fractions.get("memory_bandwidth", 0.0), 1),
            round(fractions.get("low_ilp", 0.0), 1),
            round(fractions.get("memory_latency", 0.0), 1),
            round(fractions.get("load_imbalance", 0.0), 1),
        ])
    return format_table(
        ["device", "mem BW %", "low ILP %", "latency %", "imbalance %"],
        rows, title="Dominant bottleneck per device (best-format runs)",
    ), census


def test_bottleneck_census(benchmark, dataset_sweep):
    text, census = _census_table(dataset_sweep)
    benchmark(lambda: _census_table(dataset_sweep))
    emit("bottleneck_census", text)

    # Memory bandwidth dominates overall (the paper's headline).
    for dev in ("AMD-EPYC-64", "Tesla-A100"):
        assert census[dev].get("memory_bandwidth", 0.0) > 40.0, dev
    # Load imbalance almost never dominates: the best format absorbs it.
    for dev, fractions in census.items():
        assert fractions.get("load_imbalance", 0.0) < 25.0, dev
    # Short rows make low ILP a real secondary concern somewhere.
    assert any(
        fractions.get("low_ilp", 0.0) > 5.0
        for fractions in census.values()
    )

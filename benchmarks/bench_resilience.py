"""Resilient dispatch overhead — fault-free sweeps vs the plain pool.

The resilient worker crew (per-chunk deadlines, retry bookkeeping,
journal hooks, crash detection) must be essentially free when nothing
goes wrong.  This bench times fault-free fused sweeps under both
dispatch engines — legs interleaved and order-alternated so machine
speed drift cancels, best-of-``REPEATS`` per engine — asserts the
tables row-identical to each other and to a serial reference, gates the
resilient overhead at ``MAX_OVERHEAD``, and writes the numbers to
``benchmarks/results/BENCH_resilience.json`` (mirrored to the repo-root
snapshot) alongside the other bench floors.
"""

import json
import time

from repro.core.dataset import Dataset, sweep
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS

from conftest import MAX_NNZ, RESULTS_DIR, SCALE, emit

BENCH_PATH = RESULTS_DIR / "BENCH_resilience.json"
# Committed snapshot at the repo root (also a CI artifact).
ROOT_BENCH_PATH = RESULTS_DIR.parent.parent / "BENCH_resilience.json"

# Acceptance ceiling: fault-free resilient dispatch within 5% of the
# plain multiprocessing.Pool baseline.  The crew does strictly more
# bookkeeping per chunk (deadline tracking, drain-before-classify,
# liveness polls), but all of it is O(chunks) parent-side work around
# seconds-long chunk executions, so the measured gap is noise-level.
MAX_OVERHEAD = 0.05

DEVICES = [TESTBEDS["Tesla-A100"]]
JOBS = 2
REPEATS = 3


def _timed_sweep(specs, dispatch):
    ds = Dataset(specs, max_nnz=MAX_NNZ, name=SCALE)
    t0 = time.perf_counter()
    table = sweep(ds, DEVICES, jobs=JOBS, fused=True, dispatch=dispatch)
    return time.perf_counter() - t0, table


def test_resilient_dispatch_overhead():
    specs = build_dataset_specs(SCALE)
    times = {"pool": [], "resilient": []}
    tables = {}
    for rep in range(REPEATS):
        order = (
            ("pool", "resilient") if rep % 2 == 0
            else ("resilient", "pool")
        )
        for dispatch in order:
            t, table = _timed_sweep(specs, dispatch)
            times[dispatch].append(t)
            tables[dispatch] = table

    # Speed must not change results: both engines, and a serial
    # reference, produce the same rows.
    assert tables["resilient"].rows == tables["pool"].rows
    serial = sweep(
        Dataset(specs, max_nnz=MAX_NNZ, name=SCALE), DEVICES, fused=True
    )
    assert tables["resilient"].rows == serial.rows

    best_pool = min(times["pool"])
    best_resilient = min(times["resilient"])
    overhead = best_resilient / best_pool - 1.0

    payload = {
        "scale": SCALE,
        "max_nnz": MAX_NNZ,
        "jobs": JOBS,
        "n_specs": len(specs),
        "repeats": REPEATS,
        "pool_s": [round(t, 3) for t in times["pool"]],
        "resilient_s": [round(t, 3) for t in times["resilient"]],
        "best_pool_s": round(best_pool, 3),
        "best_resilient_s": round(best_resilient, 3),
        "overhead_pct": round(100.0 * overhead, 2),
        "max_overhead_pct": round(100.0 * MAX_OVERHEAD, 2),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    BENCH_PATH.write_text(text)
    ROOT_BENCH_PATH.write_text(text + "\n")

    emit(
        "resilience_dispatch_overhead",
        f"fused sweep of {len(specs)} specs (scale={SCALE}, "
        f"jobs={JOBS}, best of {REPEATS})\n"
        f"  pool:      {best_pool:.2f}s  {times['pool']}\n"
        f"  resilient: {best_resilient:.2f}s  {times['resilient']}\n"
        f"  fault-free overhead: {100.0 * overhead:+.1f}% "
        f"(ceiling {100.0 * MAX_OVERHEAD:.0f}%)",
    )
    assert overhead <= MAX_OVERHEAD, (
        f"resilient dispatch costs {100.0 * overhead:.1f}% over the "
        f"plain pool on a fault-free sweep (ceiling "
        f"{100.0 * MAX_OVERHEAD:.0f}%)"
    )

"""Ablation — single vs double precision (the paper's deferred future
work, Section IV: "we leave the study of other precision levels for future
work").

fp32 halves the value stream but leaves index metadata untouched: the
memory-bound speedup stays under 2x unless the smaller working set crosses
back into the LLC (a real superlinear effect); gather-bound irregular GPU
kernels barely move.
"""

from repro.analysis import format_table
from repro.core.generator import MatrixSpec
from repro.devices import TESTBEDS
from repro.perfmodel import MatrixInstance, simulate_spmv

from conftest import MAX_NNZ, emit

CASES = {
    # (footprint MB, avg row, sim, neigh)
    "regular-64MB": (64.0, 50.0, 0.8, 1.4),
    "regular-512MB": (512.0, 50.0, 0.8, 1.4),
    "irregular-512MB": (512.0, 50.0, 0.05, 0.05),
}
PAIRS = (
    ("AMD-EPYC-64", "Naive-CSR"),
    ("AMD-EPYC-64", "SparseX"),
    ("Tesla-A100", "cuSPARSE-CSR"),
    ("Tesla-A100", "cuSPARSE-COO"),
    ("Alveo-U280", "VSL"),
)


def _sweep():
    rows = []
    speedups = {}
    for case, (mb, avg, sim, neigh) in CASES.items():
        inst = MatrixInstance.from_spec(
            MatrixSpec.from_footprint(
                mb, avg, skew_coeff=2, cross_row_sim=sim,
                avg_num_neigh=neigh, seed=17,
            ),
            max_nnz=MAX_NNZ, name=f"prec-{case}",
        )
        for dev_name, fmt in PAIRS:
            dev = TESTBEDS[dev_name]
            f64 = simulate_spmv(inst, fmt, dev, noise_sigma=0.0,
                                precision="fp64")
            f32 = simulate_spmv(inst, fmt, dev, noise_sigma=0.0,
                                precision="fp32")
            sp = f32.gflops / f64.gflops
            speedups[(case, dev_name, fmt)] = sp
            rows.append([
                case, dev_name, fmt, round(f64.gflops, 1),
                round(f32.gflops, 1), round(sp, 3),
            ])
    return rows, speedups


def test_ablation_precision(benchmark):
    rows, speedups = _sweep()
    benchmark(lambda: _sweep())
    emit(
        "ablation_precision",
        format_table(
            ["matrix", "device", "format", "fp64 GF", "fp32 GF",
             "speedup"],
            rows, title="Ablation: fp32 vs fp64 SpMV",
        ),
    )
    # Speedups are bounded: halving values buys < 2x when the working
    # set stays on the same side of the LLC; crossing the cache boundary
    # (SparseX's compressed 512 MB drops fully into the EPYC's 256 MB LLC
    # at fp32) legitimately reaches several x.
    for key, sp in speedups.items():
        assert 0.99 < sp < 8.0, key
    # Where both precisions stay out of cache, the bound is strict.
    assert speedups[("irregular-512MB", "Tesla-A100", "cuSPARSE-COO")] < 2.0
    # CSR (value fraction ~2/3) gains more than COO (~1/2) on the CPU.
    assert (
        speedups[("regular-512MB", "AMD-EPYC-64", "Naive-CSR")]
        > speedups[("regular-512MB", "Tesla-A100", "cuSPARSE-COO")]
    )
    # Gather-bound irregular GPU kernels barely improve.
    assert speedups[("irregular-512MB", "Tesla-A100", "cuSPARSE-CSR")] < 1.3

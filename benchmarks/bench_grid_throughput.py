"""Grid scoring throughput — batched simulator vs the scalar triple loop.

Times :func:`repro.perfmodel.simulate_grid` against the equivalent scalar
``simulate_spmv`` loop over the configured preset's instances x all nine
testbeds x their Table-II format lists, cold and warm.  Cold is the real
cold path each engine offers: the scalar leg pays instance
materialisation plus the per-triple loop, the batched leg goes through
the fused spec source (:class:`repro.perfmodel.FusedSpecSource`) —
structure arrays and batched analytic stats straight from the specs, no
``MatrixInstance`` objects at all.  Warm re-scores pools whose
structural caches are already hot — the steady state of selector
training and repeated sweeps.  Results land in
``benchmarks/results/BENCH_grid.json`` (mirrored to the repo-root
``BENCH_grid.json`` snapshot) next to the pipeline bench so the repo's
performance trajectory stays machine-readable.

The batched rows — fused cold rows included — are asserted identical to
the scalar measurements (speed must not change results); the warm
speedup is gated at >= 10x (the PR-2 acceptance floor) and the cold
speedup at >= 1x (fused cold scoring must never lose to materialise-
then-loop).
"""

import json
import time

from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.formats.base import FormatError
from repro.perfmodel import (
    FusedSpecSource, MatrixInstance, simulate_grid, simulate_spmv,
)
from repro.perfmodel.batch import _score_grid

from conftest import MAX_NNZ, RESULTS_DIR, SCALE, emit

BENCH_PATH = RESULTS_DIR / "BENCH_grid.json"
# Committed snapshot at the repo root (also a CI artifact).
ROOT_BENCH_PATH = RESULTS_DIR.parent.parent / "BENCH_grid.json"

DEVICES = list(TESTBEDS.values())
SEED = 0


def _scalar_loop(instances):
    """The pre-batch scoring path: one Python call per triple."""
    out = []
    for inst in instances:
        for dev in DEVICES:
            for fmt in dev.formats:
                try:
                    m = simulate_spmv(inst, fmt, dev, seed=SEED)
                except FormatError:
                    continue
                out.append(m)
    return out


def _assert_rows_match(grid, scalar_rows):
    """Speed must not change results: the scored cells equal the scalar
    measurements one for one (grid order == scalar loop order)."""
    ok = grid.data[grid.ok_mask()]
    assert len(ok) == len(scalar_rows)
    for rec, m in zip(ok, scalar_rows):
        assert grid.device_names[rec["device"]] == m.device
        assert grid.format_names[rec["format"]] == m.format
        assert rec["gflops"] == m.gflops
        assert rec["watts"] == m.watts


def test_grid_vs_scalar_throughput():
    specs = build_dataset_specs(SCALE)
    n_cells = sum(len(dev.formats) for dev in DEVICES)
    cells = n_cells * len(specs)

    # The four legs run interleaved per ~30-spec chunk (the production
    # engine scores in chunks anyway): on shared hosts the machine's
    # speed drifts by 2-3x over minutes, so back-to-back whole-dataset
    # legs compare different machines — adjacent chunks compare the
    # same one.
    t_scalar_cold = t_scalar_warm = t_batch_cold = t_batch_warm = 0.0
    scalar_rows = []
    chunk = 30
    for lo in range(0, len(specs), chunk):
        hi = min(lo + chunk, len(specs))
        sub = specs[lo:hi]
        names = [f"grid[{k}]" for k in range(lo, hi)]

        # Scalar engine, cold: materialise instances and run the triple
        # loop — scoring never-seen specs without batching.
        t0 = time.perf_counter()
        pool = [
            MatrixInstance.from_spec(s, max_nnz=MAX_NNZ, name=nm)
            for s, nm in zip(sub, names)
        ]
        rows = _scalar_loop(pool)
        t_scalar_cold += time.perf_counter() - t0
        # Scalar engine, warm: the same pool with hot structural caches.
        t0 = time.perf_counter()
        _scalar_loop(pool)
        t_scalar_warm += time.perf_counter() - t0

        # Batched engine, cold: the fused path — specs to structure
        # arrays to batched analytic stats to scored grid, no instances
        # at all.  Names match the scalar pool so noise keys (hence
        # rows) agree.
        t0 = time.perf_counter()
        fused_grid = _score_grid(
            FusedSpecSource(sub, names, max_nnz=MAX_NNZ),
            DEVICES, seed=SEED,
        )
        t_batch_cold += time.perf_counter() - t0
        # Batched engine, warm: one vectorised pass over the hot pool.
        t0 = time.perf_counter()
        grid = simulate_grid(pool, DEVICES, seed=SEED)
        t_batch_warm += time.perf_counter() - t0

        _assert_rows_match(fused_grid, rows)
        _assert_rows_match(grid, rows)
        scalar_rows.extend(rows)

    speedup_warm = t_scalar_warm / t_batch_warm
    speedup_cold = t_scalar_cold / t_batch_cold
    payload = {
        "scale": SCALE,
        "max_nnz": MAX_NNZ,
        "n_instances": len(specs),
        "n_devices": len(DEVICES),
        "cells": cells,
        "scored_cells": len(scalar_rows),
        "scalar_cold_s": round(t_scalar_cold, 3),
        "scalar_warm_s": round(t_scalar_warm, 3),
        "batch_cold_s": round(t_batch_cold, 3),
        "batch_warm_s": round(t_batch_warm, 3),
        "scalar_warm_triples_per_s": round(cells / t_scalar_warm, 1),
        "batch_warm_triples_per_s": round(cells / t_batch_warm, 1),
        "batch_cold_triples_per_s": round(cells / t_batch_cold, 1),
        "speedup_warm": round(speedup_warm, 2),
        "speedup_cold": round(speedup_cold, 2),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    BENCH_PATH.write_text(text)
    ROOT_BENCH_PATH.write_text(text + "\n")
    emit(
        "grid_scoring_throughput",
        f"grid of {len(specs)} instances x 9 devices "
        f"({cells} triples, scale={SCALE})\n"
        f"  scalar: cold {t_scalar_cold:.2f}s, warm {t_scalar_warm:.2f}s "
        f"({cells / t_scalar_warm:,.0f} triples/s)\n"
        f"  batch:  cold {t_batch_cold:.2f}s (fused), "
        f"warm {t_batch_warm:.2f}s "
        f"({cells / t_batch_warm:,.0f} triples/s)\n"
        f"  warm speedup: {speedup_warm:.1f}x, "
        f"cold speedup: {speedup_cold:.1f}x",
    )
    # The acceptance floors: one vectorised pass beats the scalar loop
    # by an order of magnitude once instances are materialised, and the
    # fused cold pass must at least match materialise-then-loop.
    assert speedup_warm >= 10.0, (
        f"batched grid only {speedup_warm:.1f}x over the scalar loop"
    )
    assert speedup_cold >= 1.0, (
        f"fused cold grid lost to the scalar cold path: "
        f"{speedup_cold:.2f}x"
    )

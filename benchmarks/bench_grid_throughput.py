"""Grid scoring throughput — batched simulator vs the scalar triple loop.

Times :func:`repro.perfmodel.simulate_grid` against the equivalent scalar
``simulate_spmv`` loop over the configured preset's instances x all nine
testbeds x their Table-II format lists, cold (structural statistics and
imbalance profiles still to be measured) and warm (instance caches hot —
the steady state of selector training and repeated sweeps).  Results land
in ``benchmarks/results/BENCH_grid.json`` next to the pipeline bench so
the repo's performance trajectory stays machine-readable.

The batched rows are additionally asserted identical to the scalar
measurements (speed must not change results), and the warm speedup is
gated at >= 10x — the PR-2 acceptance floor.
"""

import json
import time

import pytest

from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.formats.base import FormatError
from repro.perfmodel import MatrixInstance, simulate_grid, simulate_spmv

from conftest import MAX_NNZ, RESULTS_DIR, SCALE, emit

BENCH_PATH = RESULTS_DIR / "BENCH_grid.json"

DEVICES = list(TESTBEDS.values())
SEED = 0


def _instances():
    """Freshly materialised instances (cold structural caches)."""
    specs = build_dataset_specs(SCALE)
    return [
        MatrixInstance.from_spec(s, max_nnz=MAX_NNZ, name=f"grid[{k}]")
        for k, s in enumerate(specs)
    ]


def _scalar_loop(instances):
    """The pre-batch scoring path: one Python call per triple."""
    out = []
    for inst in instances:
        for dev in DEVICES:
            for fmt in dev.formats:
                try:
                    m = simulate_spmv(inst, fmt, dev, seed=SEED)
                except FormatError:
                    continue
                out.append(m)
    return out


def test_grid_vs_scalar_throughput():
    n_cells = sum(len(dev.formats) for dev in DEVICES)

    # Scalar engine: cold then warm on its own instance pool.
    scalar_pool = _instances()
    cells = n_cells * len(scalar_pool)
    t0 = time.perf_counter()
    scalar_cold_rows = _scalar_loop(scalar_pool)
    t_scalar_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar_rows = _scalar_loop(scalar_pool)
    t_scalar_warm = time.perf_counter() - t0

    # Batched engine: cold then warm on a fresh pool.
    batch_pool = _instances()
    t0 = time.perf_counter()
    simulate_grid(batch_pool, DEVICES, seed=SEED)
    t_batch_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    grid = simulate_grid(batch_pool, DEVICES, seed=SEED)
    t_batch_warm = time.perf_counter() - t0

    # Speed must not change results: the scored cells equal the scalar
    # measurements one for one (grid order == scalar loop order).
    ok = grid.data[grid.ok_mask()]
    assert len(ok) == len(scalar_rows)
    for rec, m in zip(ok, scalar_rows):
        assert grid.device_names[rec["device"]] == m.device
        assert grid.format_names[rec["format"]] == m.format
        assert rec["gflops"] == m.gflops
        assert rec["watts"] == m.watts

    speedup_warm = t_scalar_warm / t_batch_warm
    speedup_cold = t_scalar_cold / t_batch_cold
    payload = {
        "scale": SCALE,
        "max_nnz": MAX_NNZ,
        "n_instances": len(scalar_pool),
        "n_devices": len(DEVICES),
        "cells": cells,
        "scored_cells": len(scalar_rows),
        "scalar_cold_s": round(t_scalar_cold, 3),
        "scalar_warm_s": round(t_scalar_warm, 3),
        "batch_cold_s": round(t_batch_cold, 3),
        "batch_warm_s": round(t_batch_warm, 3),
        "scalar_warm_triples_per_s": round(cells / t_scalar_warm, 1),
        "batch_warm_triples_per_s": round(cells / t_batch_warm, 1),
        "batch_cold_triples_per_s": round(cells / t_batch_cold, 1),
        "speedup_warm": round(speedup_warm, 2),
        "speedup_cold": round(speedup_cold, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    emit(
        "grid_scoring_throughput",
        f"grid of {len(scalar_pool)} instances x 9 devices "
        f"({cells} triples, scale={SCALE})\n"
        f"  scalar: cold {t_scalar_cold:.2f}s, warm {t_scalar_warm:.2f}s "
        f"({cells / t_scalar_warm:,.0f} triples/s)\n"
        f"  batch:  cold {t_batch_cold:.2f}s, warm {t_batch_warm:.2f}s "
        f"({cells / t_batch_warm:,.0f} triples/s)\n"
        f"  warm speedup: {speedup_warm:.1f}x, "
        f"cold speedup: {speedup_cold:.1f}x",
    )
    # The acceptance floor: one vectorised pass beats the scalar loop by
    # an order of magnitude once instances are materialised.
    assert speedup_warm >= 10.0, (
        f"batched grid only {speedup_warm:.1f}x over the scalar loop"
    )

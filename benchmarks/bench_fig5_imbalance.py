"""Fig 5 — impact of imbalance (skew coefficient), split small/large.

Asserted shapes: best-format CPU and GPU performance is essentially flat
across four orders of magnitude of skew (balance-aware formats absorb it);
the FPGA degrades visibly (paper ~4x; our channel-lockstep model yields
~1.5-2x, see EXPERIMENTS.md).
"""

from repro.analysis import box_stats, format_table

from conftest import emit

DEVICES = ("AMD-EPYC-64", "Tesla-A100", "Alveo-U280")
SPLIT_MB = 256.0
SKEWS = (0, 100, 1000, 10000)


def _fig5(dataset_sweep):
    sections = []
    medians = {}
    for dev in DEVICES:
        rows = [r for r in dataset_sweep.rows if r["device"] == dev]
        table_rows = []
        for size_label, pred in (
            ("small", lambda r: r["req_footprint_mb"] < SPLIT_MB),
            ("large", lambda r: r["req_footprint_mb"] >= SPLIT_MB),
        ):
            subset = [r for r in rows if pred(r)]
            for skew in SKEWS:
                values = [r["gflops"] for r in subset
                          if r["req_skew"] == skew]
                if not values:
                    continue
                s = box_stats(values)
                table_rows.append([
                    size_label, skew, s.n, round(s.q1, 1),
                    round(s.median, 1), round(s.q3, 1),
                ])
                medians[(dev, size_label, skew)] = s.median
        sections.append(format_table(
            ["size", "skew", "n", "q1", "median", "q3"],
            table_rows, title=f"Fig 5 panel: {dev} (GFLOPS)",
        ))
    return "\n\n".join(sections), medians


def test_fig5_imbalance(benchmark, dataset_sweep):
    text, med = _fig5(dataset_sweep)
    benchmark(lambda: _fig5(dataset_sweep))
    emit("fig5_imbalance", text)

    def span(dev, size):
        vals = [med[(dev, size, s)] for s in SKEWS
                if (dev, size, s) in med]
        return (max(vals) / min(vals)) if len(vals) >= 2 else None

    # GPU: balanced matrices at most ~1.2-1.4x faster (paper: 1.2x).
    gpu = span("Tesla-A100", "large")
    assert gpu is not None and gpu < 2.0
    # CPU: less prone than the GPU's worst case; still bounded.
    cpu = span("AMD-EPYC-64", "small")
    assert cpu is not None and cpu < 2.5
    # FPGA: skew hurts noticeably more than on the GPU.
    fpga = span("Alveo-U280", "small")
    if fpga is not None and gpu is not None:
        assert fpga > 1.25

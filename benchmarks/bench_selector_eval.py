"""Selector evaluation throughput — batched vs scalar scoring.

Cross-validated experiments evaluate a fitted
:class:`~repro.ml.FormatSelector` over whole held-out folds.  The scalar
oracle re-enters ``model.predict`` once per (instance, format) — for a
25-tree forest over 8 formats that is 200 single-row tree walks per
matrix — while the batched path builds the feature matrix once and
issues **one** predict per format over the entire fold.  This bench
fits one selector, scores the same held-out set through both paths,
asserts the reports are identical, gates the batched path at >= 5x, and
times a small end-to-end k-fold experiment for context.  Results land in
``benchmarks/results/BENCH_selector.json``.

Standalone usage (one path at a time):

    PYTHONPATH=../src python bench_selector_eval.py --batched
    PYTHONPATH=../src python bench_selector_eval.py --scalar
"""

import json
import os
import time

import numpy as np

from repro.devices import TESTBEDS
from repro.ml import FormatSelector

from conftest import RESULTS_DIR, emit

BENCH_PATH = RESULTS_DIR / "BENCH_selector.json"

# Acceptance floor: one predict per format over the fold must beat the
# per-instance scalar loop by at least this factor.
MIN_SPEEDUP = 5.0

N_TRAIN = int(os.environ.get("REPRO_SELECTOR_TRAIN", "200"))
N_EVAL = int(os.environ.get("REPRO_SELECTOR_EVAL", "300"))

FORMATS = list(TESTBEDS["AMD-EPYC-24"].formats)


def _rows(n, seed):
    """Synthetic per-format measurement rows with feature-driven
    winners (mirrors the sweep's selector input schema)."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        feats = {
            "matrix": f"m{seed}-{i}",
            "mem_footprint_mb": float(rng.uniform(1, 1024)),
            "avg_nnz_per_row": float(rng.uniform(2, 200)),
            "skew_coeff": float(rng.uniform(0, 8000)),
            "cross_row_similarity": float(rng.uniform(0, 1)),
            "avg_num_neighbours": float(rng.uniform(0, 2)),
        }
        base = rng.uniform(10, 60, size=len(FORMATS))
        # Winners depend on structure: skewed matrices reward the
        # balanced formats, regular ones the SIMD-friendly ones.
        tilt = 1.0 if feats["skew_coeff"] > 2000 else -1.0
        for j, fmt in enumerate(FORMATS):
            rows.append({
                **feats, "format": fmt,
                "gflops": float(
                    base[j] + tilt * 10.0 * (j - len(FORMATS) / 2)
                ),
            })
    return rows


def _fitted():
    return FormatSelector(FORMATS).fit(_rows(N_TRAIN, seed=1))


def _time_evaluate(selector, held_out, batch):
    t0 = time.perf_counter()
    report = selector.evaluate(held_out, batch=batch)
    return report, time.perf_counter() - t0


def _experiment_seconds():
    """Wall time of a small end-to-end k-fold experiment (context)."""
    from repro.experiments import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        scale="tiny", devices=("INTEL-XEON",), limit=8, n_splits=2,
        max_nnz=20_000,
    )
    t0 = time.perf_counter()
    run_experiment(spec)
    return time.perf_counter() - t0


def test_selector_eval_throughput():
    selector = _fitted()
    held_out = _rows(N_EVAL, seed=2)
    report_scalar, t_scalar = _time_evaluate(selector, held_out, False)
    report_batched, t_batched = _time_evaluate(selector, held_out, True)

    # Speed must not change results: the batched report is bit-identical
    # to the scalar oracle, field for field.
    assert report_batched == report_scalar

    speedup = t_scalar / t_batched
    t_experiment = _experiment_seconds()
    payload = {
        "n_train": N_TRAIN,
        "n_eval": N_EVAL,
        "n_formats": len(FORMATS),
        "scalar_s": round(t_scalar, 4),
        "batched_s": round(t_batched, 4),
        "scalar_matrices_per_s": round(N_EVAL / t_scalar, 1),
        "batched_matrices_per_s": round(N_EVAL / t_batched, 1),
        "speedup": round(speedup, 2),
        "kfold_experiment_s": round(t_experiment, 3),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    emit(
        "selector_eval_throughput",
        f"selector evaluate: {N_EVAL} matrices x {len(FORMATS)} formats\n"
        f"  scalar:  {t_scalar:.3f}s "
        f"({N_EVAL / t_scalar:,.0f} matrices/s)\n"
        f"  batched: {t_batched:.3f}s "
        f"({N_EVAL / t_batched:,.0f} matrices/s)\n"
        f"  speedup: {speedup:.1f}x\n"
        f"  end-to-end 2-fold experiment (8 matrices): "
        f"{t_experiment:.2f}s",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched selector evaluate only {speedup:.1f}x over scalar"
    )


def main():
    import argparse

    parser = argparse.ArgumentParser(
        description="Selector evaluate throughput for one path"
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--batched", dest="batch", action="store_true",
                       default=True, help="batched path (default)")
    group.add_argument("--scalar", dest="batch", action="store_false",
                       help="per-instance scalar oracle")
    args = parser.parse_args()
    selector = _fitted()
    held_out = _rows(N_EVAL, seed=2)
    report, elapsed = _time_evaluate(selector, held_out, args.batch)
    label = "batched" if args.batch else "scalar"
    print(
        f"{label}: {N_EVAL} matrices x {len(FORMATS)} formats in "
        f"{elapsed:.3f}s ({N_EVAL / elapsed:,.1f} matrices/s, "
        f"top-1 {report.accuracy:.3f})"
    )


if __name__ == "__main__":
    main()

"""Fig 2 — cross-device performance (a) and energy efficiency (b).

Best-format boxplots over the artificial dataset, per device.  The paper's
takeaways asserted here: GPUs keep the performance crown but CPUs are a
solid alternative (T2); the three energy-efficiency paths are Alveo-U280
(low power), Tesla-A100 (high performance) and ARM-NEON among CPUs (T3).
"""

from collections import defaultdict

import numpy as np

from repro.analysis import box_stats, boxplot_panel

from conftest import emit


def _panels(dataset_sweep):
    per_perf = defaultdict(list)
    per_eff = defaultdict(list)
    for r in dataset_sweep.rows:
        per_perf[r["device"]].append(r["gflops"])
        per_eff[r["device"]].append(r["gflops_per_watt"])
    perf_stats = {d: box_stats(v) for d, v in per_perf.items()}
    eff_stats = {d: box_stats(v) for d, v in per_eff.items()}
    text = (
        "Fig 2a: SpMV performance (GFLOPS), best format per matrix\n"
        + boxplot_panel(perf_stats, log=True)
        + "\n\nFig 2b: energy efficiency (GFLOPS/W)\n"
        + boxplot_panel(eff_stats, log=True, value_fmt="{:.3f}")
    )
    return text, perf_stats, eff_stats


def test_fig2_cross_device(benchmark, dataset_sweep):
    text, perf, eff = _panels(dataset_sweep)
    benchmark(lambda: _panels(dataset_sweep))
    emit("fig2_cross_device", text)

    # T2: the A100 leads in median performance; the best CPU is within the
    # same order of magnitude ("CPUs are back in the game").
    medians = {d: s.median for d, s in perf.items()}
    best_cpu = max(
        medians[d] for d in
        ("AMD-EPYC-24", "AMD-EPYC-64", "ARM-NEON", "INTEL-XEON",
         "IBM-POWER9")
    )
    assert medians["Tesla-A100"] == max(medians.values())
    assert best_cpu > 0.25 * medians["Tesla-A100"]
    # The FPGA cannot compete on raw throughput.
    assert medians["Alveo-U280"] == min(medians.values())

    # T3: three energy paths — the FPGA has the best peak efficiency, the
    # A100 the best GPU efficiency, and ARM the lowest CPU power draw.
    eff_max = {d: s.maximum for d, s in eff.items()}
    assert eff_max["Alveo-U280"] == max(eff_max.values())
    gpu_meds = {d: eff[d].median
                for d in ("Tesla-P100", "Tesla-V100", "Tesla-A100")}
    assert gpu_meds["Tesla-A100"] == max(gpu_meds.values())
    # FPGA median efficiency beats every CPU and the older GPUs.
    for d in ("AMD-EPYC-24", "ARM-NEON", "INTEL-XEON", "IBM-POWER9",
              "Tesla-P100"):
        assert eff["Alveo-U280"].median > eff[d].median * 0.95, d

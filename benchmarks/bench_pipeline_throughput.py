"""Pipeline throughput — cold vs warm sweeps, generator engines.

Times the sweep execution engine end-to-end (cold materialisation vs a
warm on-disk instance cache, at ``REPRO_JOBS`` workers) and the three
matrix-generation engines at ~1M nnz, then writes the numbers to
``benchmarks/results/BENCH_pipeline.json`` so the repo's performance
trajectory is machine-readable run over run.

Sweeps are seconds-long single-shot workloads, so this bench times them
directly with ``perf_counter`` instead of pytest-benchmark's repeat loop;
the measured rows are additionally asserted byte-identical across cold,
warm and serial-reference runs (speed must not change results).
"""

import json
import time

import pytest

from repro.core.dataset import Dataset, sweep
from repro.core.feature_space import build_dataset_specs
from repro.core.generator import artificial_matrix_generation
from repro.devices import TESTBEDS

from conftest import JOBS, MAX_NNZ, RESULTS_DIR, SCALE, emit

BENCH_PATH = RESULTS_DIR / "BENCH_pipeline.json"

# Sweep workload: the configured preset on one device per class.
SWEEP_DEVICES = [
    TESTBEDS["AMD-EPYC-24"],
    TESTBEDS["Tesla-A100"],
    TESTBEDS["Alveo-U280"],
]

# Generator workload: the ISSUE's canonical ~1M-nnz configuration.
GEN_ROWS, GEN_AVG = 20_000, 50.0


@pytest.fixture(scope="module")
def results():
    acc = {}
    yield acc
    payload = {
        "scale": SCALE,
        "max_nnz": MAX_NNZ,
        "jobs": JOBS,
        **acc,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))


def _specs():
    return build_dataset_specs(SCALE)


def test_sweep_cold_vs_warm(results, tmp_path_factory):
    """Cold sweep materialises everything; warm reloads it from disk."""
    cache_dir = str(tmp_path_factory.mktemp("bench-cache"))
    specs = _specs()
    n = len(specs)

    def timed_sweep(cache=None):
        ds = Dataset(specs, max_nnz=MAX_NNZ, name=SCALE)
        t0 = time.perf_counter()
        table = sweep(ds, SWEEP_DEVICES, jobs=JOBS, cache_dir=cache)
        return time.perf_counter() - t0, table

    # (Row-identity of cached/parallel vs serial-reference sweeps is
    # asserted by the tier-1 pipeline tests; the bench only re-checks that
    # warm output matches cold.)
    t_cold, cold = timed_sweep(cache=cache_dir)
    t_warm, warm = timed_sweep(cache=cache_dir)
    assert warm.rows == cold.rows

    results["sweep"] = {
        "n_specs": n,
        "n_devices": len(SWEEP_DEVICES),
        "cold_s": round(t_cold, 3),
        "warm_s": round(t_warm, 3),
        "cold_specs_per_s": round(n / t_cold, 2),
        "warm_specs_per_s": round(n / t_warm, 2),
        "warm_vs_cold": round(t_cold / t_warm, 2),
    }
    emit(
        "pipeline_sweep_throughput",
        f"sweep of {n} specs x {len(SWEEP_DEVICES)} devices "
        f"(scale={SCALE}, jobs={JOBS})\n"
        f"  cold: {t_cold:.2f}s ({n / t_cold:.1f} specs/s)\n"
        f"  warm: {t_warm:.2f}s ({n / t_warm:.1f} specs/s)\n"
        f"  warm-vs-cold speedup: {t_cold / t_warm:.1f}x",
    )
    # The whole point of the cache: warm sweeps skip materialisation.
    assert t_cold / t_warm >= 3.0, (
        f"warm sweep only {t_cold / t_warm:.1f}x faster than cold"
    )


def test_generator_engines(results):
    """Vectorised rowwise vs the sequential baseline vs chain at ~1M nnz."""
    timings = {}
    for method in ("rowwise", "rowwise-baseline", "chain"):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            m = artificial_matrix_generation(
                GEN_ROWS, GEN_ROWS, GEN_AVG, seed=7, method=method
            )
            best = min(best, time.perf_counter() - t0)
        timings[method] = (best, m.nnz)

    speedup = timings["rowwise-baseline"][0] / timings["rowwise"][0]
    results["generator"] = {
        "n_rows": GEN_ROWS,
        "avg_nnz_per_row": GEN_AVG,
        "nnz": timings["rowwise"][1],
        **{
            method.replace("-", "_") + "_s": round(t, 3)
            for method, (t, _) in timings.items()
        },
        "rowwise_speedup_vs_baseline": round(speedup, 2),
    }
    emit(
        "pipeline_generator_throughput",
        f"generation at {GEN_ROWS} rows x {GEN_AVG} nnz/row "
        f"(~{timings['rowwise'][1]} nnz)\n"
        + "\n".join(
            f"  {method:17s} {t:.3f}s"
            for method, (t, _) in timings.items()
        )
        + f"\n  rowwise vectorisation speedup: {speedup:.1f}x",
    )
    # Perf guardrail for the vectorised Listing-1 engine.
    assert speedup >= 2.0, f"rowwise speedup regressed: {speedup:.2f}x"

"""Pipeline throughput — cold/fused/warm sweeps, generator engines.

Times the sweep execution engine end-to-end (cold materialisation vs
the fused spec-to-grid path vs a warm on-disk instance cache, at
``REPRO_JOBS`` workers) and the three matrix-generation engines at ~1M
nnz, then writes the numbers to
``benchmarks/results/BENCH_pipeline.json`` (mirrored to the repo-root
``BENCH_pipeline.json`` snapshot) so the repo's performance trajectory
is machine-readable run over run.

Sweeps are seconds-long single-shot workloads, so this bench times them
directly with ``perf_counter`` instead of pytest-benchmark's repeat loop;
the measured rows are additionally asserted byte-identical across cold,
warm and serial-reference runs (speed must not change results).
"""

import json
import time

import pytest

from repro.core.dataset import Dataset, sweep
from repro.core.feature_space import build_dataset_specs
from repro.core.generator import artificial_matrix_generation
from repro.devices import TESTBEDS

from conftest import JOBS, MAX_NNZ, RESULTS_DIR, SCALE, emit

BENCH_PATH = RESULTS_DIR / "BENCH_pipeline.json"
# Committed snapshot at the repo root (also a CI artifact).
ROOT_BENCH_PATH = RESULTS_DIR.parent.parent / "BENCH_pipeline.json"

# Acceptance floor: the fused spec-to-grid path must beat cold
# instance materialisation by at least this factor.  The measured
# speedup on the tiny preset is ~2x; the floor keeps noise margin.
# A larger floor is structurally impossible while staying
# bit-identical: the fused path is already dominated by work the cold
# path shares one-for-one (representative structure generation,
# declared-scale row-length profiles and the per-strategy imbalance
# passes over them), so by Amdahl the ratio is capped near
# cold / shared ~ 2x — see docs/cold_path.md for the breakdown.
MIN_FUSED_SPEEDUP = 1.5

# Sweep workload: the configured preset on one device per class.
SWEEP_DEVICES = [
    TESTBEDS["AMD-EPYC-24"],
    TESTBEDS["Tesla-A100"],
    TESTBEDS["Alveo-U280"],
]

# Generator workload: the ISSUE's canonical ~1M-nnz configuration.
GEN_ROWS, GEN_AVG = 20_000, 50.0


@pytest.fixture(scope="module")
def results():
    acc = {}
    yield acc
    payload = {
        "scale": SCALE,
        "max_nnz": MAX_NNZ,
        "jobs": JOBS,
        **acc,
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    BENCH_PATH.write_text(text)
    ROOT_BENCH_PATH.write_text(text + "\n")


def _specs():
    return build_dataset_specs(SCALE)


def test_sweep_cold_vs_warm(results, tmp_path_factory):
    """Cold sweep materialises everything; fused skips instances; warm
    reloads materialised state from disk.

    The three engines run interleaved per ~30-spec slice: on shared
    hosts the machine's speed drifts by 2-3x over minutes, so
    back-to-back whole-dataset legs compare different machines —
    adjacent slices compare the same one.
    """
    cache_dir = str(tmp_path_factory.mktemp("bench-cache"))
    specs = _specs()
    n = len(specs)

    t_cold = t_fused = t_warm = 0.0
    cold_rows: list = []
    fused_rows: list = []
    warm_rows: list = []
    chunk = 30
    for lo in range(0, n, chunk):
        sub = specs[lo:lo + chunk]

        def timed_sweep(cache=None, fused=False):
            ds = Dataset(sub, max_nnz=MAX_NNZ, name=f"{SCALE}:{lo}")
            t0 = time.perf_counter()
            table = sweep(ds, SWEEP_DEVICES, jobs=JOBS, cache_dir=cache,
                          fused=fused)
            return time.perf_counter() - t0, table

        t, table = timed_sweep(cache=cache_dir)
        t_cold += t
        cold_rows.extend(table.rows)
        t, table = timed_sweep(fused=True)
        t_fused += t
        fused_rows.extend(table.rows)
        # The cold leg of this slice just populated the cache.
        t, table = timed_sweep(cache=cache_dir)
        t_warm += t
        warm_rows.extend(table.rows)

    # (Row-identity of cached/parallel vs serial-reference sweeps is
    # asserted by the tier-1 pipeline tests; the bench only re-checks that
    # fused and warm output match cold.)
    assert fused_rows == cold_rows
    assert warm_rows == cold_rows

    results["sweep"] = {
        "n_specs": n,
        "n_devices": len(SWEEP_DEVICES),
        "cold_s": round(t_cold, 3),
        "fused_s": round(t_fused, 3),
        "warm_s": round(t_warm, 3),
        "cold_specs_per_s": round(n / t_cold, 2),
        "fused_cold_specs_per_s": round(n / t_fused, 2),
        "warm_specs_per_s": round(n / t_warm, 2),
        "fused_vs_cold": round(t_cold / t_fused, 2),
        "warm_vs_cold": round(t_cold / t_warm, 2),
    }
    emit(
        "pipeline_sweep_throughput",
        f"sweep of {n} specs x {len(SWEEP_DEVICES)} devices "
        f"(scale={SCALE}, jobs={JOBS})\n"
        f"  cold:  {t_cold:.2f}s ({n / t_cold:.1f} specs/s)\n"
        f"  fused: {t_fused:.2f}s ({n / t_fused:.1f} specs/s)\n"
        f"  warm:  {t_warm:.2f}s ({n / t_warm:.1f} specs/s)\n"
        f"  fused-vs-cold speedup: {t_cold / t_fused:.1f}x\n"
        f"  warm-vs-cold speedup: {t_cold / t_warm:.1f}x",
    )
    # The whole point of the cache: warm sweeps skip materialisation.
    assert t_cold / t_warm >= 3.0, (
        f"warm sweep only {t_cold / t_warm:.1f}x faster than cold"
    )
    # And the point of fusion: cold sweeps skip materialisation too.
    assert t_cold / t_fused >= MIN_FUSED_SPEEDUP, (
        f"fused sweep only {t_cold / t_fused:.1f}x faster than cold"
    )


def test_generator_engines(results):
    """Vectorised rowwise vs the sequential baseline vs chain at ~1M nnz."""
    timings = {}
    for method in ("rowwise", "rowwise-baseline", "chain"):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            m = artificial_matrix_generation(
                GEN_ROWS, GEN_ROWS, GEN_AVG, seed=7, method=method
            )
            best = min(best, time.perf_counter() - t0)
        timings[method] = (best, m.nnz)

    speedup = timings["rowwise-baseline"][0] / timings["rowwise"][0]
    results["generator"] = {
        "n_rows": GEN_ROWS,
        "avg_nnz_per_row": GEN_AVG,
        "nnz": timings["rowwise"][1],
        **{
            method.replace("-", "_") + "_s": round(t, 3)
            for method, (t, _) in timings.items()
        },
        "rowwise_speedup_vs_baseline": round(speedup, 2),
    }
    emit(
        "pipeline_generator_throughput",
        f"generation at {GEN_ROWS} rows x {GEN_AVG} nnz/row "
        f"(~{timings['rowwise'][1]} nnz)\n"
        + "\n".join(
            f"  {method:17s} {t:.3f}s"
            for method, (t, _) in timings.items()
        )
        + f"\n  rowwise vectorisation speedup: {speedup:.1f}x",
    )
    # Perf guardrail for the vectorised Listing-1 engine.
    assert speedup >= 2.0, f"rowwise speedup regressed: {speedup:.2f}x"

"""Fig 3 — impact of memory footprint on SpMV performance.

Per device: boxplots over footprint bins, once for the whole dataset
(light boxes in the paper) and once restricted to matrices whose other
features are favourable (dark boxes).  Asserted shapes: the CPU collapses
past its LLC (>= 4x), the GPU gains with size (~2x), the FPGA is
comparatively insensitive.
"""

import numpy as np

from repro.analysis import bin_by, box_stats, format_table

from conftest import emit

DEVICES = ("AMD-EPYC-64", "Tesla-A100", "Alveo-U280")
EDGES = [32.0, 256.0, 512.0]


def _favourable(r):
    return (
        r["req_avg_nnz"] >= 50
        and r["req_skew"] <= 100
        and r["req_sim"] >= 0.5
        and r["req_neigh"] >= 0.95
    )


def _fig3(dataset_sweep):
    sections = []
    medians = {}
    for dev in DEVICES:
        rows = [r for r in dataset_sweep.rows if r["device"] == dev]
        table_rows = []
        for label, subset in (
            ("all", rows),
            ("favourable", [r for r in rows if _favourable(r)]),
        ):
            bins = bin_by(subset, "req_footprint_mb", EDGES)
            for bin_label, values in bins.items():
                if not values:
                    continue
                s = box_stats(values)
                table_rows.append([
                    label, bin_label, s.n, round(s.q1, 1),
                    round(s.median, 1), round(s.q3, 1),
                ])
                medians[(dev, label, bin_label)] = s.median
        sections.append(format_table(
            ["subset", "footprint bin MB", "n", "q1", "median", "q3"],
            table_rows, title=f"Fig 3 panel: {dev} (GFLOPS)",
        ))
    return "\n\n".join(sections), medians


def test_fig3_memfootprint(benchmark, dataset_sweep):
    text, med = _fig3(dataset_sweep)
    benchmark(lambda: _fig3(dataset_sweep))
    emit("fig3_memfootprint", text)

    # CPU: in-cache matrices vastly outperform out-of-cache ones.
    cpu_small = med[("AMD-EPYC-64", "favourable", "32-256")]
    cpu_large = med[("AMD-EPYC-64", "favourable", ">=512")]
    assert cpu_small / cpu_large > 3.0

    # GPU: favours large matrices (parallel slack), gap around 2x.
    gpu_small = med[("Tesla-A100", "favourable", "<32")]
    gpu_large = med[("Tesla-A100", "favourable", ">=512")]
    assert 1.3 < gpu_large / gpu_small < 6.0

    # FPGA: footprint has no monotone hold on performance (< 2.5x swing
    # across bins for the favourable subset that runs at all).
    fpga = [v for (d, s, b), v in med.items()
            if d == "Alveo-U280" and s == "favourable"]
    if len(fpga) >= 2:
        assert max(fpga) / min(fpga) < 4.0

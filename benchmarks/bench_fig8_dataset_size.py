"""Fig 8 — stability of the performance picture across dataset sizes.

The paper compares 3K/16K/27K-matrix datasets on the AMD-EPYC-24 and finds
the medium dataset sufficient: enlarging it does not change the trend.  We
compare our tiny/small/medium presets the same way (same feature-space
limits, denser sampling) and assert the per-footprint-bin medians agree.
"""

from repro.analysis import bin_by, box_stats, format_table
from repro.core.dataset import Dataset, sweep
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS

from conftest import MAX_NNZ, emit

EDGES = [32.0, 512.0]
SCALES = ("tiny", "small")  # 'medium' via REPRO_SCALE on bigger budgets


def _per_scale_medians():
    dev = TESTBEDS["AMD-EPYC-24"]
    out = {}
    for scale in SCALES:
        ds = Dataset(build_dataset_specs(scale), max_nnz=MAX_NNZ,
                     name=scale)
        table = sweep(ds, [dev], best_only=True)
        bins = bin_by(table.rows, "req_footprint_mb", EDGES)
        out[scale] = {
            label: box_stats(v) for label, v in bins.items() if v
        }
    return out


def test_fig8_dataset_size(benchmark):
    per_scale = _per_scale_medians()

    def _analyse():
        rows = []
        for scale, bins in per_scale.items():
            for label, s in bins.items():
                rows.append([scale, label, s.n, round(s.q1, 1),
                             round(s.median, 1), round(s.q3, 1)])
        return rows

    rows = benchmark(_analyse)
    emit(
        "fig8_dataset_size",
        format_table(
            ["dataset", "footprint bin MB", "n", "q1", "median", "q3"],
            rows,
            title="Fig 8: AMD-EPYC-24 performance vs dataset size (GFLOPS)",
        ),
    )

    # The trend must be scale-invariant: per-bin medians of consecutive
    # dataset sizes agree within 40% (the paper's visual criterion).
    small, big = (per_scale[s] for s in SCALES)
    for label in small:
        if label in big:
            a, b = small[label].median, big[label].median
            assert abs(a - b) / max(a, b) < 0.4, label

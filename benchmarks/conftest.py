"""Shared fixtures for the figure/table benches.

Sweeps are the expensive part, so they run once per session and are shared
by every bench; the ``benchmark`` fixture then times the (cheap, repeated)
analysis step of each figure.  Dataset size follows ``REPRO_SCALE``
(tiny/small/medium/large, default tiny) — larger scales sharpen the
boxplots at proportional cost.

Each bench writes its regenerated rows/series to
``benchmarks/results/<name>.txt`` and prints them (visible with ``-s``).

The sweeps run through the pipeline engine: ``REPRO_JOBS`` fans them out
over worker processes (0 = auto-detect cores) and ``REPRO_CACHE_DIR``
persists materialised instances so repeat bench runs start warm.  Both
leave the measurement rows byte-identical to a serial, uncached sweep.
"""

import os
from pathlib import Path

import pytest

from repro.core.dataset import Dataset, sweep
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

SCALE = os.environ.get("REPRO_SCALE", "tiny")
MAX_NNZ = int(os.environ.get("REPRO_MAX_NNZ", "80000"))
JOBS = int(os.environ.get("REPRO_JOBS", "1"))
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


def emit(name: str, text: str) -> str:
    """Print a bench's regenerated artefact and persist it."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


@pytest.fixture(scope="session")
def paper_dataset():
    """The Table-I artificial dataset at the configured scale."""
    specs = build_dataset_specs(SCALE)
    cache = None
    if CACHE_DIR:
        from repro.pipeline import InstanceCache

        cache = InstanceCache(CACHE_DIR)
    return Dataset(specs, max_nnz=MAX_NNZ, name=SCALE, cache=cache)


@pytest.fixture(scope="session")
def dataset_sweep(paper_dataset):
    """Best-format measurements on all nine devices (Fig 2-6, 9)."""
    return sweep(
        paper_dataset, list(TESTBEDS.values()), best_only=True,
        jobs=JOBS, cache_dir=CACHE_DIR,
    )


@pytest.fixture(scope="session")
def formats_sweep(paper_dataset):
    """Per-format measurements on one device per class (Fig 7)."""
    devices = [
        TESTBEDS["AMD-EPYC-24"],
        TESTBEDS["Tesla-V100"],
        TESTBEDS["Alveo-U280"],
    ]
    return sweep(
        paper_dataset, devices, best_only=False,
        jobs=JOBS, cache_dir=CACHE_DIR,
    )


N_FRIENDS = int(os.environ.get("REPRO_FRIENDS", "5"))


@pytest.fixture(scope="session")
def validation_results():
    """Table III surrogates + friends, best-format perf on all devices.

    Returns ``{device: {matrix_id: (surrogate_gflops, [friend_gflops...],
    surrogate_instance)}}``; devices where a matrix fails entirely (FPGA
    capacity) omit that id, as in the paper.
    """
    from repro.core.validation import VALIDATION_SUITE, friend_specs, surrogate_spec
    from repro.perfmodel import MatrixInstance, simulate_best

    out = {dev: {} for dev in TESTBEDS}
    for vm in VALIDATION_SUITE:
        surrogate = MatrixInstance.from_spec(
            surrogate_spec(vm), max_nnz=60_000, name=vm.name
        )
        friends = [
            MatrixInstance.from_spec(fs, max_nnz=60_000,
                                     name=f"{vm.name}~{k}")
            for k, fs in enumerate(
                friend_specs(vm, n_friends=N_FRIENDS, seed=7)
            )
        ]
        for dev_name, dev in TESTBEDS.items():
            base = simulate_best(surrogate, dev)
            if base is None:
                continue
            fr = [
                m.gflops
                for m in (simulate_best(f, dev) for f in friends)
                if m is not None
            ]
            if not fr:
                continue
            out[dev_name][vm.id] = (base.gflops, fr, surrogate)
    return out

"""Columnar table ops vs the dict-row path at million-row scale.

The ROADMAP's north star is million-row sweeps at hardware speed; the
redesign's claim is that the core interchange operations — ``where``
slicing, ``groupby`` and feeding the format selector — are array passes
over a :class:`~repro.core.table.SweepTable` instead of Python loops
over dict rows.  This bench builds a synthetic per-format measurement
table (``REPRO_TABLE_ROWS`` rows, default 1M), runs each operation
through both paths, asserts the results agree, and gates the combined
columnar time at >= 10x faster.  Results land in
``benchmarks/results/BENCH_table.json``.

Standalone usage:

    PYTHONPATH=../src python bench_table_ops.py [--rows 1000000]
"""

import json
import os
import time

import numpy as np

from repro.core.table import SweepTable
from repro.ml.selector import MINIMAL_FEATURES, FormatSelector

from conftest import RESULTS_DIR, emit

BENCH_PATH = RESULTS_DIR / "BENCH_table.json"

# Acceptance floor: columnar where+groupby+selector-feed combined must
# beat the dict-row combined time by at least this factor.
MIN_SPEEDUP = 10.0

N_ROWS = int(os.environ.get("REPRO_TABLE_ROWS", "1000000"))

FORMATS = ["Naive-CSR", "CSR5", "ELL", "SELL-C-s", "Merge-CSR",
           "SparseX", "COO", "BCSR"]


class _NullModel:
    """Constant regressor: isolates the selector's *data feed* cost
    (grouping, target assembly, feature matrix) from model fitting."""

    def fit(self, X, y):
        return self

    def predict(self, X):
        return np.zeros(len(X))


def _build_table(n_rows: int) -> SweepTable:
    """Synthetic per-format sweep table, built columnar (one device)."""
    rng = np.random.default_rng(11)
    n_fmt = len(FORMATS)
    n_mat = max(n_rows // n_fmt, 1)
    n = n_mat * n_fmt
    matrix = np.repeat(np.arange(n_mat, dtype=np.int32), n_fmt)
    columns = {
        "matrix": matrix,
        "device": np.zeros(n, dtype=np.int32),
        "format": np.tile(np.arange(n_fmt, dtype=np.int32), n_mat),
        "precision": np.zeros(n, dtype=np.int32),
        "gflops": rng.uniform(1.0, 120.0, size=n),
    }
    feats = {
        "mem_footprint_mb": rng.uniform(1, 1024, size=n_mat),
        "avg_nnz_per_row": rng.uniform(2, 200, size=n_mat),
        "skew_coeff": rng.uniform(0, 8000, size=n_mat),
        "cross_row_similarity": rng.uniform(0, 1, size=n_mat),
        "avg_num_neighbours": rng.uniform(0, 2, size=n_mat),
    }
    for key in MINIMAL_FEATURES:
        columns[key] = feats[key][matrix]
    return SweepTable(columns, {
        "matrix": [f"m{i}" for i in range(n_mat)],
        "device": ["bench-device"],
        "format": list(FORMATS),
        "precision": ["fp64"],
    })


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _bench(table, rows):
    """(timings, agreement checks) for the three gated operations."""
    times = {}

    # -- where: one device+format slice -------------------------------
    cond = {"format": "CSR5"}
    t_where, times["where_columnar_s"] = _timed(
        lambda: table.where(**cond)
    )
    r_where, times["where_dict_s"] = _timed(
        lambda: [r for r in rows if r["format"] == "CSR5"]
    )
    assert len(t_where) == len(r_where)

    # -- groupby: per-format row counts --------------------------------
    def columnar_group():
        return {k: len(t) for k, t in table.groupby("format")}

    def dict_group():
        out = {}
        for r in rows:
            out.setdefault(r["format"], []).append(r)
        return {k: len(v) for k, v in out.items()}

    g_col, times["groupby_columnar_s"] = _timed(columnar_group)
    g_dict, times["groupby_dict_s"] = _timed(dict_group)
    assert g_col == g_dict

    # -- selector feed: grouping + feature matrix + per-format targets -
    def feed(data):
        return FormatSelector(
            FORMATS, model_factory=_NullModel
        ).fit(data)

    _, times["selector_feed_columnar_s"] = _timed(lambda: feed(table))
    _, times["selector_feed_dict_s"] = _timed(lambda: feed(rows))

    return times


def test_table_ops_throughput():
    table = _build_table(N_ROWS)
    # The pre-redesign pipeline shipped dict rows (GridResult.to_rows()
    # exploded straight after simulation), so the dict path pays the
    # materialisation before its first op; the columnar path never does.
    rows, to_rows_s = _timed(table.to_rows)
    times = _bench(table, rows)

    columnar = sum(v for k, v in times.items() if "columnar" in k)
    dict_path = to_rows_s + sum(
        v for k, v in times.items() if "dict" in k
    )
    speedup = dict_path / columnar
    payload = {
        "n_rows": len(table),
        "n_formats": len(FORMATS),
        "to_rows_s": round(to_rows_s, 4),
        **{k: round(v, 5) for k, v in times.items()},
        "columnar_total_s": round(columnar, 4),
        "dict_total_s": round(dict_path, 4),
        "speedup": round(speedup, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    emit(
        "table_ops_throughput",
        f"table ops over {len(table):,} rows "
        f"({len(FORMATS)} formats)\n"
        f"  where:         columnar {times['where_columnar_s']:.4f}s"
        f"  vs dict {times['where_dict_s']:.3f}s\n"
        f"  groupby:       columnar {times['groupby_columnar_s']:.4f}s"
        f"  vs dict {times['groupby_dict_s']:.3f}s\n"
        f"  selector feed: columnar"
        f" {times['selector_feed_columnar_s']:.4f}s"
        f"  vs dict {times['selector_feed_dict_s']:.3f}s\n"
        f"  dict-row materialisation: {to_rows_s:.2f}s\n"
        f"  combined speedup: {speedup:.1f}x",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"columnar table ops only {speedup:.1f}x over dict rows"
    )


def main():
    import argparse

    parser = argparse.ArgumentParser(
        description="Columnar vs dict-row table op throughput"
    )
    parser.add_argument("--rows", type=int, default=N_ROWS)
    args = parser.parse_args()
    table = _build_table(args.rows)
    rows, to_rows_s = _timed(table.to_rows)
    times = _bench(table, rows)
    print(f"{len(table):,} rows (dict materialisation {to_rows_s:.2f}s)")
    for op in ("where", "groupby", "selector_feed"):
        col = times[f"{op}_columnar_s"]
        ref = times[f"{op}_dict_s"]
        print(f"  {op:14s} columnar {col:.4f}s  dict {ref:.3f}s  "
              f"({ref / col:,.0f}x)")


if __name__ == "__main__":
    main()

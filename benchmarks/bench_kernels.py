"""Host-kernel microbenchmarks (pytest-benchmark proper).

Times the actual NumPy SpMV kernels of every storage format on one
mid-sized matrix — the measurement layer a user runs on their own machine.
"""

import numpy as np
import pytest

from repro.core.generator import artificial_matrix_generation
from repro.formats import FORMAT_REGISTRY, FormatError
from repro.kernels import make_x

MAT = artificial_matrix_generation(
    20_000, 20_000, 20, skew_coeff=5, cross_row_sim=0.6, avg_num_neigh=1.2,
    seed=42,
)
X = make_x(MAT.n_cols, seed=0)
REFERENCE = MAT.spmv(X)

KERNEL_FORMATS = [
    "Naive-CSR", "COO", "CSR5", "Merge-CSR", "SparseX", "SELL-C-s",
    "HYB", "ELL", "BCSR", "VSL",
]


@pytest.mark.parametrize("fmt_name", KERNEL_FORMATS)
def test_kernel_throughput(benchmark, fmt_name):
    try:
        fmt = FORMAT_REGISTRY[fmt_name].from_csr(MAT)
    except FormatError:
        pytest.skip(f"{fmt_name} refuses this matrix")
    y = benchmark(fmt.spmv, X)
    np.testing.assert_allclose(y, REFERENCE, rtol=1e-9, atol=1e-9)
    benchmark.extra_info["nnz"] = MAT.nnz
    benchmark.extra_info["gflops_per_sec_note"] = (
        "2*nnz / mean_time gives host GFLOPS"
    )


def test_conversion_cost_csr_to_sell(benchmark):
    benchmark(FORMAT_REGISTRY["SELL-C-s"].from_csr, MAT)


def test_generator_throughput(benchmark):
    benchmark(
        artificial_matrix_generation,
        20_000, 20_000, 20, 2.0, "normal", 100.0, 0.3, 0.5, 1.0, 7, "chain",
    )


def test_feature_extraction_throughput(benchmark):
    from repro.core.features import extract_features

    benchmark(extract_features, MAT)

"""Table III — the 45-matrix validation suite, re-synthesised.

For every published row we build the surrogate and report requested vs
measured features, confirming the generator can hit the real-world feature
coordinates (the premise of Section V-A).
"""

from repro.analysis import format_table
from repro.core.features import extract_features, regularity_class
from repro.core.validation import VALIDATION_SUITE, surrogate_spec

from conftest import emit


def _suite_fidelity(subset):
    rows = []
    agree = 0
    for vm in subset:
        spec = surrogate_spec(vm)
        feats = extract_features(spec.representative(60_000).build())
        cls = regularity_class(feats)
        agree += cls == vm.regularity
        rows.append([
            vm.id, vm.name[:20], vm.mem_footprint_mb, vm.avg_nnz_per_row,
            round(feats.avg_nnz_per_row, 2), vm.skew_coeff,
            round(feats.skew_coeff, 2), vm.regularity, cls,
        ])
    table = format_table(
        ["id", "matrix", "f1 MB", "f2 req", "f2 meas", "f3 req",
         "f3 meas", "f4 req", "f4 meas"],
        rows, title="Table III: validation suite surrogates",
    )
    return table, agree, len(subset)


def test_table3_validation_suite(benchmark):
    table, agree, n = _suite_fidelity(VALIDATION_SUITE)

    # Timed kernel: one surrogate synthesis end-to-end.
    vm = VALIDATION_SUITE[0]
    benchmark(lambda: surrogate_spec(vm).representative(60_000).build())

    emit(
        "table3_validation_suite",
        table + f"\n\nregularity class agreement: {agree}/{n}",
    )
    assert len(VALIDATION_SUITE) == 45
    # The two-letter regularity class must be reproduced for the large
    # majority of the suite.
    assert agree >= int(0.75 * n)

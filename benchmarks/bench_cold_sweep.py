"""Cold-sweep throughput — analytic format stats vs full materialisation.

A *cold* sweep (no instance cache) pays, per instance, one structural
scoring pass over every format of every device.  The materialising
engine converts each format for real — padded value/index arrays for
ELL/SELL-C-sigma/DIA/BCSR, scatter passes for the rest — only to reduce
the result to six numbers; the analytic engine
(`SparseFormat.stats_from_csr`) computes the same six numbers straight
from the CSR structure arrays.  This bench times both engines on fresh
instance pools over the full testbed format union, asserts the stats
(and refusals) are identical cell-for-cell, gates the analytic path at
>= 5x instance throughput, and records the presorted selector-tree
training speedup.  Results land in
``benchmarks/results/BENCH_cold_sweep.json`` next to the grid and
pipeline benches.

Standalone usage (one engine at a time):

    PYTHONPATH=../src python bench_cold_sweep.py --analytic
    PYTHONPATH=../src python bench_cold_sweep.py --materialise
"""

import json
import time

import numpy as np

from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.formats.base import FormatError
from repro.perfmodel import MatrixInstance

from conftest import MAX_NNZ, RESULTS_DIR, SCALE, emit

BENCH_PATH = RESULTS_DIR / "BENCH_cold_sweep.json"

# Union of every testbed's Table-II format list: the set a full
# cross-device sweep scores per instance.
ALL_FORMATS = sorted(
    {f for dev in TESTBEDS.values() for f in dev.formats}
)

# Acceptance floor: scoring a cold instance without materialising
# formats must beat the conversion path by at least this factor.
MIN_SPEEDUP = 5.0


def _instances(engine: str):
    """Fresh pool (cold structural caches) pinned to one stats engine."""
    specs = build_dataset_specs(SCALE)
    pool = [
        MatrixInstance.from_spec(s, max_nnz=MAX_NNZ, name=f"cold[{k}]")
        for k, s in enumerate(specs)
    ]
    for inst in pool:
        inst.stats_engine = engine
    return pool


def _stats_pass(pool):
    """One cold scoring pass; returns {(instance, format): stats-or-msg}."""
    cells = {}
    for inst in pool:
        for fmt in ALL_FORMATS:
            try:
                cells[(inst.name, fmt)] = inst.format_stats(fmt)
            except FormatError as exc:
                cells[(inst.name, fmt)] = str(exc)
    return cells


def _run_engine(engine: str):
    pool = _instances(engine)
    t0 = time.perf_counter()
    cells = _stats_pass(pool)
    elapsed = time.perf_counter() - t0
    return pool, cells, elapsed


def _tree_fit_times():
    """Presorted vs re-sorting selector-tree fit on a bench-sized set."""
    from repro.ml.tree import DecisionTreeRegressor

    rng = np.random.default_rng(0)
    n, d = 4000, 12
    X = rng.normal(size=(n, d))
    X[:, 0] = np.round(X[:, 0], 1)
    y = X @ rng.normal(size=d) + 0.3 * rng.normal(size=n)
    t0 = time.perf_counter()
    fast = DecisionTreeRegressor(presort=True).fit(X, y)
    t_presort = time.perf_counter() - t0
    t0 = time.perf_counter()
    ref = DecisionTreeRegressor(presort=False).fit(X, y)
    t_legacy = time.perf_counter() - t0
    np.testing.assert_array_equal(fast.predict(X), ref.predict(X))
    return t_presort, t_legacy


def test_cold_sweep_throughput():
    analytic_pool, analytic_cells, t_analytic = _run_engine("analytic")
    material_pool, material_cells, t_material = _run_engine("materialise")

    # Speed must not change results: every (instance, format) cell equal,
    # refusal messages included.
    assert analytic_cells == material_cells

    n_inst = len(analytic_pool)
    speedup = t_material / t_analytic
    t_presort, t_legacy = _tree_fit_times()
    payload = {
        "scale": SCALE,
        "max_nnz": MAX_NNZ,
        "n_instances": n_inst,
        "n_formats": len(ALL_FORMATS),
        "cells": n_inst * len(ALL_FORMATS),
        "analytic_s": round(t_analytic, 3),
        "materialise_s": round(t_material, 3),
        "analytic_instances_per_s": round(n_inst / t_analytic, 1),
        "materialise_instances_per_s": round(n_inst / t_material, 1),
        "speedup": round(speedup, 2),
        "tree_fit_presort_s": round(t_presort, 3),
        "tree_fit_legacy_s": round(t_legacy, 3),
        "tree_fit_speedup": round(t_legacy / t_presort, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True))
    emit(
        "cold_sweep_throughput",
        f"cold stats pass: {n_inst} instances x {len(ALL_FORMATS)} formats "
        f"(scale={SCALE})\n"
        f"  analytic:    {t_analytic:.2f}s "
        f"({n_inst / t_analytic:,.0f} instances/s)\n"
        f"  materialise: {t_material:.2f}s "
        f"({n_inst / t_material:,.0f} instances/s)\n"
        f"  speedup: {speedup:.1f}x\n"
        f"  tree fit: presort {t_presort:.3f}s vs legacy {t_legacy:.3f}s "
        f"({t_legacy / t_presort:.2f}x)",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"analytic cold scoring only {speedup:.1f}x over materialisation"
    )


def main():
    import argparse

    parser = argparse.ArgumentParser(
        description="Cold-sweep stats throughput for one engine"
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--analytic", dest="engine", action="store_const",
        const="analytic", help="closed-form stats (default)",
    )
    group.add_argument(
        "--materialise", dest="engine", action="store_const",
        const="materialise", help="full per-format conversion",
    )
    parser.set_defaults(engine="analytic")
    args = parser.parse_args()
    pool, cells, elapsed = _run_engine(args.engine)
    print(
        f"{args.engine}: {len(pool)} instances x {len(ALL_FORMATS)} formats "
        f"in {elapsed:.2f}s ({len(pool) / elapsed:,.1f} instances/s, "
        f"{len(cells)} cells)"
    )


if __name__ == "__main__":
    main()

"""Table IV — MAPE / APE-best of artificial friends vs validation matrices.

Paper: MAPE 17.51% average (friend median vs validation matrix), APE-best
8.58% (closest friend).  We regenerate both columns per device.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.validation import ape_best, mape

from conftest import emit

# Paper's Table IV, for side-by-side comparison in the emitted artefact.
PAPER_TABLE4 = {
    "Tesla-P100": (10.01, 4.57),
    "Tesla-V100": (18.42, 10.15),
    "Tesla-A100": (9.94, 5.19),
    "AMD-EPYC-24": (20.04, 8.42),
    "AMD-EPYC-64": (21.81, 6.39),
    "ARM-NEON": (15.65, 4.41),
    "INTEL-XEON": (16.49, 7.36),
    "IBM-POWER9": (21.77, 14.11),
    "Alveo-U280": (23.49, 16.63),
}


def _table4(validation_results):
    rows = []
    mapes, apes = [], []
    for dev, per_matrix in validation_results.items():
        if not per_matrix:
            continue
        refs, medians = [], []
        ape_vals = []
        for base, friends, _inst in per_matrix.values():
            refs.append(base)
            medians.append(float(np.median(friends)))
            ape_vals.append(ape_best(base, friends))
        dev_mape = mape(refs, medians)
        dev_ape = float(np.mean(ape_vals))
        mapes.append(dev_mape)
        apes.append(dev_ape)
        paper = PAPER_TABLE4.get(dev, (float("nan"), float("nan")))
        rows.append([dev, round(dev_mape, 2), paper[0],
                     round(dev_ape, 2), paper[1], len(per_matrix)])
    rows.append([
        "Average", round(float(np.mean(mapes)), 2), 17.51,
        round(float(np.mean(apes)), 2), 8.58, "",
    ])
    table = format_table(
        ["device", "MAPE %", "paper MAPE %", "APE-best %",
         "paper APE-best %", "#matrices"],
        rows, title="Table IV: friends vs validation matrices",
    )
    return table, float(np.mean(mapes)), float(np.mean(apes))


def test_table4_validation_mape(benchmark, validation_results):
    table, avg_mape, avg_ape = _table4(validation_results)
    benchmark(lambda: _table4(validation_results))
    emit("table4_validation_mape", table)
    # Shape assertions: friends track their validation base (same order of
    # magnitude as the paper's 17.5%/8.6%), and the closest friend is
    # always a better predictor than the median friend.
    assert avg_mape < 40.0
    assert avg_ape < avg_mape

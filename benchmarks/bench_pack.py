"""Pack store performance floors — BENCH_pack.json.

Three numbers, two gated:

* ``warm_handle_overhead_pct`` (gated ≤5%): a pack-backed cache handle
  that has fetched its corpus once serves the next sweep through the
  in-process memory layer; the pack must leave that fast path untouched
  (fetch probes memory first, never the pack).  This is the issue's
  "≤5% overhead vs the in-memory layer" gate made honest: on *first*
  touch a pack fetch deserialises the full corpus (npz parse + SHA-256
  verification) while a memory hit is a dict lookup — a >100× gap no
  layout can close — so the gate holds where the in-memory comparison
  is meaningful: every fetch after the first.
* ``open_locate_speedup`` (gated ≥5×): opening a pack and locating
  every entry vs the per-key ``exists`` probing a directory corpus pays
  on a cold warm-start.  One header read + one bulk entry-table parse +
  dict hits against thousands of stat syscalls — the issue's "≥5× the
  cold directory-scan warm start" floor.  (Payload reads are comparable
  in either layout and are covered by the sweep leg.)
* ``pack_vs_dir_sweep`` (gated ≤3.5×, reported): first-touch warm sweep
  from a pruned pack vs from loose pairs.  The pack costs roughly one
  extra sequential pass over the corpus (SHA-256 of every blob — the
  directory path only gets zip CRCs), so ~2× is expected and the gate
  is a regression ceiling, not a target.
"""

import json
import shutil
import time

from repro.core.dataset import Dataset
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.io.pack import Pack, PackWriter
from repro.pipeline import InstanceCache, run_sweep
from repro.pipeline.cache import pack_cache_dir

from conftest import MAX_NNZ, RESULTS_DIR, SCALE, emit

BENCH_PATH = RESULTS_DIR / "BENCH_pack.json"
# Committed snapshot at the repo root (also a CI artifact).
ROOT_BENCH_PATH = RESULTS_DIR.parent.parent / "BENCH_pack.json"

DEVICES = [TESTBEDS["Tesla-A100"]]
REPEATS = 3
MAX_WARM_HANDLE_OVERHEAD = 0.05
MIN_OPEN_LOCATE_SPEEDUP = 5.0
MAX_PACK_VS_DIR = 3.5
# Synthetic corpus size for the open+locate micro-bench: large enough
# that per-key syscalls dominate the directory leg.
N_SYNTH = 1_500


def _dataset(specs):
    return Dataset(specs, max_nnz=MAX_NNZ, name=SCALE)


def _timed_sweep(specs, cache):
    t0 = time.perf_counter()
    table = run_sweep(_dataset(specs), DEVICES, cache=cache)
    return time.perf_counter() - t0, table


def test_pack_floors(tmp_path):
    specs = build_dataset_specs(SCALE)

    # -- corpora: loose-pair directory + pruned pack copy ---------------
    dir_root = tmp_path / "dir-cache"
    run_sweep(_dataset(specs), DEVICES, cache_dir=str(dir_root))
    pack_root = tmp_path / "pack-cache"
    shutil.copytree(dir_root, pack_root)
    entries, pack_path = pack_cache_dir(pack_root, prune=True)
    pack_bytes = pack_path.stat().st_size

    # -- leg 1: warm-handle fetch overhead (pack layer vs pure memory) --
    mem_handle = InstanceCache(dir_root)
    pack_handle = InstanceCache(pack_root)
    _timed_sweep(specs, mem_handle)   # warm both handles' memory layer
    _timed_sweep(specs, pack_handle)
    assert pack_handle.hits_pack == len(specs)
    mem_times, packmem_times = [], []
    tables = {}
    for rep in range(REPEATS):
        order = (
            (("mem", mem_handle), ("pack", pack_handle))
            if rep % 2 == 0
            else (("pack", pack_handle), ("mem", mem_handle))
        )
        for name, handle in order:
            t, table = _timed_sweep(specs, handle)
            (mem_times if name == "mem" else packmem_times).append(t)
            tables[name] = table
    assert tables["pack"].rows == tables["mem"].rows
    warm_overhead = min(packmem_times) / min(mem_times) - 1.0

    # -- leg 2: first-touch warm sweep, pack vs directory ---------------
    dir_times, pack_times = [], []
    for rep in range(REPEATS):
        order = ("dir", "pack") if rep % 2 == 0 else ("pack", "dir")
        for name in order:
            root = dir_root if name == "dir" else pack_root
            handle = InstanceCache(root)  # fresh: no memory layer
            t, table = _timed_sweep(specs, handle)
            (dir_times if name == "dir" else pack_times).append(t)
            tables[name] = table
    assert tables["pack"].rows == tables["dir"].rows
    pack_vs_dir = min(pack_times) / min(dir_times)

    # -- leg 3: open + locate every entry, pack vs directory probing ----
    synth = tmp_path / "synth"
    synth.mkdir()
    payload = b"x" * 128
    keys = [f"{i:032x}" for i in range(N_SYNTH)]
    with PackWriter.create(synth / "synth.rpak") as writer:
        for key in keys:
            writer.add(f"{key}.npz", "npz", payload)
            writer.add(f"{key}.json", "json", payload)
    for key in keys:
        (synth / f"{key}.npz").write_bytes(payload)
        (synth / f"{key}.json").write_bytes(payload)

    def dir_scan():
        total = 0
        for key in keys:
            npz, meta = synth / f"{key}.npz", synth / f"{key}.json"
            if npz.exists() and meta.exists():
                total += 1
        return total

    def pack_scan():
        total = 0
        with Pack.open(synth / "synth.rpak") as pack:
            for key in keys:
                if f"{key}.npz" in pack and f"{key}.json" in pack:
                    total += 1
        return total

    assert dir_scan() == pack_scan()
    dir_scan_times, pack_scan_times = [], []
    for rep in range(REPEATS):
        fns = (
            (dir_scan_times, dir_scan), (pack_scan_times, pack_scan)
        ) if rep % 2 == 0 else (
            (pack_scan_times, pack_scan), (dir_scan_times, dir_scan)
        )
        for bucket, fn in fns:
            t0 = time.perf_counter()
            fn()
            bucket.append(time.perf_counter() - t0)
    speedup = min(dir_scan_times) / min(pack_scan_times)

    payload_json = {
        "scale": SCALE,
        "max_nnz": MAX_NNZ,
        "n_specs": len(specs),
        "repeats": REPEATS,
        "pack_entries": entries,
        "pack_bytes": pack_bytes,
        "warm_handle_mem_s": [round(t, 4) for t in mem_times],
        "warm_handle_pack_s": [round(t, 4) for t in packmem_times],
        "warm_handle_overhead_pct": round(100.0 * warm_overhead, 2),
        "max_warm_handle_overhead_pct": round(
            100.0 * MAX_WARM_HANDLE_OVERHEAD, 2
        ),
        "sweep_dir_s": [round(t, 3) for t in dir_times],
        "sweep_pack_s": [round(t, 3) for t in pack_times],
        "pack_vs_dir_sweep": round(pack_vs_dir, 3),
        "max_pack_vs_dir_sweep": MAX_PACK_VS_DIR,
        "n_synth_entries": N_SYNTH,
        "open_locate_dir_s": [round(t, 4) for t in dir_scan_times],
        "open_locate_pack_s": [round(t, 4) for t in pack_scan_times],
        "open_locate_speedup": round(speedup, 2),
        "min_open_locate_speedup": MIN_OPEN_LOCATE_SPEEDUP,
    }
    text = json.dumps(payload_json, indent=2, sort_keys=True)
    BENCH_PATH.write_text(text)
    ROOT_BENCH_PATH.write_text(text + "\n")

    emit(
        "pack_floors",
        f"pack of {entries} entries ({pack_bytes / 1e6:.0f} MB), "
        f"{len(specs)} specs (scale={SCALE}, best of {REPEATS})\n"
        f"  warm-handle re-sweep: mem {min(mem_times):.3f}s  "
        f"pack {min(packmem_times):.3f}s  "
        f"({100.0 * warm_overhead:+.1f}%, ceiling "
        f"{100.0 * MAX_WARM_HANDLE_OVERHEAD:.0f}%)\n"
        f"  first-touch warm sweep: dir {min(dir_times):.2f}s  "
        f"pack {min(pack_times):.2f}s  ({pack_vs_dir:.2f}x, ceiling "
        f"{MAX_PACK_VS_DIR}x — pack adds a full SHA-256 pass)\n"
        f"  open+locate {N_SYNTH} entries: dir "
        f"{min(dir_scan_times) * 1e3:.1f}ms  pack "
        f"{min(pack_scan_times) * 1e3:.1f}ms  ({speedup:.1f}x, floor "
        f"{MIN_OPEN_LOCATE_SPEEDUP:.0f}x)",
    )
    assert warm_overhead <= MAX_WARM_HANDLE_OVERHEAD, (
        f"pack layer intrudes on the warm memory fast path: "
        f"{100.0 * warm_overhead:.1f}% over a pure in-memory handle "
        f"(ceiling {100.0 * MAX_WARM_HANDLE_OVERHEAD:.0f}%)"
    )
    assert speedup >= MIN_OPEN_LOCATE_SPEEDUP, (
        f"pack open+locate is only {speedup:.1f}x the directory scan "
        f"(floor {MIN_OPEN_LOCATE_SPEEDUP:.0f}x)"
    )
    assert pack_vs_dir <= MAX_PACK_VS_DIR, (
        f"pack-backed warm sweep is {pack_vs_dir:.2f}x the directory "
        f"path (regression ceiling {MAX_PACK_VS_DIR}x)"
    )

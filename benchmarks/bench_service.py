"""Service throughput floors — BENCH_service.json.

``repro serve`` exists to amortise selector inference over concurrent
clients: the micro-batcher coalesces requests that arrive within a
short window into one ``predict_gflops_batch`` call, and the flat-array
tree routing makes that batched call cost ~depth iterations regardless
of batch width.  This bench drives the real HTTP stack (loopback
sockets, keep-alive connections, thread-per-request server) with a
duration-based randomized load from >= 8 concurrent clients, once with
micro-batching off and once on, and gates:

* batched sustained QPS >= ``MIN_SPEEDUP`` x unbatched QPS, and
* every batched response bit-identical to the direct library calls
  (``select_batch`` / ``predict_gflops_batch``) for the same payloads —
  coalescing must be invisible to every individual client.

Results (QPS, client-side p50/p99 latency, batch-size distribution)
land in ``benchmarks/results/BENCH_service.json`` and a copy at the
repo root.

Standalone usage (one mode at a time):

    PYTHONPATH=../src python bench_service.py --batched
    PYTHONPATH=../src python bench_service.py --unbatched
"""

import http.client
import json
import os
import threading
import time

import numpy as np

from repro.core.table import SweepTable
from repro.ml import FormatSelector
from repro.service import ReproService, ServiceApp

from conftest import RESULTS_DIR, emit

BENCH_PATH = RESULTS_DIR / "BENCH_service.json"
ROOT_BENCH_PATH = RESULTS_DIR.parent.parent / "BENCH_service.json"

# Acceptance floor: coalescing concurrent clients into batched
# evaluates must beat request-at-a-time inference by at least this
# factor in sustained QPS.
MIN_SPEEDUP = 3.0

# The gate requires >= 8 concurrent clients; 12 keeps the measured
# speedup comfortably above the floor on noisy runners (batch sizes
# track in-flight concurrency, so more closed-loop clients deepen the
# batches without changing the bit-identity claim).
N_CLIENTS = max(8, int(os.environ.get("REPRO_SERVICE_CLIENTS", "12")))
DURATION_S = float(os.environ.get("REPRO_SERVICE_SECONDS", "3.0"))
N_TRAIN = 150

FORMATS = ["CSR", "CSR5", "SELL-C-s", "Merge", "COO", "DIA"]


def _training_rows(n=N_TRAIN, seed=1):
    """Per-format rows whose winner depends on structure."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        feats = {
            "matrix": f"m{i}",
            "mem_footprint_mb": float(rng.uniform(1, 1024)),
            "avg_nnz_per_row": float(rng.uniform(2, 200)),
            "skew_coeff": float(rng.uniform(0, 8000)),
            "cross_row_similarity": float(rng.uniform(0, 1)),
            "avg_num_neighbours": float(rng.uniform(0, 2)),
        }
        base = rng.uniform(10, 60, size=len(FORMATS))
        tilt = 1.0 if feats["skew_coeff"] > 2000 else -1.0
        for j, fmt in enumerate(FORMATS):
            rows.append({
                **feats, "format": fmt,
                "gflops": float(
                    base[j] + tilt * 10.0 * (j - len(FORMATS) / 2)
                ),
            })
    return rows


def _random_features(rng):
    """One /select payload over the matrix-size/sparsity ranges the
    paper's dataset spans (footprint follows from rows x density)."""
    n_rows = int(rng.integers(2_000, 200_000))
    avg_nnz = float(rng.uniform(2.0, 100.0))
    nnz = n_rows * avg_nnz
    footprint_mb = (nnz * 12.0 + (n_rows + 1) * 8.0) / 2**20
    return {
        "mem_footprint_mb": footprint_mb,
        "avg_nnz_per_row": avg_nnz,
        "skew_coeff": float(rng.uniform(0.0, 8000.0)),
        "cross_row_similarity": float(rng.uniform(0.0, 1.0)),
        "avg_num_neighbours": float(rng.uniform(0.0, 2.0)),
    }


def _fitted():
    table = SweepTable.from_rows(_training_rows())
    return FormatSelector(FORMATS).fit(table), table


def _run_load(selector, table, micro_batch, seed=7):
    """Serve for DURATION_S under N_CLIENTS keep-alive clients.

    Returns ``(qps, latencies_ms, records, server_stats)`` where
    ``records`` is every (payload, response) pair, for the bit-identity
    check against the direct library calls.
    """
    app = ServiceApp(selector, table, micro_batch=micro_batch)
    per_client = [([], []) for _ in range(N_CLIENTS)]
    start_barrier = threading.Barrier(N_CLIENTS + 1)
    stop = threading.Event()

    with ReproService(app) as svc:
        host, port = svc.address

        def client(idx):
            records, latencies = per_client[idx]
            rng = np.random.default_rng(seed * 1009 + idx)
            conn = http.client.HTTPConnection(host, port)
            try:
                start_barrier.wait()
                while not stop.is_set():
                    payload = _random_features(rng)
                    body = json.dumps({"features": payload}).encode()
                    t0 = time.perf_counter()
                    conn.request(
                        "POST", "/select", body,
                        {"Content-Type": "application/json"},
                    )
                    resp = conn.getresponse()
                    data = resp.read()
                    latencies.append(
                        (time.perf_counter() - t0) * 1000.0
                    )
                    assert resp.status == 200, data
                    records.append((payload, json.loads(data)))
            finally:
                conn.close()

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        start_barrier.wait()
        t_start = time.perf_counter()
        time.sleep(DURATION_S)
        stop.set()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t_start
        server_stats = app.stats_snapshot()

    records = [r for recs, _ in per_client for r in recs]
    latencies = [l for _, lats in per_client for l in lats]
    return len(records) / elapsed, latencies, records, server_stats


def _check_bit_identity(selector, records):
    """Every served response must equal the direct library answer."""
    payloads = [payload for payload, _ in records]
    chosen = selector.select_batch(payloads)
    scores = selector.predict_gflops_batch(payloads)
    for i, (_, response) in enumerate(records):
        per_format = {
            fmt: float(scores[fmt][i]) for fmt in scores
        }
        assert response["format"] == chosen[i], (i, response)
        assert response["gflops"] == per_format, (i, response)
        assert response["predicted_gflops"] == per_format[chosen[i]]


def _percentiles(latencies):
    arr = np.sort(np.asarray(latencies))
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 3),
        "p99_ms": round(float(np.percentile(arr, 99)), 3),
        "max_ms": round(float(arr[-1]), 3),
    }


def test_service_micro_batching_throughput():
    selector, table = _fitted()

    qps_direct, lat_direct, rec_direct, _ = _run_load(
        selector, table, micro_batch=False
    )
    qps_batched, lat_batched, rec_batched, stats = _run_load(
        selector, table, micro_batch=True
    )

    # Throughput means nothing if coalescing changed any answer.
    _check_bit_identity(selector, rec_batched)
    _check_bit_identity(selector, rec_direct)

    speedup = qps_batched / qps_direct
    batcher = stats["batcher"]
    payload = {
        "n_clients": N_CLIENTS,
        "duration_s": DURATION_S,
        "n_formats": len(FORMATS),
        "unbatched_qps": round(qps_direct, 1),
        "batched_qps": round(qps_batched, 1),
        "speedup": round(speedup, 2),
        "unbatched_latency": _percentiles(lat_direct),
        "batched_latency": _percentiles(lat_batched),
        "mean_batch_size": batcher["mean_size"],
        "max_batch_size": batcher["max_size"],
        "bit_identical_responses": len(rec_batched) + len(rec_direct),
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    BENCH_PATH.write_text(text)
    ROOT_BENCH_PATH.write_text(text + "\n")
    emit(
        "service_throughput",
        f"/select under {N_CLIENTS} keep-alive clients, "
        f"{DURATION_S:.0f}s per mode\n"
        f"  unbatched: {qps_direct:7.1f} req/s   "
        f"p50 {payload['unbatched_latency']['p50_ms']:.1f}ms  "
        f"p99 {payload['unbatched_latency']['p99_ms']:.1f}ms\n"
        f"  batched:   {qps_batched:7.1f} req/s   "
        f"p50 {payload['batched_latency']['p50_ms']:.1f}ms  "
        f"p99 {payload['batched_latency']['p99_ms']:.1f}ms\n"
        f"  speedup:   {speedup:.1f}x  "
        f"(mean batch {batcher['mean_size']}, "
        f"max {batcher['max_size']})\n"
        f"  bit-identical responses: "
        f"{payload['bit_identical_responses']}",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching only {speedup:.1f}x over request-at-a-time "
        f"({qps_batched:.0f} vs {qps_direct:.0f} QPS)"
    )


def main():
    import argparse

    parser = argparse.ArgumentParser(
        description="Sustained /select QPS for one batching mode"
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--batched", dest="batched", action="store_true",
                       default=True, help="micro-batching on (default)")
    group.add_argument("--unbatched", dest="batched",
                       action="store_false",
                       help="request-at-a-time inference")
    args = parser.parse_args()
    selector, table = _fitted()
    qps, latencies, records, _ = _run_load(
        selector, table, micro_batch=args.batched
    )
    _check_bit_identity(selector, records)
    label = "batched" if args.batched else "unbatched"
    pct = _percentiles(latencies)
    print(
        f"{label}: {qps:,.1f} req/s over {DURATION_S:.0f}s with "
        f"{N_CLIENTS} clients (p50 {pct['p50_ms']:.1f}ms, "
        f"p99 {pct['p99_ms']:.1f}ms; {len(records)} responses "
        "bit-identical to direct calls)"
    )


if __name__ == "__main__":
    main()

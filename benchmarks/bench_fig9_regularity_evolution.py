"""Fig 9 — performance evolution as regularity grows, for fixed feature
classes (AMD-EPYC-24).

The average-neighbours sub-feature sweeps its range while the other three
features are pinned to qualitative classes.  Asserted shapes: with
intuitively *good* fixed features the neighbour sweep buys ~1.6x; with bad
fixed features performance stays low (<= 40% of the device's best)
regardless of regularity.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.generator import MatrixSpec
from repro.devices import TESTBEDS
from repro.perfmodel import MatrixInstance, simulate_best

from conftest import MAX_NNZ, emit

NEIGH_SWEEP = (0.05, 0.5, 0.95, 1.4, 1.9)

# (label, footprint MB, avg nnz/row, skew): good = small/medium size, long
# rows, balanced; bad = large, short rows, very skewed.
CLASSES = {
    "good (64MB, rows=100, bal.)": (64.0, 100.0, 0.0),
    "mid (256MB, rows=20, skew=100)": (256.0, 20.0, 100.0),
    "bad (1GB, rows=5, skew=10000)": (1024.0, 5.0, 10000.0),
}


def _fig9():
    dev = TESTBEDS["AMD-EPYC-24"]
    series = {}
    for label, (mb, avg, skew) in CLASSES.items():
        values = []
        for neigh in NEIGH_SWEEP:
            spec = MatrixSpec.from_footprint(
                mb, avg, skew_coeff=skew, cross_row_sim=0.5,
                avg_num_neigh=neigh, seed=31,
            )
            inst = MatrixInstance.from_spec(
                spec, max_nnz=MAX_NNZ, name=f"fig9-{label}-{neigh}"
            )
            best = simulate_best(inst, dev, noise_sigma=0.0)
            values.append(best.gflops if best else float("nan"))
        series[label] = values
    return series


def test_fig9_regularity_evolution(benchmark):
    series = _fig9()

    def _analyse():
        return {
            label: max(v) / min(v) for label, v in series.items()
            if min(v) > 0
        }

    gains = benchmark(_analyse)
    rows = [
        [label] + [round(v, 1) for v in values]
        + [round(gains.get(label, float("nan")), 2)]
        for label, values in series.items()
    ]
    emit(
        "fig9_regularity_evolution",
        format_table(
            ["fixed features"] + [f"neigh={n}" for n in NEIGH_SWEEP]
            + ["gain"],
            rows,
            title="Fig 9: AMD-EPYC-24 GFLOPS vs avg_num_neighbours",
        ),
    )

    # Good fixed features: regularity buys a visible speedup (paper 1.6x).
    assert gains["good (64MB, rows=100, bal.)"] > 1.2
    # Bad fixed features: low performance regardless of regularity —
    # its best point stays under 40% of the good class's best.
    good_peak = max(series["good (64MB, rows=100, bal.)"])
    bad_peak = max(series["bad (1GB, rows=5, skew=10000)"])
    assert bad_peak < 0.4 * good_peak

"""Table II — testbed characteristics and per-testbed format lists."""

from repro.analysis import format_table
from repro.devices import TESTBEDS, roofline_bounds

from conftest import emit


def _testbed_table():
    rows = []
    for dev in TESTBEDS.values():
        rows.append([
            dev.name, dev.device_class, dev.cores,
            f"{dev.llc_mb:g}", f"{dev.llc_bw_gbs:g}",
            f"{dev.dram_bw_gbs:g}", f"{dev.dram_gb:g}",
            f"{dev.peak_gflops:g}", f"{dev.idle_w:g}-{dev.max_w:g}",
            len(dev.formats),
        ])
    return format_table(
        ["testbed", "class", "cores", "LLC MB", "LLC GB/s", "mem GB/s",
         "mem GB", "peak GF", "power W", "#formats"],
        rows, title="Table II: testbed characteristics",
    )


def _format_lists():
    lines = ["Formats per testbed (Table II):"]
    for dev in TESTBEDS.values():
        lines.append(f"  {dev.name:12s} {', '.join(dev.formats)}")
    return "\n".join(lines)


def test_table2_testbeds(benchmark):
    # The timed kernel: roofline evaluation across all devices.
    def roofline_all():
        return [
            roofline_bounds(dev, 10**7, 10**5, 10**5).attainable_gflops
            for dev in TESTBEDS.values()
        ]

    bounds = benchmark(roofline_all)
    assert all(b > 0 for b in bounds)
    emit("table2_testbeds", _testbed_table() + "\n\n" + _format_lists())

"""Ablation — structure-measured imbalance vs a closed-form skew formula.

DESIGN.md calls out the simulator's choice to *measure* load imbalance on
the actual row-length profile instead of deriving it from the skew
feature.  This bench quantifies the difference: a closed-form proxy
(1 + skew / workers, a common analytical shortcut) mispredicts the
imbalance of balance-aware formats by orders of magnitude.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.generator import MatrixSpec, row_length_profile
from repro.devices.parallel import imbalance_for_strategy

from conftest import emit

STRATEGIES = ("row_block", "nnz_row", "merge_path", "warp_row")
SKEWS = (0.0, 100.0, 1000.0, 10000.0)
N_WORKERS = 64


def _profiles():
    rng = np.random.default_rng(5)
    return {
        skew: row_length_profile(200_000, 10**7, 10.0, 1.0, skew, rng)
        for skew in SKEWS
    }


def _ablation(profiles):
    rows = []
    errors = {s: [] for s in STRATEGIES}
    for skew in SKEWS:
        closed_form = 1.0 + skew / N_WORKERS
        for strategy in STRATEGIES:
            measured = imbalance_for_strategy(
                strategy, profiles[skew], N_WORKERS
            ).factor
            rel_err = abs(closed_form - measured) / measured
            errors[strategy].append(rel_err)
            rows.append([
                skew, strategy, round(measured, 3), round(closed_form, 1),
                round(rel_err * 100.0, 1),
            ])
    table = format_table(
        ["skew", "strategy", "measured factor", "closed-form factor",
         "rel err %"],
        rows, title="Ablation: measured vs closed-form imbalance",
    )
    return table, errors


def test_ablation_structure_aware_imbalance(benchmark):
    profiles = _profiles()
    table, errors = _ablation(profiles)
    benchmark(lambda: _ablation(profiles))
    emit("ablation_structure", table)

    # The closed-form proxy is wildly wrong for balance-aware strategies
    # at high skew (it predicts factor ~157 where merge-path measures ~1).
    assert max(errors["merge_path"]) > 5.0
    # Structure-aware measurement correctly reports near-1 factors there.
    measured = imbalance_for_strategy(
        "merge_path", profiles[10000.0], N_WORKERS
    ).factor
    assert measured < 1.1

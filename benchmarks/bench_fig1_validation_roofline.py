"""Fig 1 — validation matrices vs their friends, with roofline markers.

For each device: per-matrix best performance, the friend range, and the
DRAM/LLC roofline bounds computed from the matrix's CSR footprint (the
paper's ---triangle--- / ---X--- marker series).
"""

import numpy as np

from repro.analysis import format_table
from repro.devices import TESTBEDS, roofline_bounds

from conftest import emit

SHOWN_DEVICES = ("AMD-EPYC-64", "Tesla-A100", "Alveo-U280")


def _fig1(validation_results):
    sections = []
    near_roofline_frac = {}
    for dev_name in SHOWN_DEVICES:
        dev = TESTBEDS[dev_name]
        per_matrix = validation_results[dev_name]
        rows = []
        near = 0
        for mid in sorted(per_matrix):
            base, friends, inst = per_matrix[mid]
            f = inst.features
            rp = roofline_bounds(dev, f.nnz, f.n_rows, f.n_cols)
            rows.append([
                mid, inst.name[:18], round(base, 2),
                round(float(np.min(friends)), 2),
                round(float(np.median(friends)), 2),
                round(float(np.max(friends)), 2),
                round(rp.memory_bound_gflops, 2),
                round(rp.llc_bound_gflops, 2),
            ])
            if base >= 0.25 * rp.memory_bound_gflops:
                near += 1
        near_roofline_frac[dev_name] = near / max(len(per_matrix), 1)
        sections.append(format_table(
            ["id", "matrix", "GFLOPS", "friends min", "friends med",
             "friends max", "roofline mem", "roofline LLC"],
            rows, title=f"Fig 1 panel: {dev_name} "
                        f"({len(per_matrix)}/45 matrices ran)",
        ))
    return "\n\n".join(sections), near_roofline_frac


def test_fig1_validation_roofline(benchmark, validation_results):
    text, near_frac = _fig1(validation_results)
    benchmark(lambda: _fig1(validation_results))
    emit("fig1_validation_roofline", text)
    # Paper: "many validation and friend matrices are close to their
    # corresponding roofline bound".
    assert near_frac["AMD-EPYC-64"] > 0.5
    assert near_frac["Tesla-A100"] > 0.5
    # Paper: ~10 of the 45 matrices fail on the FPGA (HBM capacity).
    fpga_ran = len(validation_results["Alveo-U280"])
    assert 20 <= fpga_ran <= 44

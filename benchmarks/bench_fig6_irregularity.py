"""Fig 6 — impact of irregularity (neighbours x cross-row similarity).

Each regularity sub-feature is split into S/M/L thirds ("S" = irregular).
Asserted shapes: large-matrix GPU performance degrades with irregularity
(paper: up to 2x); the CPU penalty is milder (~1.3x).
"""

from repro.analysis import box_stats, format_table

from conftest import emit

DEVICES = ("AMD-EPYC-64", "Tesla-A100", "Alveo-U280")
SPLIT_MB = 256.0


def _neigh_class(v):
    return "S" if v < 2 / 3 else ("M" if v < 4 / 3 else "L")


def _sim_class(v):
    return "S" if v < 1 / 3 else ("M" if v < 2 / 3 else "L")


def _fig6(dataset_sweep):
    sections = []
    medians = {}
    for dev in DEVICES:
        rows = [r for r in dataset_sweep.rows if r["device"] == dev]
        table_rows = []
        for size_label, pred in (
            ("small", lambda r: r["req_footprint_mb"] < SPLIT_MB),
            ("large", lambda r: r["req_footprint_mb"] >= SPLIT_MB),
        ):
            subset = [r for r in rows if pred(r)]
            for ncls in "SML":
                for scls in "SML":
                    values = [
                        r["gflops"] for r in subset
                        if _neigh_class(r["req_neigh"]) == ncls
                        and _sim_class(r["req_sim"]) == scls
                    ]
                    if not values:
                        continue
                    s = box_stats(values)
                    table_rows.append([
                        size_label, ncls + scls, s.n,
                        round(s.q1, 1), round(s.median, 1), round(s.q3, 1),
                    ])
                    medians[(dev, size_label, ncls + scls)] = s.median
        sections.append(format_table(
            ["size", "regularity (neigh,sim)", "n", "q1", "median", "q3"],
            table_rows, title=f"Fig 6 panel: {dev} (GFLOPS)",
        ))
    return "\n\n".join(sections), medians


def test_fig6_irregularity(benchmark, dataset_sweep):
    text, med = _fig6(dataset_sweep)
    benchmark(lambda: _fig6(dataset_sweep))
    emit("fig6_irregularity", text)

    # GPU, large matrices: fully regular (LL) beats fully irregular (SS).
    if ("Tesla-A100", "large", "LL") in med and (
        "Tesla-A100", "large", "SS"
    ) in med:
        gpu_ratio = (
            med[("Tesla-A100", "large", "LL")]
            / med[("Tesla-A100", "large", "SS")]
        )
        assert 1.2 < gpu_ratio < 4.0

    # CPU: the effect exists but is milder than the GPU's.
    if ("AMD-EPYC-64", "large", "LL") in med and (
        "AMD-EPYC-64", "large", "SS"
    ) in med:
        cpu_ratio = (
            med[("AMD-EPYC-64", "large", "LL")]
            / med[("AMD-EPYC-64", "large", "SS")]
        )
        assert cpu_ratio < 3.0

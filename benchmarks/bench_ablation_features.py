"""Ablation — the paper's minimal 5-feature set as a performance predictor.

Section III-A argues five features suffice to capture SpMV behaviour.  We
train the from-scratch ML substrate to predict simulated best-format
GFLOPS from (a) the minimal 5 features and (b) an extended feature vector,
on two devices.  Asserted shape: the 5-feature random forest already
predicts well (R^2 high, MAPE moderate), and extra features add little —
the paper's "trade accuracy for simplicity" claim.
"""

import numpy as np

from repro.analysis import format_table
from repro.ml import (
    KNeighborsRegressor,
    LinearRegression,
    RandomForestRegressor,
    mape_score,
    r2_score,
    train_test_split,
)

from conftest import emit

MINIMAL = [
    "mem_footprint_mb", "avg_nnz_per_row", "skew_coeff",
    "cross_row_similarity", "avg_num_neighbours",
]
EXTENDED = MINIMAL + ["nnz", "n_rows"]


def _dataset_matrix(dataset_sweep, device, keys):
    rows = [r for r in dataset_sweep.rows if r["device"] == device]
    X = np.array([[r[k] for k in keys] for r in rows])
    y = np.array([r["gflops"] for r in rows])
    return X, y


def _evaluate(dataset_sweep, device):
    results = []
    for label, keys in (("minimal-5", MINIMAL), ("extended-7", EXTENDED)):
        X, y = _dataset_matrix(dataset_sweep, device, keys)
        # Log-transform the wildly-scaled features.
        Xl = np.log1p(np.abs(X))
        Xtr, Xte, ytr, yte = train_test_split(Xl, y, seed=11)
        for model_name, model in (
            ("linear", LinearRegression()),
            ("knn-5", KNeighborsRegressor(n_neighbors=5)),
            ("forest-30", RandomForestRegressor(
                n_estimators=30, random_state=3)),
        ):
            model.fit(Xtr, ytr)
            pred = model.predict(Xte)
            results.append([
                device, label, model_name,
                round(r2_score(yte, pred), 3),
                round(mape_score(yte, pred), 1),
            ])
    return results


def test_ablation_minimal_features(benchmark, dataset_sweep):
    rows = _evaluate(dataset_sweep, "AMD-EPYC-64")
    rows += _evaluate(dataset_sweep, "Tesla-A100")
    benchmark(lambda: _evaluate(dataset_sweep, "AMD-EPYC-64"))
    emit(
        "ablation_features",
        format_table(
            ["device", "feature set", "model", "R^2", "MAPE %"],
            rows,
            title="Ablation: predicting best-format GFLOPS from features",
        ),
    )
    by_key = {(r[0], r[1], r[2]): r for r in rows}

    # The minimal set with a forest is already a strong predictor...
    r2_min = by_key[("AMD-EPYC-64", "minimal-5", "forest-30")][3]
    assert r2_min > 0.6
    # ...and clearly beats the linear baseline (non-linear cliffs: cache
    # cutoff, padding explosions).
    r2_lin = by_key[("AMD-EPYC-64", "minimal-5", "linear")][3]
    assert r2_min > r2_lin
    # The extended set adds only marginal accuracy.
    r2_ext = by_key[("AMD-EPYC-64", "extended-7", "forest-30")][3]
    assert r2_ext - r2_min < 0.15

"""Table I — the feature space of the artificial dataset.

Regenerates the grid definition and reports how faithfully a sample of
generated matrices realises each requested feature coordinate.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.feature_space import TABLE_I_SPACE, build_dataset_specs
from repro.core.features import extract_features

from conftest import emit


def _grid_table():
    rows = [
        ["f1 mem_footprint (MB)",
         ", ".join(f"[{a:g}-{b:g}]" for a, b in TABLE_I_SPACE.footprint_bins)],
        ["f2 avg_nz_row",
         ", ".join(f"{v:g}" for v in TABLE_I_SPACE.avg_nnz_per_row)],
        ["f3 skew_coeff",
         ", ".join(f"{v:g}" for v in TABLE_I_SPACE.skew_coeff)],
        ["f4.a cross_row_sim",
         ", ".join(f"{v:g}" for v in TABLE_I_SPACE.cross_row_sim)],
        ["f4.b avg_num_neigh",
         ", ".join(f"{v:g}" for v in TABLE_I_SPACE.avg_num_neigh)],
        ["(internal) bw_scaled",
         ", ".join(f"{v:g}" for v in TABLE_I_SPACE.bw_scaled)],
    ]
    return format_table(["feature", "matrix space"], rows,
                        title="Table I: features used for generation")


def _fidelity_table(n=24):
    specs = build_dataset_specs("tiny")[:n]
    rows = []
    for label, req_key, meas_key, tol in (
        ("avg_nz_row", "avg_nnz_per_row", "avg_nnz_per_row", None),
        ("cross_row_sim", "cross_row_sim", "cross_row_similarity", None),
        ("avg_num_neigh", "avg_num_neigh", "avg_num_neighbours", None),
    ):
        errs = []
        for spec in specs:
            feats = extract_features(
                spec.representative(60_000).build()
            )
            req = getattr(spec, req_key)
            meas = getattr(feats, meas_key)
            if req:
                errs.append(abs(meas - req) / max(abs(req), 1e-9))
        rows.append([label, float(np.mean(errs)) * 100.0,
                     float(np.max(errs)) * 100.0])
    return format_table(
        ["requested feature", "mean |err| %", "max |err| %"], rows,
        title=f"Generation fidelity over {n} grid points",
    )


def test_table1_feature_space(benchmark):
    grid = _grid_table()
    benchmark(_grid_table)
    emit("table1_feature_space", grid + "\n\n" + _fidelity_table())
    assert TABLE_I_SPACE.n_combinations() == 3240

"""Fig 7 — per-format performance and win percentages per device.

Asserted shapes (Takeaways 6 & 7): no single format wins everything on the
CPU; research formats collect their wins on the problematic (large /
unbalanced / irregular) matrices even though vendor formats lead overall.
"""

from collections import defaultdict

from repro.analysis import box_stats, format_table, format_wins
from repro.formats import get_format

from conftest import emit

DEVICES = ("AMD-EPYC-24", "Tesla-V100", "Alveo-U280")


def _best_rows(formats_sweep, device):
    """Reduce a per-format sweep to one best row per matrix."""
    best = {}
    for r in formats_sweep.rows:
        if r["device"] != device:
            continue
        key = r["matrix"]
        if key not in best or r["gflops"] > best[key]["gflops"]:
            best[key] = r
    return list(best.values())


def _fig7(formats_sweep):
    sections = []
    wins_by_dev = {}
    for dev in DEVICES:
        per_fmt = defaultdict(list)
        for r in formats_sweep.rows:
            if r["device"] == dev:
                per_fmt[r["format"]].append(r["gflops"])
        wins = format_wins(_best_rows(formats_sweep, dev))
        wins_by_dev[dev] = wins
        table_rows = []
        for fmt, values in sorted(per_fmt.items()):
            s = box_stats(values)
            table_rows.append([
                fmt, get_format(fmt).category, round(wins.get(fmt, 0.0), 1),
                s.n, round(s.q1, 1), round(s.median, 1), round(s.q3, 1),
                round(s.maximum, 1),
            ])
        sections.append(format_table(
            ["format", "category", "wins %", "n", "q1", "median", "q3",
             "max"],
            table_rows, title=f"Fig 7 panel: {dev}",
        ))
    return "\n\n".join(sections), wins_by_dev


def test_fig7_format_wins(benchmark, formats_sweep):
    text, wins = _fig7(formats_sweep)
    benchmark(lambda: _fig7(formats_sweep))
    emit("fig7_format_wins", text)

    # T6: no clear winner on the CPU — the top format takes well under
    # 100% and at least three formats get wins.
    cpu_wins = wins["AMD-EPYC-24"]
    assert len([f for f, w in cpu_wins.items() if w > 0]) >= 3
    assert max(cpu_wins.values()) < 90.0

    # T7: research formats take a substantial share of the CPU wins.
    research = sum(
        w for f, w in cpu_wins.items()
        if get_format(f).category == "research"
    )
    assert research > 10.0


def test_fig7_research_formats_win_problematic(benchmark, formats_sweep):
    """Research formats dominate the problematic subset: large AND
    (unbalanced OR irregular) matrices on the CPU (Takeaway 7)."""

    def _research_share():
        best = _best_rows(formats_sweep, "AMD-EPYC-24")
        problematic = [
            r for r in best
            if r["req_footprint_mb"] >= 256
            and (r["req_skew"] >= 1000 or r["req_sim"] <= 0.05)
        ]
        if not problematic:
            return None
        research = [
            r for r in problematic
            if get_format(r["format"]).category == "research"
        ]
        return len(research) / len(problematic)

    share = benchmark(_research_share)
    emit(
        "fig7_problematic_share",
        f"research-format share of problematic CPU wins: "
        f"{share if share is not None else 'n/a'}",
    )
    assert share is None or share > 0.4

"""Single-file binary pack store for sweep artifacts.

The content-keyed :class:`~repro.pipeline.cache.InstanceCache` and the
run journal's per-chunk shards historically persisted every artifact as
its own small file, so a warm corpus cost thousands of ``stat``/``open``
calls and could not be shipped as one object.  A *pack* folds those
artifacts into one versioned binary file::

    offset 0   header (64 bytes)
               magic   8s   b"RPACK1\\n\\0"
               version u32  PACK_VERSION (schema of this layout)
               reserved u32 0
               index_offset u64  where the live entry table starts
               index_count  u64  number of entry records
               index_sha    32s  SHA-256 of the entry-table bytes
    64         blob region: entry payloads, appended only
    ...        entry table: ``index_count`` fixed-size records
               (content key, kind, offset, compressed size, original
               size, SHA-256, flags)

The entry table is a contiguous array of 136-byte records parsed in one
:func:`numpy.frombuffer` call, so opening a pack is one read regardless
of entry count, and lookups are a dict hit — no directory scans.  Blob
reads come out of an ``mmap`` as zero-copy memoryviews (compressed
entries are inflated on read); every read verifies the entry's SHA-256
before handing bytes out.

Atomicity contract (docs/pack_store.md has the full derivation):

* **Sealed writes** (:meth:`PackWriter.create` … :meth:`PackWriter.close`)
  build the whole pack in a temp file next to the target and commit it
  with one ``os.replace`` — readers see the old pack or the new one,
  never a torn file.
* **Appends** (:func:`append_entries`) never rewrite existing blobs or
  the live entry table: new blobs and a *new* entry table (old records
  + new) are written after the current end of file and fsynced, and
  only then does a single 64-byte header write at offset 0 switch the
  pack to the new table.  A crash before the switch leaves the old pack
  intact with an ignored tail; the superseded table becomes a small
  dead region reclaimed by the next :func:`compact`.  Appends assume
  one writer at a time (the sweep engine appends shards from the parent
  process only).

Corruption never panics and never destroys evidence: a bad magic,
truncated file, entry-table checksum mismatch or schema-version drift
raises an actionable :class:`PackError` / :class:`PackVersionError`,
and the cache layer quarantines the damaged pack instead of deleting
it (see ``repro.pipeline.cache``).
"""

from __future__ import annotations

import hashlib
import io
import mmap
import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple, Union

import numpy as np

__all__ = [
    "Pack",
    "PackWriter",
    "PackEntry",
    "PackError",
    "PackVersionError",
    "append_entries",
    "compact",
    "PACK_VERSION",
    "PACK_MAGIC",
]

PACK_MAGIC = b"RPACK1\n\x00"
# Bump on any change to the header or entry-record layout an older
# reader would misinterpret (policy in docs/pack_store.md).
PACK_VERSION = 1

_HEADER = struct.Struct("<8sIIQQ32s")
HEADER_SIZE = _HEADER.size  # 64 bytes

# One entry-table record; parsed in bulk with np.frombuffer.
_ENTRY_DTYPE = np.dtype([
    ("key", "S64"),
    ("kind", "S8"),
    ("offset", "<u8"),
    ("csize", "<u8"),
    ("osize", "<u8"),
    ("sha", "S32"),
    ("flags", "<u4"),
    ("pad", "S4"),
])
ENTRY_SIZE = _ENTRY_DTYPE.itemsize  # 136 bytes

_FLAG_ZLIB = 1


class PackError(ValueError):
    """A pack file is unreadable (bad magic, truncation, checksum)."""


class PackVersionError(PackError):
    """A pack was written under an incompatible layout version."""


class PackEntry(NamedTuple):
    """One entry-table record (sizes refer to the stored blob)."""

    key: str
    kind: str
    offset: int
    csize: int
    osize: int
    sha: bytes
    flags: int

    @property
    def compressed(self) -> bool:
        return bool(self.flags & _FLAG_ZLIB)


def _check_key(key: str) -> bytes:
    raw = key.encode("ascii", errors="strict")
    if not raw or len(raw) > 63 or b"\x00" in raw:
        raise PackError(
            f"pack entry key {key!r} must be 1..63 ASCII bytes "
            "without NUL"
        )
    return raw


def _check_kind(kind: str) -> bytes:
    raw = kind.encode("ascii", errors="strict")
    if not raw or len(raw) > 7:
        raise PackError(
            f"pack entry kind {kind!r} must be 1..7 ASCII bytes"
        )
    return raw


def _pack_header(index_offset: int, count: int, table: bytes) -> bytes:
    return _HEADER.pack(
        PACK_MAGIC, PACK_VERSION, 0, index_offset, count,
        hashlib.sha256(table).digest(),
    )


def _encode_entries(entries: Iterable[PackEntry]) -> bytes:
    entries = list(entries)
    table = np.zeros(len(entries), dtype=_ENTRY_DTYPE)
    for i, e in enumerate(entries):
        table[i] = (
            _check_key(e.key), _check_kind(e.kind), e.offset,
            e.csize, e.osize, e.sha, e.flags, b"",
        )
    return table.tobytes()


def _decode_keys(table: np.ndarray) -> List[str]:
    return [k.decode("ascii") for k in table["key"].tolist()]


def _entry_from_record(key: str, rec) -> PackEntry:
    return PackEntry(
        key,
        rec["kind"].decode("ascii"),
        int(rec["offset"]), int(rec["csize"]), int(rec["osize"]),
        # NumPy strips trailing NULs from S-typed fields on read;
        # a digest legitimately ending in 0x00 must be re-padded to
        # its full 32 bytes or ~1/256 of entries would "fail" their
        # checksum.
        bytes(rec["sha"]).ljust(32, b"\x00"),
        int(rec["flags"]),
    )


def _materialize_entries(table: np.ndarray) -> List[PackEntry]:
    keys = _decode_keys(table)
    return [_entry_from_record(k, table[i]) for i, k in enumerate(keys)]


def _read_index(fh, size: int, path: Path) -> Tuple[int, np.ndarray]:
    """Validate the header and read the live entry table.

    Returns ``(index_offset, table)`` with the table as the raw
    structured record array — callers materialize :class:`PackEntry`
    objects lazily so opening a large pack stays cheap.  Every failure
    mode is its own actionable message: wrong magic, version drift,
    truncation, table checksum mismatch.
    """
    if size < HEADER_SIZE:
        raise PackError(
            f"{path}: file is {size} bytes, shorter than the "
            f"{HEADER_SIZE}-byte pack header — truncated or not a pack"
        )
    fh.seek(0)
    header = fh.read(HEADER_SIZE)
    magic, version, _reserved, index_offset, count, sha = (
        _HEADER.unpack(header)
    )
    if magic != PACK_MAGIC:
        raise PackError(
            f"{path}: bad magic {magic!r} — not a repro pack "
            "(expected one written by `repro pack` or PackWriter)"
        )
    if version != PACK_VERSION:
        raise PackVersionError(
            f"{path}: pack layout version {version}, but this build "
            f"reads version {PACK_VERSION}; regenerate the pack with "
            "`repro pack` from this build"
        )
    table_size = count * ENTRY_SIZE
    if index_offset < HEADER_SIZE or index_offset + table_size > size:
        raise PackError(
            f"{path}: entry table ({count} entries at offset "
            f"{index_offset}) extends past the {size}-byte file — "
            "the pack is truncated"
        )
    fh.seek(index_offset)
    raw = fh.read(table_size)
    if len(raw) != table_size:
        raise PackError(
            f"{path}: short read of the entry table — the pack is "
            "truncated"
        )
    if hashlib.sha256(raw).digest() != sha:
        raise PackError(
            f"{path}: entry-table checksum mismatch — the table was "
            "torn or the file was modified; restore the pack or "
            "regenerate it with `repro pack`"
        )
    table = np.frombuffer(raw, dtype=_ENTRY_DTYPE)
    if len(table):
        ends = table["offset"] + table["csize"]
        bad = np.nonzero(ends > size)[0]
        if len(bad):
            e = _entry_from_record(
                bytes(table["key"][bad[0]]).decode("ascii"),
                table[bad[0]],
            )
            raise PackError(
                f"{path}: entry {e.key!r} ({e.csize} bytes at offset "
                f"{e.offset}) extends past the {size}-byte file — "
                "the pack is truncated"
            )
    return index_offset, table


class Pack:
    """Read-only random access into a pack (one open, dict lookups)."""

    def __init__(self, path: Path, table: np.ndarray, mm, fh) -> None:
        self.path = path
        # Raw records in file order; PackEntry objects are materialized
        # on demand so opening a pack with thousands of entries costs
        # one bulk parse, not a Python loop.
        self._table = table
        self._names = _decode_keys(table)
        # Later records shadow earlier ones (append semantics), but the
        # original order is kept for `repro ls` and compaction.
        self._rows: Dict[str, int] = {
            key: i for i, key in enumerate(self._names)
        }
        self._materialized: Dict[str, PackEntry] = {}
        self._mm = mm
        self._fh = fh

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def open(cls, path: Union[str, Path]) -> "Pack":
        """Open and fully validate a pack; raises :class:`PackError` on
        any corruption, :class:`PackVersionError` on layout drift."""
        path = Path(path)
        try:
            fh = open(path, "rb")
        except OSError as exc:
            raise PackError(f"{path}: cannot open pack ({exc})") from exc
        try:
            size = os.fstat(fh.fileno()).st_size
            _, table = _read_index(fh, size, path)
            if size:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            else:  # pragma: no cover - size>=HEADER_SIZE was checked
                mm = None
        except BaseException:
            fh.close()
            raise
        return cls(path, table, mm, fh)

    def close(self) -> None:
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # A zero-copy memoryview handed out by read() is still
                # alive; the map stays open until it is released.
                pass
            else:
                self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Pack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def keys(self) -> List[str]:
        """Live entry keys in table order (shadowed records omitted)."""
        seen = set()
        out = []
        for key in self._names:
            if key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def records(self) -> List[PackEntry]:
        """Every table record in file order, including shadowed ones."""
        return [
            _entry_from_record(key, self._table[i])
            for i, key in enumerate(self._names)
        ]

    def entry(self, key: str) -> PackEntry:
        e = self._materialized.get(key)
        if e is not None:
            return e
        try:
            row = self._rows[key]
        except KeyError:
            raise KeyError(
                f"unknown pack entry {key!r} in {self.path}; "
                f"available: {len(self._rows)} entries "
                "(`repro ls` lists them)"
            ) from None
        e = _entry_from_record(key, self._table[row])
        self._materialized[key] = e
        return e

    # -- reads -----------------------------------------------------------
    def read(self, key: str, verify: bool = True):
        """Entry payload: a zero-copy memoryview into the map for raw
        entries, bytes for compressed ones.

        ``verify`` (default) checks the stored SHA-256 before returning;
        a mismatch raises :class:`PackError` naming the entry.
        """
        e = self.entry(key)
        view = memoryview(self._mm)[e.offset:e.offset + e.csize]
        if verify and hashlib.sha256(view).digest() != e.sha:
            raise PackError(
                f"{self.path}: entry {key!r} fails its checksum — the "
                "blob is corrupt; quarantine the pack and regenerate it"
            )
        if e.compressed:
            data = zlib.decompress(view)
            if len(data) != e.osize:
                raise PackError(
                    f"{self.path}: entry {key!r} inflated to "
                    f"{len(data)} bytes, expected {e.osize} — corrupt"
                )
            return data
        return view


class PackWriter:
    """Sealed pack construction: temp file, blobs, table, one replace."""

    def __init__(self, path: Path, fh, tmp: str):
        self.path = path
        self._fh = fh
        self._tmp = tmp
        self._entries: List[PackEntry] = []
        self._offset = HEADER_SIZE
        self._closed = False

    @classmethod
    def create(cls, path: Union[str, Path]) -> "PackWriter":
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}."
        )
        fh = os.fdopen(fd, "wb")
        fh.write(b"\x00" * HEADER_SIZE)  # placeholder header
        return cls(path, fh, tmp)

    def add(self, key: str, kind: str, data,
            compress: bool = False) -> PackEntry:
        """Append one blob; ``compress`` stores it zlib-deflated (small
        text payloads), raw otherwise (keeps reads zero-copy)."""
        _check_key(key)
        _check_kind(kind)
        payload = bytes(data) if not isinstance(data, bytes) else data
        osize = len(payload)
        flags = 0
        if compress:
            payload = zlib.compress(payload, 6)
            flags |= _FLAG_ZLIB
        entry = PackEntry(
            key, kind, self._offset, len(payload), osize,
            hashlib.sha256(payload).digest(), flags,
        )
        self._fh.write(payload)
        self._offset += len(payload)
        self._entries.append(entry)
        return entry

    def close(self) -> None:
        """Seal: entry table at the tail, real header, fsync, replace."""
        if self._closed:
            return
        self._closed = True
        try:
            table = _encode_entries(self._entries)
            self._fh.write(table)
            self._fh.seek(0)
            self._fh.write(
                _pack_header(self._offset, len(self._entries), table)
            )
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            os.replace(self._tmp, self.path)
        except BaseException:
            self._discard()
            raise

    def abort(self) -> None:
        """Drop the temp file without touching the target path."""
        if self._closed:
            return
        self._closed = True
        self._discard()

    def _discard(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass
        try:
            os.unlink(self._tmp)
        except OSError:
            pass

    def __enter__(self) -> "PackWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def append_entries(
    path: Union[str, Path],
    items: Iterable[Tuple[str, str, bytes]],
    compress: bool = False,
) -> int:
    """Two-phase append of ``(key, kind, data)`` blobs to an existing
    pack (created first if absent).

    Existing blobs and the live entry table are never rewritten: new
    blobs plus the new table land after the current end of file and are
    fsynced; only then does the 64-byte header switch the pack over.
    An identical entry (same key, kind and payload hash) is skipped, so
    re-appending after a retry is idempotent; a changed payload for an
    existing key appends a shadowing record (last record wins).

    Returns the number of entries actually appended.  Single-writer:
    concurrent appends to one pack are not supported (the sweep engine
    appends only from the parent process).
    """
    path = Path(path)
    items = list(items)
    if not path.exists():
        with PackWriter.create(path) as writer:
            for key, kind, data in items:
                writer.add(key, kind, data, compress=compress)
        return len(items)

    with open(path, "r+b") as fh:
        size = os.fstat(fh.fileno()).st_size
        _, table = _read_index(fh, size, path)
        entries = _materialize_entries(table)
        known = {e.key: e for e in entries}
        fh.seek(0, os.SEEK_END)
        offset = size
        added = 0
        for key, kind, data in items:
            _check_key(key)
            _check_kind(kind)
            payload = bytes(data) if not isinstance(data, bytes) else data
            osize = len(payload)
            flags = 0
            if compress:
                payload = zlib.compress(payload, 6)
                flags |= _FLAG_ZLIB
            sha = hashlib.sha256(payload).digest()
            prev = known.get(key)
            if (prev is not None and prev.sha == sha
                    and prev.kind == kind):
                continue  # idempotent re-append (retried chunk)
            entry = PackEntry(key, kind, offset, len(payload), osize,
                              sha, flags)
            fh.write(payload)
            offset += len(payload)
            entries.append(entry)
            known[key] = entry
            added += 1
        if not added:
            return 0
        table = _encode_entries(entries)
        fh.write(table)
        fh.flush()
        os.fsync(fh.fileno())
        # Phase 2: one small header write switches readers to the new
        # table; until it lands, the old header/table pair stays valid.
        fh.seek(0)
        fh.write(_pack_header(offset, len(entries), table))
        fh.flush()
        os.fsync(fh.fileno())
    return added


def compact(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """Rewrite a pack without dead regions (superseded tables, shadowed
    blobs); returns the number of live entries.  ``dst`` may equal
    ``src`` — the sealed-write temp/replace makes that safe."""
    src, dst = Path(src), Path(dst)
    with Pack.open(src) as pack:
        keys = pack.keys()
        with PackWriter.create(dst) as writer:
            for key in keys:
                e = pack.entry(key)
                raw = memoryview(pack._mm)[e.offset:e.offset + e.csize]
                if hashlib.sha256(raw).digest() != e.sha:
                    raise PackError(
                        f"{src}: entry {key!r} fails its checksum — "
                        "refusing to compact corrupt data"
                    )
                # Stored bytes are carried over verbatim (no
                # re-compression), preserving checksums.
                entry = PackEntry(
                    key, e.kind, writer._offset, e.csize, e.osize,
                    e.sha, e.flags,
                )
                writer._fh.write(raw)
                writer._offset += e.csize
                writer._entries.append(entry)
    return len(keys)

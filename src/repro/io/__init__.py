"""I/O: MatrixMarket matrices, CSV measurement tables, table
persistence, and the single-file binary pack store."""
from .mtx import read_mtx, write_mtx
from .csvio import write_rows, read_rows, write_table, read_table
from .tableio import save_table, load_table, TABLE_FORMATS
from .pack import (
    PACK_MAGIC, PACK_VERSION, Pack, PackEntry, PackError,
    PackVersionError, PackWriter, append_entries, compact,
)

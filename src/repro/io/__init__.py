"""I/O: MatrixMarket matrices and CSV measurement tables."""
from .mtx import read_mtx, write_mtx
from .csvio import write_rows, read_rows

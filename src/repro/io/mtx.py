"""MatrixMarket coordinate I/O.

SuiteSparse distributes matrices as ``.mtx`` files; this reader/writer
covers the coordinate subset the collection uses (real / integer /
pattern, general / symmetric / skew-symmetric) so downstream users can run
the harness on real matrices when they have them.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

import numpy as np

from ..core.matrix import CSRMatrix, csr_from_coo

__all__ = ["read_mtx", "write_mtx"]

_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_mtx(path: Union[str, Path]) -> CSRMatrix:
    """Read a MatrixMarket coordinate file (optionally gzipped)."""
    path = Path(path)
    with _open(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: missing MatrixMarket header")
        parts = header.strip().split()
        if len(parts) < 5:
            raise ValueError(f"{path}: malformed header {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError(
                f"{path}: only coordinate matrices are supported"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in _FIELDS:
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in _SYMMETRIES:
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

        # Blank and %-comment lines are legal anywhere after the banner
        # — before the size line and interleaved with coordinate data.
        line = fh.readline()
        while line and (not line.strip()
                        or line.lstrip().startswith("%")):
            line = fh.readline()
        if not line:
            raise ValueError(f"{path}: truncated before the size line")
        try:
            n_rows, n_cols, nnz = (int(t) for t in line.split())
        except ValueError:
            raise ValueError(
                f"{path}: malformed size line {line.strip()!r}"
            ) from None

        want_cols = 2 if field == "pattern" else 3
        if nnz == 0:
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
            vals = np.empty(0, dtype=np.float64)
        else:
            # Bulk-parse the whole coordinate section in one pass
            # (np.loadtxt skips blank lines and strips % comments), so
            # SuiteSparse-scale files avoid a Python-level loop over
            # millions of readline() calls.
            try:
                entries = np.loadtxt(fh, comments="%", ndmin=2)
            except ValueError as exc:
                raise ValueError(
                    f"{path}: malformed coordinate data ({exc})"
                ) from None
            found = 0 if entries.size == 0 else entries.shape[0]
            if found < nnz:
                raise ValueError(
                    f"{path}: truncated coordinate data "
                    f"({found} of {nnz} entries)"
                )
            if entries.shape[1] < want_cols:
                raise ValueError(
                    f"{path}: malformed coordinate data (expected "
                    f"{want_cols} columns for field {field!r}, found "
                    f"{entries.shape[1]})"
                )
            entries = entries[:nnz]
            rows = entries[:, 0].astype(np.int64) - 1
            cols = entries[:, 1].astype(np.int64) - 1
            vals = (
                entries[:, 2].astype(np.float64)
                if field != "pattern"
                else np.ones(nnz, dtype=np.float64)
            )

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirrored_rows = np.concatenate([rows, cols[off]])
        mirrored_cols = np.concatenate([cols, rows[off]])
        vals = np.concatenate([vals, sign * vals[off]])
        rows, cols = mirrored_rows, mirrored_cols
    return csr_from_coo(n_rows, n_cols, rows, cols, vals)


def write_mtx(path: Union[str, Path], mat: CSRMatrix) -> None:
    """Write a matrix as MatrixMarket coordinate real general."""
    path = Path(path)
    rows = np.repeat(
        np.arange(mat.n_rows, dtype=np.int64), mat.row_lengths
    )
    with _open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"% written by repro {mat.n_rows}x{mat.n_cols}\n")
        fh.write(f"{mat.n_rows} {mat.n_cols} {mat.nnz}\n")
        for r, c, v in zip(rows, mat.indices, mat.data):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")

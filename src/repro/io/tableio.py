"""Format-dispatching persistence for :class:`~repro.core.table.SweepTable`.

One save/load pair covers the three on-disk forms the CLI exposes:

``npz``
    Lossless column arrays + category lists + schema version
    (:meth:`SweepTable.to_npz`) — the canonical interchange format;
    ``repro experiment --table`` consumes it.
``csv``
    Typed text round trip (:func:`repro.io.csvio.write_table`) —
    value-identical for the schema columns, human-greppable.
``json``
    The dict-row projection as deterministic JSON (sorted keys) — for
    downstream tools that speak neither NumPy nor CSV.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..core.table import SweepTable
from .csvio import read_table as _read_csv
from .csvio import write_table as _write_csv

__all__ = ["save_table", "load_table", "TABLE_FORMATS"]

TABLE_FORMATS = ("npz", "csv", "json")


def _resolve_format(path: Path, fmt: Optional[str]) -> str:
    if fmt is not None:
        if fmt not in TABLE_FORMATS:
            raise ValueError(
                f"unknown table format {fmt!r}; "
                f"use one of {', '.join(TABLE_FORMATS)}"
            )
        return fmt
    suffix = path.suffix.lstrip(".").lower()
    if suffix in TABLE_FORMATS:
        return suffix
    raise ValueError(
        f"cannot infer a table format from {path.name!r}; use a "
        f".npz/.csv/.json extension or pass --format "
        f"{('|'.join(TABLE_FORMATS))}"
    )


def save_table(
    path: Union[str, Path], table: SweepTable, fmt: Optional[str] = None
) -> str:
    """Persist a table; format from ``fmt`` or the file extension.

    Returns the resolved format name (the CLI reports it).
    """
    path = Path(path)
    fmt = _resolve_format(path, fmt)
    if fmt == "npz":
        table.to_npz(path)
    elif fmt == "csv":
        _write_csv(path, table)
    else:
        path.write_text(
            json.dumps(table.to_rows(), sort_keys=True, indent=2) + "\n"
        )
    return fmt


def load_table(
    path: Union[str, Path], fmt: Optional[str] = None
) -> SweepTable:
    """Load a table saved by :func:`save_table`.

    NPZ is exact; CSV is value-identical through the schema types; JSON
    rebuilds through :meth:`SweepTable.from_rows`.  Schema-version
    mismatches raise :class:`~repro.core.table.SchemaVersionError` with
    the regeneration hint (the CLI surfaces it on exit code 2).
    """
    path = Path(path)
    fmt = _resolve_format(path, fmt)
    if not path.exists():
        raise ValueError(
            f"table file {path} does not exist; write one first with "
            "`repro sweep --out <path>`"
        )
    if fmt == "npz":
        return SweepTable.from_npz(path)
    if fmt == "csv":
        return _read_csv(path)
    return SweepTable.from_rows(json.loads(path.read_text()))

"""CSV persistence for measurement tables.

Sweeps over the medium dataset take minutes; persisting the flat result
table lets the analysis benches and the ML experiments re-use one sweep.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Union

__all__ = ["write_rows", "read_rows"]


def write_rows(path: Union[str, Path], rows: Sequence[dict]) -> None:
    """Write dict rows as CSV (union of keys, sorted header)."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return
    keys = sorted({k for r in rows for k in r})
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=keys)
        writer.writeheader()
        for r in rows:
            writer.writerow(r)


def read_rows(path: Union[str, Path]) -> List[dict]:
    """Read CSV rows back, converting numeric strings to int/float."""
    path = Path(path)
    text = path.read_text()
    if not text.strip():
        return []
    out: List[dict] = []
    with open(path, newline="") as fh:
        for raw in csv.DictReader(fh):
            row = {}
            for k, v in raw.items():
                if v is None or v == "":
                    row[k] = v
                    continue
                try:
                    row[k] = int(v)
                except ValueError:
                    try:
                        row[k] = float(v)
                    except ValueError:
                        row[k] = v
            out.append(row)
    return out

"""CSV persistence for measurement tables.

Sweeps over the medium dataset take minutes; persisting the flat result
table lets the analysis benches and the ML experiments re-use one sweep.

:func:`read_rows` parses values through the table schema
(:mod:`repro.core.table`): known columns get their declared types —
categorical columns stay strings even when a name looks numeric, int
columns parse as int, float columns as float — so a ``write_rows`` →
``read_rows`` round trip is value-identical.  Unknown columns fall back
to the historical int→float→str guess.

:func:`write_table`/:func:`read_table` are the typed table round trip:
the header preserves column order and every cell uses ``str()``'s
repr-exact float formatting, so ``read_table(write_table(t)) == t``
column for column.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from ..core.table import (
    CATEGORICAL_COLUMNS, FLOAT_COLUMNS, INT_COLUMNS, SweepTable, _encode,
)

__all__ = ["write_rows", "read_rows", "write_table", "read_table"]


def write_rows(path: Union[str, Path], rows: Sequence[dict]) -> None:
    """Write dict rows as CSV (union of keys, sorted header)."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return
    keys = sorted({k for r in rows for k in r})
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=keys)
        writer.writeheader()
        for r in rows:
            writer.writerow(r)


def _parse_cell(key: str, v):
    """One CSV cell, typed through the table schema where known."""
    if v is None or v == "":
        return v
    if key in CATEGORICAL_COLUMNS:
        return v
    try:
        if key in INT_COLUMNS:
            return int(v)
        if key in FLOAT_COLUMNS:
            return float(v)
    except ValueError:
        pass  # hand-edited file: fall through to the guess
    try:
        return int(v)
    except ValueError:
        try:
            return float(v)
        except ValueError:
            return v


def read_rows(path: Union[str, Path]) -> List[dict]:
    """Read CSV rows back with schema-typed values (see module doc)."""
    path = Path(path)
    text = path.read_text()
    if not text.strip():
        return []
    out: List[dict] = []
    with open(path, newline="") as fh:
        for raw in csv.DictReader(fh):
            out.append({k: _parse_cell(k, v) for k, v in raw.items()})
    return out


def write_table(path: Union[str, Path], table: SweepTable) -> None:
    """Write a table as typed CSV: header in column order, one row per
    table row, lossless float text (``str`` round-trips float64)."""
    path = Path(path)
    names = table.names
    if not names:
        path.write_text("")
        return
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for row in table.iter_rows():
            writer.writerow([row[name] for name in names])


def read_table(path: Union[str, Path]) -> SweepTable:
    """Read a :func:`write_table` CSV back into an equal table.

    Known columns take their schema dtypes; unknown columns infer
    int64 when every cell parses as int, float64 when every cell parses
    as float, and categorical strings otherwise.
    """
    path = Path(path)
    text = path.read_text()
    if not text.strip():
        return SweepTable({})
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        names = next(reader)
        cells = list(reader)
    columns: Dict[str, np.ndarray] = {}
    categories: Dict[str, List[str]] = {}
    for j, name in enumerate(names):
        raw = [row[j] for row in cells]
        if name in CATEGORICAL_COLUMNS:
            kind = "cat"
        elif name in INT_COLUMNS:
            kind = "int"
        elif name in FLOAT_COLUMNS:
            kind = "float"
        else:
            kind = _infer_kind(raw)
        if kind == "cat":
            columns[name], categories[name] = _encode(raw)
        elif kind == "int":
            columns[name] = np.array([int(v) for v in raw],
                                     dtype=np.int64)
        else:
            columns[name] = np.array([float(v) for v in raw],
                                     dtype=np.float64)
    return SweepTable(columns, categories)


def _infer_kind(raw: Sequence[str]) -> str:
    for parse, kind in ((int, "int"), (float, "float")):
        try:
            for v in raw:
                parse(v)
            return kind
        except ValueError:
            continue
    return "cat"

"""Feature-slice analysis — the Fig 9 machinery, generalised.

"Fix three features to qualitative classes, sweep the fourth" is how the
paper extracts per-bottleneck insight from the dataset (Section V-F).
:func:`feature_slice` implements it over a measurement table, and
:func:`bottleneck_census` summarises which bottleneck dominates where.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .stats import BoxStats, box_stats

__all__ = ["feature_slice", "bottleneck_census", "optimal_ranges"]


def feature_slice(
    rows: Sequence[dict],
    sweep_key: str,
    fixed: Dict[str, Callable[[float], bool]],
    value_key: str = "gflops",
) -> Dict[float, BoxStats]:
    """Distribution of ``value_key`` per value of ``sweep_key``, restricted
    to rows whose other features pass the ``fixed`` predicates.

    Example (Fig 9: neighbours sweep with good fixed features)::

        feature_slice(
            table.rows, "req_neigh",
            fixed={"req_footprint_mb": lambda v: v < 256,
                   "req_avg_nnz": lambda v: v >= 50,
                   "req_skew": lambda v: v <= 100},
        )
    """
    filtered = [
        r for r in rows
        if all(pred(r[key]) for key, pred in fixed.items())
    ]
    by_value: Dict[float, List[float]] = defaultdict(list)
    for r in filtered:
        by_value[r[sweep_key]].append(r[value_key])
    return {
        v: box_stats(vals) for v, vals in sorted(by_value.items()) if vals
    }


def bottleneck_census(
    rows: Sequence[dict], by: str = "device"
) -> Dict[str, Dict[str, float]]:
    """Fraction of matrices dominated by each bottleneck, grouped by
    ``by`` (device, format, ...).

    Quantifies the paper's conclusion section: SpMV stays memory-bound
    overall, low ILP shows up for short rows, latency on GPUs, while
    imbalance is mostly absorbed by the formats.
    """
    groups: Dict[str, Counter] = defaultdict(Counter)
    for r in rows:
        groups[r[by]][r["bottleneck"]] += 1
    out: Dict[str, Dict[str, float]] = {}
    for key, counts in groups.items():
        total = sum(counts.values())
        out[key] = {
            b: 100.0 * c / total for b, c in sorted(counts.items())
        }
    return out


def optimal_ranges(
    rows: Sequence[dict],
    feature_key: str,
    value_key: str = "gflops",
    top_fraction: float = 0.25,
) -> Optional[Dict[str, float]]:
    """The feature range occupied by the top-performing matrices.

    Answers Section V-F's "determine the optimal feature value ranges per
    device": among the top ``top_fraction`` of rows by ``value_key``,
    report min/median/max of ``feature_key``.
    """
    if not rows:
        return None
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    values = np.array([r[value_key] for r in rows])
    cutoff = np.quantile(values, 1.0 - top_fraction)
    top = [r[feature_key] for r in rows if r[value_key] >= cutoff]
    if not top:
        return None
    arr = np.array(top, dtype=np.float64)
    return {
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
        "n": len(arr),
    }

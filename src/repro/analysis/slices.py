"""Feature-slice analysis — the Fig 9 machinery, generalised.

"Fix three features to qualitative classes, sweep the fourth" is how the
paper extracts per-bottleneck insight from the dataset (Section V-F).
:func:`feature_slice` implements it over a measurement table, and
:func:`bottleneck_census` summarises which bottleneck dominates where.

Every function accepts either a :class:`~repro.core.table.SweepTable`
(vectorised column reductions) or legacy dict rows (the reference path
the parity suite pins the columnar reductions against).  Grid sweeps
take few distinct values per feature axis, so the columnar
:func:`feature_slice` applies the caller's Python predicates once per
*unique* value and broadcasts the verdicts back through the codes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.table import SweepTable
from .stats import BoxStats, box_stats

__all__ = ["feature_slice", "bottleneck_census", "optimal_ranges"]


def _scalar(v):
    """A decoded column entry as the Python scalar a dict row carries
    (categorical columns decode to plain str, which has no ``item``)."""
    return v.item() if hasattr(v, "item") else v


def _unique_mask(
    table: SweepTable, key: str, pred: Callable[[float], bool]
) -> np.ndarray:
    """Row mask for ``pred(row[key])``, evaluating the predicate once
    per distinct column value."""
    arr = table.column(key)
    uniq, inverse = np.unique(arr, return_inverse=True)
    verdicts = np.fromiter(
        (bool(pred(_scalar(v))) for v in uniq), dtype=bool,
        count=len(uniq),
    )
    return verdicts[inverse]


def feature_slice(
    rows,
    sweep_key: str,
    fixed: Dict[str, Callable[[float], bool]],
    value_key: str = "gflops",
) -> Dict[float, BoxStats]:
    """Distribution of ``value_key`` per value of ``sweep_key``, restricted
    to rows whose other features pass the ``fixed`` predicates.

    Example (Fig 9: neighbours sweep with good fixed features)::

        feature_slice(
            table, "req_neigh",
            fixed={"req_footprint_mb": lambda v: v < 256,
                   "req_avg_nnz": lambda v: v >= 50,
                   "req_skew": lambda v: v <= 100},
        )
    """
    if isinstance(rows, SweepTable):
        keep = np.ones(len(rows), dtype=bool)
        for key, pred in fixed.items():
            keep &= _unique_mask(rows, key, pred)
        sweep_vals = rows.column(sweep_key)[keep]
        values = rows.column(value_key)[keep]
        out: Dict[float, BoxStats] = {}
        for v in np.unique(sweep_vals):
            sample = values[sweep_vals == v]
            if len(sample):
                out[_scalar(v)] = box_stats(sample)
        return out
    filtered = [
        r for r in rows
        if all(pred(r[key]) for key, pred in fixed.items())
    ]
    by_value: Dict[float, List[float]] = defaultdict(list)
    for r in filtered:
        by_value[r[sweep_key]].append(r[value_key])
    return {
        v: box_stats(vals) for v, vals in sorted(by_value.items()) if vals
    }


def bottleneck_census(
    rows, by: str = "device"
) -> Dict[str, Dict[str, float]]:
    """Fraction of matrices dominated by each bottleneck, grouped by
    ``by`` (device, format, ...).

    Quantifies the paper's conclusion section: SpMV stays memory-bound
    overall, low ILP shows up for short rows, latency on GPUs, while
    imbalance is mostly absorbed by the formats.
    """
    if isinstance(rows, SweepTable):
        group, group_keys = rows.group_index(by)
        b_codes = rows.codes("bottleneck")
        b_cats = rows.categories("bottleneck")
        joint = np.bincount(
            group * len(b_cats) + b_codes,
            minlength=len(group_keys) * len(b_cats),
        ).reshape(len(group_keys), len(b_cats))
        out: Dict[str, Dict[str, float]] = {}
        for gi, key in enumerate(group_keys):
            total = int(joint[gi].sum())
            out[key] = {
                b: 100.0 * int(c) / total
                for b, c in sorted(zip(b_cats, joint[gi]))
                if c
            }
        return out
    groups: Dict[str, Counter] = defaultdict(Counter)
    for r in rows:
        groups[r[by]][r["bottleneck"]] += 1
    out = {}
    for key, counts in groups.items():
        total = sum(counts.values())
        out[key] = {
            b: 100.0 * c / total for b, c in sorted(counts.items())
        }
    return out


def optimal_ranges(
    rows,
    feature_key: str,
    value_key: str = "gflops",
    top_fraction: float = 0.25,
) -> Optional[Dict[str, float]]:
    """The feature range occupied by the top-performing matrices.

    Answers Section V-F's "determine the optimal feature value ranges per
    device": among the top ``top_fraction`` of rows by ``value_key``,
    report min/median/max of ``feature_key``.
    """
    if isinstance(rows, SweepTable):
        if len(rows) == 0:
            return None
        if not 0 < top_fraction <= 1:
            raise ValueError("top_fraction must be in (0, 1]")
        values = rows.column(value_key).astype(np.float64, copy=False)
        cutoff = np.quantile(values, 1.0 - top_fraction)
        arr = rows.column(feature_key)[values >= cutoff].astype(
            np.float64, copy=False
        )
        if len(arr) == 0:
            return None
        return {
            "min": float(arr.min()),
            "median": float(np.median(arr)),
            "max": float(arr.max()),
            "n": len(arr),
        }
    if not rows:
        return None
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    values = np.array([r[value_key] for r in rows])
    cutoff = np.quantile(values, 1.0 - top_fraction)
    top = [r[feature_key] for r in rows if r[value_key] >= cutoff]
    if not top:
        return None
    arr = np.array(top, dtype=np.float64)
    return {
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
        "n": len(arr),
    }

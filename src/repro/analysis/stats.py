"""Distribution statistics underlying every boxplot figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["BoxStats", "box_stats", "bin_by", "geometric_mean"]


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary + mean of one boxplot."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_row(self) -> Tuple[float, ...]:
        return (
            self.n, self.minimum, self.q1, self.median, self.q3,
            self.maximum, self.mean,
        )


def box_stats(values: Sequence[float]) -> BoxStats:
    """Five-number summary of a sample (empty samples are rejected)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("cannot summarise an empty sample")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return BoxStats(
        n=len(arr),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
    )


def bin_by(
    rows: Sequence[dict],
    key: str,
    edges: Sequence[float],
    value_key: str = "gflops",
) -> Dict[str, List[float]]:
    """Group ``rows[value_key]`` into labelled bins of ``rows[key]``.

    ``edges`` are the interior bin boundaries; labels are
    ``"<e0"``, ``"e0-e1"``, …, ``">=eN"``.
    """
    edges = list(edges)
    labels = (
        [f"<{edges[0]:g}"]
        + [f"{a:g}-{b:g}" for a, b in zip(edges[:-1], edges[1:])]
        + [f">={edges[-1]:g}"]
    )
    out: Dict[str, List[float]] = {lab: [] for lab in labels}
    for r in rows:
        v = r[key]
        i = int(np.searchsorted(edges, v, side="right"))
        out[labels[i]].append(r[value_key])
    return out


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("empty sample")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))

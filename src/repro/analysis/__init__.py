"""Analysis: distribution statistics, format wins, text reports."""
from .stats import BoxStats, box_stats, bin_by, geometric_mean
from .wins import format_wins, win_table, confusion_table
from .report import format_table, ascii_boxplot, boxplot_panel
from .slices import feature_slice, bottleneck_census, optimal_ranges

"""Format 'wins' accounting (the bars behind Fig 7's boxplots).

Every function accepts either a :class:`~repro.core.table.SweepTable`
(vectorised column reductions — the production path) or legacy dict
rows (the reference implementation the parity suite pins the columnar
path against, field for field).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.table import SweepTable

__all__ = ["format_wins", "win_table", "confusion_table"]


def format_wins(rows) -> Dict[str, float]:
    """Percentage of matrices on which each format was the best.

    ``rows`` must carry one *best* measurement per matrix (the output of a
    ``best_only`` sweep for one device): keys ``format``.
    """
    if isinstance(rows, SweepTable):
        if len(rows) == 0:
            return {}
        codes = rows.codes("format")
        cats = rows.categories("format")
        counts = np.bincount(codes, minlength=len(cats))
        total = len(rows)
        return {
            fmt: 100.0 * int(c) / total
            for fmt, c in sorted(zip(cats, counts))
            if c
        }
    counts: Dict[str, int] = defaultdict(int)
    for r in rows:
        counts[r["format"]] += 1
    total = sum(counts.values())
    if total == 0:
        return {}
    return {fmt: 100.0 * c / total for fmt, c in sorted(counts.items())}


def win_table(
    rows, devices: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """Per-device win percentages: ``{device: {format: pct}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for dev in devices:
        if isinstance(rows, SweepTable):
            dev_rows = rows.where(device=dev)
        else:
            dev_rows = [r for r in rows if r["device"] == dev]
        out[dev] = format_wins(dev_rows)
    return out


def confusion_table(
    pairs: Sequence[Tuple[str, str]]
) -> Dict[str, Dict[str, int]]:
    """Oracle-vs-chosen selection counts: ``{oracle: {chosen: n}}``.

    ``pairs`` are (oracle_format, chosen_format) tuples, one per
    evaluated matrix (the selector's ``choices`` detail).  Keys are
    sorted so the table renders and serialises deterministically.
    """
    counts: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for oracle, chosen in pairs:
        counts[oracle][chosen] += 1
    return {
        oracle: dict(sorted(row.items()))
        for oracle, row in sorted(counts.items())
    }

"""Format 'wins' accounting (the bars behind Fig 7's boxplots)."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

__all__ = ["format_wins", "win_table", "confusion_table"]


def format_wins(rows: Sequence[dict]) -> Dict[str, float]:
    """Percentage of matrices on which each format was the best.

    ``rows`` must carry one *best* measurement per matrix (the output of a
    ``best_only`` sweep for one device): keys ``format``.
    """
    counts: Dict[str, int] = defaultdict(int)
    for r in rows:
        counts[r["format"]] += 1
    total = sum(counts.values())
    if total == 0:
        return {}
    return {fmt: 100.0 * c / total for fmt, c in sorted(counts.items())}


def win_table(
    rows: Sequence[dict], devices: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """Per-device win percentages: ``{device: {format: pct}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for dev in devices:
        dev_rows = [r for r in rows if r["device"] == dev]
        out[dev] = format_wins(dev_rows)
    return out


def confusion_table(
    pairs: Sequence[Tuple[str, str]]
) -> Dict[str, Dict[str, int]]:
    """Oracle-vs-chosen selection counts: ``{oracle: {chosen: n}}``.

    ``pairs`` are (oracle_format, chosen_format) tuples, one per
    evaluated matrix (the selector's ``choices`` detail).  Keys are
    sorted so the table renders and serialises deterministically.
    """
    counts: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for oracle, chosen in pairs:
        counts[oracle][chosen] += 1
    return {
        oracle: dict(sorted(row.items()))
        for oracle, row in sorted(counts.items())
    }

"""Text rendering: aligned tables and ASCII boxplots.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output readable in a terminal and in the
captured bench logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .stats import BoxStats

__all__ = ["format_table", "ascii_boxplot", "boxplot_panel"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Monospace table with per-column alignment."""
    def fmt(v):
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def ascii_boxplot(
    stats: BoxStats, lo: float, hi: float, width: int = 50
) -> str:
    """One boxplot row rendered over [lo, hi]: ``|--[==M==]--|``."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo

    def pos(v: float) -> int:
        clamped = min(max(v, lo), hi)
        return int(round((clamped - lo) / span * (width - 1)))

    line = [" "] * width
    p_min, p_q1 = pos(stats.minimum), pos(stats.q1)
    p_med, p_q3, p_max = pos(stats.median), pos(stats.q3), pos(stats.maximum)
    for i in range(p_min, p_q1):
        line[i] = "-"
    for i in range(p_q3 + 1, p_max + 1):
        line[i] = "-"
    for i in range(p_q1, p_q3 + 1):
        line[i] = "="
    line[p_min] = "|"
    line[p_max] = "|"
    line[p_med] = "M"
    return "".join(line)


def boxplot_panel(
    named_stats: Dict[str, BoxStats],
    width: int = 50,
    label_width: int = 22,
    log: bool = False,
    value_fmt: str = "{:.1f}",
) -> str:
    """A panel of aligned boxplots sharing one axis (one figure panel).

    With ``log=True`` positions use log10 of the values (all must be > 0).
    """
    import math

    if not named_stats:
        return "(no data)"
    los = [s.minimum for s in named_stats.values()]
    his = [s.maximum for s in named_stats.values()]
    lo, hi = min(los), max(his)

    def tr(s: BoxStats) -> BoxStats:
        if not log:
            return s
        return BoxStats(
            s.n, math.log10(max(s.minimum, 1e-12)),
            math.log10(max(s.q1, 1e-12)), math.log10(max(s.median, 1e-12)),
            math.log10(max(s.q3, 1e-12)), math.log10(max(s.maximum, 1e-12)),
            math.log10(max(s.mean, 1e-12)),
        )

    tlo = math.log10(max(lo, 1e-12)) if log else lo
    thi = math.log10(max(hi, 1e-12)) if log else hi
    lines = []
    for name, s in named_stats.items():
        plot = ascii_boxplot(tr(s), tlo, thi, width)
        med = value_fmt.format(s.median)
        lines.append(f"{name:<{label_width}} {plot}  med={med} n={s.n}")
    axis = (
        f"{'':<{label_width}} "
        f"{value_fmt.format(lo)}{' ' * (width - 12)}{value_fmt.format(hi)}"
    )
    lines.append(axis + ("  [log scale]" if log else ""))
    return "\n".join(lines)

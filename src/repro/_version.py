"""Single authoritative package version.

``repro.__version__``, ``repro --version`` and ``setup.py`` all read
this file (setup.py parses it textually so packaging never imports the
package); bump the string here and nowhere else.
"""

__version__ = "1.1.0"

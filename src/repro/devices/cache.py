"""Two-level memory model: effective bandwidth and x-vector locality.

The paper's CPU story (Fig 3) is driven entirely by whether the working set
fits the LLC; its GPU irregularity story (Fig 6) by whether scattered ``x``
gathers waste memory transactions.  Both are modelled here:

* :func:`effective_bandwidth` — harmonic blend of LLC and DRAM bandwidth by
  the fraction of the working set the cache can hold.
* :func:`x_access_model` — per-access miss probability for the ``x``
  gather, discounted by the two locality features (spatial: adjacent
  columns share a cache line; temporal: adjacent rows reuse lines).
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Device

__all__ = ["effective_bandwidth", "x_access_model", "XTraffic",
           "CACHE_LINE_BYTES"]

CACHE_LINE_BYTES = 64
# Fraction of the LLC realistically available to x (the rest streams the
# matrix through).
X_CACHE_FRACTION = 0.5


def effective_bandwidth(device: Device, working_set_bytes: float) -> float:
    """Sustained bandwidth in GB/s for a streaming working set.

    Working sets within the LLC run at the measured LLC bandwidth; beyond
    it, the cached fraction is served fast and the remainder at DRAM speed
    (harmonic mean — bytes, not time, are split).  This produces the sharp
    performance "cutoff" past the LLC size that Fig 3 shows for every CPU.
    """
    if working_set_bytes <= 0:
        return device.llc_bw_gbs
    cached = min(1.0, device.llc_bytes / working_set_bytes)
    inv = cached / device.llc_bw_gbs + (1.0 - cached) / device.dram_bw_gbs
    return 1.0 / inv


GPU_SECTOR_BYTES = 32  # L2 sector granularity of an uncoalesced lane


@dataclass(frozen=True)
class XTraffic:
    """Result of the x-gather locality model."""

    miss_rate: float       # probability an x access misses the cache
    extra_bytes: float     # traffic beyond the compulsory x read
    gather_efficiency: float  # useful fraction of each memory transaction
    gather_bytes: float = 0.0  # L2/sector traffic of the gather itself (GPU)


def x_access_model(
    device: Device,
    nnz: int,
    n_cols: int,
    avg_num_neighbours: float,
    cross_row_similarity: float,
    value_bytes: float = 8.0,
) -> XTraffic:
    """Model the irregular gather of the ``x`` vector.

    Each of the ``nnz`` accesses hits the cache if (a) the whole vector fits
    in the x-budget of the LLC, (b) the access is adjacent to the previous
    one in the row (spatial locality, probability ``avg_num_neighbours/2``),
    or (c) it re-touches a line the previous row loaded (temporal locality,
    probability ``cross_row_similarity``).  Residual misses each pull a full
    cache line of which 8 bytes are useful.
    """
    x_bytes = n_cols * value_bytes
    budget = device.llc_bytes * X_CACHE_FRACTION
    coverage = min(1.0, budget / x_bytes) if x_bytes > 0 else 1.0

    spatial_hit = min(avg_num_neighbours / 2.0, 1.0)
    temporal_hit = min(max(cross_row_similarity, 0.0), 1.0)
    # An access misses only if it is not covered by capacity, not spatially
    # adjacent and not a cross-row reuse.
    miss = (1.0 - coverage) * (1.0 - spatial_hit) * (1.0 - temporal_hit)

    extra = miss * nnz * max(CACHE_LINE_BYTES - value_bytes, 0.0)
    # Transaction efficiency (GPU coalescing): a warp's gather touches
    # distinct lines unless neighbours coalesce.
    gather_eff = 8.0 / CACHE_LINE_BYTES + (1 - 8.0 / CACHE_LINE_BYTES) * (
        spatial_hit + (1 - spatial_hit) * coverage
    )
    # GPU coalescing traffic: adjacent lanes (probability = spatial) share
    # a transaction and cost 8 useful bytes; scattered lanes each pull a
    # full L2 sector.  This is the dominant irregularity penalty on GPUs —
    # it applies even when x fits L2, because it drains L2/LSU bandwidth.
    gather_bytes = nnz * (
        spatial_hit * value_bytes
        + (1.0 - spatial_hit) * GPU_SECTOR_BYTES
    )
    return XTraffic(
        miss_rate=miss,
        extra_bytes=extra,
        gather_efficiency=gather_eff,
        gather_bytes=gather_bytes,
    )

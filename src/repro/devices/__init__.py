"""Device models: the nine Table-II testbeds and their memory/parallel/energy behaviour."""
from .base import Device, DeviceClass
from .testbeds import (
    TESTBEDS, get_device, list_devices,
    AMD_EPYC_24, AMD_EPYC_64, ARM_NEON, INTEL_XEON, IBM_POWER9,
    TESLA_P100, TESLA_V100, TESLA_A100, ALVEO_U280,
)
from .roofline import RooflinePoint, roofline_bounds, spmv_operational_intensity
from .cache import effective_bandwidth, x_access_model, XTraffic
from .parallel import ImbalanceStats, imbalance_for_strategy, PARTITION_STRATEGIES
from .energy import EnergyModel, PowerEstimate
from .scaling import scale_device

"""Multi-socket / multi-device scaling (the paper's stated future work:
"shedding more light to multiple device execution behaviour (e.g. dual
CPU/socket) is left for future work").

:func:`scale_device` derives a multi-socket variant of a testbed with the
standard NUMA caveats: bandwidth and cores scale by the socket count times
a NUMA efficiency factor, the LLC aggregates, latency rises for remote
accesses, and the power envelope multiplies.
"""

from __future__ import annotations

import dataclasses

from .base import Device

__all__ = ["scale_device", "DEFAULT_NUMA_EFFICIENCY"]

# Fraction of ideal scaling a first-touch-placed SpMV achieves across
# sockets (cross-socket x reads eat into it).
DEFAULT_NUMA_EFFICIENCY = 0.85


def scale_device(
    device: Device,
    sockets: int = 2,
    numa_efficiency: float = DEFAULT_NUMA_EFFICIENCY,
) -> Device:
    """A ``sockets``-socket variant of ``device``.

    Only meaningful for CPUs (GPUs/FPGAs scale by card count, which is a
    different execution model) — non-CPU devices are rejected.
    """
    if not device.is_cpu:
        raise ValueError(
            f"{device.name} is not a CPU; multi-socket scaling only "
            "applies to CPU testbeds"
        )
    if sockets < 1:
        raise ValueError("sockets must be >= 1")
    if not 0 < numa_efficiency <= 1:
        raise ValueError("numa_efficiency must be in (0, 1]")
    if sockets == 1:
        return device
    eff = numa_efficiency
    return dataclasses.replace(
        device,
        name=f"{device.name}x{sockets}",
        cores=device.cores * sockets,
        n_workers=device.n_workers * sockets,
        peak_gflops=device.peak_gflops * sockets,
        llc_mb=device.llc_mb * sockets,
        llc_bw_gbs=device.llc_bw_gbs * sockets * eff,
        dram_bw_gbs=device.dram_bw_gbs * sockets * eff,
        dram_gb=device.dram_gb * sockets,
        # Remote-socket accesses lengthen the average latency.
        mem_latency_ns=device.mem_latency_ns * (1.0 + 0.4 * (sockets - 1)),
        idle_w=device.idle_w * sockets,
        max_w=device.max_w * sockets,
        saturation_nnz=device.saturation_nnz * sockets,
    )

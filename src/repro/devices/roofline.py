"""Roofline model (Williams et al. [31]) — used for Fig 1's bound markers.

SpMV's operational intensity is computed from the actual CSR traffic of a
matrix; the roofline bound is ``min(peak, intensity * bandwidth)`` for both
the DRAM and LLC bandwidths, giving the two marker series of Fig 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Device

__all__ = ["RooflinePoint", "spmv_operational_intensity", "roofline_bounds"]


@dataclass(frozen=True)
class RooflinePoint:
    """Roofline bounds for one (matrix, device) pair, in GFLOP/s."""

    intensity_flop_per_byte: float
    memory_bound_gflops: float   # DRAM/HBM roof
    llc_bound_gflops: float      # LLC roof (only meaningful if it fits)
    compute_bound_gflops: float

    @property
    def attainable_gflops(self) -> float:
        """The classic roofline: min(compute peak, memory roof)."""
        return min(self.compute_bound_gflops, self.memory_bound_gflops)


def spmv_operational_intensity(
    nnz: int,
    n_rows: int,
    n_cols: int,
    value_bytes: int = 8,
    index_bytes: int = 4,
) -> float:
    """Flop-per-byte ratio of CSR SpMV.

    2 flops per nonzero over: matrix values + column indices + row pointers
    + one streaming read of ``x`` + one write of ``y``.  This is the
    "CSR memory footprint" estimate the paper uses for its roofline points
    (Section V-A); the true traffic can only be higher (x re-reads), so the
    bound is conservative.
    """
    if nnz <= 0:
        return 0.0
    bytes_total = (
        nnz * (value_bytes + index_bytes)
        + (n_rows + 1) * index_bytes
        + n_cols * value_bytes
        + n_rows * value_bytes
    )
    return 2.0 * nnz / bytes_total


def roofline_bounds(
    device: Device, nnz: int, n_rows: int, n_cols: int
) -> RooflinePoint:
    """DRAM and LLC roofline bounds for a matrix on ``device``."""
    intensity = spmv_operational_intensity(nnz, n_rows, n_cols)
    return RooflinePoint(
        intensity_flop_per_byte=intensity,
        memory_bound_gflops=min(
            device.peak_gflops, intensity * device.dram_bw_gbs
        ),
        llc_bound_gflops=min(
            device.peak_gflops, intensity * device.llc_bw_gbs
        ),
        compute_bound_gflops=device.peak_gflops,
    )

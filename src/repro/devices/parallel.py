"""Work partitioning and load-imbalance measurement.

Each storage format distributes SpMV work differently (Section II-B); the
imbalance penalty in the device model is *measured* on the actual per-row
nonzero counts rather than estimated from the skew feature.  Every
partitioner returns an :class:`ImbalanceStats` whose ``factor`` is the
ratio of the critical (slowest) worker's load to the mean load — the
multiplicative slowdown of a bulk-synchronous SpMV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ImbalanceStats",
    "row_block_partition",
    "nnz_balanced_rows",
    "merge_path_imbalance",
    "warp_per_row",
    "warp_per_row_fast",
    "nnz_split",
    "element_balanced",
    "sell_chunk_imbalance",
    "sell_chunk_imbalance_fast",
    "sell_chunk_widths",
    "lockstep_channel_imbalance",
    "lockstep_channel_imbalance_fast",
    "imbalance_for_strategy",
    "imbalance_for_strategy_fast",
    "PARTITION_STRATEGIES",
]


@dataclass(frozen=True)
class ImbalanceStats:
    """Load distribution over workers. ``factor = max / mean`` >= 1."""

    factor: float
    max_load: float
    mean_load: float
    n_workers: int

    @staticmethod
    def from_loads(loads: np.ndarray) -> "ImbalanceStats":
        loads = np.asarray(loads, dtype=np.float64)
        if len(loads) == 0 or loads.sum() == 0:
            return ImbalanceStats(1.0, 0.0, 0.0, max(len(loads), 1))
        mean = loads.mean()
        return ImbalanceStats(
            factor=float(max(loads.max() / mean, 1.0)),
            max_load=float(loads.max()),
            mean_load=float(mean),
            n_workers=len(loads),
        )


def _chunk_sums(
    values: np.ndarray, bounds: np.ndarray, csum: np.ndarray = None
) -> np.ndarray:
    """Sums of ``values`` between consecutive ``bounds`` indices.

    ``csum`` optionally supplies the precomputed ``[0, cumsum(values)]``
    prefix array — integer sums, so sharing it across partitioners is
    exact; the fused cold path computes it once per row profile.
    """
    if csum is None:
        csum = np.concatenate(([0], np.cumsum(values)))
    return csum[bounds[1:]] - csum[bounds[:-1]]


def row_block_partition(
    row_lengths: np.ndarray, n_workers: int, csum: np.ndarray = None
) -> ImbalanceStats:
    """Static contiguous row blocks of equal *row count* (Naive-CSR /
    OpenMP static scheduling).  Skewed matrices hurt: whoever owns the
    heavy rows owns the critical path."""
    n_rows = len(row_lengths)
    if n_rows == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_workers)
    bounds = np.linspace(0, n_rows, n_workers + 1).astype(np.int64)
    return ImbalanceStats.from_loads(
        _chunk_sums(row_lengths, bounds, csum)
    )


def nnz_balanced_rows(
    row_lengths: np.ndarray, n_workers: int, csum: np.ndarray = None
) -> ImbalanceStats:
    """Contiguous row blocks of ~equal nonzeros, at row granularity
    (Balanced-CSR, inspector-executor libraries).  A single monster row
    still lower-bounds the critical path."""
    n_rows = len(row_lengths)
    if n_rows == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_workers)
    if csum is None:
        csum = np.concatenate(([0], np.cumsum(row_lengths)))
    targets = np.linspace(0, csum[-1], n_workers + 1)
    bounds = np.searchsorted(csum, targets, side="left")
    bounds[0], bounds[-1] = 0, n_rows
    bounds = np.maximum.accumulate(bounds)
    return ImbalanceStats.from_loads(
        _chunk_sums(row_lengths, bounds, csum)
    )


def merge_path_imbalance(
    row_lengths: np.ndarray, n_workers: int
) -> ImbalanceStats:
    """Merge-path decomposition (Merge-CSR): rows + nonzeros are split into
    equal diagonals, rows may be split mid-row — imbalance is bounded by
    one work item by construction."""
    n_rows = len(row_lengths)
    nnz = int(row_lengths.sum())
    total = n_rows + nnz
    if total == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_workers)
    per = total / n_workers
    loads = np.full(n_workers, per)
    # Granularity: diagonals are integers.
    loads[:-1] = np.diff(np.linspace(0, total, n_workers + 1).astype(np.int64))[
        : n_workers - 1
    ]
    return ImbalanceStats.from_loads(loads)


def warp_per_row(
    row_lengths: np.ndarray, n_workers: int, simd_width: int = 32
) -> ImbalanceStats:
    """GPU warp-per-row scheduling (cuSPARSE CSR flavour).

    Each row costs ``ceil(len / simd_width)`` warp-cycles; rows are dealt
    round-robin to warp slots.  The critical path is additionally
    lower-bounded by the single longest row (it cannot be split)."""
    n_rows = len(row_lengths)
    if n_rows == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_workers)
    cycles = np.ceil(row_lengths / simd_width)
    slots = np.arange(n_rows) % n_workers
    loads = np.bincount(slots, weights=cycles, minlength=n_workers)
    longest = float(cycles.max())
    mean = loads.mean() if loads.mean() > 0 else 1.0
    factor = max(loads.max(), longest) / mean
    return ImbalanceStats(
        factor=float(max(factor, 1.0)),
        max_load=float(max(loads.max(), longest)),
        mean_load=float(mean),
        n_workers=n_workers,
    )


def nnz_split(row_lengths: np.ndarray, n_workers: int) -> ImbalanceStats:
    """Row-splitting nnz partition (CSR5 tiles): work is element-balanced
    up to one tile of granularity."""
    nnz = float(row_lengths.sum())
    if nnz == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_workers)
    per = nnz / n_workers
    # Tile granularity of 512 elements (omega x sigma).
    granule = 512.0
    factor = (np.ceil(per / granule) * granule) / per if per > 0 else 1.0
    return ImbalanceStats(
        factor=float(min(max(factor, 1.0), 2.0)),
        max_load=per * factor,
        mean_load=per,
        n_workers=n_workers,
    )


def element_balanced(
    row_lengths: np.ndarray, n_workers: int
) -> ImbalanceStats:
    """Perfect element-level balance (COO atomics)."""
    nnz = float(row_lengths.sum())
    per = nnz / n_workers if n_workers else 0.0
    return ImbalanceStats(1.0, per, per, n_workers)


def sell_chunk_imbalance(
    row_lengths: np.ndarray,
    n_workers: int,
    C: int = 32,
    sigma: int = 1024,
) -> ImbalanceStats:
    """SELL-C-σ chunk loads: rows sorted within σ-windows, chunk cost is
    ``C * chunk_width``; chunks are dealt to workers in order."""
    n_rows = len(row_lengths)
    if n_rows == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_workers)
    lengths = np.asarray(row_lengths, dtype=np.int64).copy()
    for w0 in range(0, n_rows, sigma):
        w1 = min(w0 + sigma, n_rows)
        lengths[w0:w1] = np.sort(lengths[w0:w1])[::-1]
    n_chunks = (n_rows + C - 1) // C
    padded = np.zeros(n_chunks * C, dtype=np.int64)
    padded[:n_rows] = lengths
    widths = padded.reshape(n_chunks, C).max(axis=1)
    cost = widths * C
    # Chunks are dealt in snake order (0..w-1, w-1..0, ...), modelling the
    # guided scheduling real SELL kernels use: within a sorted sigma-window
    # costs descend monotonically, so plain contiguous or round-robin
    # assignment would systematically overload the first worker.
    phase = np.arange(n_chunks) % (2 * n_workers)
    slots = np.where(phase < n_workers, phase, 2 * n_workers - 1 - phase)
    loads = np.bincount(slots, weights=cost, minlength=n_workers)
    return ImbalanceStats.from_loads(loads)


def lockstep_channel_imbalance(
    row_lengths: np.ndarray, n_channels: int = 16
) -> ImbalanceStats:
    """VSL channel lockstep: rows are interleaved over HBM channel groups
    which advance in lockstep, so the critical channel paces all 16.  A
    skewed row concentrates its stream on one channel (Fig 5's ~4x FPGA
    drop)."""
    n_rows = len(row_lengths)
    if n_rows == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_channels)
    slots = np.arange(n_rows) % n_channels
    loads = np.bincount(slots, weights=row_lengths, minlength=n_channels)
    # Lockstep advances in bursts: per-burst padding amplifies the critical
    # channel; approximate with the channel max over the mean.
    return ImbalanceStats.from_loads(loads)


# ---------------------------------------------------------------------------
# Vectorised twins — same statistics, no Python-level loops.
#
# The three partitioners below replace per-window / round-robin Python loops
# with reshape-based reductions.  Every load is a sum of *integer-valued*
# terms well below 2^53, so float64 accumulation order cannot change the
# result: each twin is bit-identical to its reference partitioner (the twin
# agreement tests pin this), and the fused cold path routes through them.
# ---------------------------------------------------------------------------
def sell_chunk_widths(
    row_lengths: np.ndarray, C: int = 32, sigma: int = 1024
) -> np.ndarray:
    """Per-chunk widths of the sigma-sorted SELL-C-σ layout.

    This is the expensive half of :func:`sell_chunk_imbalance` — the
    per-window descending sort and the chunk-maximum reduction — and it
    does not depend on ``n_workers``, so callers scoring the same
    profile at several worker counts can compute it once.
    """
    n_rows = len(row_lengths)
    if n_rows == 0:
        return np.zeros(0, dtype=np.int64)
    lengths = np.asarray(row_lengths, dtype=np.int64)
    n_windows = (n_rows + sigma - 1) // sigma
    padded = np.full(n_windows * sigma, -1, dtype=np.int64)
    padded[:n_rows] = lengths
    srt = np.sort(padded.reshape(n_windows, sigma), axis=1)[:, ::-1]
    srt = srt.reshape(-1)
    srt = srt[srt >= 0]
    n_chunks = (n_rows + C - 1) // C
    chunk_padded = np.zeros(n_chunks * C, dtype=np.int64)
    chunk_padded[:n_rows] = srt
    return chunk_padded.reshape(n_chunks, C).max(axis=1)


def sell_chunk_imbalance_fast(
    row_lengths: np.ndarray,
    n_workers: int,
    C: int = 32,
    sigma: int = 1024,
    widths: np.ndarray = None,
) -> ImbalanceStats:
    """Vectorised twin of :func:`sell_chunk_imbalance`.

    The per-window descending sort runs as one 2-D sort over the full
    windows (padding the tail with -1 sentinels so it can join the same
    reshape) instead of a Python loop over sigma-slices.  ``widths``
    optionally supplies :func:`sell_chunk_widths` precomputed for this
    profile — the deal to workers is all that varies with ``n_workers``.
    """
    n_rows = len(row_lengths)
    if n_rows == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_workers)
    if widths is None:
        widths = sell_chunk_widths(row_lengths, C, sigma)
    n_chunks = len(widths)
    cost = widths * C
    phase = np.arange(n_chunks) % (2 * n_workers)
    slots = np.where(phase < n_workers, phase, 2 * n_workers - 1 - phase)
    loads = np.bincount(slots, weights=cost, minlength=n_workers)
    return ImbalanceStats.from_loads(loads)


def warp_per_row_fast(
    row_lengths: np.ndarray,
    n_workers: int,
    simd_width: int = 32,
    cycles: np.ndarray = None,
) -> ImbalanceStats:
    """Vectorised twin of :func:`warp_per_row`.

    Integer ceil-division replaces the float ``np.ceil`` (identical for
    integer lengths) and the round-robin deal becomes a zero-padded
    ``(k, n_workers)`` reshape summed down the columns.  ``cycles``
    optionally supplies the per-row warp-cycle counts
    (``ceil(len / simd_width)`` as int64) precomputed for this profile —
    they do not depend on ``n_workers``.
    """
    n_rows = len(row_lengths)
    if n_rows == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_workers)
    if cycles is None:
        lengths = np.asarray(row_lengths, dtype=np.int64)
        cycles = (lengths + simd_width - 1) // simd_width
    n_pad = (-n_rows) % n_workers
    if n_pad:
        cycles_padded = np.concatenate(
            [cycles, np.zeros(n_pad, dtype=np.int64)]
        )
    else:
        cycles_padded = cycles
    loads = cycles_padded.reshape(-1, n_workers).sum(axis=0).astype(
        np.float64
    )
    longest = float(cycles.max())
    mean = loads.mean() if loads.mean() > 0 else 1.0
    factor = max(loads.max(), longest) / mean
    return ImbalanceStats(
        factor=float(max(factor, 1.0)),
        max_load=float(max(loads.max(), longest)),
        mean_load=float(mean),
        n_workers=n_workers,
    )


def lockstep_channel_imbalance_fast(
    row_lengths: np.ndarray, n_channels: int = 16
) -> ImbalanceStats:
    """Vectorised twin of :func:`lockstep_channel_imbalance` (zero-padded
    reshape instead of the modulo bincount)."""
    n_rows = len(row_lengths)
    if n_rows == 0:
        return ImbalanceStats(1.0, 0.0, 0.0, n_channels)
    lengths = np.asarray(row_lengths, dtype=np.int64)
    n_pad = (-n_rows) % n_channels
    if n_pad:
        lengths = np.concatenate([lengths, np.zeros(n_pad, dtype=np.int64)])
    loads = lengths.reshape(-1, n_channels).sum(axis=0)
    return ImbalanceStats.from_loads(loads)


PARTITION_STRATEGIES = {
    "row_block": row_block_partition,
    "nnz_row": nnz_balanced_rows,
    "merge_path": merge_path_imbalance,
    "warp_row": warp_per_row,
    "nnz_split": nnz_split,
    "element": element_balanced,
    "sell_chunk": sell_chunk_imbalance,
    "lockstep_channel": lockstep_channel_imbalance,
}


def imbalance_for_strategy(
    strategy: str,
    row_lengths: np.ndarray,
    n_workers: int,
    simd_width: int = 32,
) -> ImbalanceStats:
    """Dispatch to the named partitioner."""
    if strategy == "warp_row":
        return warp_per_row(row_lengths, n_workers, simd_width)
    if strategy == "lockstep_channel":
        return lockstep_channel_imbalance(row_lengths, n_workers)
    try:
        fn = PARTITION_STRATEGIES[strategy]
    except KeyError:
        raise KeyError(
            f"unknown partition strategy {strategy!r}; available: "
            f"{sorted(PARTITION_STRATEGIES)}"
        ) from None
    return fn(row_lengths, n_workers)


def imbalance_for_strategy_fast(
    strategy: str,
    row_lengths: np.ndarray,
    n_workers: int,
    simd_width: int = 32,
    csum: np.ndarray = None,
    sell_widths: np.ndarray = None,
    warp_cycles: np.ndarray = None,
) -> ImbalanceStats:
    """Like :func:`imbalance_for_strategy`, routed through the vectorised
    twins where they exist and sharing the profile's worker-independent
    precomputations — the integer prefix-sum (``csum``) across the
    contiguous-block partitioners, the SELL chunk widths
    (``sell_widths``) and the warp-cycle counts (``warp_cycles``).
    Bit-identical results — the fused cold path's dispatcher."""
    if strategy == "warp_row":
        return warp_per_row_fast(
            row_lengths, n_workers, simd_width, cycles=warp_cycles
        )
    if strategy == "sell_chunk":
        return sell_chunk_imbalance_fast(
            row_lengths, n_workers, widths=sell_widths
        )
    if strategy == "lockstep_channel":
        return lockstep_channel_imbalance_fast(row_lengths, n_workers)
    if strategy == "row_block":
        return row_block_partition(row_lengths, n_workers, csum=csum)
    if strategy == "nnz_row":
        return nnz_balanced_rows(row_lengths, n_workers, csum=csum)
    return imbalance_for_strategy(
        strategy, row_lengths, n_workers, simd_width
    )

"""The nine Table-II testbeds.

Cache sizes, measured bandwidths, core counts, compilers' target formats
and power envelopes follow Table II of the paper; peak double-precision
rates and latency parameters are derived from the public specifications of
each part.  Where the paper does not publish a number (idle power,
latency), we use documented vendor values — these affect absolute scale,
not the feature-level trends the reproduction targets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import Device, DeviceClass

__all__ = [
    "TESTBEDS",
    "get_device",
    "list_devices",
    "AMD_EPYC_24",
    "AMD_EPYC_64",
    "ARM_NEON",
    "INTEL_XEON",
    "IBM_POWER9",
    "TESLA_P100",
    "TESLA_V100",
    "TESLA_A100",
    "ALVEO_U280",
]

AMD_EPYC_24 = Device(
    name="AMD-EPYC-24",
    device_class=DeviceClass.CPU,
    cores=24,
    n_workers=24,
    simd_width_dp=4,            # AVX2, 256-bit
    clock_ghz=2.8,
    peak_gflops=1075.0,         # 24c x 2.8 GHz x 16 DP flops/cycle
    llc_mb=128.0,
    llc_bw_gbs=700.0,           # Table II measured
    dram_bw_gbs=50.0,           # Table II measured (NPS1)
    dram_gb=256.0,
    mem_latency_ns=100.0,
    latency_hiding=10.0,
    kernel_launch_us=3.0,
    idle_w=65.0,
    max_w=180.0,
    saturation_nnz=50_000.0,
    formats=(
        "MKL-IE", "AOCL-Sparse", "Naive-CSR", "Vectorized-CSR",
        "CSR5", "Merge-CSR", "SparseX", "SELL-C-s",
    ),
)

AMD_EPYC_64 = Device(
    name="AMD-EPYC-64",
    device_class=DeviceClass.CPU,
    cores=64,
    n_workers=64,
    simd_width_dp=4,
    clock_ghz=2.25,
    peak_gflops=2304.0,         # 64c x 2.25 GHz x 16
    llc_mb=256.0,
    llc_bw_gbs=878.0,
    dram_bw_gbs=105.0,          # NPS4
    dram_gb=256.0,
    mem_latency_ns=105.0,
    latency_hiding=10.0,
    kernel_launch_us=4.0,
    idle_w=95.0,
    max_w=225.0,
    saturation_nnz=130_000.0,
    formats=(
        "MKL-IE", "Naive-CSR", "CSR5", "Merge-CSR", "SparseX", "SELL-C-s",
    ),
)

ARM_NEON = Device(
    name="ARM-NEON",
    device_class=DeviceClass.CPU,
    cores=80,
    n_workers=80,
    simd_width_dp=2,            # NEON, 128-bit
    clock_ghz=3.3,
    peak_gflops=2112.0,         # 80c x 3.3 GHz x 8 DP flops/cycle
    llc_mb=80.0,                # system-level cache (Table II: L2 LLC)
    llc_bw_gbs=650.0,
    dram_bw_gbs=102.0,
    dram_gb=512.0,
    mem_latency_ns=110.0,
    latency_hiding=8.0,
    kernel_launch_us=4.0,
    idle_w=35.0,                # Altra's headline efficiency
    max_w=130.0,
    saturation_nnz=160_000.0,
    formats=(
        "ARMPL", "Naive-CSR", "Vectorized-CSR", "Merge-CSR",
        "SparseX", "SELL-C-s",
    ),
)

INTEL_XEON = Device(
    name="INTEL-XEON",
    device_class=DeviceClass.CPU,
    cores=14,
    n_workers=14,
    simd_width_dp=8,            # AVX-512 (one FMA port on Gold 5120)
    clock_ghz=2.2,
    peak_gflops=493.0,          # 14c x 2.2 GHz x 16
    llc_mb=19.25,
    llc_bw_gbs=300.0,
    dram_bw_gbs=55.0,
    dram_gb=256.0,
    mem_latency_ns=90.0,
    latency_hiding=10.0,
    kernel_launch_us=2.0,
    idle_w=45.0,
    max_w=105.0,
    saturation_nnz=30_000.0,
    formats=(
        "MKL-IE", "Naive-CSR", "CSR5", "Merge-CSR", "SparseX", "SELL-C-s",
    ),
)

IBM_POWER9 = Device(
    name="IBM-POWER9",
    device_class=DeviceClass.CPU,
    cores=16,
    n_workers=32,               # best configuration: 2 threads/core
    simd_width_dp=2,            # VSX, 128-bit
    clock_ghz=3.8,
    peak_gflops=486.0,          # 16c x 3.8 GHz x 8
    llc_mb=80.0,
    llc_bw_gbs=612.0,
    dram_bw_gbs=109.0,
    dram_gb=319.0,
    mem_latency_ns=120.0,
    latency_hiding=8.0,
    kernel_launch_us=3.0,
    # Paper: no accurate RAPL analogue; pessimistic constant 200 W TDP.
    idle_w=200.0,
    max_w=200.0,
    saturation_nnz=65_000.0,
    formats=("Naive-CSR", "Balanced-CSR", "Merge-CSR", "SparseX"),
)

TESLA_P100 = Device(
    name="Tesla-P100",
    device_class=DeviceClass.GPU,
    cores=56,                   # SMs
    n_workers=56 * 32,          # resident warp slots used for partitioning
    simd_width_dp=32,           # warp lanes
    clock_ghz=1.48,
    peak_gflops=4700.0,
    llc_mb=4.0,                 # L2
    llc_bw_gbs=1600.0,
    dram_bw_gbs=464.0,          # Table II measured HBM2
    dram_gb=12.0,
    mem_latency_ns=400.0,
    latency_hiding=64.0,
    kernel_launch_us=8.0,
    idle_w=90.0,                # active-kernel baseline (clocks pinned)
    max_w=250.0,
    saturation_nnz=250_000.0,
    spmv_bw_efficiency=0.75,
    formats=("cuSPARSE-CSR", "cuSPARSE-COO", "HYB", "CSR5"),
)

TESLA_V100 = Device(
    name="Tesla-V100",
    device_class=DeviceClass.GPU,
    cores=80,
    n_workers=80 * 32,
    simd_width_dp=32,
    clock_ghz=1.455,
    peak_gflops=7000.0,
    llc_mb=6.0,
    llc_bw_gbs=2200.0,
    dram_bw_gbs=760.0,
    dram_gb=32.0,
    mem_latency_ns=400.0,
    latency_hiding=64.0,
    kernel_launch_us=8.0,
    idle_w=100.0,               # active-kernel baseline (clocks pinned)
    max_w=250.0,
    saturation_nnz=400_000.0,
    spmv_bw_efficiency=0.75,
    formats=("cuSPARSE-CSR", "cuSPARSE-COO", "HYB", "CSR5"),
)

TESLA_A100 = Device(
    name="Tesla-A100",
    device_class=DeviceClass.GPU,
    cores=108,
    n_workers=108 * 32,
    simd_width_dp=32,
    clock_ghz=1.412,
    peak_gflops=9700.0,
    llc_mb=40.0,
    llc_bw_gbs=4000.0,
    dram_bw_gbs=1350.0,
    dram_gb=40.0,
    mem_latency_ns=400.0,
    latency_hiding=64.0,
    kernel_launch_us=8.0,
    idle_w=110.0,               # active-kernel baseline (clocks pinned)
    max_w=250.0,
    saturation_nnz=600_000.0,
    spmv_bw_efficiency=0.70,
    # CUDA-11-era formats only (compute capability 8.0 gate, Section IV).
    formats=("cuSPARSE-CSR", "cuSPARSE-COO", "Merge-CSR"),
)

ALVEO_U280 = Device(
    name="Alveo-U280",
    device_class=DeviceClass.FPGA,
    cores=16,                   # Vitis Sparse compute units
    n_workers=16,
    simd_width_dp=4,            # parallel MAC lanes per CU
    clock_ghz=0.3,
    peak_gflops=38.4,           # 16 CUs x 4 lanes x 2 flops x 300 MHz
    llc_mb=16.0,                # URAM/BRAM x-buffer
    llc_bw_gbs=460.0,
    dram_bw_gbs=287.5,          # Table II: 20 of 32 HBM channels
    dram_gb=8.0,                # HBM capacity — the VSL failure gate
    mem_latency_ns=200.0,
    latency_hiding=16.0,
    kernel_launch_us=20.0,
    idle_w=14.0,                # xbutil board power: the 'low-power path'
    max_w=22.0,
    saturation_nnz=30_000.0,
    matrix_capacity_gb=4.0,     # channels dedicated to the matrix stream
    formats=("VSL",),
)

TESTBEDS: Dict[str, Device] = {
    d.name: d
    for d in (
        AMD_EPYC_24, AMD_EPYC_64, ARM_NEON, INTEL_XEON, IBM_POWER9,
        TESLA_P100, TESLA_V100, TESLA_A100, ALVEO_U280,
    )
}


def get_device(name: str) -> Device:
    """Look up a testbed by its Table-II name."""
    try:
        return TESTBEDS[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(TESTBEDS)}"
        ) from None


def list_devices(device_class: Optional[str] = None) -> List[str]:
    """Names of all testbeds, optionally filtered by class."""
    return [
        name
        for name, dev in TESTBEDS.items()
        if device_class is None or dev.device_class == device_class
    ]

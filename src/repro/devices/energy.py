"""Power and energy-efficiency model (Fig 2b).

The paper measures average power over the SpMV run via RAPL (x86),
Altra-HWMON (ARM), nvidia-smi (GPUs) and xbutil (FPGA), then reports
GFLOPS/W.  We model average power as idle power plus dynamic power scaled
by how hard the run drives the device — a blend of achieved bandwidth and
compute utilisation, which is what package power tracks on all of these
parts.  IBM-POWER9 keeps the paper's pessimistic constant 200 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Device

__all__ = ["EnergyModel", "PowerEstimate"]

# Memory-subsystem activity dominates SpMV power draw; compute pipes are
# mostly idle at <1 flop/byte.
BW_WEIGHT = 0.85
COMPUTE_WEIGHT = 0.15


@dataclass(frozen=True)
class PowerEstimate:
    """Average power and derived energy metrics for one SpMV run."""

    watts: float
    energy_j: float
    gflops_per_watt: float


class EnergyModel:
    """Utilisation-scaled power model for a device."""

    def __init__(self, device: Device):
        self.device = device

    def average_power(
        self, bw_utilisation: float, compute_utilisation: float
    ) -> float:
        """Average board/package power in watts.

        ``bw_utilisation`` is achieved bytes/s over the device's DRAM
        bandwidth (clipped to 1), ``compute_utilisation`` achieved flops
        over peak.
        """
        bw_u = min(max(bw_utilisation, 0.0), 1.0)
        c_u = min(max(compute_utilisation, 0.0), 1.0)
        activity = BW_WEIGHT * bw_u + COMPUTE_WEIGHT * c_u
        dev = self.device
        return dev.idle_w + (dev.max_w - dev.idle_w) * activity

    def estimate(
        self,
        gflops: float,
        time_s: float,
        bytes_moved: float,
        flops: float,
    ) -> PowerEstimate:
        """Full estimate for a run of ``time_s`` seconds."""
        if time_s <= 0:
            raise ValueError("time_s must be positive")
        bw_u = (bytes_moved / time_s) / (self.device.dram_bw_gbs * 1e9)
        c_u = (flops / time_s) / (self.device.peak_gflops * 1e9)
        watts = self.average_power(bw_u, c_u)
        return PowerEstimate(
            watts=watts,
            energy_j=watts * time_s,
            gflops_per_watt=gflops / watts if watts > 0 else 0.0,
        )

"""Device models.

A :class:`Device` captures the architectural parameters of one Table-II
testbed: parallel width, SIMD lanes, the two-level memory system (LLC and
DRAM/HBM bandwidths, measured values from the paper), latency behaviour,
power envelope and the set of storage formats benchmarked on it.  The
performance simulator (:mod:`repro.perfmodel`) combines these parameters
with structural statistics measured on the actual matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["Device", "DeviceClass"]


class DeviceClass:
    """String constants for the three architecture classes."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    ALL = (CPU, GPU, FPGA)


@dataclass(frozen=True)
class Device:
    """Architectural description of one testbed.

    Bandwidths are the paper's *measured* STREAM / HBM-channel values, not
    datasheet peaks.  ``n_workers`` is the granularity at which work is
    partitioned for imbalance purposes (hardware threads on CPUs, resident
    warps on GPUs, compute units on the FPGA).
    """

    name: str
    device_class: str
    cores: int                    # physical cores / SMs / compute units
    n_workers: int                # partition granularity (threads / warps)
    simd_width_dp: int            # double-precision SIMD lanes per worker
    clock_ghz: float
    peak_gflops: float            # double-precision peak
    llc_mb: float                 # last-level cache (L2 for GPUs)
    llc_bw_gbs: float             # measured LLC bandwidth
    dram_bw_gbs: float            # measured DRAM / HBM bandwidth
    dram_gb: float                # memory capacity (HBM for GPU/FPGA)
    mem_latency_ns: float         # uncontended memory latency
    latency_hiding: float         # outstanding misses tolerated per worker
    kernel_launch_us: float       # fixed per-SpMV dispatch cost
    idle_w: float                 # idle package/board power
    max_w: float                  # fully-active package/board power
    saturation_nnz: float         # work needed to saturate parallelism
    formats: Tuple[str, ...] = field(default=())
    row_start_cycles: float = 7.0  # per-row loop/bookkeeping overhead
    # Fraction of the measured (STREAM-like) bandwidth an SpMV stream
    # sustains: CPUs stream the matrix contiguously and reach ~1.0, GPUs
    # lose a fraction to scattered metadata transactions.
    spmv_bw_efficiency: float = 1.0
    # Capacity available to the *matrix* stream, if tighter than dram_gb
    # (the Alveo's HBM channels that actually store the matrix).
    matrix_capacity_gb: float = 0.0  # 0 -> use dram_gb

    def __post_init__(self):
        if self.device_class not in DeviceClass.ALL:
            raise ValueError(f"bad device class {self.device_class!r}")
        if self.n_workers <= 0 or self.cores <= 0:
            raise ValueError("cores/n_workers must be positive")
        if self.llc_bw_gbs < self.dram_bw_gbs:
            raise ValueError("LLC bandwidth below DRAM bandwidth")
        if self.max_w < self.idle_w:
            raise ValueError("max power below idle power")

    # ------------------------------------------------------------------
    @property
    def llc_bytes(self) -> float:
        return self.llc_mb * 1024 * 1024

    @property
    def dram_bytes(self) -> float:
        return self.dram_gb * 1024 * 1024 * 1024

    @property
    def matrix_capacity_bytes(self) -> float:
        cap = self.matrix_capacity_gb or self.dram_gb
        return cap * 1024 * 1024 * 1024

    @property
    def is_gpu(self) -> bool:
        return self.device_class == DeviceClass.GPU

    @property
    def is_cpu(self) -> bool:
        return self.device_class == DeviceClass.CPU

    @property
    def is_fpga(self) -> bool:
        return self.device_class == DeviceClass.FPGA

    def supports_format(self, format_name: str) -> bool:
        return format_name in self.formats

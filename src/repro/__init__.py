"""repro — Feature-based SpMV Performance Analysis on Contemporary Devices.

Reproduction of Mpakos et al., IPDPS 2023 (arXiv:2302.04225): an artificial
sparse-matrix generator driven by five structural features, a storage-format
library, analytical-but-structure-aware device models for nine testbeds,
and the full benchmark harness regenerating the paper's tables and figures.
"""
from ._version import __version__

from .core import (
    CSRMatrix, Features, MatrixSpec, Dataset,
    TABLE_I_SPACE, VALIDATION_SUITE,
    artificial_matrix_generation, build_dataset_specs, extract_features,
    generate_matrix, surrogate_spec, friend_specs, sweep,
)
from .formats import (
    SparseFormat, FormatError, CapacityError, FORMAT_REGISTRY,
    available_formats, get_format,
)
from .devices import Device, TESTBEDS, get_device, list_devices, roofline_bounds
from .perfmodel import MatrixInstance, SpmvMeasurement, simulate_spmv, simulate_best
from .kernels import time_spmv, verify_all_formats, make_x

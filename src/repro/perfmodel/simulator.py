"""The SpMV performance simulator.

For one (matrix instance, storage format, device) triple the simulator
composes the paper's four bottlenecks from quantities *measured on the
actual matrix structure*:

1. **Memory bandwidth** — total traffic (format bytes + x gather incl.
   locality-modelled misses + y write) over the working-set-dependent
   effective bandwidth (LLC vs DRAM — the Fig 3 cache cutoff).
2. **Low ILP** — padded flops at SIMD-utilisation-discounted peak plus a
   per-row loop overhead (the Fig 4 short-row penalty).
3. **Memory latency** — residual x misses exposed after per-worker
   latency hiding (the Fig 6 irregularity penalty).
4. **Load imbalance** — the actual critical-worker/mean-worker ratio of
   the format's partitioner on the row-length profile (Fig 5).

Execution time is ``max(mem, compute) + latency`` stretched by the
imbalance factor and parallel-slack utilisation, plus dispatch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..devices.base import Device
from ..devices.cache import effective_bandwidth, x_access_model
from ..devices.energy import EnergyModel
from ..formats.base import CapacityError, FormatError, get_format
from .instance import MatrixInstance, simd_utilisation_of_profile
from .noise import measurement_noise

__all__ = ["SpmvMeasurement", "simulate_spmv", "simulate_best",
           "simulate_best_detailed", "BestFormatOutcome", "FormatSkip",
           "BOTTLENECKS", "PRECISIONS"]

BOTTLENECKS = (
    "memory_bandwidth",
    "low_ilp",
    "memory_latency",
    "load_imbalance",
)


@dataclass(frozen=True)
class SpmvMeasurement:
    """One simulated SpMV measurement (the paper's per-run record)."""

    device: str
    format: str
    matrix: str
    gflops: float
    time_s: float
    watts: float
    gflops_per_watt: float
    bottleneck: str
    diagnostics: Dict[str, float] = field(default_factory=dict, hash=False)


# Back-compat alias: the implementation moved next to the per-instance
# memoisation in :mod:`repro.perfmodel.instance`.
_simd_utilisation = simd_utilisation_of_profile


PRECISIONS = {
    # value bytes, peak-flops multiplier vs double precision
    "fp64": (8.0, 1.0),
    "fp32": (4.0, 2.0),
}


def simulate_spmv(
    instance: MatrixInstance,
    format_name: str,
    device: Device,
    seed: int = 0,
    noise_sigma: Optional[float] = None,
    precision: str = "fp64",
) -> SpmvMeasurement:
    """Simulate one SpMV run; raises :class:`FormatError`/:class:`CapacityError`
    when the format cannot host the matrix on this device.

    ``precision`` extends the paper's double-precision protocol with the
    single-precision variant it defers to future work: values shrink to
    4 bytes and the compute peak doubles, while index metadata is
    unchanged — so the speedup is sub-2x and largest for value-heavy
    (low-metadata) formats.
    """
    stats = instance.format_stats(format_name)  # may raise FormatError
    fmt_cls = get_format(format_name)
    try:
        value_bytes, peak_mult = PRECISIONS[precision]
    except KeyError:
        raise ValueError(
            f"unknown precision {precision!r}; available: "
            f"{sorted(PRECISIONS)}"
        ) from None

    scale = instance.scale
    nnz = instance.nnz
    n_rows, n_cols = instance.n_rows, instance.n_cols
    feats = instance.features

    # Split format storage into values (precision-scaled) and metadata.
    value_fraction = value_bytes / 8.0
    fmt_value_bytes = (
        (stats.memory_bytes - stats.metadata_bytes) * scale * value_fraction
    )
    fmt_bytes = stats.metadata_bytes * scale + fmt_value_bytes
    stored = stats.stored_elements * scale

    # Hard capacity gate (the VSL/HBM failures of Section V-A, and any
    # matrix exceeding device memory).
    x_y_bytes = (n_cols + n_rows) * value_bytes
    if (
        fmt_bytes > device.matrix_capacity_bytes
        or fmt_bytes + x_y_bytes > device.dram_bytes
    ):
        raise CapacityError(
            f"{format_name} needs {(fmt_bytes + x_y_bytes) / 2**30:.2f} GiB "
            f"> {device.name} capacity"
        )

    # ---- bottleneck 1: memory bandwidth --------------------------------
    xt = x_access_model(
        device, nnz, n_cols,
        feats.avg_num_neighbours, feats.cross_row_similarity,
        value_bytes=value_bytes,
    )
    bytes_total = (
        fmt_bytes
        + (n_cols + n_rows) * value_bytes
        + xt.extra_bytes
    )
    working_set = fmt_bytes + x_y_bytes
    bw_gbs = effective_bandwidth(device, working_set)
    bw_gbs *= device.spmv_bw_efficiency
    if device.is_cpu:
        # Short rows break the per-row access streams before hardware
        # prefetchers ramp up, so sustained bandwidth degrades with the
        # average row length (the CPU half of Fig 4's ~2x row-size gap).
        avg_row = nnz / max(n_rows, 1)
        bw_gbs *= avg_row / (avg_row + 2.0)
    t_stream = bytes_total / (bw_gbs * 1e9)
    # GPUs additionally pay for gather coalescing: scattered x lanes drain
    # L2 sector bandwidth even when x is cache-resident (Fig 6's GPU-only
    # irregularity penalty).  The gather path overlaps the DRAM stream, so
    # the slower of the two paces the kernel.
    if device.is_gpu:
        # Scattered gathers sustain ~1/3 of streaming L2 bandwidth
        # (sector replays + bank conflicts).
        t_gather = xt.gather_bytes / (device.llc_bw_gbs * 0.35 * 1e9)
        t_mem = max(t_stream, t_gather)
    else:
        t_gather = 0.0
        t_mem = t_stream

    # ---- bottleneck 2: compute / low ILP --------------------------------
    if stats.simd_friendly:
        simd_util = max(
            instance.simd_utilisation(device.simd_width_dp),
            1.0 / device.simd_width_dp,
        )
    else:
        simd_util = 1.0 / device.simd_width_dp
    eff_gflops = max(device.peak_gflops * peak_mult * simd_util, 1e-3)
    t_flops = 2.0 * stored / (eff_gflops * 1e9)
    # Per-row loop/bookkeeping overhead, parallel over cores.
    t_rows = (
        n_rows * device.row_start_cycles
        / (device.clock_ghz * 1e9 * device.cores)
    )
    t_comp = t_flops + t_rows

    # ---- bottleneck 3: memory latency -----------------------------------
    misses = xt.miss_rate * nnz
    t_lat = (
        misses * device.mem_latency_ns * 1e-9
        / (device.n_workers * device.latency_hiding)
    )

    # ---- bottleneck 4: load imbalance ------------------------------------
    strategy = getattr(fmt_cls, "partition_strategy", "row_block")
    imb = instance.imbalance(
        strategy, device.n_workers, device.simd_width_dp
    )

    # ---- composition ------------------------------------------------------
    # Memory and compute streams overlap; exposed latency adds on top.
    t_work = max(t_mem, t_comp) + t_lat
    utilisation = nnz / (nnz + device.saturation_nnz)
    t_exec = t_work * imb.factor / max(utilisation, 1e-9)
    t_total = t_exec + device.kernel_launch_us * 1e-6

    sigma = noise_sigma
    noise = measurement_noise(
        device.name, f"{format_name}@{precision}",
        instance.name or (n_rows, n_cols, nnz), seed,
        **({"sigma": sigma} if sigma is not None else {}),
    )
    t_total *= noise

    flops_useful = 2.0 * nnz
    gflops = flops_useful / t_total / 1e9

    power = EnergyModel(device).estimate(
        gflops=gflops,
        time_s=t_total,
        bytes_moved=bytes_total,
        flops=flops_useful,
    )

    # Dominant bottleneck: largest exposed time contribution.
    contributions = {
        "memory_bandwidth": t_mem,
        "low_ilp": t_comp,
        "memory_latency": t_lat,
        "load_imbalance": (imb.factor - 1.0) * t_work,
    }
    bottleneck = max(contributions, key=contributions.get)

    return SpmvMeasurement(
        device=device.name,
        format=format_name,
        matrix=instance.name,
        gflops=gflops,
        time_s=t_total,
        watts=power.watts,
        gflops_per_watt=power.gflops_per_watt,
        bottleneck=bottleneck,
        diagnostics={
            "t_mem": t_mem,
            "t_comp": t_comp,
            "t_lat": t_lat,
            "imbalance": imb.factor,
            "utilisation": utilisation,
            "bw_gbs": bw_gbs,
            "miss_rate": xt.miss_rate,
            "padding_ratio": stats.padding_ratio,
            "bytes_total": bytes_total,
            "simd_util": simd_util,
        },
    )


@dataclass(frozen=True)
class FormatSkip:
    """One format that refused (or overflowed on) a device, and why."""

    format: str
    reason: str
    capacity: bool  # True for CapacityError (hard storage overflow)


@dataclass(frozen=True)
class BestFormatOutcome:
    """Result of a best-format search, including every skipped format.

    ``best`` is ``None`` when all formats failed (e.g. HBM capacity
    overflow on the FPGA) — ``skipped`` then explains each failure.
    """

    best: Optional[SpmvMeasurement]
    skipped: Tuple[FormatSkip, ...]
    attempted: Tuple[str, ...]

    @property
    def all_failed(self) -> bool:
        return self.best is None and bool(self.attempted)

    @property
    def skip_reasons(self) -> Dict[str, str]:
        """``{format: reason}`` for every skipped format."""
        return {s.format: s.reason for s in self.skipped}


def simulate_best_detailed(
    instance: MatrixInstance,
    device: Device,
    formats: Optional[List[str]] = None,
    seed: int = 0,
    noise_sigma: Optional[float] = None,
    precision: str = "fp64",
) -> BestFormatOutcome:
    """Best measurement across the device's formats, with the reason for
    every format that was skipped (the paper reports the best-performing
    format per matrix/device; Section V-A's VSL/HBM failures motivate the
    skip accounting)."""
    names = tuple(formats if formats is not None else device.formats)
    best: Optional[SpmvMeasurement] = None
    skipped: List[FormatSkip] = []
    for name in names:
        try:
            m = simulate_spmv(
                instance, name, device, seed=seed, noise_sigma=noise_sigma,
                precision=precision,
            )
        except FormatError as exc:
            skipped.append(FormatSkip(
                format=name,
                reason=str(exc),
                capacity=isinstance(exc, CapacityError),
            ))
            continue
        if best is None or m.gflops > best.gflops:
            best = m
    return BestFormatOutcome(
        best=best, skipped=tuple(skipped), attempted=names
    )


def simulate_best(
    instance: MatrixInstance,
    device: Device,
    formats: Optional[List[str]] = None,
    seed: int = 0,
    noise_sigma: Optional[float] = None,
    precision: str = "fp64",
) -> Optional[SpmvMeasurement]:
    """Best measurement across the device's formats (the paper reports the
    best-performing format per matrix/device).

    Formats that refuse the matrix are skipped; returns ``None`` when every
    format fails (e.g. HBM capacity overflow on the FPGA).  Use
    :func:`simulate_best_detailed` to learn *why* formats were skipped.
    """
    return simulate_best_detailed(
        instance, device, formats=formats, seed=seed,
        noise_sigma=noise_sigma, precision=precision,
    ).best

"""Reproducible measurement noise.

Real SpMV timings jitter a few percent run-to-run (the paper averages 128
iterations x 5 experiments).  The simulator adds a small multiplicative
lognormal perturbation, deterministically seeded from the experiment
coordinates so every rerun of a bench reproduces the same "measurements".

The noise is *counter-based*: each experiment coordinate (device, format,
matrix) is hashed once with SHA-256, the per-run seed is folded in with a
splitmix64 finaliser chain, and the lognormal deviate comes from a
Box-Muller transform of two splitmix64-derived uniforms.  Unlike a
stateful RNG object, this pipeline is pure array arithmetic, so the
batched grid simulator (:mod:`repro.perfmodel.batch`) evaluates millions
of noise factors in one NumPy pass.

The scalar :func:`measurement_noise` is a hand-synchronised *mirror* of
:func:`noise_factors`, not a call into it: its integer mixing runs on
exact mod-2^64 Python ints (:func:`_mix_int`, value-for-value equal to
the uint64 :func:`_mix`) because constructing arrays per scalar query
costs more than the whole computation.  ANY edit to one pipeline (salts,
mixing constants, the uniform/Box-Muller derivation) MUST be applied to
both — ``test_noise_scalar_equals_vectorised`` and the grid agreement
suite enforce the bit-identity and will fail on drift.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "measurement_noise",
    "noise_factors",
    "component_hash",
    "NOISE_SIGMA",
]

NOISE_SIGMA = 0.04  # ~4% run-to-run spread

# splitmix64 finaliser constants (Steele et al., "Fast splittable
# pseudorandom number generators").
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
# Distinct salts decorrelate the two uniforms drawn from one seed.
_U1_SALT = np.uint64(0xD1B54A32D192ED03)
_U2_SALT = np.uint64(0x8BB84B93962EACC9)

_TWO_M53 = 2.0 ** -53


_MASK64 = (1 << 64) - 1


def _mix(x: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser over a uint64 array (wrapping arithmetic)."""
    x = x + _GAMMA
    x = (x ^ (x >> np.uint64(30))) * _MIX1
    x = (x ^ (x >> np.uint64(27))) * _MIX2
    return x ^ (x >> np.uint64(31))


def _mix_int(x: int) -> int:
    """The same splitmix64 finaliser on Python ints (explicit mod-2^64
    wrap), exactly matching :func:`_mix` value-for-value — the fast path
    for one-off scalar noise queries."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def component_hash(part) -> np.uint64:
    """Stable 64-bit hash of one experiment coordinate.

    Coordinates are stringified exactly as the historical seed derivation
    did, so any hashable/printable key (names, tuples, ints) works.
    """
    digest = hashlib.sha256(str(part).encode()).digest()
    return np.uint64(int.from_bytes(digest[:8], "little"))


def noise_factors(
    device_h,
    format_h,
    matrix_h,
    seed: int = 0,
    sigma: float = NOISE_SIGMA,
) -> np.ndarray:
    """Noise factors for arrays of hashed experiment coordinates.

    ``device_h``/``format_h``/``matrix_h`` are :func:`component_hash`
    values (uint64 scalars or arrays); they broadcast against each other,
    so a grid evaluation passes e.g. shapes ``(n_matrices, 1)`` and
    ``(n_cells,)``.  Lognormal with median 1; ``sigma <= 0`` returns ones.
    """
    device_h = np.asarray(device_h, dtype=np.uint64)
    format_h = np.asarray(format_h, dtype=np.uint64)
    matrix_h = np.asarray(matrix_h, dtype=np.uint64)
    shape = np.broadcast_shapes(device_h.shape, format_h.shape,
                                matrix_h.shape)
    if sigma <= 0:
        return np.ones(shape)
    h = _mix(device_h)
    h = _mix(h ^ format_h)
    h = _mix(h ^ matrix_h)
    h = _mix(h ^ np.uint64(int(seed) % (1 << 64)))
    s1 = _mix(h ^ _U1_SALT)
    s2 = _mix(h ^ _U2_SALT)
    # 53-bit mantissas: u1 in (0, 1] (safe for log), u2 in [0, 1).
    u1 = ((s1 >> np.uint64(11)).astype(np.float64) + 1.0) * _TWO_M53
    u2 = (s2 >> np.uint64(11)).astype(np.float64) * _TWO_M53
    z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
    out = np.exp(sigma * z)
    return out.reshape(shape)


def measurement_noise(
    device_name: str,
    format_name: str,
    matrix_key,
    seed: int = 0,
    sigma: float = NOISE_SIGMA,
) -> float:
    """Multiplicative noise factor for one (device, format, matrix) run.

    Lognormal with median 1; ``sigma=0`` disables noise entirely.
    Bit-for-bit identical to :func:`noise_factors` on the same hashed
    coordinates — by *mirroring* it step for step (exact mod-2^64 Python
    ints through the same splitmix64 chain, then the same NumPy ufuncs),
    not by calling it.  Keep the two pipelines in sync when editing
    either (see the module docstring).
    """
    if sigma <= 0:
        return 1.0
    h = _mix_int(int(component_hash(device_name)))
    h = _mix_int(h ^ int(component_hash(format_name)))
    h = _mix_int(h ^ int(component_hash(matrix_key)))
    h = _mix_int(h ^ (int(seed) % (1 << 64)))
    s1 = _mix_int(h ^ int(_U1_SALT))
    s2 = _mix_int(h ^ int(_U2_SALT))
    u1 = ((s1 >> 11) + 1.0) * _TWO_M53
    u2 = (s2 >> 11) * _TWO_M53
    z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
    return float(np.exp(sigma * z))

"""Reproducible measurement noise.

Real SpMV timings jitter a few percent run-to-run (the paper averages 128
iterations x 5 experiments).  The simulator adds a small multiplicative
lognormal perturbation, deterministically seeded from the experiment
coordinates so every rerun of a bench reproduces the same "measurements".
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["measurement_noise", "NOISE_SIGMA"]

NOISE_SIGMA = 0.04  # ~4% run-to-run spread


def _stable_seed(*parts) -> int:
    """64-bit seed from a stable hash of the experiment coordinates."""
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def measurement_noise(
    device_name: str,
    format_name: str,
    matrix_key,
    seed: int = 0,
    sigma: float = NOISE_SIGMA,
) -> float:
    """Multiplicative noise factor for one (device, format, matrix) run.

    Lognormal with median 1; ``sigma=0`` disables noise entirely.
    """
    if sigma <= 0:
        return 1.0
    rng = np.random.default_rng(
        _stable_seed(device_name, format_name, matrix_key, seed)
    )
    return float(np.exp(rng.normal(0.0, sigma)))

"""Fused cold-path sweeps: spec chunks scored without instances.

The instance cold path materialises one :class:`MatrixInstance` per spec
(value arrays included), computes format statistics one matrix at a time
and only then enters the vectorised grid scorer.  This module feeds the
same scorer (:func:`repro.perfmodel.batch._score_grid`) straight from a
chunk of :class:`~repro.core.generator.MatrixSpec`:

1. :func:`~repro.core.generator.structure_batch` emits the chunk's raw
   CSR *structure* arrays (the value draw is the last RNG use of every
   generation engine, so skipping it leaves the structure bit-identical);
2. :meth:`~repro.formats.base.SparseFormat.stats_from_csr_batch` turns
   the stacked structure into per-format stat columns — vectorised
   overrides for the closed-form formats, scalar fallback (on zero-data
   matrices) for the rest;
3. SIMD utilisation and imbalance factors come from the shared
   row-length profile through histogram/prefix-sum twins
   (:func:`~repro.devices.parallel.imbalance_for_strategy_fast`).

Every expression mirrors the :class:`MatrixInstance` computation
operation-for-operation, so the fused sweep is **row-for-row
bit-identical** to the instance path — same measurements, same noise,
same skip reasons, same category order.  The agreement suite in
``tests/pipeline/test_fused_agreement.py`` locks that down.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.features import Features, extract_features
from ..core.generator import MatrixSpec, row_length_profile, structure_batch
from ..core.matrix import CSRMatrix, CSRStructBatch
from ..devices.parallel import imbalance_for_strategy_fast, sell_chunk_widths
from ..formats.base import FormatError, FormatStatsBatch, get_format
from .instance import MAX_PROFILE_ROWS
from .noise import component_hash

__all__ = ["FusedSpecSource"]

# Strategies whose fast twins share the profile's integer prefix sum.
_CSUM_STRATEGIES = ("row_block", "nnz_row")


class FusedSpecSource:
    """Matrix-axis source for ``_score_grid`` built from specs alone.

    Implements the :class:`repro.perfmodel.batch._InstanceSource`
    protocol.  The chunk's CSR structure is generated once
    (:func:`structure_batch`); declared-scale scalars, features, format
    statistics, SIMD utilisation and imbalance factors are then derived
    columnar where closed forms exist and from memoised zero-data
    matrices where they don't — never from value payloads.
    """

    # ``GridResult.instances`` stays empty on the fused path; the table
    # assembly gathers feature columns from this source instead.
    instances: Tuple = ()

    def __init__(
        self,
        specs: Sequence[MatrixSpec],
        names: Sequence[str],
        max_nnz: Optional[int] = None,
        batch: Optional[CSRStructBatch] = None,
    ):
        self.specs = list(specs)
        self._names = list(names)
        if len(self._names) != len(self.specs):
            raise ValueError("one name per spec required")
        self.max_nnz = max_nnz
        self.batch = (
            structure_batch(self.specs, max_nnz=max_nnz)
            if batch is None else batch
        )
        if len(self.batch) != len(self.specs):
            raise ValueError("structure batch does not match the specs")

        # Declared-scale scalars, columnar (MatrixInstance.scale / .nnz).
        self._decl_rows = np.array(
            [s.n_rows for s in self.specs], dtype=np.int64
        )
        self._decl_cols = np.array(
            [s.n_cols for s in self.specs], dtype=np.int64
        )
        self.scale = np.maximum(
            1.0, self._decl_rows / np.maximum(self.batch.n_rows, 1)
        )
        self.nnz = np.round(self.batch.nnz * self.scale).astype(np.int64)

        self._mats: Dict[int, CSRMatrix] = {}
        self._feats: Dict[int, Features] = {}
        self._profiles: Dict[int, np.ndarray] = {}
        self._csums: Dict[int, np.ndarray] = {}
        self._hists: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._sell_widths: Dict[int, np.ndarray] = {}
        self._warp_cycles: Dict[Tuple[int, int], np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.specs)

    def names(self) -> List[str]:
        return list(self._names)

    # -- memoised per-spec structure ----------------------------------
    def matrix(self, i: int) -> CSRMatrix:
        """Zero-data representative matrix ``i`` (structure-only users)."""
        if i not in self._mats:
            self._mats[i] = self.batch.matrix(i)
        return self._mats[i]

    def features(self, i: int) -> Features:
        """Measured features at declared scale (``MatrixInstance.features``)."""
        if i not in self._feats:
            measured = extract_features(self.matrix(i))
            nnz = int(self.nnz[i])
            n_rows = int(self._decl_rows[i])
            self._feats[i] = replace(
                measured,
                mem_footprint_mb=(
                    (nnz * 12.0 + (n_rows + 1) * 4.0) / (1024 ** 2)
                ),
                n_rows=n_rows,
                n_cols=int(self._decl_cols[i]),
                nnz=nnz,
            )
        return self._feats[i]

    def profile(self, i: int) -> np.ndarray:
        """Row-length profile at declared scale (``row_profile``)."""
        if i not in self._profiles:
            spec = self.specs[i]
            if self.scale[i] <= 1.0:
                self._profiles[i] = self.batch.lengths_of(i)
            else:
                rows = min(spec.n_rows, MAX_PROFILE_ROWS)
                rng = np.random.default_rng(spec.seed)
                self._profiles[i] = row_length_profile(
                    rows,
                    spec.n_cols,
                    spec.avg_nnz_per_row,
                    spec.std_ratio * spec.avg_nnz_per_row,
                    spec.skew_coeff,
                    rng,
                    spec.distribution,
                )
        return self._profiles[i]

    def _csum(self, i: int) -> np.ndarray:
        if i not in self._csums:
            self._csums[i] = np.concatenate(
                ([0], np.cumsum(self.profile(i)))
            )
        return self._csums[i]

    def _hist(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(values, counts) histogram of the positive profile lengths.

        ``bincount`` is O(n_rows + max_len) against ``np.unique``'s
        O(n_rows log n_rows) sort and yields the same ascending
        (values, counts) pairs; the sort stays as the fallback for
        profiles whose maximum row length would make the count array
        larger than the profile itself.
        """
        if i not in self._hists:
            prof = self.profile(i)
            max_len = int(prof.max()) if len(prof) else 0
            if 0 < max_len <= max(4 * len(prof), 1024):
                counts = np.bincount(prof)
                vals = np.nonzero(counts)[0]
                if len(vals) and vals[0] == 0:
                    vals = vals[1:]
                self._hists[i] = (vals, counts[vals])
            else:
                self._hists[i] = np.unique(
                    prof[prof > 0], return_counts=True
                )
        return self._hists[i]

    # -- _InstanceSource protocol -------------------------------------
    def scalar_arrays(self) -> Tuple[np.ndarray, ...]:
        n = len(self.specs)
        i_neigh = np.empty(n)
        i_sim = np.empty(n)
        i_noise_h = np.empty(n, dtype=np.uint64)
        for i in range(n):
            feats = self.features(i)
            i_neigh[i] = feats.avg_num_neighbours
            i_sim[i] = feats.cross_row_similarity
            key = self._names[i] or (
                int(self._decl_rows[i]), int(self._decl_cols[i]),
                int(self.nnz[i]),
            )
            i_noise_h[i] = component_hash(key)
        return (
            self.scale.astype(np.float64, copy=True),
            self.nnz.copy(),
            self._decl_rows.copy(),
            self._decl_cols.copy(),
            i_neigh,
            i_sim,
            i_noise_h,
        )

    def format_stats_columns(
        self, name: str
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
               np.ndarray, np.ndarray, Dict[int, str]]:
        n = len(self.specs)
        cls = get_format(name)
        if hasattr(cls, "stats_at_density"):
            # Density-corrected formats decide per matrix whether the
            # rectangular representative dilutes the per-column
            # population — same branch as MatrixInstance.format_stats.
            fsb = FormatStatsBatch.empty(n)
            for i in range(n):
                mat = self.matrix(i)
                rep_density = mat.nnz / max(mat.n_cols, 1)
                dec_density = int(self.nnz[i]) / max(
                    int(self._decl_cols[i]), 1
                )
                cell_density = None
                if rep_density > 0 and (
                    abs(dec_density / rep_density - 1.0) > 0.05
                ):
                    cell_density = dec_density / cls.N_CHANNELS
                try:
                    stats = (
                        cls.stats_at_density_from_csr(mat, cell_density)
                        if cell_density is not None
                        else cls.stats_from_csr(mat)
                    )
                except FormatError as exc:
                    fsb.fail[i] = True
                    fsb.fail_reason[i] = str(exc)
                    continue
                fsb.put(i, stats)
        else:
            mats = [self.matrix(i) for i in range(n)]
            fsb = cls.stats_from_csr_batch(self.batch, matrices=mats)
        useful = fsb.stored_elements - fsb.padding_elements
        pad = np.zeros(n)
        nz = useful != 0
        pad[nz] = fsb.padding_elements[nz] / useful[nz]
        return (
            fsb.memory_bytes, fsb.metadata_bytes, fsb.stored_elements,
            pad, fsb.simd_friendly, fsb.fail, fsb.fail_reason,
        )

    def simd_utilisation(self, i: int, width: int) -> float:
        if width <= 1:
            return 1.0
        vals, cnts = self._hist(i)
        if len(vals) == 0:
            return 1.0
        issued = (np.ceil(vals / width) * width * cnts).sum()
        return float((vals * cnts).sum() / issued)

    def imbalance_factor(
        self, i: int, strategy: str, workers: int, width: int
    ) -> float:
        """Imbalance via the fast dispatcher, sharing the profile's
        worker-independent precomputations: the prefix sum for the
        contiguous-block partitioners, the SELL chunk widths (one sort
        pipeline per profile instead of one per worker count) and the
        per-width warp-cycle counts."""
        csum = sell = cycles = None
        if strategy in _CSUM_STRATEGIES:
            csum = self._csum(i)
        elif strategy == "sell_chunk":
            if i not in self._sell_widths:
                self._sell_widths[i] = sell_chunk_widths(self.profile(i))
            sell = self._sell_widths[i]
        elif strategy == "warp_row":
            key = (i, width)
            if key not in self._warp_cycles:
                prof = self.profile(i)
                self._warp_cycles[key] = (prof + width - 1) // width
            cycles = self._warp_cycles[key]
        return imbalance_for_strategy_fast(
            strategy, self.profile(i), workers, width,
            csum=csum, sell_widths=sell, warp_cycles=cycles,
        ).factor

"""Structure-aware SpMV performance simulator."""
from .instance import MatrixInstance
from .simulator import (
    BOTTLENECKS,
    BestFormatOutcome,
    FormatSkip,
    SpmvMeasurement,
    simulate_best,
    simulate_best_detailed,
    simulate_spmv,
)
from .batch import GridResult, GridSkip, simulate_grid
from .fused import FusedSpecSource
from .noise import measurement_noise, noise_factors, NOISE_SIGMA

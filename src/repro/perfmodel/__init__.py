"""Structure-aware SpMV performance simulator."""
from .instance import MatrixInstance
from .simulator import SpmvMeasurement, simulate_spmv, simulate_best, BOTTLENECKS
from .noise import measurement_noise, NOISE_SIGMA

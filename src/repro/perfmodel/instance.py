"""Matrix instances: a materialised matrix plus its declared full scale.

Full-size paper matrices reach 2 GB in CSR; materialising thousands of
those in pure Python is infeasible, so dataset entries carry a
*representative* matrix (structurally faithful, capped nnz) together with
the declared :class:`~repro.core.generator.MatrixSpec`.  Scale-free
statistics (locality, padding ratios, SIMD utilisation) are measured on
the representative; size-dependent quantities (footprint, row count, the
row-length profile used for imbalance) come from the declared spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from ..core.features import Features, extract_features
from ..core.generator import MatrixSpec, row_length_profile
from ..core.matrix import CSRMatrix
from ..devices.parallel import ImbalanceStats, imbalance_for_strategy
from ..formats.base import FormatError, FormatStats, get_format

__all__ = ["MatrixInstance", "simd_utilisation_of_profile"]


def simd_utilisation_of_profile(
    row_profile: np.ndarray, simd_width: int
) -> float:
    """Fraction of SIMD lanes doing useful work under row-vectorisation."""
    if simd_width <= 1:
        return 1.0
    lengths = row_profile[row_profile > 0]
    if len(lengths) == 0:
        return 1.0
    issued = np.ceil(lengths / simd_width) * simd_width
    return float(lengths.sum() / issued.sum())

# Imbalance statistics converge long before this many rows; the cap bounds
# profile memory for multi-GB declared matrices.
MAX_PROFILE_ROWS = 2_000_000


@dataclass
class MatrixInstance:
    """A matrix to simulate: representative structure + declared scale."""

    matrix: CSRMatrix
    spec: Optional[MatrixSpec] = None
    name: str = ""

    # How `format_stats` computes structural statistics: "analytic" scores
    # via `SparseFormat.stats_from_csr` (closed forms over the CSR arrays,
    # no payload materialisation — the cold-sweep fast path), "materialise"
    # converts with `from_csr` and reduces, as the original engine did.
    # Both produce identical stats and raise identical errors (enforced by
    # tests/formats/test_stats_agreement.py); the switch exists for the
    # cold-sweep bench and as an escape hatch.  Class-level default;
    # assign per instance to override.
    stats_engine = "analytic"

    def __post_init__(self):
        self._features: Optional[Features] = None
        self._profile: Optional[np.ndarray] = None
        self._format_stats: Dict[str, FormatStats] = {}
        self._format_fail: Dict[str, str] = {}
        self._simd_util: Dict[int, float] = {}
        self._imbalance: Dict[tuple, ImbalanceStats] = {}

    # -- declared scale -------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.spec.n_rows if self.spec else self.matrix.n_rows

    @property
    def n_cols(self) -> int:
        return self.spec.n_cols if self.spec else self.matrix.n_cols

    @property
    def nnz(self) -> int:
        if self.spec is None:
            return self.matrix.nnz
        # Preserve the representative's realised density rather than the
        # nominal average (generation is stochastic).
        return int(round(self.matrix.nnz * self.scale))

    @property
    def scale(self) -> float:
        """Declared rows over representative rows (>= 1)."""
        if self.spec is None:
            return 1.0
        return max(1.0, self.spec.n_rows / max(self.matrix.n_rows, 1))

    @property
    def mem_footprint_mb(self) -> float:
        """Declared CSR footprint (paper f1)."""
        return (self.nnz * 12.0 + (self.n_rows + 1) * 4.0) / (1024**2)

    # -- cached statistics ----------------------------------------------
    @property
    def features(self) -> Features:
        """Measured features, with the footprint at declared scale."""
        if self._features is None:
            measured = extract_features(self.matrix)
            self._features = replace(
                measured,
                mem_footprint_mb=self.mem_footprint_mb,
                n_rows=self.n_rows,
                n_cols=self.n_cols,
                nnz=self.nnz,
            )
        return self._features

    def row_profile(self) -> np.ndarray:
        """Row-length profile at declared scale (capped), for imbalance.

        For un-scaled instances this is simply the measured row lengths;
        for scaled ones the profile is regenerated from the spec at (up to)
        ``MAX_PROFILE_ROWS`` rows so heavy rows keep their true *fraction*
        of the total work.
        """
        if self._profile is None:
            if self.spec is None or self.scale <= 1.0:
                self._profile = self.matrix.row_lengths
            else:
                rows = min(self.spec.n_rows, MAX_PROFILE_ROWS)
                rng = np.random.default_rng(self.spec.seed)
                self._profile = row_length_profile(
                    rows,
                    self.spec.n_cols,
                    self.spec.avg_nnz_per_row,
                    self.spec.std_ratio * self.spec.avg_nnz_per_row,
                    self.spec.skew_coeff,
                    rng,
                    self.spec.distribution,
                )
        return self._profile

    def simd_utilisation(self, simd_width: int) -> float:
        """Memoised SIMD utilisation of the row profile at ``simd_width``.

        The profile can span millions of rows, and the simulator asks for
        the same handful of widths on every ``(device, format)`` call — the
        per-width cache drops that O(n_rows) recomputation from warm runs.
        """
        if simd_width not in self._simd_util:
            self._simd_util[simd_width] = simd_utilisation_of_profile(
                self.row_profile(), simd_width
            )
        return self._simd_util[simd_width]

    def imbalance(
        self, strategy: str, n_workers: int, simd_width: int = 32
    ) -> ImbalanceStats:
        """Memoised load-imbalance statistics of the named partitioner.

        Keyed on the full ``(strategy, n_workers, simd_width)`` triple; the
        profile itself is fixed per instance, so every sweep revisit of the
        same device/format pair becomes a dictionary hit.
        """
        key = (strategy, n_workers, simd_width)
        if key not in self._imbalance:
            self._imbalance[key] = imbalance_for_strategy(
                strategy, self.row_profile(), n_workers, simd_width
            )
        return self._imbalance[key]

    def format_stats(self, format_name: str) -> FormatStats:
        """Score the format once and cache the structural statistics.

        The default ("analytic") engine computes the stats directly from
        the CSR structure arrays via
        :meth:`~repro.formats.base.SparseFormat.stats_from_csr` — the
        simulator never reads format payloads, so the full conversion
        (padded value/index allocation for ELL/SELL-C-σ/DIA/BCSR, scatter
        passes for the rest) is skipped entirely on cold sweeps.  Raises
        :class:`FormatError` (replayed from cache) when the format refuses
        the matrix — same error, same message, either engine.
        """
        if self.stats_engine not in ("analytic", "materialise"):
            raise ValueError(
                f"unknown stats_engine {self.stats_engine!r}; "
                "expected 'analytic' or 'materialise'"
            )
        if format_name in self._format_fail:
            raise FormatError(self._format_fail[format_name])
        if format_name not in self._format_stats:
            cls = get_format(format_name)
            analytic = self.stats_engine == "analytic"
            # Rectangular representatives dilute per-column populations,
            # which overstates the padding of column-density-sensitive
            # formats; those expose a density-corrected estimate.  Decide
            # the correction up front so each engine computes the stats
            # exactly once.
            cell_density = None
            if hasattr(cls, "stats_at_density"):
                rep_density = self.matrix.nnz / max(self.matrix.n_cols, 1)
                dec_density = self.nnz / max(self.n_cols, 1)
                if rep_density > 0 and (
                    abs(dec_density / rep_density - 1.0) > 0.05
                ):
                    cell_density = dec_density / cls.N_CHANNELS
            try:
                if analytic:
                    stats = (
                        cls.stats_at_density_from_csr(
                            self.matrix, cell_density
                        )
                        if cell_density is not None
                        else cls.stats_from_csr(self.matrix)
                    )
                else:
                    fmt = cls.from_csr(self.matrix)
                    stats = (
                        fmt.stats_at_density(cell_density)
                        if cell_density is not None
                        else fmt.stats()
                    )
            except FormatError as exc:
                self._format_fail[format_name] = str(exc)
                raise
            self._format_stats[format_name] = stats
        return self._format_stats[format_name]

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        spec: MatrixSpec,
        max_nnz: int = 200_000,
        name: str = "",
    ) -> "MatrixInstance":
        """Build the representative matrix for ``spec`` and wrap it."""
        return cls(matrix=spec.build(max_nnz=max_nnz), spec=spec, name=name)

    @classmethod
    def from_matrix(
        cls, matrix: CSRMatrix, name: str = ""
    ) -> "MatrixInstance":
        """Wrap a fully materialised matrix (no scaling)."""
        return cls(matrix=matrix, spec=None, name=name)

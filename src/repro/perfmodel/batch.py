"""Batched grid simulation: every (instance, device, format, precision)
cell of a sweep in one vectorised NumPy pass.

:func:`simulate_spmv` scores one triple per Python call; the paper's
protocol, the figure benches and the ML selector's training sweeps all
evaluate *grids* — every matrix against every device's Table-II format
list — re-entering the scalar simulator thousands of times.
:func:`simulate_grid` stacks the per-cell inputs (format statistics,
features, SIMD utilisation, imbalance factors, device parameters,
precision multipliers) into arrays and computes all four bottlenecks,
the capacity gate, measurement noise, energy and the argmax-bottleneck
attribution with broadcast array arithmetic.

The scalar :func:`simulate_spmv` remains the reference oracle: every
vectorised expression here mirrors the scalar expression graph
operation-for-operation (same associativity, same evaluation order, the
same ufuncs), so the batched grid is **row-for-row bit-identical** to
the scalar loop — including capacity-skip decisions and their reason
strings.  The agreement suite in ``tests/perfmodel/test_grid_agreement``
locks that property down over the full testbed grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..devices.base import Device
from ..devices.cache import CACHE_LINE_BYTES, GPU_SECTOR_BYTES, X_CACHE_FRACTION
from ..devices.energy import BW_WEIGHT, COMPUTE_WEIGHT
from ..formats.base import FormatError, get_format
from .instance import MatrixInstance
from .noise import NOISE_SIGMA, component_hash, noise_factors
from .simulator import BOTTLENECKS, PRECISIONS

__all__ = [
    "simulate_grid",
    "GridResult",
    "GridSkip",
    "GRID_DTYPE",
    "STATUS_OK",
    "STATUS_FORMAT_ERROR",
    "STATUS_CAPACITY_ERROR",
]

STATUS_OK = 0
STATUS_FORMAT_ERROR = 1
STATUS_CAPACITY_ERROR = 2

STATUS_LABELS = {
    STATUS_OK: "ok",
    STATUS_FORMAT_ERROR: "format_error",
    STATUS_CAPACITY_ERROR: "capacity_error",
}

GRID_DTYPE = np.dtype([
    ("instance", np.int32),
    ("device", np.int32),
    ("format", np.int32),
    ("precision", np.int32),
    ("status", np.int8),
    ("gflops", np.float64),
    ("time_s", np.float64),
    ("watts", np.float64),
    ("gflops_per_watt", np.float64),
    ("bottleneck", np.int8),
    # Diagnostics (the scalar measurement's diagnostics dict, columnar).
    ("t_mem", np.float64),
    ("t_comp", np.float64),
    ("t_lat", np.float64),
    ("imbalance", np.float64),
    ("utilisation", np.float64),
    ("bw_gbs", np.float64),
    ("miss_rate", np.float64),
    ("padding_ratio", np.float64),
    ("bytes_total", np.float64),
    ("simd_util", np.float64),
])

# Row-dict keys carried by :meth:`GridResult.to_rows` for each cell, on
# top of the per-instance feature columns (the selector's input schema).
MEASUREMENT_KEYS = ("gflops", "time_s", "watts", "gflops_per_watt")

_FEATURE_KEYS = (
    "mem_footprint_mb",
    "avg_nnz_per_row",
    "skew_coeff",
    "cross_row_similarity",
    "avg_num_neighbours",
)


@dataclass(frozen=True)
class GridSkip:
    """One skipped grid cell: which coordinates failed and why."""

    instance: str
    device: str
    format: str
    precision: str
    kind: str       # "format" | "capacity"
    reason: str


@dataclass
class GridResult:
    """Columnar result of one :func:`simulate_grid` evaluation.

    ``data`` is a structured array with one record per grid cell,
    ordered ``(precision, instance, device, format)`` — i.e. for each
    precision block, instances in input order, then each device's format
    list in its declared order, matching the scalar sweep's nested-loop
    order.  ``status`` distinguishes scored cells from format refusals
    and capacity overflows; skipped cells carry NaN measurements and
    their reason in ``skip_reasons``.
    """

    data: np.ndarray
    instance_names: List[str]
    device_names: List[str]
    format_names: List[str]
    precisions: Tuple[str, ...]
    skip_reasons: Dict[int, str]
    # (start, stop) slice of each device's formats inside one
    # (precision, instance) block of ``data``.
    device_slices: List[Tuple[int, int]]
    instances: Sequence[MatrixInstance] = field(default=(), repr=False)

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self.data)

    @property
    def block_size(self) -> int:
        """Cells per (precision, instance): sum of device format counts."""
        return self.device_slices[-1][1] if self.device_slices else 0

    def ok_mask(self) -> np.ndarray:
        return self.data["status"] == STATUS_OK

    def cell_index(self, precision: int, instance: int, offset: int) -> int:
        """Flat index of a cell from its block coordinates."""
        n_inst = len(self.instance_names)
        return (precision * n_inst + instance) * self.block_size + offset

    # ------------------------------------------------------------------
    def skips(self, kind: Optional[str] = None) -> List[GridSkip]:
        """Skipped cells with names and reasons (optionally one kind)."""
        want = {"format": STATUS_FORMAT_ERROR,
                "capacity": STATUS_CAPACITY_ERROR}
        statuses = (want[kind],) if kind else tuple(want.values())
        out = []
        for idx, reason in sorted(self.skip_reasons.items()):
            rec = self.data[idx]
            if rec["status"] not in statuses:
                continue
            out.append(GridSkip(
                instance=self.instance_names[rec["instance"]],
                device=self.device_names[rec["device"]],
                format=self.format_names[rec["format"]],
                precision=self.precisions[rec["precision"]],
                kind="capacity" if rec["status"] == STATUS_CAPACITY_ERROR
                else "format",
                reason=reason,
            ))
        return out

    def capacity_skip_set(self) -> set:
        """Coordinate tuples of capacity-gated cells (agreement checks)."""
        return {
            (s.instance, s.device, s.format, s.precision)
            for s in self.skips(kind="capacity")
        }

    # ------------------------------------------------------------------
    def best_per(self) -> np.ndarray:
        """Index of the best scored cell per (precision, instance, device).

        Vectorised replacement for the :func:`simulate_best` loop: within
        each device's format segment the highest ``gflops`` wins, ties
        resolved to the earliest format in the device's list (the scalar
        loop keeps the first strictly-greater measurement).  Entries are
        flat indices into ``data``; ``-1`` marks groups where every
        format was skipped.
        """
        n_prec = len(self.precisions)
        n_inst = len(self.instance_names)
        n_dev = len(self.device_names)
        block = self.block_size
        gf = self.data["gflops"].copy()
        gf[self.data["status"] != STATUS_OK] = -np.inf
        gf = gf.reshape(n_prec * n_inst, block)
        base = np.arange(n_prec * n_inst) * block
        best = np.full((n_prec * n_inst, n_dev), -1, dtype=np.int64)
        for d, (lo, hi) in enumerate(self.device_slices):
            seg = gf[:, lo:hi]
            if seg.shape[1] == 0:
                continue
            arg = np.argmax(seg, axis=1)
            found = seg[np.arange(len(seg)), arg] > -np.inf
            best[:, d] = np.where(found, base + lo + arg, -1)
        return best.reshape(n_prec, n_inst, n_dev)

    # ------------------------------------------------------------------
    def _feature_columns(self, instance: int) -> dict:
        inst = self.instances[instance]
        feats = inst.features
        cols = {k: getattr(feats, k) for k in _FEATURE_KEYS}
        cols["nnz"] = feats.nnz
        cols["n_rows"] = feats.n_rows
        return cols

    def iter_cells(self, best_only: bool = False) -> Iterator[int]:
        """Flat indices of scored cells in grid order (best per
        (precision, instance, device) when ``best_only``)."""
        if best_only:
            for idx in self.best_per().ravel():
                if idx >= 0:
                    yield int(idx)
            return
        status = self.data["status"]
        for idx in np.flatnonzero(status == STATUS_OK):
            yield int(idx)

    def row(self, idx: int, with_features: bool = True) -> dict:
        """The dict row of one scored cell (see ``docs/table_schema.md``).

        Raises :class:`ValueError` for skipped cells — they have no
        measurements (and their ``-1`` bottleneck sentinel must never be
        mistaken for a label)."""
        rec = self.data[idx]
        if rec["status"] != STATUS_OK:
            raise ValueError(
                f"cell {idx} was skipped "
                f"({STATUS_LABELS[int(rec['status'])]}: "
                f"{self.skip_reasons.get(idx, 'unknown')}); "
                "only scored cells have measurement rows"
            )
        out = {
            "matrix": self.instance_names[rec["instance"]],
            "instance": int(rec["instance"]),
        }
        if with_features and len(self.instances):
            out.update(self._feature_columns(int(rec["instance"])))
        out.update(
            device=self.device_names[rec["device"]],
            format=self.format_names[rec["format"]],
            precision=self.precisions[rec["precision"]],
            gflops=float(rec["gflops"]),
            time_s=float(rec["time_s"]),
            watts=float(rec["watts"]),
            gflops_per_watt=float(rec["gflops_per_watt"]),
            bottleneck=BOTTLENECKS[rec["bottleneck"]],
        )
        return out

    def to_rows(self, best_only: bool = False,
                with_features: bool = True) -> List[dict]:
        """Dict rows for the scored cells — the schema the measurement
        table, CSV export and :class:`~repro.ml.FormatSelector` consume."""
        return [self.row(i, with_features=with_features)
                for i in self.iter_cells(best_only=best_only)]


# ---------------------------------------------------------------------------
def _device_formats(
    devices: Sequence[Device], formats: Optional[Sequence[str]]
) -> List[List[str]]:
    """Per-device format name lists (explicit ``formats`` applies to all
    devices, mirroring the scalar sweep)."""
    if formats:
        names = list(formats)
        return [list(names) for _ in devices]
    return [list(dev.formats) for dev in devices]


class _InstanceSource:
    """:func:`_score_grid`'s view of a list of :class:`MatrixInstance`.

    The scoring kernel pulls everything about the matrix axis through this
    narrow interface — names, per-instance scalars, per-format stat
    columns, and lazily-requested SIMD utilisation / imbalance factors —
    so the fused cold path (:mod:`repro.perfmodel.fused`) can drive the
    identical kernel from columnar spec data without ever materialising
    instances.  This adapter reproduces the historical per-instance loops
    exactly, memoisation semantics included.
    """

    def __init__(self, instances: Sequence[MatrixInstance]):
        self.instances = list(instances)

    def __len__(self) -> int:
        return len(self.instances)

    def names(self) -> List[str]:
        return [inst.name for inst in self.instances]

    def scalar_arrays(self) -> Tuple[np.ndarray, ...]:
        """``(scale, nnz, n_rows, n_cols, neigh, sim, noise_hash)``."""
        n = len(self.instances)
        i_scale = np.empty(n)
        i_nnz = np.empty(n, dtype=np.int64)
        i_rows = np.empty(n, dtype=np.int64)
        i_cols = np.empty(n, dtype=np.int64)
        i_neigh = np.empty(n)
        i_sim = np.empty(n)
        i_noise_h = np.empty(n, dtype=np.uint64)
        for i, inst in enumerate(self.instances):
            i_scale[i] = inst.scale
            i_nnz[i] = inst.nnz
            i_rows[i] = inst.n_rows
            i_cols[i] = inst.n_cols
            feats = inst.features
            i_neigh[i] = feats.avg_num_neighbours
            i_sim[i] = feats.cross_row_similarity
            key = inst.name or (inst.n_rows, inst.n_cols, inst.nnz)
            i_noise_h[i] = component_hash(key)
        return i_scale, i_nnz, i_rows, i_cols, i_neigh, i_sim, i_noise_h

    def format_stats_columns(
        self, name: str
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
               np.ndarray, np.ndarray, Dict[int, str]]:
        """Stat columns ``(mem, meta, stored, pad_ratio, friendly, fail,
        reasons)`` of one format across all instances."""
        n = len(self.instances)
        mem = np.zeros(n, dtype=np.int64)
        meta = np.zeros(n, dtype=np.int64)
        stored = np.zeros(n, dtype=np.int64)
        pad = np.zeros(n)
        friendly = np.zeros(n, dtype=bool)
        fail = np.zeros(n, dtype=bool)
        reasons: Dict[int, str] = {}
        for i, inst in enumerate(self.instances):
            try:
                stats = inst.format_stats(name)
            except FormatError as exc:
                fail[i] = True
                reasons[i] = str(exc)
                continue
            mem[i] = stats.memory_bytes
            meta[i] = stats.metadata_bytes
            stored[i] = stats.stored_elements
            pad[i] = stats.padding_ratio
            friendly[i] = stats.simd_friendly
        return mem, meta, stored, pad, friendly, fail, reasons

    def simd_utilisation(self, i: int, width: int) -> float:
        return self.instances[i].simd_utilisation(width)

    def imbalance_factor(
        self, i: int, strategy: str, workers: int, width: int
    ) -> float:
        return self.instances[i].imbalance(strategy, workers, width).factor


def simulate_grid(
    instances: Sequence[MatrixInstance],
    devices: Sequence[Device],
    formats: Optional[Sequence[str]] = None,
    precisions: Sequence[str] = ("fp64",),
    seed: int = 0,
    noise_sigma: Optional[float] = None,
) -> GridResult:
    """Score the full (instance x device x format x precision) grid.

    Semantics per cell are exactly :func:`simulate_spmv`'s: formats that
    refuse a matrix become ``format_error`` cells, the device capacity
    gate becomes ``capacity_error`` cells (with the scalar exception's
    message as the reason), and every scored cell's measurements are
    bit-identical to the scalar call.  ``formats=None`` uses each
    device's Table-II list; an explicit list applies to every device.
    """
    return _score_grid(
        _InstanceSource(instances), devices, formats, precisions,
        seed, noise_sigma,
    )


def _score_grid(
    source,
    devices: Sequence[Device],
    formats: Optional[Sequence[str]] = None,
    precisions: Sequence[str] = ("fp64",),
    seed: int = 0,
    noise_sigma: Optional[float] = None,
) -> GridResult:
    """Score the grid for any matrix-axis ``source``.

    ``source`` follows the :class:`_InstanceSource` protocol; everything
    below this line is matrix-representation agnostic, so the fused cold
    path produces bit-identical cells by construction.
    """
    devices = list(devices)
    precisions = tuple(precisions)
    for prec in precisions:
        if prec not in PRECISIONS:
            raise ValueError(
                f"unknown precision {prec!r}; available: "
                f"{sorted(PRECISIONS)}"
            )
    fmt_lists = _device_formats(devices, formats)

    # Global format table in first-seen order (also validates names).
    fmt_index: Dict[str, int] = {}
    for names in fmt_lists:
        for name in names:
            if name not in fmt_index:
                get_format(name)  # raises KeyError for unknown formats
                fmt_index[name] = len(fmt_index)
    format_names = list(fmt_index)

    n_inst, n_dev, n_fmt = len(source), len(devices), len(format_names)
    n_prec = len(precisions)

    # -- (device, format) cell skeleton: one block per (prec, instance) --
    df_dev: List[int] = []
    df_fmt: List[int] = []
    device_slices: List[Tuple[int, int]] = []
    for d, names in enumerate(fmt_lists):
        lo = len(df_dev)
        for name in names:
            df_dev.append(d)
            df_fmt.append(fmt_index[name])
        device_slices.append((lo, len(df_dev)))
    df_dev_arr = np.asarray(df_dev, dtype=np.int64)
    df_fmt_arr = np.asarray(df_fmt, dtype=np.int64)
    n_df = len(df_dev)

    instance_names = source.names()
    device_names = [dev.name for dev in devices]

    empty = GridResult(
        data=np.zeros(0, dtype=GRID_DTYPE),
        instance_names=instance_names,
        device_names=device_names,
        format_names=format_names,
        precisions=precisions,
        skip_reasons={},
        device_slices=device_slices,
        instances=source.instances,
    )
    if n_inst == 0 or n_df == 0:
        return empty

    # -- per-instance scalars ------------------------------------------
    (i_scale, i_nnz, i_rows, i_cols, i_neigh, i_sim,
     i_noise_h) = source.scalar_arrays()

    # -- per-(instance, format) structural statistics ------------------
    s_mem = np.zeros((n_inst, n_fmt), dtype=np.int64)
    s_meta = np.zeros((n_inst, n_fmt), dtype=np.int64)
    s_stored = np.zeros((n_inst, n_fmt), dtype=np.int64)
    s_pad = np.zeros((n_inst, n_fmt))
    s_friendly = np.zeros((n_inst, n_fmt), dtype=bool)
    s_fail = np.zeros((n_inst, n_fmt), dtype=bool)
    fail_reason: Dict[Tuple[int, int], str] = {}
    used_fmt = sorted(set(df_fmt))
    for g in used_fmt:
        (s_mem[:, g], s_meta[:, g], s_stored[:, g], s_pad[:, g],
         s_friendly[:, g], s_fail[:, g],
         reasons) = source.format_stats_columns(format_names[g])
        for i, msg in reasons.items():
            fail_reason[(i, g)] = msg

    # -- per-device parameter arrays (derived exactly as the scalar
    #    path computes them, so every denominator matches bit-for-bit) --
    d_llc_bytes = np.array([dev.llc_bytes for dev in devices])
    d_llc_bw = np.array([dev.llc_bw_gbs for dev in devices])
    d_dram_bw = np.array([dev.dram_bw_gbs for dev in devices])
    d_dram_bytes = np.array([dev.dram_bytes for dev in devices])
    d_matrix_cap = np.array([dev.matrix_capacity_bytes for dev in devices])
    d_bw_eff = np.array([dev.spmv_bw_efficiency for dev in devices])
    d_is_cpu = np.array([dev.is_cpu for dev in devices])
    d_is_gpu = np.array([dev.is_gpu for dev in devices])
    d_peak = np.array([dev.peak_gflops for dev in devices])
    d_row_cycles = np.array([dev.row_start_cycles for dev in devices])
    d_row_denom = np.array(
        [dev.clock_ghz * 1e9 * dev.cores for dev in devices]
    )
    d_lat_ns = np.array([dev.mem_latency_ns for dev in devices])
    d_lat_denom = np.array(
        [dev.n_workers * dev.latency_hiding for dev in devices]
    )
    d_gather_denom = np.array(
        [dev.llc_bw_gbs * 0.35 * 1e9 for dev in devices]
    )
    d_sat = np.array([dev.saturation_nnz for dev in devices])
    d_launch_s = np.array(
        [dev.kernel_launch_us * 1e-6 for dev in devices]
    )
    d_idle = np.array([dev.idle_w for dev in devices])
    d_power_span = np.array(
        [dev.max_w - dev.idle_w for dev in devices]
    )
    d_dram_denom = np.array(
        [dev.dram_bw_gbs * 1e9 for dev in devices]
    )
    d_peak_denom = np.array(
        [dev.peak_gflops * 1e9 for dev in devices]
    )
    d_width = np.array([dev.simd_width_dp for dev in devices],
                       dtype=np.int64)
    d_inv_width = np.array(
        [1.0 / dev.simd_width_dp for dev in devices]
    )
    d_noise_h = np.array(
        [component_hash(dev.name) for dev in devices], dtype=np.uint64
    )

    # -- capacity gate, precomputed per precision ----------------------
    # simulate_spmv raises CapacityError *before* touching SIMD
    # utilisation or imbalance, so cells gated at every requested
    # precision must not trigger those (possibly expensive, per-profile)
    # measurements here either.
    mem_df_all = s_mem[:, df_fmt_arr]
    meta_df_all = s_meta[:, df_fmt_arr]
    i_scale_col = i_scale[:, None]
    i_xy_base = (i_cols + i_rows)[:, None]
    d_cap_df = d_matrix_cap[df_dev_arr]
    d_dram_df = d_dram_bytes[df_dev_arr]
    fmt_bytes_by_p: List[np.ndarray] = []
    x_y_bytes_by_p: List[np.ndarray] = []
    cap_fail_by_p: List[np.ndarray] = []
    for prec in precisions:
        value_bytes, _ = PRECISIONS[prec]
        value_fraction = value_bytes / 8.0
        fmt_value_bytes = (
            (mem_df_all - meta_df_all) * i_scale_col * value_fraction
        )
        fmt_bytes = meta_df_all * i_scale_col + fmt_value_bytes
        x_y_bytes = i_xy_base * value_bytes
        fmt_bytes_by_p.append(fmt_bytes)
        x_y_bytes_by_p.append(x_y_bytes)
        cap_fail_by_p.append(
            (fmt_bytes > d_cap_df) | (fmt_bytes + x_y_bytes > d_dram_df)
        )
    ok_df = ~s_fail[:, df_fmt_arr]
    # A cell is scoreable if its stats exist and at least one precision
    # clears the capacity gate.
    scoreable_df = ok_df & ~np.logical_and.reduce(cap_fail_by_p)

    # -- per-(instance, device-format) SIMD utilisation ----------------
    # simulate_spmv: friendly formats use max(simd_utilisation(width),
    # 1/width); unfriendly ones 1/width.  Compute the memoised
    # utilisation only for widths some friendly, scoreable cell needs.
    widths = sorted(set(int(w) for w in d_width))
    width_pos = {w: k for k, w in enumerate(widths)}
    util_tab = np.zeros((n_inst, len(widths)))
    friendly_df = s_friendly[:, df_fmt_arr]          # (n_inst, n_df)
    need_w = np.zeros((n_inst, len(widths)), dtype=bool)
    dev_w_pos = np.array([width_pos[int(w)] for w in d_width])
    cell_w_pos = dev_w_pos[df_dev_arr]               # (n_df,)
    need_cells = friendly_df & scoreable_df
    for k in range(len(widths)):
        need_w[:, k] = need_cells[:, cell_w_pos == k].any(axis=1)
    for i in range(n_inst):
        for w, k in width_pos.items():
            if need_w[i, k]:
                util_tab[i, k] = source.simd_utilisation(i, w)
    util_df = util_tab[:, cell_w_pos]                # (n_inst, n_df)
    inv_w_df = d_inv_width[df_dev_arr]
    simd_util_df = np.where(
        friendly_df, np.maximum(util_df, inv_w_df), inv_w_df
    )

    # -- per-(instance, device-format) imbalance factors ---------------
    fmt_strategy = [
        getattr(get_format(name), "partition_strategy", "row_block")
        for name in format_names
    ]
    # Deduplicate the (strategy, n_workers, simd_width) keys the cells
    # need; the instance-level memo makes repeats dictionary hits.
    df_keys: List[Tuple[str, int, int]] = []
    key_pos: Dict[Tuple[str, int, int], int] = {}
    df_key_idx = np.empty(n_df, dtype=np.int64)
    for j in range(n_df):
        dev = devices[df_dev[j]]
        key = (fmt_strategy[df_fmt[j]], dev.n_workers, dev.simd_width_dp)
        if key not in key_pos:
            key_pos[key] = len(df_keys)
            df_keys.append(key)
        df_key_idx[j] = key_pos[key]
    imb_tab = np.ones((n_inst, len(df_keys)))
    need_key = np.zeros((n_inst, len(df_keys)), dtype=bool)
    for k in range(len(df_keys)):
        need_key[:, k] = scoreable_df[:, df_key_idx == k].any(axis=1)
    for i in range(n_inst):
        for k, (strategy, workers, width) in enumerate(df_keys):
            if need_key[i, k]:
                imb_tab[i, k] = source.imbalance_factor(
                    i, strategy, workers, width
                )
    imb_df = imb_tab[:, df_key_idx]                  # (n_inst, n_df)

    # -- broadcast blocks ----------------------------------------------
    # Shapes: per-instance (n_inst, 1), per-cell (n_df,) -> (n_inst, n_df)
    scale = i_scale[:, None]
    nnz = i_nnz[:, None]
    n_rows = i_rows[:, None]
    n_cols = i_cols[:, None]
    neigh = i_neigh[:, None]
    sim = i_sim[:, None]

    stored_df = s_stored[:, df_fmt_arr]
    pad_df = s_pad[:, df_fmt_arr]

    llc_bytes = d_llc_bytes[df_dev_arr]
    llc_bw = d_llc_bw[df_dev_arr]
    dram_bw = d_dram_bw[df_dev_arr]
    bw_eff = d_bw_eff[df_dev_arr]
    is_cpu = d_is_cpu[df_dev_arr]
    is_gpu = d_is_gpu[df_dev_arr]
    peak = d_peak[df_dev_arr]
    row_cycles = d_row_cycles[df_dev_arr]
    row_denom = d_row_denom[df_dev_arr]
    lat_ns = d_lat_ns[df_dev_arr]
    lat_denom = d_lat_denom[df_dev_arr]
    gather_denom = d_gather_denom[df_dev_arr]
    sat = d_sat[df_dev_arr]
    launch_s = d_launch_s[df_dev_arr]
    idle_w = d_idle[df_dev_arr]
    power_span = d_power_span[df_dev_arr]
    dram_denom = d_dram_denom[df_dev_arr]
    peak_denom = d_peak_denom[df_dev_arr]
    dev_noise_h = d_noise_h[df_dev_arr]

    sigma = NOISE_SIGMA if noise_sigma is None else noise_sigma

    blocks: List[np.ndarray] = []
    skip_reasons: Dict[int, str] = {}
    for p, prec in enumerate(precisions):
        value_bytes, peak_mult = PRECISIONS[prec]

        # ---- storage split (simulate_spmv order, op for op; bytes and
        # the capacity verdict were precomputed above) -----------------
        fmt_bytes = fmt_bytes_by_p[p]
        stored = stored_df * scale
        x_y_bytes = x_y_bytes_by_p[p]
        capacity_fail = cap_fail_by_p[p]

        # ---- bottleneck 1: memory bandwidth --------------------------
        # x_access_model, vectorised
        x_bytes = n_cols * value_bytes
        budget = llc_bytes * X_CACHE_FRACTION
        coverage = np.where(
            x_bytes > 0, np.minimum(1.0, budget / x_bytes), 1.0
        )
        spatial_hit = np.minimum(neigh / 2.0, 1.0)
        temporal_hit = np.minimum(np.maximum(sim, 0.0), 1.0)
        miss = (1.0 - coverage) * (1.0 - spatial_hit) * (1.0 - temporal_hit)
        extra = miss * nnz * max(CACHE_LINE_BYTES - value_bytes, 0.0)
        gather_bytes = nnz * (
            spatial_hit * value_bytes
            + (1.0 - spatial_hit) * GPU_SECTOR_BYTES
        )

        bytes_total = fmt_bytes + (n_cols + n_rows) * value_bytes + extra
        working_set = fmt_bytes + x_y_bytes
        # effective_bandwidth, vectorised (incl. its ws<=0 early return)
        safe_ws = np.where(working_set > 0, working_set, 1.0)
        cached = np.minimum(1.0, llc_bytes / safe_ws)
        inv = cached / llc_bw + (1.0 - cached) / dram_bw
        bw_gbs = np.where(working_set > 0, 1.0 / inv, llc_bw)
        bw_gbs = bw_gbs * bw_eff
        avg_row = nnz / np.maximum(n_rows, 1)
        bw_gbs = np.where(
            is_cpu, bw_gbs * (avg_row / (avg_row + 2.0)), bw_gbs
        )
        t_stream = bytes_total / (bw_gbs * 1e9)
        t_gather = gather_bytes / gather_denom
        t_mem = np.where(is_gpu, np.maximum(t_stream, t_gather), t_stream)

        # ---- bottleneck 2: compute / low ILP -------------------------
        eff_gflops = np.maximum(peak * peak_mult * simd_util_df, 1e-3)
        t_flops = 2.0 * stored / (eff_gflops * 1e9)
        t_rows = n_rows * row_cycles / row_denom
        t_comp = t_flops + t_rows

        # ---- bottleneck 3: memory latency ----------------------------
        misses = miss * nnz
        t_lat = misses * lat_ns * 1e-9 / lat_denom

        # ---- bottleneck 4 + composition ------------------------------
        t_work = np.maximum(t_mem, t_comp) + t_lat
        utilisation = nnz / (nnz + sat)
        t_exec = t_work * imb_df / np.maximum(utilisation, 1e-9)
        t_total = t_exec + launch_s

        fmt_prec_h = np.array(
            [component_hash(f"{name}@{prec}") for name in format_names],
            dtype=np.uint64,
        )
        noise = noise_factors(
            dev_noise_h, fmt_prec_h[df_fmt_arr], i_noise_h[:, None],
            seed=seed, sigma=sigma,
        )
        t_total = t_total * noise

        flops_useful = 2.0 * nnz
        gflops = flops_useful / t_total / 1e9

        # EnergyModel.estimate / average_power, vectorised
        bw_u = (bytes_total / t_total) / dram_denom
        c_u = (flops_useful / t_total) / peak_denom
        bw_u = np.minimum(np.maximum(bw_u, 0.0), 1.0)
        c_u = np.minimum(np.maximum(c_u, 0.0), 1.0)
        activity = BW_WEIGHT * bw_u + COMPUTE_WEIGHT * c_u
        watts = idle_w + power_span * activity
        gflops_per_watt = np.where(watts > 0, gflops / watts, 0.0)

        # Dominant bottleneck: first index of the largest contribution,
        # matching the scalar dict-argmax (insertion order, first max).
        contributions = np.stack([
            t_mem,
            t_comp,
            t_lat,
            (imb_df - 1.0) * t_work,
        ])
        bottleneck = np.argmax(contributions, axis=0).astype(np.int8)

        # ---- assemble the precision block ----------------------------
        block = np.zeros((n_inst, n_df), dtype=GRID_DTYPE)
        block["instance"] = np.arange(n_inst, dtype=np.int32)[:, None]
        block["device"] = df_dev_arr.astype(np.int32)
        block["format"] = df_fmt_arr.astype(np.int32)
        block["precision"] = p
        fmt_fail = s_fail[:, df_fmt_arr]
        status = np.zeros((n_inst, n_df), dtype=np.int8)
        status[capacity_fail] = STATUS_CAPACITY_ERROR
        status[fmt_fail] = STATUS_FORMAT_ERROR
        block["status"] = status
        ok = status == STATUS_OK
        for name, arr in (
            ("gflops", gflops), ("time_s", t_total), ("watts", watts),
            ("gflops_per_watt", gflops_per_watt),
            ("t_mem", t_mem), ("t_comp", t_comp), ("t_lat", t_lat),
            ("imbalance", imb_df), ("utilisation", utilisation),
            ("bw_gbs", bw_gbs), ("miss_rate", miss),
            ("padding_ratio", pad_df), ("bytes_total", bytes_total),
            ("simd_util", simd_util_df),
        ):
            col = np.where(ok, arr, np.nan)
            block[name] = col
        block["bottleneck"] = np.where(ok, bottleneck, -1).astype(np.int8)

        # Skip reasons (rare; formatted per cell, matching the scalar
        # exception messages byte for byte).
        base = p * n_inst * n_df
        need_gib = (fmt_bytes + x_y_bytes) / 2**30
        cap_cells = np.argwhere(capacity_fail & ~fmt_fail)
        for i, j in cap_cells:
            fmt_name = format_names[df_fmt[j]]
            dev_name = device_names[df_dev[j]]
            skip_reasons[base + i * n_df + j] = (
                f"{fmt_name} needs {need_gib[i, j]:.2f} GiB "
                f"> {dev_name} capacity"
            )
        fail_cells = np.argwhere(fmt_fail)
        for i, j in fail_cells:
            skip_reasons[base + i * n_df + j] = fail_reason[(i, df_fmt[j])]

        blocks.append(block.reshape(-1))

    return GridResult(
        data=np.concatenate(blocks),
        instance_names=instance_names,
        device_names=device_names,
        format_names=format_names,
        precisions=precisions,
        skip_reasons=skip_reasons,
        device_slices=device_slices,
        instances=source.instances,
    )

"""Graph-derived sparse matrices (optional, requires networkx).

The paper's motivation spans scientific computing *and* graph processing;
these builders produce adjacency/Laplacian matrices with the sparsity
archetypes the validation suite contains: scale-free webs (webbase,
soc-LiveJournal), near-regular meshes (delaunay, mc2depi) and small-world
networks.  Used by the ``graph_workloads`` example and the feature tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .matrix import CSRMatrix, csr_from_coo

__all__ = [
    "from_networkx",
    "scale_free_matrix",
    "mesh2d_matrix",
    "small_world_matrix",
    "laplacian_matrix",
]


def _require_networkx():
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - env without networkx
        raise ImportError(
            "networkx is required for graph-derived matrices"
        ) from exc
    return nx


def from_networkx(graph, weight: Optional[str] = None) -> CSRMatrix:
    """Adjacency matrix of a (di)graph as :class:`CSRMatrix`.

    Unweighted edges get value 1.0; with ``weight`` set, the named edge
    attribute is used (missing attributes default to 1.0).
    """
    nodes = list(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    rows, cols, vals = [], [], []
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, 1.0)) if weight else 1.0
        rows.append(index[u])
        cols.append(index[v])
        vals.append(w)
        if not graph.is_directed():
            rows.append(index[v])
            cols.append(index[u])
            vals.append(w)
    return csr_from_coo(
        n, n,
        np.array(rows, dtype=np.int64) if rows else np.zeros(0, np.int64),
        np.array(cols, dtype=np.int64) if cols else np.zeros(0, np.int64),
        np.array(vals, dtype=np.float64) if vals else np.zeros(0),
    )


def scale_free_matrix(n: int, m: int = 4, seed: int = 0) -> CSRMatrix:
    """Barabási–Albert adjacency: heavy-tailed rows (webbase-like skew)."""
    nx = _require_networkx()
    return from_networkx(nx.barabasi_albert_graph(n, m, seed=seed))


def mesh2d_matrix(side: int) -> CSRMatrix:
    """2-D grid adjacency: banded, regular (mesh/PDE-like)."""
    nx = _require_networkx()
    g = nx.grid_2d_graph(side, side)
    return from_networkx(g)


def small_world_matrix(
    n: int, k: int = 6, p: float = 0.1, seed: int = 0
) -> CSRMatrix:
    """Watts–Strogatz adjacency: banded with random long-range hops."""
    nx = _require_networkx()
    return from_networkx(nx.watts_strogatz_graph(n, k, p, seed=seed))


def laplacian_matrix(adjacency: CSRMatrix) -> CSRMatrix:
    """Combinatorial Laplacian ``D - A`` of an adjacency matrix."""
    if adjacency.n_rows != adjacency.n_cols:
        raise ValueError("adjacency must be square")
    degrees = adjacency.spmv(np.ones(adjacency.n_cols))
    rows = np.repeat(
        np.arange(adjacency.n_rows, dtype=np.int64), adjacency.row_lengths
    )
    all_rows = np.concatenate(
        [rows, np.arange(adjacency.n_rows, dtype=np.int64)]
    )
    all_cols = np.concatenate(
        [adjacency.indices.astype(np.int64),
         np.arange(adjacency.n_rows, dtype=np.int64)]
    )
    all_vals = np.concatenate([-adjacency.data, degrees])
    return csr_from_coo(
        adjacency.n_rows, adjacency.n_cols, all_rows, all_cols, all_vals
    )

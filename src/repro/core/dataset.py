"""Dataset containers: lazily materialised matrix instances + measurements.

A :class:`Dataset` owns a list of specs and materialises
:class:`~repro.perfmodel.instance.MatrixInstance` objects on demand
(generation dominates runtime, so instances are cached).  The
:func:`sweep` helper runs the simulator across devices/formats and
returns a columnar :class:`~repro.core.table.SweepTable` that the
analysis, ml and experiment layers consume directly.

:func:`spec_rows` (scalar, dict rows) and :func:`grid_spec_rows`
(batched, dict rows) remain the reference paths the agreement suites
compare against; :func:`grid_spec_table` is the production path — it
assembles the table's columns straight from the grid simulator's
structured array, without materialising a dict per row.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..devices.base import Device
from .generator import MatrixSpec
from .table import SweepTable

__all__ = ["Dataset", "sweep", "spec_rows", "grid_spec_rows",
           "grid_spec_table", "fused_spec_table", "SweepTable"]

DEFAULT_MAX_NNZ = 100_000


class Dataset:
    """A list of matrix specs with cached instances.

    ``cache`` is an optional persistent instance store (see
    :class:`repro.pipeline.InstanceCache`): when set, :meth:`instance`
    first consults it before materialising the matrix from its spec.
    """

    def __init__(
        self,
        specs: Sequence[MatrixSpec],
        max_nnz: int = DEFAULT_MAX_NNZ,
        name: str = "dataset",
        cache=None,
    ):
        self.specs = list(specs)
        self.max_nnz = max_nnz
        self.name = name
        self.cache = cache
        self._instances: Dict[int, "MatrixInstance"] = {}

    def __len__(self) -> int:
        return len(self.specs)

    def instance(self, i: int):
        """The (cached) representative instance for spec ``i``."""
        from ..perfmodel.instance import MatrixInstance

        if i not in self._instances:
            name = f"{self.name}[{i}]"
            inst = None
            if self.cache is not None:
                inst = self.cache.fetch(self.specs[i], self.max_nnz, name)
            if inst is None:
                inst = MatrixInstance.from_spec(
                    self.specs[i], max_nnz=self.max_nnz, name=name
                )
            self._instances[i] = inst
        return self._instances[i]

    def instances(self) -> Iterable:
        for i in range(len(self)):
            yield self.instance(i)

    def drop_cache(self) -> None:
        self._instances.clear()


def _base_row(dataset: Dataset, i: int) -> dict:
    """Per-spec columns shared by every measurement row of spec ``i``
    (features at declared scale + requested grid coordinates).  Both the
    scalar :func:`spec_rows` loop and the batched :func:`grid_spec_rows`
    path build on this, which keeps their row schemas identical."""
    inst = dataset.instance(i)
    feats = inst.features
    return {
        "matrix": inst.name,
        "spec_index": i,
        "mem_footprint_mb": feats.mem_footprint_mb,
        "avg_nnz_per_row": feats.avg_nnz_per_row,
        "skew_coeff": feats.skew_coeff,
        "cross_row_similarity": feats.cross_row_similarity,
        "avg_num_neighbours": feats.avg_num_neighbours,
        "nnz": feats.nnz,
        "n_rows": feats.n_rows,
        # requested (grid) coordinates, for exact binning
        "req_footprint_mb": dataset.specs[i].mem_footprint_mb,
        "req_avg_nnz": dataset.specs[i].avg_nnz_per_row,
        "req_skew": dataset.specs[i].skew_coeff,
        "req_sim": dataset.specs[i].cross_row_sim,
        "req_neigh": dataset.specs[i].avg_num_neigh,
    }


def spec_rows(
    dataset: Dataset,
    i: int,
    devices: Sequence[Device],
    best_only: bool = True,
    formats: Optional[Sequence[str]] = None,
    seed: int = 0,
    precision: str = "fp64",
) -> List[dict]:
    """Measurement rows for spec ``i`` across ``devices`` — the scalar
    reference path.

    This is the unit of work of a sweep; the batched engine
    (:func:`grid_spec_rows`, the :mod:`repro.pipeline` default) produces
    row-for-row identical output through the vectorised grid simulator,
    a property the grid agreement suite locks down.
    """
    from ..formats.base import FormatError
    from ..perfmodel.simulator import simulate_best, simulate_spmv

    inst = dataset.instance(i)
    base = _base_row(dataset, i)
    rows: List[dict] = []
    for dev in devices:
        names = list(formats) if formats else list(dev.formats)
        if best_only:
            m = simulate_best(inst, dev, formats=names, seed=seed,
                              precision=precision)
            if m is None:
                continue
            rows.append(
                {**base, "device": dev.name, "format": m.format,
                 "gflops": m.gflops, "watts": m.watts,
                 "gflops_per_watt": m.gflops_per_watt,
                 "bottleneck": m.bottleneck}
            )
        else:
            for fmt in names:
                try:
                    m = simulate_spmv(inst, fmt, dev, seed=seed,
                                      precision=precision)
                except FormatError:
                    continue
                rows.append(
                    {**base, "device": dev.name, "format": fmt,
                     "gflops": m.gflops, "watts": m.watts,
                     "gflops_per_watt": m.gflops_per_watt,
                     "bottleneck": m.bottleneck}
                )
    return rows


def grid_spec_rows(
    dataset: Dataset,
    lo: int,
    hi: int,
    devices: Sequence[Device],
    best_only: bool = True,
    formats: Optional[Sequence[str]] = None,
    seed: int = 0,
    precision: str = "fp64",
) -> List[dict]:
    """Measurement rows for specs ``lo..hi`` via the batched grid
    simulator — row-for-row identical to calling :func:`spec_rows` per
    spec, but all (spec, device, format) cells are scored in one
    vectorised pass."""
    from ..perfmodel.batch import STATUS_OK, simulate_grid
    from ..perfmodel.simulator import BOTTLENECKS

    indices = list(range(lo, hi))
    instances = [dataset.instance(i) for i in indices]
    grid = simulate_grid(instances, devices, formats=formats, seed=seed,
                         precisions=(precision,))

    def measurement(idx: int) -> dict:
        rec = grid.data[idx]
        return {
            "device": grid.device_names[rec["device"]],
            "format": grid.format_names[rec["format"]],
            "gflops": float(rec["gflops"]),
            "watts": float(rec["watts"]),
            "gflops_per_watt": float(rec["gflops_per_watt"]),
            "bottleneck": BOTTLENECKS[rec["bottleneck"]],
        }

    rows: List[dict] = []
    best = grid.best_per()[0] if best_only else None
    for ci, i in enumerate(indices):
        base = _base_row(dataset, i)
        for d in range(len(devices)):
            if best_only:
                idx = int(best[ci, d])
                if idx < 0:
                    continue
                rows.append({**base, **measurement(idx)})
            else:
                f_lo, f_hi = grid.device_slices[d]
                for off in range(f_lo, f_hi):
                    idx = grid.cell_index(0, ci, off)
                    if grid.data[idx]["status"] != STATUS_OK:
                        continue
                    rows.append({**base, **measurement(idx)})
    return rows


def _first_seen_codes(values: np.ndarray, labels: Sequence[str]):
    """Categorical (codes, categories) with categories ordered by first
    appearance in ``values`` — the same encoding ``SweepTable.from_rows``
    produces from dict rows, so both engines emit identical tables."""
    uniq, first, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq))
    categories = [labels[int(uniq[pos])] for pos in order]
    return rank[inverse], categories


def _per_inst_columns(
    indices: Sequence[int],
    specs: Sequence[MatrixSpec],
    features_of: Callable[[int], "object"],
) -> Dict[str, np.ndarray]:
    """Per-spec scalar columns (measured features at declared scale plus
    requested grid coordinates), gathered once per chunk member.
    ``features_of`` maps a chunk-local index to its ``Features``."""
    n_inst = len(indices)
    per_inst = {
        "spec_index": np.empty(n_inst, dtype=np.int64),
        "mem_footprint_mb": np.empty(n_inst),
        "avg_nnz_per_row": np.empty(n_inst),
        "skew_coeff": np.empty(n_inst),
        "cross_row_similarity": np.empty(n_inst),
        "avg_num_neighbours": np.empty(n_inst),
        "nnz": np.empty(n_inst, dtype=np.int64),
        "n_rows": np.empty(n_inst, dtype=np.int64),
        "req_footprint_mb": np.empty(n_inst),
        "req_avg_nnz": np.empty(n_inst),
        "req_skew": np.empty(n_inst),
        "req_sim": np.empty(n_inst),
        "req_neigh": np.empty(n_inst),
    }
    for ci, i in enumerate(indices):
        feats = features_of(ci)
        spec = specs[i]
        per_inst["spec_index"][ci] = i
        per_inst["mem_footprint_mb"][ci] = feats.mem_footprint_mb
        per_inst["avg_nnz_per_row"][ci] = feats.avg_nnz_per_row
        per_inst["skew_coeff"][ci] = feats.skew_coeff
        per_inst["cross_row_similarity"][ci] = feats.cross_row_similarity
        per_inst["avg_num_neighbours"][ci] = feats.avg_num_neighbours
        per_inst["nnz"][ci] = feats.nnz
        per_inst["n_rows"][ci] = feats.n_rows
        per_inst["req_footprint_mb"][ci] = spec.mem_footprint_mb
        per_inst["req_avg_nnz"][ci] = spec.avg_nnz_per_row
        per_inst["req_skew"][ci] = spec.skew_coeff
        per_inst["req_sim"][ci] = spec.cross_row_sim
        per_inst["req_neigh"][ci] = spec.avg_num_neigh
    return per_inst


def _grid_sweep_table(
    grid, per_inst: Dict[str, np.ndarray], best_only: bool, precision: str
) -> SweepTable:
    """Assemble the measurement table from a scored grid plus the chunk's
    per-spec scalar columns — shared by the instance and fused paths, so
    both emit byte-identical tables by construction."""
    from ..perfmodel.batch import STATUS_OK
    from ..perfmodel.simulator import BOTTLENECKS

    if best_only:
        flat = grid.best_per().ravel()
        flat = flat[flat >= 0]
    else:
        flat = np.flatnonzero(grid.data["status"] == STATUS_OK)
    if len(flat) == 0:
        return SweepTable({})
    rec = grid.data[flat]

    inst_idx = rec["instance"].astype(np.int64)
    columns: Dict[str, np.ndarray] = {}
    categories: Dict[str, List[str]] = {}
    # Cell emission order is instance-major, so first-seen == sorted for
    # the matrix column; device/format/bottleneck need the rank pass.
    columns["matrix"], categories["matrix"] = _first_seen_codes(
        inst_idx, grid.instance_names
    )
    for name, arr in per_inst.items():
        columns[name] = arr[inst_idx]
    columns["device"], categories["device"] = _first_seen_codes(
        rec["device"].astype(np.int64), grid.device_names
    )
    columns["format"], categories["format"] = _first_seen_codes(
        rec["format"].astype(np.int64), grid.format_names
    )
    columns["precision"] = np.zeros(len(rec), dtype=np.int64)
    categories["precision"] = [precision]
    for key in ("gflops", "watts", "gflops_per_watt"):
        columns[key] = rec[key].astype(np.float64)
    columns["bottleneck"], categories["bottleneck"] = _first_seen_codes(
        rec["bottleneck"].astype(np.int64), BOTTLENECKS
    )
    return SweepTable(columns, categories)


def grid_spec_table(
    dataset: Dataset,
    lo: int,
    hi: int,
    devices: Sequence[Device],
    best_only: bool = True,
    formats: Optional[Sequence[str]] = None,
    seed: int = 0,
    precision: str = "fp64",
    instances: Optional[Sequence] = None,
) -> SweepTable:
    """Columnar measurement table for specs ``lo..hi`` — the production
    sweep path.

    Row-for-row identical (via ``to_rows()``) to :func:`grid_spec_rows`
    plus a constant ``precision`` column, but the columns are gathered
    straight from the grid simulator's structured array and the
    per-instance feature/spec scalars — no dict per row, ever.
    ``instances`` lets a caller that already materialised the chunk (the
    pipeline engine, which also owns cache write-back) pass it in; the
    default materialises through ``dataset.instance``.
    """
    from ..perfmodel.batch import simulate_grid

    indices = list(range(lo, hi))
    if instances is None:
        instances = [dataset.instance(i) for i in indices]
    elif len(instances) != len(indices):
        raise ValueError("instances must cover exactly specs lo..hi")
    grid = simulate_grid(instances, devices, formats=formats, seed=seed,
                         precisions=(precision,))
    per_inst = _per_inst_columns(
        indices, dataset.specs, lambda ci: instances[ci].features
    )
    return _grid_sweep_table(grid, per_inst, best_only, precision)


def fused_spec_table(
    dataset: Dataset,
    lo: int,
    hi: int,
    devices: Sequence[Device],
    best_only: bool = True,
    formats: Optional[Sequence[str]] = None,
    seed: int = 0,
    precision: str = "fp64",
) -> SweepTable:
    """Measurement table for specs ``lo..hi`` via the fused cold path.

    Specs go straight to CSR structure arrays, batched analytic format
    statistics and grid scoring — no :class:`MatrixInstance`, no value
    payloads, no cache traffic.  Output is row-for-row bit-identical to
    :func:`grid_spec_table` over the same chunk (the fused agreement
    suite locks this down); use it when the instance cache is cold and
    the matrices are not needed afterwards.
    """
    from ..perfmodel.batch import _score_grid
    from ..perfmodel.fused import FusedSpecSource

    indices = list(range(lo, hi))
    source = FusedSpecSource(
        [dataset.specs[i] for i in indices],
        [f"{dataset.name}[{i}]" for i in indices],
        max_nnz=dataset.max_nnz,
    )
    grid = _score_grid(source, devices, formats=formats, seed=seed,
                       precisions=(precision,))
    per_inst = _per_inst_columns(indices, dataset.specs, source.features)
    return _grid_sweep_table(grid, per_inst, best_only, precision)


def sweep(
    dataset: Dataset,
    devices: Sequence[Device],
    best_only: bool = True,
    formats: Optional[Sequence[str]] = None,
    seed: int = 0,
    progress: Optional[Callable[[int, int], None]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    batch: bool = True,
    precision: str = "fp64",
    fused: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
    pack_shards: bool = False,
    faults=None,
    chunk_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    report=None,
    dispatch: Optional[str] = None,
) -> SweepTable:
    """Simulate the dataset on every device.

    With ``best_only`` (the paper's reporting convention) one row per
    (matrix, device) carries the best format; otherwise one row per
    (matrix, device, format).  Matrices that no format can host on a device
    (FPGA capacity) are skipped, matching the paper's handling.  The
    result is a columnar :class:`~repro.core.table.SweepTable`
    (``.rows`` gives the historical dict-row projection).

    ``jobs`` selects the execution engine: 1 (the default) stays serial
    and in-process, ``jobs > 1`` shards over a process pool and 0
    auto-detects the core count.  ``cache_dir`` enables the persistent
    instance cache.  ``batch`` (the default) scores each chunk through
    the vectorised grid simulator; ``batch=False`` keeps the scalar
    per-triple loop.  ``precision`` scores every cell at fp64 (the
    default) or fp32.  ``fused`` scores chunks straight from the specs
    (structure generation + batched analytic stats, no instances and no
    cache traffic) — the cold-sweep fast path.  Output is row-for-row
    identical across all engines, cache states, batch and fused modes;
    every path funnels through :func:`repro.pipeline.run_sweep`.

    Resilience controls pass straight through to the engine: ``run_dir``
    journals completed chunks (``resume=True`` skips them on a rerun,
    ``pack_shards`` stores them in a single ``shards.rpak`` pack),
    ``chunk_timeout``/``max_retries`` set the per-chunk deadline and
    retry budget, ``faults`` arms a deterministic
    :class:`~repro.pipeline.faults.FaultPlan`, ``report`` receives a
    filled :class:`~repro.pipeline.report.RunReport` and ``dispatch``
    selects the resilient crew (default) or the plain pool baseline —
    none of them change the merged rows.
    """
    from ..pipeline.engine import run_sweep

    return run_sweep(
        dataset, devices, best_only=best_only, formats=formats,
        seed=seed, jobs=jobs, cache_dir=cache_dir, progress=progress,
        batch=batch, precision=precision, fused=fused,
        run_dir=run_dir, resume=resume, pack_shards=pack_shards,
        faults=faults,
        chunk_timeout=chunk_timeout, max_retries=max_retries,
        report=report, dispatch=dispatch,
    )

"""The Table-I feature space and artificial dataset construction.

The paper spans five feature axes (Table I) and generates 16200 matrices.
Reproducing that count with multi-GB matrices is not feasible in pure
Python, so dataset sizes scale through named presets while preserving the
grid *structure*: every preset covers the full cross product of the
qualitative feature values and varies only the sampling density of the
footprint axis (exactly how the paper built its 3K/16K/27K variants for
Fig 8, by "maintaining the feature space limits and sampling more feature
values").
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .generator import MatrixSpec

__all__ = [
    "FeatureSpace",
    "TABLE_I_SPACE",
    "DATASET_PRESETS",
    "build_dataset_specs",
    "dataset_scale_from_env",
]


@dataclass(frozen=True)
class FeatureSpace:
    """A grid over the paper's five feature axes (+ internal bandwidth).

    ``footprint_bins`` are (low, high) MB ranges sampled log-uniformly;
    the remaining axes are explicit value lists, as in Table I.
    """

    footprint_bins: Tuple[Tuple[float, float], ...]
    avg_nnz_per_row: Tuple[float, ...]
    skew_coeff: Tuple[float, ...]
    cross_row_sim: Tuple[float, ...]
    avg_num_neigh: Tuple[float, ...]
    bw_scaled: Tuple[float, ...] = (0.05, 0.3, 0.6)

    def n_combinations(self, footprints_per_bin: int = 1) -> int:
        return (
            len(self.footprint_bins)
            * footprints_per_bin
            * len(self.avg_nnz_per_row)
            * len(self.skew_coeff)
            * len(self.cross_row_sim)
            * len(self.avg_num_neigh)
            * len(self.bw_scaled)
        )

    def iter_specs(
        self,
        footprints_per_bin: int = 1,
        combo_stride: int = 1,
        seed: int = 0,
    ) -> Iterator[MatrixSpec]:
        """Yield :class:`MatrixSpec` for the grid.

        ``combo_stride`` subsamples the qualitative cross product (every
        ``stride``-th combination) — used by the smaller presets.
        Footprints are sampled log-uniformly inside each bin with a
        deterministic RNG, so the same (scale, seed) always produces the
        same dataset.
        """
        rng = np.random.default_rng(seed)
        combos = list(
            itertools.product(
                range(len(self.footprint_bins)),
                self.avg_nnz_per_row,
                self.skew_coeff,
                self.cross_row_sim,
                self.avg_num_neigh,
                self.bw_scaled,
            )
        )
        idx = 0
        for ci, (bin_i, avg, skew, sim, neigh, bw) in enumerate(combos):
            if ci % combo_stride:
                continue
            lo, hi = self.footprint_bins[bin_i]
            for _ in range(footprints_per_bin):
                mb = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
                yield MatrixSpec.from_footprint(
                    mb,
                    avg,
                    skew_coeff=skew,
                    cross_row_sim=sim,
                    avg_num_neigh=neigh,
                    bw_scaled=bw,
                    seed=int(rng.integers(0, 2**31 - 1)),
                )
                idx += 1


# Table I of the paper, verbatim.
TABLE_I_SPACE = FeatureSpace(
    footprint_bins=((4.0, 32.0), (32.0, 512.0), (512.0, 2048.0)),
    avg_nnz_per_row=(5.0, 10.0, 20.0, 50.0, 100.0, 500.0),
    skew_coeff=(0.0, 100.0, 1000.0, 10000.0),
    cross_row_sim=(0.05, 0.5, 0.95),
    avg_num_neigh=(0.05, 0.5, 0.95, 1.4, 1.9),
    bw_scaled=(0.05, 0.3, 0.6),
)

# Preset name -> (footprints_per_bin, combo_stride).  The paper's 'small'/
# 'medium'/'large' are 3K/16.2K/27K matrices; ours keep the same *relative*
# sizes at a Python-tractable scale (Fig 8 compares the presets).
DATASET_PRESETS = {
    "tiny": (1, 18),      # ~180 matrices  (CI-scale smoke dataset)
    "small": (1, 9),      # ~360 matrices  (paper 'small' analogue)
    "medium": (1, 2),     # ~1620 matrices (paper 'medium' analogue)
    "large": (2, 2),      # ~3240 matrices (paper 'large' analogue)
}


def build_dataset_specs(
    scale: str = "small",
    space: FeatureSpace = TABLE_I_SPACE,
    seed: int = 0,
) -> List[MatrixSpec]:
    """Materialise the spec list for a named dataset preset."""
    try:
        per_bin, stride = DATASET_PRESETS[scale]
    except KeyError:
        raise KeyError(
            f"unknown dataset scale {scale!r}; "
            f"available: {sorted(DATASET_PRESETS)}"
        ) from None
    return list(
        space.iter_specs(
            footprints_per_bin=per_bin, combo_stride=stride, seed=seed
        )
    )


def dataset_scale_from_env(default: str = "small") -> str:
    """Dataset preset from ``REPRO_SCALE`` (benches honour this)."""
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in DATASET_PRESETS:
        raise KeyError(
            f"REPRO_SCALE={scale!r} is not one of {sorted(DATASET_PRESETS)}"
        )
    return scale

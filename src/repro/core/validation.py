"""Validation suite (Table III) and the ±30% "friends" methodology.

The paper validates the generator against the 45 most widely used
SuiteSparse matrices.  SuiteSparse is unavailable offline, but the
methodology only consumes each matrix's *feature vector*, which Table III
publishes in full: f1 (CSR MB), f2 (avg nnz/row), f3 (skew) and f4 (the
S/M/L regularity class pair).  We synthesise a *surrogate* for each row
with the generator, then generate its artificial friends exactly as the
paper does — every feature perturbed uniformly in ±30% — and compute the
Table-IV statistics (MAPE against the friend median, APE against the best
friend).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from .generator import MatrixSpec

__all__ = [
    "ValidationMatrix",
    "VALIDATION_SUITE",
    "surrogate_spec",
    "friend_specs",
    "mape",
    "ape_best",
]


@dataclass(frozen=True)
class ValidationMatrix:
    """One Table-III row: published features of a real matrix."""

    id: int
    name: str
    mem_footprint_mb: float   # f1
    avg_nnz_per_row: float    # f2
    skew_coeff: float         # f3
    regularity: str           # f4: two letters (neighbours, similarity)


# Table III, verbatim.  The regularity column's first letter classifies
# avg_num_neighbours, the second cross_row_similarity ("S" = irregular).
VALIDATION_SUITE: List[ValidationMatrix] = [
    ValidationMatrix(1, "scircuit", 11.63, 5.61, 61.95, "MM"),
    ValidationMatrix(2, "mac_econ_fwd500", 15.36, 6.17, 6.14, "MS"),
    ValidationMatrix(3, "raefsky3", 17.12, 70.22, 0.14, "LL"),
    ValidationMatrix(4, "bbmat", 20.42, 45.73, 1.76, "LM"),
    ValidationMatrix(5, "conf5_4-8x8-15", 22.13, 39.0, 0.0, "LL"),
    ValidationMatrix(6, "mc2depi", 26.04, 3.99, 0.0, "LS"),
    ValidationMatrix(7, "rma10", 27.35, 50.69, 1.86, "LL"),
    ValidationMatrix(8, "cop20k_A", 30.5, 21.65, 2.74, "MM"),
    ValidationMatrix(9, "thermomech_dK", 33.35, 13.93, 0.44, "MM"),
    ValidationMatrix(10, "webbase-1M", 39.35, 3.11, 1512.43, "LS"),
    ValidationMatrix(11, "cant", 46.1, 64.17, 0.22, "LL"),
    ValidationMatrix(12, "ASIC_680k", 46.91, 5.67, 69710.56, "LM"),
    ValidationMatrix(13, "pdb1HYS", 49.86, 119.31, 0.71, "LL"),
    ValidationMatrix(14, "TSOPF_RS_b300_c3", 50.67, 104.74, 1.0, "LL"),
    ValidationMatrix(15, "Chebyshev4", 61.8, 78.94, 861.9, "LL"),
    ValidationMatrix(16, "consph", 69.1, 72.13, 0.12, "LL"),
    ValidationMatrix(17, "com-Youtube", 72.71, 5.27, 5460.3, "MS"),
    ValidationMatrix(18, "rajat30", 73.13, 9.59, 47421.8, "MM"),
    ValidationMatrix(19, "radiation", 88.26, 34.23, 101.18, "SS"),
    ValidationMatrix(20, "Stanford_Berkeley", 89.39, 11.1, 7519.69, "MM"),
    ValidationMatrix(21, "shipsec1", 89.95, 55.46, 0.84, "LL"),
    ValidationMatrix(22, "PR02R", 94.29, 50.82, 0.81, "LM"),
    ValidationMatrix(23, "gupta3", 106.76, 555.53, 25.41, "LL"),
    ValidationMatrix(24, "mip1", 118.73, 155.77, 425.24, "LL"),
    ValidationMatrix(25, "rail4284", 129.15, 2633.99, 20.33, "SL"),
    ValidationMatrix(26, "pwtk", 133.98, 53.39, 2.37, "LL"),
    ValidationMatrix(27, "crankseg_2", 162.16, 221.64, 14.44, "LL"),
    ValidationMatrix(28, "Si41Ge41H72", 172.5, 80.86, 7.19, "LM"),
    ValidationMatrix(29, "TSOPF_RS_b2383", 185.21, 424.22, 1.32, "LL"),
    ValidationMatrix(30, "in-2004", 198.88, 12.23, 632.78, "LL"),
    ValidationMatrix(31, "Ga41As41H72", 212.61, 68.96, 9.18, "LM"),
    ValidationMatrix(32, "eu-2005", 223.42, 22.3, 312.27, "LM"),
    ValidationMatrix(33, "wikipedia-20051105", 232.29, 12.08, 410.37, "SS"),
    ValidationMatrix(34, "human_gene1", 282.41, 1107.11, 6.17, "SS"),
    ValidationMatrix(35, "delaunay_n22", 304.0, 6.0, 2.83, "MS"),
    ValidationMatrix(36, "sx-stackoverflow", 424.58, 13.93, 2738.46, "SS"),
    ValidationMatrix(37, "dgreen", 442.43, 31.87, 4.87, "SS"),
    ValidationMatrix(38, "mawi_201512012345", 506.18, 2.05, 8006372.09, "LM"),
    ValidationMatrix(39, "ldoor", 536.04, 48.86, 0.58, "LL"),
    ValidationMatrix(40, "dielFilterV2real", 559.9, 41.94, 1.62, "MM"),
    ValidationMatrix(41, "circuit5M", 702.4, 10.71, 120504.85, "LM"),
    ValidationMatrix(42, "soc-LiveJournal1", 808.06, 14.23, 1424.81, "SS"),
    ValidationMatrix(43, "bone010", 823.92, 72.63, 0.12, "LL"),
    ValidationMatrix(44, "audikw_1", 892.25, 82.28, 3.19, "LL"),
    ValidationMatrix(45, "cage15", 1154.91, 19.24, 1.44, "LS"),
]

# Centres of the three equal sub-ranges per regularity sub-feature.
_NEIGH_VALUE = {"S": 0.33, "M": 1.0, "L": 1.67}   # avg_num_neigh in [0, 2]
_SIM_VALUE = {"S": 0.17, "M": 0.5, "L": 0.83}     # cross_row_sim in [0, 1]


def surrogate_spec(vm: ValidationMatrix, seed: int = 0) -> MatrixSpec:
    """Generator spec reproducing a Table-III matrix's published features."""
    if len(vm.regularity) != 2:
        raise ValueError(f"bad regularity label {vm.regularity!r}")
    neigh = _NEIGH_VALUE[vm.regularity[0]]
    sim = _SIM_VALUE[vm.regularity[1]]
    return MatrixSpec.from_footprint(
        vm.mem_footprint_mb,
        vm.avg_nnz_per_row,
        skew_coeff=vm.skew_coeff,
        cross_row_sim=sim,
        avg_num_neigh=neigh,
        seed=seed + vm.id * 1000,
    )


def friend_specs(
    vm: ValidationMatrix,
    n_friends: int = 12,
    spread: float = 0.30,
    seed: int = 0,
) -> List[MatrixSpec]:
    """Artificial 'friends': every feature perturbed uniformly in ±spread.

    Mirrors Section V-A (the paper uses ~70 friends per matrix over a
    [-30%, +30%] range; ``n_friends`` trades fidelity for runtime).
    """
    if not 0 <= spread < 1:
        raise ValueError("spread must be in [0, 1)")
    base = surrogate_spec(vm, seed=seed)
    rng = np.random.default_rng(seed + vm.id)
    out = []
    for k in range(n_friends):
        jitter = rng.uniform(1 - spread, 1 + spread, size=5)
        out.append(
            MatrixSpec.from_footprint(
                vm.mem_footprint_mb * jitter[0],
                max(vm.avg_nnz_per_row * jitter[1], 1.0),
                skew_coeff=vm.skew_coeff * jitter[2],
                cross_row_sim=float(
                    np.clip(base.cross_row_sim * jitter[3], 0.0, 1.0)
                ),
                avg_num_neigh=float(
                    np.clip(base.avg_num_neigh * jitter[4], 0.0, 2.0)
                ),
                seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return out


def mape(reference: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute percentage error, in percent (Table IV)."""
    ref = np.asarray(reference, dtype=np.float64)
    pred = np.asarray(predicted, dtype=np.float64)
    if ref.shape != pred.shape:
        raise ValueError("reference/predicted length mismatch")
    mask = ref != 0
    if not mask.any():
        return 0.0
    return float(
        100.0 * np.mean(np.abs(pred[mask] - ref[mask]) / np.abs(ref[mask]))
    )


def ape_best(reference: float, candidates: Sequence[float]) -> float:
    """Absolute percentage error of the closest candidate ("best friend")."""
    cands = np.asarray(list(candidates), dtype=np.float64)
    if len(cands) == 0:
        raise ValueError("no candidates")
    if reference == 0:
        return 0.0
    return float(
        100.0 * np.min(np.abs(cands - reference)) / abs(reference)
    )

"""Core: matrix container, features, generator, datasets, validation."""
from .matrix import CSRMatrix, csr_from_arrays, csr_from_coo, csr_from_dense
from .features import (
    Features, extract_features, regularity_class,
    skew_coefficient, avg_num_neighbours, cross_row_similarity,
)
from .generator import (
    MatrixSpec, artificial_matrix_generation, generate_matrix,
    row_length_profile,
)
from .feature_space import (
    FeatureSpace, TABLE_I_SPACE, DATASET_PRESETS,
    build_dataset_specs, dataset_scale_from_env,
)
from .table import SweepTable, SchemaVersionError, SCHEMA_VERSION
from .dataset import Dataset, sweep
from .validation import (
    ValidationMatrix, VALIDATION_SUITE, surrogate_spec, friend_specs,
    mape, ape_best,
)

"""Artificial sparse-matrix generator (Section III-B, Listing 1).

Two interchangeable engines produce matrices with prescribed features:

``rowwise``
    A faithful transcription of the paper's Listing-1 algorithm: rows are
    built sequentially, duplicating columns from the previous row with
    probability ``cross_row_sim``, placing the rest uniformly inside a
    bandwidth-confined window and extending each placement into a run of
    adjacent columns with probability derived from ``avg_num_neigh``.

``chain``
    A fully vectorised statistical equivalent.  Nonzeros are generated as
    rectangular *chains*: a seed at ``(r, c)`` spans a horizontal run of
    ``m ~ Geometric(1 - p)`` columns (``p = avg_num_neigh / 2``) persisting
    vertically for ``h`` rows, where per-row survival probabilities are
    tuned so the expected per-row nonzero count tracks the target row-length
    profile exactly.  Element-averaged same-row neighbours equal ``2p`` and
    the expected fraction of elements with a next-row neighbour equals the
    survival probability, i.e. ``cross_row_sim`` — the same statistics the
    sequential algorithm produces, at a fraction of the cost.

Both return :class:`~repro.core.matrix.CSRMatrix`.  The row-length profile
(normal body + exponentially decaying head for skew) is shared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from .matrix import CSRMatrix, CSRStructBatch, INDEX_DTYPE, csr_from_coo

__all__ = [
    "MatrixSpec",
    "artificial_matrix_generation",
    "artificial_structure_generation",
    "generate_matrix",
    "row_length_profile",
    "structure_batch",
]

# Run-length / chain-height probabilities are clipped here to keep the
# geometric tails finite.
_P_MAX = 0.97


# ---------------------------------------------------------------------------
# Row-length profile
# ---------------------------------------------------------------------------
def row_length_profile(
    n_rows: int,
    n_cols: int,
    avg_nz_row: float,
    std_nz_row: float,
    skew_coeff: float,
    rng: np.random.Generator,
    distribution: str = "normal",
) -> np.ndarray:
    """Per-row nonzero targets with the requested average and skew.

    The body of the matrix follows ``distribution`` around the (adjusted)
    mean; if ``skew_coeff`` exceeds what the body would naturally produce,
    an exponentially decaying head ``MAX * exp(-C * i / n_rows)`` is
    superimposed on the first rows (paper Section III-B) and the body mean
    is recomputed so the combined average stays on target.  The returned
    integer array sums exactly to ``round(avg_nz_row * n_rows)`` and its
    maximum is pinned to ``avg * (1 + skew)`` (both capped at ``n_cols``).
    """
    if n_rows <= 0:
        return np.zeros(0, dtype=np.int64)
    avg = float(avg_nz_row)
    if avg <= 0:
        return np.zeros(n_rows, dtype=np.int64)

    target_total = int(round(avg * n_rows))
    target_max = int(min(n_cols, max(1, round(avg * (1.0 + skew_coeff)))))

    if distribution == "normal":
        body = rng.normal(avg, std_nz_row, n_rows)
    elif distribution == "uniform":
        half = std_nz_row * math.sqrt(3.0)
        body = rng.uniform(avg - half, avg + half, n_rows)
    elif distribution == "gamma":
        # Gamma with matching mean/std; falls back to constant when std=0.
        if std_nz_row > 0:
            shape = (avg / std_nz_row) ** 2
            scale = std_nz_row**2 / avg
            body = rng.gamma(shape, scale, n_rows)
        else:
            body = np.full(n_rows, avg)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")

    body = np.clip(body, 0.0, float(n_cols))

    # Natural skew of the body; add the exponential head only when the
    # requested skew exceeds it.
    natural_max = avg + 3.0 * std_nz_row
    if target_max > natural_max:
        # C controls head sharpness: chosen so the head contributes ~10% of
        # the matrix mass (or less for extreme skews).
        head_mass_frac = 0.1
        c_const = max(
            (1.0 + skew_coeff) / head_mass_frac, 10.0
        )
        i = np.arange(n_rows, dtype=np.float64)
        head = target_max * np.exp(-c_const * i / n_rows)
        head[head < 0.5] = 0.0
        # Recompute body mean so combined average hits the target.
        head_mean = head.mean()
        body_scale_target = max(avg - head_mean, 0.0)
        if body.mean() > 0:
            body = body * (body_scale_target / body.mean())
        lengths = body + head
    else:
        lengths = body

    lengths = np.clip(np.round(lengths), 0, n_cols).astype(np.int64)

    # Pin the maximum so the realised skew matches the request.
    lengths[0] = max(lengths[0], target_max)
    lengths[0] = min(lengths[0], n_cols)

    # Exact-total adjustment: spread the residual one element at a time over
    # random rows, respecting [0, n_cols] bounds and the pinned maximum.
    diff = target_total - int(lengths.sum())
    if diff != 0 and n_rows > 1:
        step = 1 if diff > 0 else -1
        remaining = abs(diff)
        # Vectorised passes: at most a few, since each pass fixes up to
        # n_rows - 1 units.
        while remaining > 0:
            candidates = np.arange(1, n_rows)
            if step > 0:
                candidates = candidates[lengths[1:] < min(n_cols, target_max)]
            else:
                candidates = candidates[lengths[1:] > 0]
            if len(candidates) == 0:
                break
            take = min(remaining, len(candidates))
            chosen = rng.choice(candidates, size=take, replace=False)
            lengths[chosen] += step
            remaining -= take
    return lengths


def _stochastic_round(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Round each entry up with probability equal to its fractional part."""
    base = np.floor(x)
    frac = x - base
    return (base + (rng.random(len(x)) < frac)).astype(np.int64)


def _row_windows(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    bw_scaled: float,
    rng: np.random.Generator,
):
    """Per-row placement window ``[start, start + width)`` of the target
    scaled bandwidth, always wide enough to hold the row.

    Overlong rows get a window of 4x their length so random placement does
    not collide away a large fraction of their nonzeros (collisions are
    deduplicated, which would silently erode the skew target).
    """
    width = np.maximum(
        4 * lengths, max(1, int(round(bw_scaled * n_cols)))
    )
    width = np.minimum(width, n_cols)
    start = (rng.random(n_rows) * (n_cols - width + 1)).astype(np.int64)
    return start, width


# ---------------------------------------------------------------------------
# Row-wise engine (paper Listing 1)
# ---------------------------------------------------------------------------
def _fresh_candidates(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    start: np.ndarray,
    width: np.ndarray,
    p_run: float,
    rng: np.random.Generator,
):
    """Pre-generate every row's fresh-placement candidates in one batch.

    For each row a budget of ``length + length // 4 + 6`` candidate
    columns (collision headroom over the quota) is materialised in
    *placement order*: uniformly drawn seeds inside the row's bandwidth
    window, each extended rightwards into a geometric run
    (``P(len = k) = p^(k-1) (1-p)``, the dice-roll extension of Listing 1).
    Returns ``(cand, offsets)`` where ``cand[offsets[i]:offsets[i+1]]`` are
    row ``i``'s candidates; budgets are exact, so the row loop only slices.
    """
    caps = np.where(lengths > 0, lengths + (lengths >> 2) + 6, 0)
    # One seed per candidate element: runs are >= 1, so each row's seeds
    # always cover its budget and trimming stops exactly at the cap.
    seed_off = np.concatenate(([0], np.cumsum(caps)))
    n_seeds = int(seed_off[-1])
    if n_seeds == 0:
        return np.zeros(0, dtype=np.int64), seed_off
    # One pass expands (start, width, cap) to per-seed values together.
    per_seed = np.repeat(np.stack((start, width, caps)), caps, axis=1)
    seeds = per_seed[0] + (rng.random(n_seeds) * per_seed[1]).astype(
        np.int64
    )
    if p_run > 0:
        runs = rng.geometric(1.0 - p_run, n_seeds).astype(np.int64)
    else:
        runs = np.ones(n_seeds, dtype=np.int64)
    # Trim each row's run sequence so its element count equals the budget.
    csum = np.concatenate(([0], np.cumsum(runs)))
    before = csum[:-1] - np.repeat(csum[seed_off[:-1]], caps)
    cap_of_seed = per_seed[2]
    keep = before < cap_of_seed
    trimmed = np.minimum(runs, cap_of_seed - before)[keep]
    n_elems = int(trimmed.sum())
    off_in_run = np.arange(n_elems, dtype=np.int64) - np.repeat(
        np.cumsum(trimmed) - trimmed, trimmed
    )
    cand = np.repeat(seeds[keep], trimmed) + off_in_run
    # Runs stop at the matrix edge; clamping (dedup removes repeats) keeps
    # per-row budgets exact.
    np.minimum(cand, n_cols - 1, out=cand)
    return cand, seed_off


def _rowwise_structure(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    bw_scaled: float,
    cross_row_sim: float,
    avg_num_neigh: float,
    rng: np.random.Generator,
):
    """Vectorised Listing-1 engine (structure pass: ``(indptr, indices)``).

    Rows are still built sequentially (cross-row run duplication is a true
    loop-carried dependency), but all per-element work is batched: fresh
    candidates for *every* row — window placement plus geometric
    neighbour-run extension — are materialised up-front in one vectorised
    pass (:func:`_fresh_candidates`), and the row loop reduces to run
    duplication from the previous row plus a dedup-and-trim.  Candidates
    carry their placement order, and rows are truncated to their quota at
    first occurrence, which reproduces the sequential algorithm's
    stop-at-quota semantics.
    """
    p_run = min(avg_num_neigh / 2.0, _P_MAX)
    start, width = _row_windows(n_rows, n_cols, lengths, bw_scaled, rng)
    total = int(lengths.sum())
    indptr = [0]
    if total == 0:
        return (
            np.zeros(n_rows + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )

    cand_all, cand_off = _fresh_candidates(
        n_rows, n_cols, lengths, start, width, p_run, rng
    )
    # Uniform draws for the per-run keep decisions of the duplication step,
    # consumed through an inline cursor (refilled in bulk when exhausted).
    keep_buf = rng.random(total // 2 + 64)
    keep_pos = 0

    lengths_l = lengths.tolist()
    off_l = cand_off.tolist()
    start_l = start.tolist()
    width_l = width.tolist()
    empty = np.zeros(0, dtype=np.int64)
    np_sort, np_concat = np.sort, np.concatenate
    np_cnz = np.count_nonzero
    all_cols = []
    nnz = 0
    prev_cols = empty
    # Adjacent differences of the previous row, reused between the dedup
    # check that produced it and this row's run detection (valid whenever
    # the previous row came out of a collision-free merge).
    prev_diff = None
    q_sim = cross_row_sim
    for i in range(n_rows):
        length = lengths_l[i]
        if length == 0:
            prev_cols = empty
            prev_diff = None
            indptr.append(nnz)
            continue
        # Step 1: duplicate whole runs of adjacent columns from the
        # previous row; each run survives with probability ``cross_row_sim``
        # so duplication preserves the parent row's neighbour clustering.
        n_prev = len(prev_cols)
        if n_prev and q_sim > 0:
            gaps = (
                prev_diff > 1
                if prev_diff is not None
                else prev_cols[1:] - prev_cols[:-1] > 1
            )
            run_ids = np.empty(n_prev, dtype=np.int64)
            run_ids[0] = 0
            if n_prev > 1:
                np.cumsum(gaps, out=run_ids[1:])
            n_runs = int(run_ids[-1]) + 1
            if keep_pos + n_runs > len(keep_buf):
                keep_buf = rng.random(max(2 * len(keep_buf), 2 * n_runs))
                keep_pos = 0
            keep = keep_buf[keep_pos:keep_pos + n_runs] < q_sim
            keep_pos += n_runs
            cur = prev_cols[keep[run_ids]][:length]
        else:
            cur = empty
        # Step 2: top the row up to its quota from the pre-generated
        # placement stream.  Each round consumes exactly the number of
        # missing elements — the prefix-of-stream-until-quota semantics of
        # the sequential algorithm — so deduplication can never overshoot
        # and is a plain sort + adjacent-compare.
        need = length - len(cur)
        lo, hi = off_l[i], off_l[i + 1]
        extra_rounds = 0
        cur_diff = None
        while need > 0:
            if lo < hi:
                # Clamp to the row's own budget: spilling into the next
                # row's pool would consume seeds drawn for *its* window.
                cand = cand_all[lo:min(lo + need, hi)]
                lo += need
            elif extra_rounds < 8:
                # Budget exhausted (near-dense row in a tight window):
                # draw straight from the window, like the reference guard.
                extra_rounds += 1
                cand = start_l[i] + (
                    rng.random(2 * need) * width_l[i]
                ).astype(np.int64)
            else:
                break
            # ``cand`` is either a consumed-once view into the stream or a
            # fresh draw, so sorting in place is safe and avoids a copy.
            s = np_concat((cur, cand)) if len(cur) else cand
            s.sort()
            d = s[1:] - s[:-1]
            nu = np_cnz(d) + 1
            if nu != len(s):
                cur = s[np_concat(([True], d != 0))]
                cur_diff = None
            else:
                cur = s
                cur_diff = d
            need = length - nu
        if need > 0:  # extremely dense row: fill deterministically
            pool = np.setdiff1d(
                np.arange(n_cols, dtype=np.int64), cur, assume_unique=True
            )
            cur = np_sort(np_concat((cur, pool[:need])))
            cur_diff = None
        all_cols.append(cur)
        nnz += len(cur)
        indptr.append(nnz)
        prev_cols = cur
        prev_diff = cur_diff

    indices = (
        np.concatenate(all_cols) if all_cols else np.zeros(0, dtype=np.int64)
    )
    return np.asarray(indptr, dtype=np.int64), indices


def _generate_rowwise(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    bw_scaled: float,
    cross_row_sim: float,
    avg_num_neigh: float,
    rng: np.random.Generator,
) -> CSRMatrix:
    """Vectorised Listing-1 engine (full matrix: structure + values)."""
    indptr, indices = _rowwise_structure(
        n_rows, n_cols, lengths, bw_scaled, cross_row_sim, avg_num_neigh,
        rng,
    )
    # Values are drawn last, after the structure is complete, so the
    # structure pass consumes an identical RNG stream.
    data = rng.uniform(0.1, 1.0, len(indices))
    return CSRMatrix(n_rows, n_cols, indptr, indices, data)


def _rowwise_baseline_structure(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    bw_scaled: float,
    cross_row_sim: float,
    avg_num_neigh: float,
    rng: np.random.Generator,
):
    """The seed's per-element sequential engine (structure pass), kept as
    the reference implementation for agreement tests and benchmarks."""
    p_run = min(avg_num_neigh / 2.0, _P_MAX)
    start, width = _row_windows(n_rows, n_cols, lengths, bw_scaled, rng)

    all_cols = []
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    prev_cols = np.zeros(0, dtype=np.int64)
    for i in range(n_rows):
        length = int(lengths[i])
        if length == 0:
            prev_cols = np.zeros(0, dtype=np.int64)
            indptr[i + 1] = indptr[i]
            continue
        # Step 1: duplicate columns from the previous row (cross-row
        # similarity).  Whole runs of adjacent columns are copied together
        # so duplication preserves the neighbour clustering of the parent
        # row; each run survives with probability ``cross_row_sim``.
        cols = set()
        if len(prev_cols) and cross_row_sim > 0:
            boundaries = np.concatenate(
                ([True], np.diff(prev_cols) > 1)
            )
            run_ids = np.cumsum(boundaries) - 1
            n_runs = run_ids[-1] + 1
            keep = rng.random(n_runs) < cross_row_sim
            dup = prev_cols[keep[run_ids]][:length]
            cols.update(int(c) for c in dup)
        # Step 2: random placement in the bandwidth window, extending each
        # placement into a run of adjacent neighbours.
        lo, hi = int(start[i]), int(start[i] + width[i])
        guard = 0
        while len(cols) < length and guard < 20 * length + 50:
            c = int(rng.integers(lo, hi))
            cols.add(c)
            guard += 1
            # Neighbour clustering: keep extending right while the dice
            # roll succeeds.
            while (
                len(cols) < length
                and c + 1 < n_cols
                and rng.random() < p_run
            ):
                c += 1
                cols.add(c)
                guard += 1
        if len(cols) < length:  # extremely dense row: fill deterministically
            missing = length - len(cols)
            pool = np.setdiff1d(
                np.arange(n_cols, dtype=np.int64),
                np.fromiter(cols, dtype=np.int64, count=len(cols)),
                assume_unique=True,
            )
            cols.update(int(c) for c in pool[:missing])
        row_cols = np.sort(np.fromiter(cols, dtype=np.int64, count=len(cols)))
        all_cols.append(row_cols)
        indptr[i + 1] = indptr[i] + len(row_cols)
        prev_cols = row_cols

    indices = (
        np.concatenate(all_cols) if all_cols else np.zeros(0, dtype=np.int64)
    )
    return indptr, indices


def _generate_rowwise_baseline(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    bw_scaled: float,
    cross_row_sim: float,
    avg_num_neigh: float,
    rng: np.random.Generator,
) -> CSRMatrix:
    """Reference sequential engine (full matrix: structure + values)."""
    indptr, indices = _rowwise_baseline_structure(
        n_rows, n_cols, lengths, bw_scaled, cross_row_sim, avg_num_neigh,
        rng,
    )
    data = rng.uniform(0.1, 1.0, len(indices))
    return CSRMatrix(n_rows, n_cols, indptr, indices, data)


# ---------------------------------------------------------------------------
# Chain engine (vectorised)
# ---------------------------------------------------------------------------
def _chain_coo(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    bw_scaled: float,
    cross_row_sim: float,
    avg_num_neigh: float,
    rng: np.random.Generator,
):
    p_run = min(max(avg_num_neigh / 2.0, 0.0), _P_MAX)
    q_sim = min(max(cross_row_sim, 0.0), _P_MAX)
    mean_run = 1.0 / (1.0 - p_run)

    # Target alive-seed count per row.
    seeds_target = lengths / mean_run
    # Per-row survival probability: base q, reduced where the row profile
    # shrinks faster than q (e.g. the exponential skew head) so expected
    # occupancy tracks the profile.
    s_cur = seeds_target[:-1]
    s_next = seeds_target[1:]
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(s_cur > 0, s_next / np.maximum(s_cur, 1e-300), 0.0)
    q_row = np.minimum(q_sim, ratio)  # survival from row i to i+1
    q_row = np.clip(q_row, 0.0, _P_MAX)

    births = np.empty(n_rows, dtype=np.float64)
    births[0] = seeds_target[0]
    births[1:] = np.maximum(s_next - q_row * s_cur, 0.0)
    n_births = _stochastic_round(births, rng)
    total = int(n_births.sum())
    if total == 0:
        return None

    birth_row = np.repeat(np.arange(n_rows, dtype=np.int64), n_births)

    # Chain heights by inverse-transform over cumulative log-survival, which
    # honours the per-row survival schedule in one vectorised pass.
    log_q = np.concatenate(
        ([0.0], np.cumsum(np.log(np.maximum(q_row, 1e-300))))
    )
    # Height h: chain born at r is alive at rows r..r+h-1; survives step k
    # with prob prod(q_row[r..r+k-1]) = exp(log_q[r+k] - log_q[r]).
    u = rng.random(total)
    thresholds = log_q[birth_row] + np.log(np.maximum(u, 1e-300))
    # first k >= 1 with log_q[r + k] < threshold  (log_q non-increasing)
    ends = np.searchsorted(-log_q, -thresholds, side="left")
    heights = np.maximum(ends - birth_row, 1)
    heights = np.minimum(heights, n_rows - birth_row)

    # Horizontal run lengths.
    if p_run > 0:
        runs = rng.geometric(1.0 - p_run, total).astype(np.int64)
    else:
        runs = np.ones(total, dtype=np.int64)
    runs = np.minimum(runs, max(1, int(math.ceil(mean_run * 6))))

    # Start column inside the birth row's bandwidth window.
    start, width = _row_windows(n_rows, n_cols, lengths, bw_scaled, rng)
    w = width[birth_row]
    runs = np.minimum(runs, w)
    c0 = start[birth_row] + (rng.random(total) * (w - runs + 1)).astype(
        np.int64
    )

    # Materialise: each chain -> heights[k] * runs[k] elements.
    per_chain = heights * runs
    n_elems = int(per_chain.sum())
    chain_of_elem = np.repeat(np.arange(total, dtype=np.int64), per_chain)
    # Intra-chain element offsets 0..h*m-1 -> (row offset, col offset).
    elem_idx = np.arange(n_elems, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(per_chain)[:-1])), per_chain
    )
    m_of_elem = runs[chain_of_elem]
    row_off = elem_idx // m_of_elem
    col_off = elem_idx - row_off * m_of_elem
    rows = birth_row[chain_of_elem] + row_off
    cols = c0[chain_of_elem] + col_off
    return rows, cols


def _generate_chain(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    bw_scaled: float,
    cross_row_sim: float,
    avg_num_neigh: float,
    rng: np.random.Generator,
) -> CSRMatrix:
    """Chain engine (full matrix): COO chains -> values -> sorted dedup."""
    coo = _chain_coo(
        n_rows, n_cols, lengths, bw_scaled, cross_row_sim, avg_num_neigh,
        rng,
    )
    if coo is None:
        return CSRMatrix(
            n_rows,
            n_cols,
            np.zeros(n_rows + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
        )
    rows, cols = coo
    vals = rng.uniform(0.1, 1.0, len(rows))
    return csr_from_coo(n_rows, n_cols, rows, cols, vals, sum_duplicates=True)


def _chain_structure(
    n_rows: int,
    n_cols: int,
    lengths: np.ndarray,
    bw_scaled: float,
    cross_row_sim: float,
    avg_num_neigh: float,
    rng: np.random.Generator,
):
    """Chain engine (structure pass): COO chains -> key-sort dedup.

    Sorting the flattened ``row * n_cols + col`` keys and dropping adjacent
    duplicates produces exactly the sorted unique (row, col) set that
    :func:`~repro.core.matrix.csr_from_coo` emits, without carrying values
    through the lexsort — the fused agreement suite pins the equality.
    """
    coo = _chain_coo(
        n_rows, n_cols, lengths, bw_scaled, cross_row_sim, avg_num_neigh,
        rng,
    )
    if coo is None:
        return (
            np.zeros(n_rows + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    rows, cols = coo
    keys = rows * np.int64(n_cols) + cols
    keys.sort()
    uniq = keys[np.concatenate(([True], np.diff(keys) != 0))]
    indices = uniq % n_cols
    counts = np.bincount(uniq // n_cols, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
_FULL_ENGINES = {
    "rowwise": _generate_rowwise,
    "rowwise-baseline": _generate_rowwise_baseline,
    "chain": _generate_chain,
}
_STRUCTURE_ENGINES = {
    "rowwise": _rowwise_structure,
    "rowwise-baseline": _rowwise_baseline_structure,
    "chain": _chain_structure,
}


def _generation_prologue(
    nr_rows: int,
    nr_cols: int,
    avg_nz_row: float,
    std_nz_row: Optional[float],
    distribution: str,
    skew_coeff: float,
    bw_scaled: float,
    cross_row_sim: float,
    avg_num_neigh: float,
    seed: Optional[int],
):
    """Shared parameter validation + RNG + row profile for both entries."""
    if nr_rows < 0 or nr_cols < 0:
        raise ValueError("matrix dimensions must be non-negative")
    if not 0.0 <= cross_row_sim <= 1.0:
        raise ValueError("cross_row_sim must be in [0, 1]")
    if not 0.0 <= avg_num_neigh <= 2.0:
        raise ValueError("avg_num_neigh must be in [0, 2]")
    if not 0.0 < bw_scaled <= 1.0:
        raise ValueError("bw_scaled must be in (0, 1]")
    if skew_coeff < 0:
        raise ValueError("skew_coeff must be non-negative")
    rng = np.random.default_rng(seed)
    if std_nz_row is None:
        std_nz_row = 0.1 * avg_nz_row
    lengths = row_length_profile(
        nr_rows, nr_cols, avg_nz_row, std_nz_row, skew_coeff, rng,
        distribution,
    )
    return rng, lengths


def artificial_matrix_generation(
    nr_rows: int,
    nr_cols: int,
    avg_nz_row: float,
    std_nz_row: Optional[float] = None,
    distribution: str = "normal",
    skew_coeff: float = 0.0,
    bw_scaled: float = 0.3,
    cross_row_sim: float = 0.5,
    avg_num_neigh: float = 1.0,
    seed: Optional[int] = None,
    method: str = "chain",
) -> CSRMatrix:
    """Generate an artificial sparse matrix (paper Listing 1 signature).

    Parameters mirror the paper's generator: matrix dimensions, the per-row
    nonzero distribution (``avg_nz_row``, ``std_nz_row``, ``distribution``),
    the imbalance knob ``skew_coeff``, the scaled matrix bandwidth
    ``bw_scaled`` (fraction of ``nr_cols``), and the two regularity knobs
    ``cross_row_sim`` (temporal locality, [0, 1]) and ``avg_num_neigh``
    (spatial locality, [0, 2]).

    ``method`` selects the engine: ``"rowwise"`` (batched-NumPy Listing-1
    algorithm), ``"rowwise-baseline"`` (the original per-element sequential
    transcription, kept for agreement tests and benchmarks) or ``"chain"``
    (vectorised statistical equivalent, the default — orders of magnitude
    faster for large matrices).
    """
    if method not in _FULL_ENGINES:
        raise ValueError(f"unknown method {method!r}")
    rng, lengths = _generation_prologue(
        nr_rows, nr_cols, avg_nz_row, std_nz_row, distribution, skew_coeff,
        bw_scaled, cross_row_sim, avg_num_neigh, seed,
    )
    return _FULL_ENGINES[method](
        nr_rows, nr_cols, lengths, bw_scaled, cross_row_sim,
        avg_num_neigh, rng,
    )


def artificial_structure_generation(
    nr_rows: int,
    nr_cols: int,
    avg_nz_row: float,
    std_nz_row: Optional[float] = None,
    distribution: str = "normal",
    skew_coeff: float = 0.0,
    bw_scaled: float = 0.3,
    cross_row_sim: float = 0.5,
    avg_num_neigh: float = 1.0,
    seed: Optional[int] = None,
    method: str = "chain",
):
    """Structure-only twin of :func:`artificial_matrix_generation`.

    Returns ``(indptr, indices)`` — exactly the structure arrays of the
    matrix the full generator would produce for the same parameters.  Every
    engine draws element values *last*, after the structure is final, so
    skipping the value draw consumes an identical RNG stream and the
    structure is bit-identical (the fused agreement suite enforces this).
    The fused cold path uses this entry to skip value allocation entirely.
    """
    if method not in _STRUCTURE_ENGINES:
        raise ValueError(f"unknown method {method!r}")
    rng, lengths = _generation_prologue(
        nr_rows, nr_cols, avg_nz_row, std_nz_row, distribution, skew_coeff,
        bw_scaled, cross_row_sim, avg_num_neigh, seed,
    )
    return _STRUCTURE_ENGINES[method](
        nr_rows, nr_cols, lengths, bw_scaled, cross_row_sim,
        avg_num_neigh, rng,
    )


# CSR cost model used to translate footprint <-> row count (4-byte indices,
# 8-byte values: 12 bytes per nonzero + 4 bytes per row pointer).
_BYTES_PER_NNZ = 12.0
_BYTES_PER_ROW = 4.0


@dataclass(frozen=True)
class MatrixSpec:
    """Declarative description of an artificial matrix.

    A spec fixes the paper's feature coordinates; :meth:`build` materialises
    the matrix and :meth:`representative` returns a structurally equivalent
    down-scaled spec whose measured structure statistics stand in for the
    full-size matrix (see DESIGN.md, substitutions).
    """

    n_rows: int
    n_cols: int
    avg_nnz_per_row: float
    skew_coeff: float = 0.0
    cross_row_sim: float = 0.5
    avg_num_neigh: float = 1.0
    bw_scaled: float = 0.3
    std_ratio: float = 0.1  # std_nz_row = std_ratio * avg
    distribution: str = "normal"
    seed: int = 0
    method: str = "chain"

    @property
    def nnz_estimate(self) -> int:
        return int(round(self.n_rows * self.avg_nnz_per_row))

    @property
    def mem_footprint_mb(self) -> float:
        """Declared CSR footprint of the *full-size* matrix in MiB."""
        bytes_ = (
            self.nnz_estimate * _BYTES_PER_NNZ
            + (self.n_rows + 1) * _BYTES_PER_ROW
        )
        return bytes_ / (1024.0 * 1024.0)

    @classmethod
    def from_footprint(
        cls,
        mem_footprint_mb: float,
        avg_nnz_per_row: float,
        square: bool = True,
        **kwargs,
    ) -> "MatrixSpec":
        """Derive row count from a target CSR footprint (paper f1)."""
        if mem_footprint_mb <= 0:
            raise ValueError("mem_footprint_mb must be positive")
        bytes_ = mem_footprint_mb * 1024.0 * 1024.0
        n_rows = max(
            1,
            int(
                round(
                    bytes_
                    / (_BYTES_PER_NNZ * avg_nnz_per_row + _BYTES_PER_ROW)
                )
            ),
        )
        n_cols = n_rows if square else kwargs.pop("n_cols", n_rows)
        return cls(
            n_rows=n_rows,
            n_cols=n_cols,
            avg_nnz_per_row=avg_nnz_per_row,
            **kwargs,
        )

    def representative(self, max_nnz: int = 200_000) -> "MatrixSpec":
        """Down-scaled spec preserving every scale-free feature.

        Row count shrinks until the estimated nnz fits ``max_nnz``;
        ``avg_nnz_per_row``, skew, regularity and scaled bandwidth are
        untouched (they are all row-local or relative quantities).  A floor
        of 256 rows keeps the structural statistics well-sampled.
        """
        if self.nnz_estimate <= max_nnz:
            return self
        scale = max_nnz / self.nnz_estimate
        new_rows = max(256, int(round(self.n_rows * scale)))
        # Never shrink columns below what the longest row needs...
        min_cols = int(
            math.ceil(self.avg_nnz_per_row * (1.0 + self.skew_coeff))
        )
        # ...nor so far that in-window density rises and random placements
        # become accidentally adjacent, which would inflate the measured
        # locality features of irregular matrices (density <= 2.5% per
        # placement window keeps the artefact below measurement noise).
        min_cols_locality = int(
            math.ceil(40.0 * self.avg_nnz_per_row / self.bw_scaled)
        )
        new_cols = max(
            min_cols,
            min(min_cols_locality, self.n_cols),
            int(round(self.n_cols * new_rows / max(self.n_rows, 1))),
        )
        return replace(self, n_rows=new_rows, n_cols=new_cols)

    def build(self, max_nnz: Optional[int] = None) -> CSRMatrix:
        """Materialise the matrix (optionally via a down-scaled spec)."""
        spec = self if max_nnz is None else self.representative(max_nnz)
        return artificial_matrix_generation(
            spec.n_rows,
            spec.n_cols,
            spec.avg_nnz_per_row,
            std_nz_row=spec.std_ratio * spec.avg_nnz_per_row,
            distribution=spec.distribution,
            skew_coeff=spec.skew_coeff,
            bw_scaled=spec.bw_scaled,
            cross_row_sim=spec.cross_row_sim,
            avg_num_neigh=spec.avg_num_neigh,
            seed=spec.seed,
            method=spec.method,
        )


def generate_matrix(spec: MatrixSpec, max_nnz: Optional[int] = None):
    """Convenience wrapper: ``spec.build(max_nnz)``."""
    return spec.build(max_nnz=max_nnz)


def structure_batch(specs, max_nnz: Optional[int] = None) -> CSRStructBatch:
    """Chunked structure generation for the fused cold path.

    Generates the representative CSR *structure* (``indptr``/``indices``)
    for every spec in ``specs`` — each down-scaled through
    :meth:`MatrixSpec.representative` exactly as :meth:`MatrixSpec.build`
    would — and stacks the results into one flat
    :class:`~repro.core.matrix.CSRStructBatch`.  Per-spec RNG streams are
    pinned by ``spec.seed``, so each chunk entry is bit-identical to the
    structure of the matrix the instance path materialises.
    """
    specs = list(specs)
    n = len(specs)
    n_rows = np.zeros(n, dtype=np.int64)
    n_cols = np.zeros(n, dtype=np.int64)
    row_offsets = np.zeros(n + 1, dtype=np.int64)
    nnz_offsets = np.zeros(n + 1, dtype=np.int64)
    lengths_parts = []
    indices_parts = []
    for k, spec in enumerate(specs):
        rep = spec if max_nnz is None else spec.representative(max_nnz)
        indptr, indices = artificial_structure_generation(
            rep.n_rows,
            rep.n_cols,
            rep.avg_nnz_per_row,
            std_nz_row=rep.std_ratio * rep.avg_nnz_per_row,
            distribution=rep.distribution,
            skew_coeff=rep.skew_coeff,
            bw_scaled=rep.bw_scaled,
            cross_row_sim=rep.cross_row_sim,
            avg_num_neigh=rep.avg_num_neigh,
            seed=rep.seed,
            method=rep.method,
        )
        n_rows[k] = rep.n_rows
        n_cols[k] = rep.n_cols
        row_offsets[k + 1] = row_offsets[k] + rep.n_rows
        nnz_offsets[k + 1] = nnz_offsets[k] + len(indices)
        lengths_parts.append(np.diff(indptr))
        indices_parts.append(indices.astype(INDEX_DTYPE, copy=False))
    return CSRStructBatch(
        n_rows=n_rows,
        n_cols=n_cols,
        row_lengths=(
            np.concatenate(lengths_parts)
            if lengths_parts else np.zeros(0, dtype=np.int64)
        ),
        row_offsets=row_offsets,
        indices=(
            np.concatenate(indices_parts)
            if indices_parts else np.zeros(0, dtype=INDEX_DTYPE)
        ),
        nnz_offsets=nnz_offsets,
    )

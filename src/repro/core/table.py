"""Columnar sweep tables: the one data interchange of the project.

The paper's workflow is a single big table — (matrix, device, format,
precision) → features + GFLOPs — sliced every which way by the figures
and the selector experiments.  :class:`SweepTable` stores that table as
a NumPy struct-of-arrays: one typed 1-D array per column, with the
low-cardinality string columns (``matrix``, ``device``, ``format``,
``precision``, ``bottleneck``) held as ``int32`` codes into a per-column
category list.  Every layer exchanges this type: the sweep engines build
it column-wise (workers ship column chunks, not dict lists), the
selector trains from its columns, the analysis reductions are array
passes over it, and ``io`` persists it losslessly as NPZ or typed CSV.

``to_rows()``/``from_rows()`` are the compatibility shims to the
historical dict-row schema; the golden agreement suites use them to pin
every columnar fast path bit-identical to the dict-row reference
behaviour.  See ``docs/table_schema.md`` for the full schema.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import (
    Callable, Dict, Iterable, Iterator, List, Mapping, Optional,
    Sequence, Tuple, Union,
)

import numpy as np

__all__ = [
    "SweepTable",
    "SchemaVersionError",
    "SCHEMA_VERSION",
    "CATEGORICAL_COLUMNS",
    "INT_COLUMNS",
    "FLOAT_COLUMNS",
    "COLUMN_ORDER",
    "encode_column",
    "decode_column",
]

# Bump on any change to the column set, dtypes, categorical encoding or
# NPZ layout that an older reader would misinterpret (policy in
# docs/table_schema.md).
SCHEMA_VERSION = 1

# String columns stored as int32 codes into a category list.
CATEGORICAL_COLUMNS = (
    "matrix", "device", "format", "precision", "bottleneck",
)

INT_COLUMNS = ("spec_index", "instance", "nnz", "n_rows")

FLOAT_COLUMNS = (
    "mem_footprint_mb", "avg_nnz_per_row", "skew_coeff",
    "cross_row_similarity", "avg_num_neighbours",
    "req_footprint_mb", "req_avg_nnz", "req_skew", "req_sim", "req_neigh",
    "gflops", "time_s", "watts", "gflops_per_watt",
)

# Canonical order of the known columns; a table stores the subset that
# is present, in this order (unknown columns follow, first-seen).
COLUMN_ORDER = (
    "matrix", "spec_index", "instance",
    "mem_footprint_mb", "avg_nnz_per_row", "skew_coeff",
    "cross_row_similarity", "avg_num_neighbours", "nnz", "n_rows",
    "req_footprint_mb", "req_avg_nnz", "req_skew", "req_sim", "req_neigh",
    "device", "format", "precision",
    "gflops", "time_s", "watts", "gflops_per_watt", "bottleneck",
)

_CODE_DTYPE = np.int32


class SchemaVersionError(ValueError):
    """A persisted table was written under an incompatible schema."""


def encode_column(arr: np.ndarray) -> bytes:
    """Self-describing column blob: one JSON descriptor line (dtype,
    shape) followed by the raw array bytes.

    The inverse, :func:`decode_column`, reconstructs the array with
    ``np.frombuffer`` — zero-copy when the blob is a memoryview into a
    mapped pack file, which is how pack-backed shards read columns.
    """
    arr = np.ascontiguousarray(arr)
    header = json.dumps(
        {"dtype": arr.dtype.str, "shape": list(arr.shape)},
        sort_keys=True,
    ).encode() + b"\n"
    return header + arr.tobytes()


def decode_column(blob) -> np.ndarray:
    """Rebuild a column from :func:`encode_column` bytes (or any
    buffer, e.g. an mmap-backed memoryview — the data is not copied)."""
    view = memoryview(blob)
    raw = bytes(view[:min(len(view), 256)])
    end = raw.find(b"\n")
    if end < 0:
        raise ValueError(
            "column blob has no descriptor line; it was not written by "
            "encode_column"
        )
    desc = json.loads(raw[:end])
    dtype = np.dtype(desc["dtype"])
    arr = np.frombuffer(view[end + 1:], dtype=dtype)
    return arr.reshape(desc["shape"])


def _write_npz(fh, payload: Dict[str, np.ndarray]) -> None:
    """Deterministic NPZ: fixed member order, fixed timestamps.

    ``np.savez_compressed`` stamps each zip member with the wall clock,
    so two writes of the same table differ byte-for-byte.  Pack
    round-trips (``repro pack``/``unpack``) promise byte-identical
    re-serialisation, so the table writes its own zip members with a
    pinned epoch; ``np.load`` reads the result like any other NPZ.
    """
    with zipfile.ZipFile(fh, "w", zipfile.ZIP_DEFLATED) as zf:
        for name, arr in payload.items():
            buf = io.BytesIO()
            np.lib.format.write_array(
                buf, np.asanyarray(arr), allow_pickle=False
            )
            info = zipfile.ZipInfo(
                name + ".npy", date_time=(1980, 1, 1, 0, 0, 0)
            )
            info.compress_type = zipfile.ZIP_DEFLATED
            info.external_attr = 0o600 << 16
            zf.writestr(info, buf.getvalue())


def _value_dtype(name: str, values) -> np.dtype:
    """Dtype for a known column, or infer one for an unknown column."""
    if name in INT_COLUMNS:
        return np.dtype(np.int64)
    if name in FLOAT_COLUMNS:
        return np.dtype(np.float64)
    if all(isinstance(v, bool) for v in values):
        return np.dtype(bool)
    if all(isinstance(v, (int, np.integer))
           and not isinstance(v, bool) for v in values):
        return np.dtype(np.int64)
    return np.dtype(np.float64)


def _encode(values: Sequence[str]) -> Tuple[np.ndarray, List[str]]:
    """Codes + category list (categories in first-appearance order)."""
    categories: List[str] = []
    index: Dict[str, int] = {}
    codes = np.empty(len(values), dtype=_CODE_DTYPE)
    for i, v in enumerate(values):
        if not isinstance(v, str):
            raise TypeError(
                f"categorical values must be str, got {type(v).__name__}"
            )
        code = index.get(v)
        if code is None:
            code = index[v] = len(categories)
            categories.append(v)
        codes[i] = code
    return codes, categories


def _ordered_names(names: Iterable[str]) -> List[str]:
    """Known columns in canonical order, then unknowns in given order."""
    names = list(names)
    known = [n for n in COLUMN_ORDER if n in names]
    return known + [n for n in names if n not in COLUMN_ORDER]


class SweepTable:
    """A typed, columnar measurement table (see module docstring).

    Parameters
    ----------
    columns:
        Mapping of column name → 1-D array.  Categorical columns hold
        ``int32`` codes; ``categories`` maps each to its category list.
    categories:
        Category lists for the categorical columns present.
    """

    def __init__(
        self,
        columns: Dict[str, np.ndarray],
        categories: Optional[Dict[str, List[str]]] = None,
    ):
        categories = dict(categories or {})
        cols: Dict[str, np.ndarray] = {}
        n = None
        for name in _ordered_names(columns):
            arr = np.asarray(columns[name])
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D")
            if n is None:
                n = len(arr)
            elif len(arr) != n:
                raise ValueError(
                    f"column {name!r} has {len(arr)} entries, "
                    f"expected {n}"
                )
            if name in categories:
                arr = arr.astype(_CODE_DTYPE, copy=False)
                cats = list(categories[name])
                if len(arr) and (
                    arr.min() < 0 or arr.max() >= len(cats)
                ):
                    raise ValueError(
                        f"column {name!r} has codes outside its "
                        f"{len(cats)} categories"
                    )
                categories[name] = cats
            cols[name] = arr
        unknown = set(categories) - set(cols)
        if unknown:
            raise ValueError(
                f"categories given for absent columns: {sorted(unknown)}"
            )
        self._columns = cols
        self._categories = categories
        self._rows_cache: Optional[List[dict]] = None

    # -- construction --------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[dict]) -> "SweepTable":
        """Build a table from homogeneous dict rows (the compat shim).

        Known columns get their schema dtypes; unknown numeric columns
        infer int64/float64 and unknown string columns become
        categorical.  All rows must share one key set — heterogeneous
        row lists (e.g. per-fold experiment summaries) are not tables.
        """
        rows = list(rows)
        if not rows:
            return cls({})
        keys = list(rows[0])
        key_set = set(keys)
        for r in rows:
            if set(r) != key_set:
                raise ValueError(
                    "rows are heterogeneous: expected keys "
                    f"{sorted(key_set)}, found {sorted(r)}"
                )
        columns: Dict[str, np.ndarray] = {}
        categories: Dict[str, List[str]] = {}
        for name in _ordered_names(keys):
            values = [r[name] for r in rows]
            if name in CATEGORICAL_COLUMNS or (
                name not in INT_COLUMNS
                and name not in FLOAT_COLUMNS
                and any(isinstance(v, str) for v in values)
            ):
                codes, cats = _encode(values)
                columns[name] = codes
                categories[name] = cats
            else:
                columns[name] = np.array(
                    values, dtype=_value_dtype(name, values)
                )
        return cls(columns, categories)

    @classmethod
    def concat(cls, tables: Sequence["SweepTable"]) -> "SweepTable":
        """Concatenate chunk tables (the engine's merge step).

        Column sets must match; categorical codes are remapped into the
        merged category lists, which keeps first-appearance order over
        the concatenated rows — so a sharded sweep's merged table equals
        the serial table, chunk boundaries notwithstanding.
        """
        tables = [t for t in tables if len(t.names)]
        if not tables:
            return cls({})
        names = tables[0].names
        for t in tables[1:]:
            if t.names != names:
                raise ValueError(
                    f"cannot concat tables with different columns: "
                    f"{names} vs {t.names}"
                )
        columns: Dict[str, np.ndarray] = {}
        categories: Dict[str, List[str]] = {}
        for name in names:
            if tables[0].is_categorical(name):
                merged: List[str] = []
                index: Dict[str, int] = {}
                parts = []
                for t in tables:
                    cats = t.categories(name)
                    remap = np.empty(max(len(cats), 1), dtype=_CODE_DTYPE)
                    for i, c in enumerate(cats):
                        code = index.get(c)
                        if code is None:
                            code = index[c] = len(merged)
                            merged.append(c)
                        remap[i] = code
                    codes = t.codes(name)
                    parts.append(remap[codes] if len(codes) else codes)
                columns[name] = np.concatenate(parts)
                categories[name] = merged
            else:
                columns[name] = np.concatenate(
                    [t._columns[name] for t in tables]
                )
        return cls(columns, categories)

    def with_constant(self, name: str, value) -> "SweepTable":
        """A new table with one added constant column."""
        if name in self._columns:
            raise ValueError(f"column {name!r} already present")
        columns = dict(self._columns)
        categories = dict(self._categories)
        if isinstance(value, str):
            columns[name] = np.zeros(len(self), dtype=_CODE_DTYPE)
            categories[name] = [value]
        else:
            columns[name] = np.full(
                len(self), value, dtype=_value_dtype(name, [value])
            )
        return SweepTable(columns, categories)

    # -- introspection -------------------------------------------------
    @property
    def names(self) -> List[str]:
        """Column names in stable (canonical-first) order."""
        return list(self._columns)

    def __len__(self) -> int:
        for arr in self._columns.values():
            return len(arr)
        return 0

    def __repr__(self) -> str:
        return (
            f"SweepTable({len(self)} rows x {len(self.names)} columns: "
            f"{', '.join(self.names)})"
        )

    def is_categorical(self, name: str) -> bool:
        self._require(name)
        return name in self._categories

    def categories(self, name: str) -> List[str]:
        """Category list of a categorical column (codes index it)."""
        self._require(name)
        return list(self._categories[name])

    def codes(self, name: str) -> np.ndarray:
        """Raw int32 codes of a categorical column (no copy)."""
        self._require(name)
        if name not in self._categories:
            raise ValueError(f"column {name!r} is not categorical")
        return self._columns[name]

    def column(self, name: str) -> np.ndarray:
        """Decoded column: value array, or str array for categoricals."""
        self._require(name)
        arr = self._columns[name]
        if name in self._categories:
            cats = np.array(self._categories[name], dtype=object)
            return cats[arr] if len(arr) else np.empty(0, dtype=object)
        return arr

    def _require(self, name: str) -> None:
        if name not in self._columns:
            raise KeyError(
                f"unknown column {name!r}; available: {self.names}"
            )

    # -- slicing -------------------------------------------------------
    def mask(self, **conditions) -> np.ndarray:
        """Boolean row mask for equality conditions (no rows built).

        Categorical conditions compare against the category list first,
        so an absent value costs O(categories), not a row scan.
        """
        out = np.ones(len(self), dtype=bool)
        for name, want in conditions.items():
            self._require(name)
            if name in self._categories:
                try:
                    code = self._categories[name].index(want)
                except ValueError:
                    return np.zeros(len(self), dtype=bool)
                out &= self._columns[name] == code
            else:
                out &= self._columns[name] == want
        return out

    def select(self, index: np.ndarray) -> "SweepTable":
        """Rows picked by a boolean mask or integer index array.

        Category lists are shared with the parent (never copied), so a
        slice costs one gather per column.
        """
        columns = {
            name: arr[index] for name, arr in self._columns.items()
        }
        return SweepTable(columns, self._categories)

    def where(self, **conditions) -> "SweepTable":
        """Rows matching every equality condition (column == value)."""
        return self.select(self.mask(**conditions))

    def where_in(self, name: str, values) -> "SweepTable":
        """Rows whose ``name`` column takes any of ``values``."""
        self._require(name)
        if name in self._categories:
            wanted = set(values)
            codes = [
                i for i, c in enumerate(self._categories[name])
                if c in wanted
            ]
            index = np.isin(self._columns[name], codes)
        else:
            index = np.isin(self._columns[name], list(values))
        return self.select(index)

    def filter(
        self, predicate: Callable[[dict], bool]
    ) -> "SweepTable":
        """Rows passing a dict-row predicate (compat; materialises)."""
        keep = np.fromiter(
            (bool(predicate(r)) for r in self.iter_rows()),
            dtype=bool, count=len(self),
        )
        return self.select(keep)

    def group_index(self, name: str) -> Tuple[np.ndarray, List]:
        """``(group_id per row, decoded group keys)`` for one column.

        Groups are numbered in first-appearance (row) order — the same
        contract as grouping dict rows with an insertion-ordered dict.
        This is the vectorised core of :meth:`groupby`, exposed because
        the selector and the analysis reductions group without
        materialising per-group subtables.
        """
        self._require(name)
        arr = self._columns[name]
        if len(arr) == 0:
            return np.empty(0, dtype=np.int64), []
        if name in self._categories:
            # Codes are already dense ints: one reversed scatter finds
            # each code's first occurrence (last write wins, so writing
            # back-to-front leaves the first), no value sort needed.
            cats = self._categories[name]
            n = len(arr)
            first = np.full(len(cats), n, dtype=np.int64)
            first[arr[::-1]] = np.arange(n - 1, -1, -1)
            present = np.flatnonzero(first < n)
            order = present[np.argsort(first[present], kind="stable")]
            rank = np.empty(len(cats), dtype=np.int64)
            rank[order] = np.arange(len(order))
            return rank[arr], [cats[int(c)] for c in order]
        uniq, first, inverse = np.unique(
            arr, return_index=True, return_inverse=True
        )
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[order] = np.arange(len(uniq))
        keys = [uniq[pos].item() for pos in order]
        return rank[inverse], keys

    def groupby(
        self, name: str
    ) -> Iterator[Tuple[object, "SweepTable"]]:
        """Yield ``(value, subtable)`` per distinct value of a column,
        in first-appearance order, rows keeping their relative order.

        One stable sort of the group ids; each subtable is then a
        contiguous slice of the sorted row order, so the whole pass
        gathers every column exactly once regardless of group count.
        """
        g, keys = self.group_index(name)
        order = np.argsort(g, kind="stable")
        bounds = np.searchsorted(g[order], np.arange(len(keys) + 1))
        for k, key in enumerate(keys):
            yield key, self.select(order[bounds[k]:bounds[k + 1]])

    def unique(self, name: str) -> List:
        """Distinct decoded values in first-appearance order."""
        return self.group_index(name)[1]

    # -- dict-row compatibility ----------------------------------------
    def iter_rows(self) -> Iterator[dict]:
        """Dict rows, lazily (decoded Python scalars per value)."""
        names = self.names
        decoded = []
        for name in names:
            arr = self._columns[name]
            if name in self._categories:
                cats = self._categories[name]
                decoded.append([cats[c] for c in arr])
            else:
                decoded.append(arr.tolist())
        for values in zip(*decoded):
            yield dict(zip(names, values))

    def to_rows(self) -> List[dict]:
        """The historical dict-row projection (Python scalars)."""
        return list(self.iter_rows())

    @property
    def rows(self) -> List[dict]:
        """Cached :meth:`to_rows` — the seed ``MeasurementTable.rows``."""
        if self._rows_cache is None:
            self._rows_cache = self.to_rows()
        return self._rows_cache

    # -- equality ------------------------------------------------------
    def __eq__(self, other) -> bool:
        """Column-for-column equality on decoded values.

        Category *encodings* may differ (e.g. after a CSV round trip the
        categories are re-collected first-seen); only names, kinds,
        dtypes and decoded values must match.  NaNs compare equal.
        """
        if not isinstance(other, SweepTable):
            return NotImplemented
        if self.names != other.names or len(self) != len(other):
            return False
        for name in self.names:
            if self.is_categorical(name) != other.is_categorical(name):
                return False
            a, b = self.column(name), other.column(name)
            if not self.is_categorical(name):
                if a.dtype != b.dtype:
                    return False
                if a.dtype.kind == "f":
                    if not np.array_equal(a, b, equal_nan=True):
                        return False
                    continue
            if not np.array_equal(a, b):
                return False
        return True

    __hash__ = None

    # -- persistence ---------------------------------------------------
    def to_npz(self, path: Union[str, Path]) -> None:
        """Lossless NPZ persistence (layout in docs/table_schema.md).

        The write is deterministic: equal tables serialise to equal
        bytes (pinned zip timestamps, stable member order), which is
        what lets ``repro pack``/``unpack`` promise byte-identical
        round trips of saved tables.
        """
        payload: Dict[str, np.ndarray] = {
            "__schema_version__": np.int64(SCHEMA_VERSION),
            "__columns__": np.array(self.names, dtype=np.str_),
        }
        for name in self.names:
            payload[f"col:{name}"] = self._columns[name]
            if name in self._categories:
                payload[f"cat:{name}"] = np.array(
                    self._categories[name], dtype=np.str_
                )
        with open(path, "wb") as fh:
            _write_npz(fh, payload)

    def to_blobs(self, prefix: str = "") -> Dict[str, bytes]:
        """The table as named column blobs (the pack-entry projection).

        One ``__meta__`` JSON blob (schema version, column order,
        categorical set) plus one :func:`encode_column` blob per column
        array and per category list.  ``prefix`` namespaces the blobs
        so many tables (e.g. journal shards) share one pack.
        """
        meta = {
            "schema_version": SCHEMA_VERSION,
            "columns": self.names,
            "categorical": [
                n for n in self.names if n in self._categories
            ],
        }
        blobs: Dict[str, bytes] = {
            f"{prefix}__meta__": json.dumps(meta, sort_keys=True).encode()
        }
        for name in self.names:
            blobs[f"{prefix}col:{name}"] = encode_column(
                self._columns[name]
            )
            if name in self._categories:
                blobs[f"{prefix}cat:{name}"] = encode_column(
                    np.array(self._categories[name], dtype=np.str_)
                )
        return blobs

    @classmethod
    def from_blobs(
        cls, blobs: Mapping[str, object], prefix: str = ""
    ) -> "SweepTable":
        """Rebuild a table from :meth:`to_blobs` output.

        ``blobs`` maps blob name to any buffer (bytes, or memoryviews
        straight out of a mapped pack — columns then reference the map
        without copying).  Raises :class:`SchemaVersionError` on
        version drift or missing blobs, mirroring :meth:`from_npz`.
        """
        meta_key = f"{prefix}__meta__"
        if meta_key not in blobs:
            raise SchemaVersionError(
                f"no {meta_key!r} blob; these entries were not written "
                "by SweepTable.to_blobs (or the prefix is wrong)"
            )
        meta = json.loads(bytes(memoryview(blobs[meta_key])))
        version = meta.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"table blobs use schema version {version}, but this "
                f"build reads version {SCHEMA_VERSION}; regenerate the "
                "pack with `repro sweep`/`repro pack` from this build"
            )
        columns: Dict[str, np.ndarray] = {}
        categories: Dict[str, List[str]] = {}
        categorical = set(meta.get("categorical", ()))
        for name in meta["columns"]:
            key = f"{prefix}col:{name}"
            if key not in blobs:
                raise SchemaVersionError(
                    f"missing column blob {key!r}; the pack is "
                    "incomplete — regenerate it"
                )
            columns[name] = decode_column(blobs[key])
            if name in categorical:
                cat_key = f"{prefix}cat:{name}"
                if cat_key not in blobs:
                    raise SchemaVersionError(
                        f"missing category blob {cat_key!r}; the pack "
                        "is incomplete — regenerate it"
                    )
                categories[name] = [
                    str(c) for c in decode_column(blobs[cat_key])
                ]
        return cls(columns, categories)

    @classmethod
    def from_npz(cls, path: Union[str, Path]) -> "SweepTable":
        """Load a table written by :meth:`to_npz`, exactly.

        Raises :class:`SchemaVersionError` (a ``ValueError``) when the
        file was written under a different schema version — regenerate
        the table with the current build (``repro sweep``) rather than
        guessing at column semantics.
        """
        path = Path(path)
        try:
            return cls._from_npz(path)
        except SchemaVersionError:
            raise
        except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
            # Truncated download, interrupted copy, non-NPZ bytes:
            # surface one actionable message instead of a zipfile or
            # pickle traceback.
            raise SchemaVersionError(
                f"{path} is not a readable SweepTable NPZ "
                f"({type(exc).__name__}: {exc}); the file is corrupt "
                "or truncated — regenerate it with `repro sweep --out "
                f"{path.name}`"
            ) from exc

    @classmethod
    def _from_npz(cls, path: Path) -> "SweepTable":
        with np.load(path) as npz:
            if "__schema_version__" not in npz.files:
                raise SchemaVersionError(
                    f"{path} is not a SweepTable NPZ (no schema "
                    "version); re-create it with `repro sweep --out "
                    f"{path.name}` or SweepTable.to_npz()"
                )
            version = int(npz["__schema_version__"])
            if version != SCHEMA_VERSION:
                raise SchemaVersionError(
                    f"{path} uses table schema version {version}, but "
                    f"this build reads version {SCHEMA_VERSION}; "
                    "regenerate it with `repro sweep` from this build"
                )
            names = [str(n) for n in npz["__columns__"]]
            columns: Dict[str, np.ndarray] = {}
            categories: Dict[str, List[str]] = {}
            for name in names:
                key = f"col:{name}"
                if key not in npz.files:
                    raise SchemaVersionError(
                        f"{path} is missing column data for {name!r}; "
                        "the file is truncated or hand-edited — "
                        "regenerate it with `repro sweep`"
                    )
                columns[name] = npz[key]
                cat_key = f"cat:{name}"
                if cat_key in npz.files:
                    categories[name] = [str(c) for c in npz[cat_key]]
        return cls(columns, categories)

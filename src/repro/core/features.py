"""Structural matrix features (Section III-A of the paper).

The paper selects one feature per SpMV bottleneck:

========================  ==============================  =====================
feature                   paper label                     bottleneck
========================  ==============================  =====================
``mem_footprint_mb``      f1  ``mem_footprint``           memory-bandwidth intensity
``avg_nnz_per_row``       f2  ``avg_nz_row``              low ILP
``skew_coeff``            f3  ``skew_coeff``              load imbalance
``cross_row_similarity``  f4.a ``cross_row_sim``          memory latency (temporal locality on x)
``avg_num_neighbours``    f4.b ``avg_num_neigh``          memory latency (spatial locality on x)
========================  ==============================  =====================

All extractors are fully vectorised; they never loop over rows in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List

import numpy as np

from .matrix import CSRMatrix

__all__ = [
    "Features",
    "extract_features",
    "skew_coefficient",
    "avg_num_neighbours",
    "cross_row_similarity",
    "scaled_bandwidth",
    "regularity_class",
    "FEATURE_NAMES",
]


@dataclass(frozen=True)
class Features:
    """The full feature vector of a sparse matrix.

    The first five fields are the paper's minimal feature set; the rest are
    auxiliary descriptors used by the extended-feature ablation and the
    performance model.
    """

    # --- the paper's minimal set -------------------------------------
    mem_footprint_mb: float
    avg_nnz_per_row: float
    skew_coeff: float
    cross_row_similarity: float
    avg_num_neighbours: float
    # --- auxiliary ----------------------------------------------------
    n_rows: int
    n_cols: int
    nnz: int
    density: float
    std_nnz_per_row: float
    max_nnz_per_row: int
    min_nnz_per_row: int
    empty_row_fraction: float
    bandwidth_scaled: float

    def minimal_vector(self) -> np.ndarray:
        """The paper's 5-feature vector, in Table-I order."""
        return np.array(
            [
                self.mem_footprint_mb,
                self.avg_nnz_per_row,
                self.skew_coeff,
                self.cross_row_similarity,
                self.avg_num_neighbours,
            ],
            dtype=np.float64,
        )

    def full_vector(self) -> np.ndarray:
        """All numeric features, for the extended-feature ablation."""
        return np.array(
            [getattr(self, f.name) for f in fields(self)], dtype=np.float64
        )

    def to_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


FEATURE_NAMES: List[str] = [f.name for f in fields(Features)]
MINIMAL_FEATURE_NAMES: List[str] = [
    "mem_footprint_mb",
    "avg_nnz_per_row",
    "skew_coeff",
    "cross_row_similarity",
    "avg_num_neighbours",
]


def skew_coefficient(row_lengths: np.ndarray) -> float:
    """``(max - avg) / avg`` of nonzeros per row (paper f3).

    A skew of 1 means the longest row is twice the average; balanced
    matrices sit at ~10 or below, unbalanced ones in the hundreds/thousands.
    """
    row_lengths = np.asarray(row_lengths)
    if len(row_lengths) == 0:
        return 0.0
    avg = row_lengths.mean()
    if avg == 0:
        return 0.0
    return float((row_lengths.max() - avg) / avg)


def avg_num_neighbours(mat: CSRMatrix, distance: int = 1) -> float:
    """Average same-row neighbour count within ``distance`` columns (f4.b).

    For ``distance=1`` each nonzero can have at most a left and a right
    neighbour, so the result lies in ``[0, 2]``.  Measures nonzero
    clustering, i.e. spatial locality on the ``x`` vector.
    """
    if mat.nnz == 0:
        return 0.0
    rows = np.repeat(np.arange(mat.n_rows, dtype=np.int64), mat.row_lengths)
    cols = mat.indices.astype(np.int64)
    if mat.nnz == 1:
        return 0.0
    col_diff = np.diff(cols)
    same_row = np.diff(rows) == 0
    # Adjacent pair within `distance` -> both endpoints gain one neighbour.
    close = same_row & (col_diff >= 1) & (col_diff <= distance)
    return float(2.0 * np.count_nonzero(close) / mat.nnz)


def cross_row_similarity(mat: CSRMatrix, distance: int = 1) -> float:
    """Average fraction of a row's nonzeros with a next-row neighbour (f4.a).

    A nonzero at ``(r, c)`` has a cross-row neighbour if row ``r+1`` stores
    any column in ``[c - distance, c + distance]``.  Per-row fractions are
    averaged over all rows that have nonzeros and a successor row, giving a
    value in ``[0, 1]``; it captures temporal locality on ``x``.
    """
    if mat.nnz == 0 or mat.n_rows < 2:
        return 0.0
    lengths = mat.row_lengths
    rows = np.repeat(np.arange(mat.n_rows, dtype=np.int64), lengths)
    cols = mat.indices.astype(np.int64)
    # Global sorted keys: row * stride + col is strictly increasing for
    # sorted CSR, letting us binary-search "does row r+1 contain a column in
    # [c-d, c+d]" for all nonzeros at once.
    stride = np.int64(mat.n_cols + 2 * distance + 2)
    keys = rows * stride + cols
    lo_q = (rows + 1) * stride + np.maximum(cols - distance, 0)
    hi_q = (rows + 1) * stride + np.minimum(cols + distance, mat.n_cols - 1)
    lo = np.searchsorted(keys, lo_q, side="left")
    hi = np.searchsorted(keys, hi_q, side="right")
    has_neighbour = (hi > lo).astype(np.float64)
    # Per-row fraction, then average across eligible rows (nonzero rows with
    # a successor row).
    per_row_hits = np.zeros(mat.n_rows, dtype=np.float64)
    np.add.at(per_row_hits, rows, has_neighbour)
    eligible = (lengths > 0) & (
        np.arange(mat.n_rows) < mat.n_rows - 1
    )
    if not np.any(eligible):
        return 0.0
    frac = per_row_hits[eligible] / lengths[eligible]
    return float(frac.mean())


def scaled_bandwidth(mat: CSRMatrix) -> float:
    """Average per-row column extent, scaled by the column count ([0, 1]).

    This is the generator's internal ``bw_scaled`` knob measured back from a
    matrix: ``mean over non-empty rows of (max_col - min_col + 1) / n_cols``.
    """
    if mat.nnz == 0 or mat.n_cols == 0:
        return 0.0
    lengths = mat.row_lengths
    nonempty = lengths > 0
    # First/last stored column per row: CSR keeps columns sorted in rows.
    starts = mat.indptr[:-1][nonempty]
    ends = mat.indptr[1:][nonempty] - 1
    extent = (
        mat.indices[ends].astype(np.float64)
        - mat.indices[starts].astype(np.float64)
        + 1.0
    )
    return float((extent / mat.n_cols).mean())


def extract_features(mat: CSRMatrix) -> Features:
    """Compute the complete :class:`Features` vector of ``mat``."""
    lengths = mat.row_lengths
    nnz = mat.nnz
    n_rows = mat.n_rows
    avg = nnz / n_rows if n_rows else 0.0
    return Features(
        mem_footprint_mb=mat.memory_mb(),
        avg_nnz_per_row=float(avg),
        skew_coeff=skew_coefficient(lengths),
        cross_row_similarity=cross_row_similarity(mat),
        avg_num_neighbours=avg_num_neighbours(mat),
        n_rows=n_rows,
        n_cols=mat.n_cols,
        nnz=nnz,
        density=mat.density,
        std_nnz_per_row=float(lengths.std()) if n_rows else 0.0,
        max_nnz_per_row=int(lengths.max()) if n_rows else 0,
        min_nnz_per_row=int(lengths.min()) if n_rows else 0,
        empty_row_fraction=(
            float(np.count_nonzero(lengths == 0) / n_rows) if n_rows else 0.0
        ),
        bandwidth_scaled=scaled_bandwidth(mat),
    )


# Thresholds splitting each regularity sub-feature range into three equal
# sub-ranges, as in Fig 6 / Table III ("S", "M", "L"; Small = irregular).
_SIM_EDGES = (1.0 / 3.0, 2.0 / 3.0)  # cross_row_similarity in [0, 1]
_NEIGH_EDGES = (2.0 / 3.0, 4.0 / 3.0)  # avg_num_neighbours in [0, 2]


def regularity_class(features: "Features") -> str:
    """Two-letter S/M/L label for (neighbours, similarity), as in Table III.

    The first letter classifies ``avg_num_neighbours``, the second
    ``cross_row_similarity``.  "S" (small) implies an irregular matrix.
    """

    def _cls(value: float, edges) -> str:
        if value < edges[0]:
            return "S"
        if value < edges[1]:
            return "M"
        return "L"

    return _cls(features.avg_num_neighbours, _NEIGH_EDGES) + _cls(
        features.cross_row_similarity, _SIM_EDGES
    )

"""Lightweight CSR sparse-matrix container.

The whole library operates on :class:`CSRMatrix`, a validated, immutable-ish
CSR triple (``indptr``, ``indices``, ``data``).  It is intentionally much
smaller than :class:`scipy.sparse.csr_matrix`: formats, the generator and the
performance simulator only need fast, predictable access to the raw arrays.
Interop helpers convert to/from scipy for verification and I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = [
    "CSRMatrix",
    "CSRStructBatch",
    "csr_from_arrays",
    "csr_from_coo",
    "csr_from_dense",
]

# Index dtype used across the library.  The paper's matrices stay far below
# 2^31 nonzeros; 32-bit indices also match what the CSR footprint formula in
# Section III-A assumes (4-byte column indices / row pointers).
INDEX_DTYPE = np.int32
VALUE_DTYPE = np.float64


@dataclass
class CSRMatrix:
    """A sparse matrix in Compressed Sparse Row form.

    Attributes
    ----------
    n_rows, n_cols:
        Matrix dimensions.
    indptr:
        ``(n_rows + 1,)`` row-pointer array; ``indptr[i]:indptr[i+1]`` is the
        slice of ``indices``/``data`` holding row ``i``.
    indices:
        ``(nnz,)`` column index of every stored element, sorted within rows.
    data:
        ``(nnz,)`` element values.
    """

    n_rows: int
    n_cols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    _row_lengths: np.ndarray = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(self.data, dtype=VALUE_DTYPE)
        self.validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on any violated CSR invariant."""
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if self.indptr.shape != (self.n_rows + 1,):
            raise ValueError(
                f"indptr must have shape ({self.n_rows + 1},), "
                f"got {self.indptr.shape}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal nnz")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have equal length")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices):
            if self.indices.min() < 0 or self.indices.max() >= self.n_cols:
                raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) elements."""
        return int(self.indptr[-1])

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def row_lengths(self) -> np.ndarray:
        """Per-row nonzero counts (cached)."""
        if self._row_lengths is None:
            self._row_lengths = np.diff(self.indptr).astype(np.int64)
        return self._row_lengths

    @property
    def density(self) -> float:
        denom = self.n_rows * self.n_cols
        return self.nnz / denom if denom else 0.0

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(columns, values)`` views of row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # ------------------------------------------------------------------
    # Memory accounting (paper feature f1)
    # ------------------------------------------------------------------
    def memory_bytes(
        self, index_bytes: int = 4, value_bytes: int = 8
    ) -> int:
        """CSR storage size: nnz values + nnz column indices + row pointers.

        Matches the paper's f1 = "matrix (CSR) size (MB)" convention of
        4-byte indices and 8-byte double values.
        """
        return (
            self.nnz * value_bytes
            + self.nnz * index_bytes
            + (self.n_rows + 1) * index_bytes
        )

    def memory_mb(self) -> float:
        """CSR footprint in MiB (paper feature f1)."""
        return self.memory_bytes() / (1024.0 * 1024.0)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` (vectorised segmented reduction)."""
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},)")
        products = self.data * x[self.indices]
        y = np.zeros(self.n_rows, dtype=VALUE_DTYPE)
        # reduceat needs non-empty segments handled carefully; use add.at-free
        # cumulative-sum trick: segment sums via cumsum differences.
        if self.nnz:
            csum = np.concatenate(([0.0], np.cumsum(products)))
            y = csum[self.indptr[1:]] - csum[self.indptr[:-1]]
        return y

    def sort_indices(self) -> "CSRMatrix":
        """Return an equivalent matrix with columns sorted within each row."""
        indices = self.indices.copy()
        data = self.data.copy()
        lengths = self.row_lengths
        # Vectorised within-row sort: sort by (row, col) pairs globally.
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), lengths
        )
        order = np.lexsort((indices, rows))
        return CSRMatrix(
            self.n_rows, self.n_cols, self.indptr.copy(),
            indices[order], data[order],
        )

    def has_sorted_indices(self) -> bool:
        """True iff columns are strictly increasing within every row."""
        if self.nnz == 0:
            return True
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_lengths
        )
        # Row jumps add at least (n_cols + 1), which dominates any column
        # difference, so global strict increase <=> within-row strict
        # increase with no duplicate columns.
        keys = rows * np.int64(self.n_cols + 1) + self.indices
        return bool(np.all(np.diff(keys) > 0))

    def transpose(self) -> "CSRMatrix":
        """Return the CSC-equivalent transpose as a new CSR matrix."""
        # Counting sort by column.
        counts = np.bincount(self.indices, minlength=self.n_cols)
        indptr_t = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        order = np.argsort(self.indices, kind="stable")
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_lengths
        )
        return CSRMatrix(
            self.n_cols, self.n_rows, indptr_t,
            rows[order].astype(INDEX_DTYPE), self.data[order],
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_lengths
        )
        out[rows, self.indices] = self.data
        return out

    # ------------------------------------------------------------------
    # scipy interop
    # ------------------------------------------------------------------
    def to_scipy(self):
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        mat = mat.tocsr()
        mat.sort_indices()
        return cls(
            mat.shape[0], mat.shape[1],
            mat.indptr.astype(np.int64),
            mat.indices.astype(INDEX_DTYPE),
            mat.data.astype(VALUE_DTYPE),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )


def csr_from_arrays(n_rows, n_cols, indptr, indices, data) -> CSRMatrix:
    """Construct a validated :class:`CSRMatrix` from raw arrays."""
    return CSRMatrix(n_rows, n_cols, indptr, indices, data)


@dataclass
class CSRStructBatch:
    """Stacked CSR *structure* arrays for a chunk of matrices.

    The fused cold path scores whole chunks of specs without materialising
    per-instance Python objects, so the generator emits one flat container:
    per-matrix dimensions plus the concatenated row-length and column-index
    arrays with prefix offsets.  Values are never stored — every analytic
    consumer (format stats, features, imbalance) is structure-only.

    Attributes
    ----------
    n_rows, n_cols:
        ``(n,)`` per-matrix dimensions.
    row_lengths:
        Concatenated per-row nonzero counts;
        ``row_lengths[row_offsets[i]:row_offsets[i+1]]`` belongs to matrix
        ``i``.
    row_offsets:
        ``(n + 1,)`` prefix offsets into ``row_lengths``.
    indices:
        Concatenated column indices (sorted within rows, per matrix);
        ``indices[nnz_offsets[i]:nnz_offsets[i+1]]`` belongs to matrix ``i``.
    nnz_offsets:
        ``(n + 1,)`` prefix offsets into ``indices``.
    """

    n_rows: np.ndarray
    n_cols: np.ndarray
    row_lengths: np.ndarray
    row_offsets: np.ndarray
    indices: np.ndarray
    nnz_offsets: np.ndarray

    def __post_init__(self) -> None:
        self.n_rows = np.ascontiguousarray(self.n_rows, dtype=np.int64)
        self.n_cols = np.ascontiguousarray(self.n_cols, dtype=np.int64)
        self.row_lengths = np.ascontiguousarray(
            self.row_lengths, dtype=np.int64
        )
        self.row_offsets = np.ascontiguousarray(
            self.row_offsets, dtype=np.int64
        )
        self.indices = np.ascontiguousarray(self.indices, dtype=INDEX_DTYPE)
        self.nnz_offsets = np.ascontiguousarray(
            self.nnz_offsets, dtype=np.int64
        )
        n = len(self.n_rows)
        if len(self.n_cols) != n:
            raise ValueError("n_rows and n_cols must have equal length")
        if self.row_offsets.shape != (n + 1,):
            raise ValueError(f"row_offsets must have shape ({n + 1},)")
        if self.nnz_offsets.shape != (n + 1,):
            raise ValueError(f"nnz_offsets must have shape ({n + 1},)")
        if self.row_offsets[-1] != len(self.row_lengths):
            raise ValueError("row_offsets[-1] must equal len(row_lengths)")
        if self.nnz_offsets[-1] != len(self.indices):
            raise ValueError("nnz_offsets[-1] must equal len(indices)")

    def __len__(self) -> int:
        return len(self.n_rows)

    @property
    def nnz(self) -> np.ndarray:
        """``(n,)`` per-matrix nonzero counts."""
        return np.diff(self.nnz_offsets)

    def lengths_of(self, i: int) -> np.ndarray:
        """Row-length view of matrix ``i``."""
        return self.row_lengths[self.row_offsets[i]:self.row_offsets[i + 1]]

    def indices_of(self, i: int) -> np.ndarray:
        """Column-index view of matrix ``i``."""
        return self.indices[self.nnz_offsets[i]:self.nnz_offsets[i + 1]]

    def matrix(self, i: int) -> CSRMatrix:
        """Materialise matrix ``i`` with zeroed values.

        Every analytic stats/feature path is structure-only, so a zero data
        payload is a faithful stand-in wherever a per-matrix fallback needs
        a real :class:`CSRMatrix`.
        """
        lengths = self.lengths_of(i)
        indptr = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = self.indices_of(i)
        return CSRMatrix(
            int(self.n_rows[i]), int(self.n_cols[i]),
            indptr, indices, np.zeros(len(indices)),
            _row_lengths=lengths,
        )

    @classmethod
    def from_matrices(cls, mats) -> "CSRStructBatch":
        """Stack existing matrices into one structure batch (tests/tools)."""
        mats = list(mats)
        row_offsets = np.zeros(len(mats) + 1, dtype=np.int64)
        nnz_offsets = np.zeros(len(mats) + 1, dtype=np.int64)
        np.cumsum([m.n_rows for m in mats], out=row_offsets[1:])
        np.cumsum([m.nnz for m in mats], out=nnz_offsets[1:])
        return cls(
            n_rows=np.array([m.n_rows for m in mats], dtype=np.int64),
            n_cols=np.array([m.n_cols for m in mats], dtype=np.int64),
            row_lengths=(
                np.concatenate([m.row_lengths for m in mats])
                if mats else np.zeros(0, dtype=np.int64)
            ),
            row_offsets=row_offsets,
            indices=(
                np.concatenate([m.indices for m in mats])
                if mats else np.zeros(0, dtype=INDEX_DTYPE)
            ),
            nnz_offsets=nnz_offsets,
        )


def csr_from_coo(
    n_rows: int,
    n_cols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    sum_duplicates: bool = True,
) -> CSRMatrix:
    """Build CSR from COO triplets (rows unsorted, duplicates summed)."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=VALUE_DTYPE)
    if not (len(rows) == len(cols) == len(vals)):
        raise ValueError("COO arrays must have equal length")
    if len(rows) and (rows.min() < 0 or rows.max() >= n_rows):
        raise ValueError("row index out of range")
    if len(cols) and (cols.min() < 0 or cols.max() >= n_cols):
        raise ValueError("column index out of range")
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    if sum_duplicates and len(rows):
        keys = rows * n_cols + cols
        uniq_mask = np.concatenate(([True], np.diff(keys) != 0))
        group_ids = np.cumsum(uniq_mask) - 1
        summed = np.zeros(group_ids[-1] + 1, dtype=VALUE_DTYPE)
        np.add.at(summed, group_ids, vals)
        rows, cols, vals = rows[uniq_mask], cols[uniq_mask], summed
    counts = np.bincount(rows, minlength=n_rows)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return CSRMatrix(n_rows, n_cols, indptr, cols, vals)


def csr_from_dense(dense: np.ndarray, tol: float = 0.0) -> CSRMatrix:
    """Build CSR from a dense 2-D array, dropping entries with |v| <= tol."""
    dense = np.asarray(dense, dtype=VALUE_DTYPE)
    if dense.ndim != 2:
        raise ValueError("dense must be 2-D")
    mask = np.abs(dense) > tol
    rows, cols = np.nonzero(mask)
    return csr_from_coo(
        dense.shape[0], dense.shape[1], rows, cols, dense[mask],
        sum_duplicates=False,
    )

"""Command-line interface.

Six subcommands wrap the library's main workflows::

    repro generate   --rows 20000 --avg 25 --skew 50 --out m.mtx
    repro features   m.mtx
    repro simulate   m.mtx --device Tesla-A100 [--format CSR5] [--fp32]
    repro sweep      --scale tiny --devices Tesla-A100,AMD-EPYC-64 --out t.npz
    repro validate   --ids 1,11,39 --device AMD-EPYC-24
    repro experiment --scale tiny --protocol kfold --out result.json
    repro experiment --table t.npz --protocol kfold --out result.json
    repro pack       cache_dir/ [--prune]     (or: repro pack t.npz)
    repro unpack     cache_dir/cache.rpak --out restored/
    repro ls         cache_dir/cache.rpak [--verify]
    repro train      --table t.npz --device Tesla-A100 --out model.npz
    repro serve      --table t.npz --selector model.npz --port 8077

Every command prints human-readable tables; ``sweep`` persists the
measurement table (``--format npz|csv|json``, default inferred from the
``--out`` extension) and ``experiment`` either re-sweeps or reuses a
saved table (``--table``), persisting its cross-validated selector
results as deterministic JSON or CSV.  Bad arguments, unknown
device/format/scale names and table schema-version mismatches exit with
status 2 and an actionable message on stderr.

Long sweeps are killable and resumable: ``sweep --run-dir d/`` journals
completed chunks, ``sweep --resume d/`` skips them on a rerun
(byte-identical output), Ctrl-C flushes the journal, prints the resume
hint and exits 130, and ``--chunk-timeout``/``--max-retries``/
``--health-json``/``--faults`` expose the resilient dispatch engine
(see docs/resilience.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from ._version import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Feature-based SpMV performance analysis "
                    "(IPDPS 2023 reproduction)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate an artificial matrix")
    g.add_argument("--rows", type=int, required=True)
    g.add_argument("--cols", type=int, default=None)
    g.add_argument("--avg", type=float, required=True,
                   help="average nonzeros per row (f2)")
    g.add_argument("--skew", type=float, default=0.0, help="f3")
    g.add_argument("--sim", type=float, default=0.5, help="f4.a")
    g.add_argument("--neigh", type=float, default=1.0, help="f4.b")
    g.add_argument("--bw", type=float, default=0.3,
                   help="scaled bandwidth window")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--method", choices=("chain", "rowwise"),
                   default="chain")
    g.add_argument("--out", required=True, help="output .mtx[.gz] path")

    f = sub.add_parser("features", help="print the features of a matrix")
    f.add_argument("matrix", help=".mtx[.gz] path")

    s = sub.add_parser("simulate", help="predict SpMV behaviour")
    s.add_argument("matrix", help=".mtx[.gz] path")
    s.add_argument("--device", default=None,
                   help="testbed name (default: all nine)")
    s.add_argument("--format", dest="format_name", default=None,
                   help="storage format (default: best of the device's)")
    s.add_argument("--fp32", action="store_true",
                   help="single precision instead of double")

    w = sub.add_parser("sweep", help="sweep the artificial dataset")
    w.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "medium", "large"))
    w.add_argument("--devices", default=None,
                   help="comma-separated testbed names (default: all)")
    w.add_argument("--max-nnz", type=int, default=80_000)
    w.add_argument("--jobs", type=int, default=1,
                   help="parallel sweep workers (0 = auto-detect cores; "
                        "output is identical to --jobs 1)")
    w.add_argument("--cache-dir", default=None,
                   help="persistent instance cache directory; warm "
                        "re-sweeps skip matrix generation")
    w.add_argument("--batch", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="score chunks through the vectorised grid "
                        "simulator (default; --no-batch keeps the scalar "
                        "reference loop — output is identical)")
    w.add_argument("--fused", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="fused cold path: score spec chunks straight "
                        "from generated CSR structure arrays (no "
                        "instance materialisation, no cache traffic; "
                        "output is identical — fastest when the cache "
                        "is cold)")
    w.add_argument("--all-formats", action="store_true",
                   help="one row per (matrix, device, format) instead "
                        "of the best format per (matrix, device) — "
                        "required for tables fed to `repro experiment "
                        "--table`")
    w.add_argument("--run-dir", default=None,
                   help="journal completed chunks (atomic table shards "
                        "+ JSONL log) into this directory so a killed "
                        "run can be resumed")
    w.add_argument("--resume", default=None, metavar="RUN_DIR",
                   help="resume a journalled run: skip chunks whose "
                        "shards are already on disk (flags must match "
                        "the original run; output is byte-identical to "
                        "an uninterrupted sweep)")
    w.add_argument("--chunk-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-chunk deadline; a hung worker is killed, "
                        "respawned and the chunk retried (default: no "
                        "deadline)")
    w.add_argument("--max-retries", type=int, default=None,
                   help="retries per chunk before it degrades to an "
                        "in-process serial re-execution (default 2)")
    w.add_argument("--faults", default=None, metavar="SPEC",
                   help="deterministic fault injection for chaos "
                        "testing, e.g. 'crash@2,hang@5;seed=7' "
                        "(also via REPRO_FAULTS; output stays "
                        "bit-identical)")
    w.add_argument("--health-json", default=None, metavar="PATH",
                   help="write the RunReport (retries, timeouts, "
                        "degraded chunks, quarantined cache entries, "
                        "per-phase wall-clock) as JSON")
    w.add_argument("--dispatch", default=None,
                   choices=("resilient", "pool"),
                   help="parallel dispatch engine (default resilient; "
                        "pool is the plain no-retry baseline)")
    w.add_argument("--pack-shards", action="store_true",
                   help="journal chunk shards into a single "
                        "shards.rpak pack instead of one file per "
                        "chunk (requires --run-dir; --resume follows "
                        "the original run's layout)")
    w.add_argument("--out", required=True,
                   help="output table path (.npz lossless columnar, "
                        ".csv typed text, .json dict rows)")
    w.add_argument("--format", dest="table_format", default=None,
                   choices=("npz", "csv", "json"),
                   help="output format (default: inferred from the "
                        "--out extension)")

    v = sub.add_parser("validate", help="mini Table-IV friends experiment")
    v.add_argument("--ids", default="1,11,39",
                   help="comma-separated Table III matrix ids")
    v.add_argument("--device", default="AMD-EPYC-24")
    v.add_argument("--friends", type=int, default=6)

    # Choices come from the experiments registries so the CLI can never
    # drift from what the spec actually accepts (importing the package
    # costs nothing extra: ``repro/__init__`` already pulls its deps).
    from .experiments.spec import MODEL_FAMILIES, PROTOCOLS, SCALES

    e = sub.add_parser(
        "experiment",
        help="cross-validated format-selector experiment",
    )
    e.add_argument("--scale", default="tiny", choices=SCALES)
    e.add_argument("--devices", default=None,
                   help="comma-separated testbed names (default: all)")
    e.add_argument("--formats", default=None,
                   help="comma-separated candidate formats "
                        "(default: each device's Table-II list)")
    e.add_argument("--protocol", default="kfold", choices=PROTOCOLS,
                   help="kfold: per-device instance folds; lodo: "
                        "leave-one-device-out transfer")
    e.add_argument("--folds", type=int, default=5,
                   help="fold count for the kfold protocol")
    e.add_argument("--model", default="forest",
                   choices=sorted(MODEL_FAMILIES))
    e.add_argument("--seed", type=int, default=0)
    e.add_argument("--max-nnz", type=int, default=80_000)
    e.add_argument("--limit", type=int, default=None,
                   help="use only the first N dataset specs (smoke runs)")
    e.add_argument("--table", default=None,
                   help="run over a saved sweep table (.npz/.csv from "
                        "`repro sweep --out`) instead of re-sweeping; "
                        "must be a per-format sweep at the experiment's "
                        "precision")
    e.add_argument("--fp32", action="store_true",
                   help="score the sweep at single precision")
    e.add_argument("--jobs", type=int, default=1,
                   help="parallel sweep workers (0 = auto-detect cores; "
                        "results are identical to --jobs 1)")
    e.add_argument("--cache-dir", default=None,
                   help="persistent instance cache directory")
    e.add_argument("--batch", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="score the sweep through the vectorised grid "
                        "simulator (default; results identical either way)")
    e.add_argument("--out", default=None,
                   help="write results to a .json (full, deterministic) "
                        "or .csv (per-fold summary) file")

    p = sub.add_parser(
        "pack",
        help="fold a cache directory or saved sweep table into a "
             "single .rpak pack",
    )
    p.add_argument("src",
                   help="cache directory (from --cache-dir) or saved "
                        "table (.npz from `repro sweep --out`)")
    p.add_argument("--out", default=None,
                   help="pack path (default: <src>/cache.rpak for a "
                        "directory, <src>.rpak for a table)")
    p.add_argument("--prune", action="store_true",
                   help="after verifying every packed entry's checksum, "
                        "remove the loose cache files the pack now "
                        "serves (directories only)")

    u = sub.add_parser(
        "unpack",
        help="expand a .rpak pack back into loose files / a table",
    )
    u.add_argument("pack", help=".rpak path")
    u.add_argument("--out", required=True,
                   help="destination: a directory for cache/shard "
                        "packs, a table path (.npz) for table packs")

    ls = sub.add_parser("ls", help="list the entries of a .rpak pack")
    ls.add_argument("pack", help=".rpak path")
    ls.add_argument("--verify", action="store_true",
                    help="also read every entry and check its checksum")

    t = sub.add_parser(
        "train",
        help="fit a format selector from a saved sweep table and "
             "persist it (shared by `repro serve`)",
    )
    t.add_argument("--table", required=True,
                   help="per-format sweep table (`repro sweep "
                        "--all-formats --out t.npz`) or packed table "
                        "(.rpak)")
    t.add_argument("--device", default=None,
                   help="device slice to train on (required when the "
                        "table spans several devices)")
    t.add_argument("--formats", default=None,
                   help="comma-separated candidate formats (default: "
                        "the formats present in the slice)")
    t.add_argument("--model", default="forest",
                   choices=sorted(MODEL_FAMILIES))
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--out", required=True,
                   help="selector artifact path (.npz)")

    srv = sub.add_parser(
        "serve",
        help="serve format-selection and sweep-slice queries over "
             "HTTP (POST /select, GET /sweep|/healthz|/stats)",
    )
    srv.add_argument("--table", required=True,
                     help="sweep corpus: saved table (.npz/.csv/.json) "
                          "or packed table (.rpak)")
    srv.add_argument("--selector", default=None,
                     help="trained selector artifact (`repro train "
                          "--out m.npz`); default: fit from the table "
                          "at startup")
    srv.add_argument("--device", default=None,
                     help="device slice to fit on when training at "
                          "startup (required for multi-device tables)")
    srv.add_argument("--formats", default=None,
                     help="comma-separated candidate formats for a "
                          "startup fit")
    srv.add_argument("--model", default="forest",
                     choices=sorted(MODEL_FAMILIES),
                     help="model family for a startup fit")
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--save-selector", default=None, metavar="PATH",
                     help="persist the startup-fitted selector so later "
                          "boots can --selector it")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8077,
                     help="listen port (0 picks a free one)")
    srv.add_argument("--batch-window-ms", type=float, default=2.0,
                     help="micro-batch coalescing window: concurrent "
                          "/select requests arriving within this long "
                          "of each other share one batched evaluate "
                          "(responses are bit-identical either way)")
    srv.add_argument("--max-batch", type=int, default=64,
                     help="flush a micro-batch early at this size")
    srv.add_argument("--micro-batch",
                     action=argparse.BooleanOptionalAction,
                     default=True,
                     help="coalesce concurrent /select requests "
                          "(default; --no-micro-batch evaluates each "
                          "request on its own — same responses, lower "
                          "throughput)")
    srv.add_argument("--access-log", default="-", metavar="PATH",
                     help="structured JSON request log: a path, '-' "
                          "for stderr (default), or 'off'")
    return parser


# ---------------------------------------------------------------------------
def _prepare_output_path(path_str: str, what: str) -> None:
    """Make ``path_str`` writable before hours of work depend on it.

    Creates missing parent directories and probes writability ("a" so
    an existing file is not truncated); unwritable paths raise the
    CLI's actionable ``ValueError`` (exit 2) instead of surfacing a
    raw traceback after the run has already burned its compute.
    """
    from pathlib import Path

    path = Path(path_str)
    try:
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        probe_created = not path.exists()
        with open(path, "a"):
            pass
        if probe_created:
            # Don't leave a stray empty file if the run later fails.
            os.remove(path)
    except OSError as exc:
        raise ValueError(
            f"cannot write {what} to {path_str!r}: {exc}; create the "
            "directory or pick a writable path"
        ) from exc


def _cmd_generate(args) -> int:
    from .core.generator import artificial_matrix_generation
    from .io import write_mtx

    mat = artificial_matrix_generation(
        args.rows, args.cols or args.rows, args.avg,
        skew_coeff=args.skew, bw_scaled=args.bw, cross_row_sim=args.sim,
        avg_num_neigh=args.neigh, seed=args.seed, method=args.method,
    )
    write_mtx(args.out, mat)
    print(f"wrote {mat.n_rows}x{mat.n_cols} nnz={mat.nnz} to {args.out}")
    return 0


def _cmd_features(args) -> int:
    from .core.features import extract_features, regularity_class
    from .io import read_mtx

    feats = extract_features(read_mtx(args.matrix))
    for key, value in feats.to_dict().items():
        print(f"{key:24s} {value:.6g}")
    print(f"{'regularity_class':24s} {regularity_class(feats)}")
    return 0


def _cmd_simulate(args) -> int:
    from .analysis import format_table
    from .devices import TESTBEDS, get_device
    from .formats import FormatError
    from .io import read_mtx
    from .perfmodel import (
        MatrixInstance, simulate_best_detailed, simulate_spmv,
    )

    inst = MatrixInstance.from_matrix(read_mtx(args.matrix),
                                      name=args.matrix)
    precision = "fp32" if args.fp32 else "fp64"
    devices = (
        [get_device(args.device)] if args.device else TESTBEDS.values()
    )
    rows = []
    for dev in devices:
        try:
            if args.format_name:
                m = simulate_spmv(inst, args.format_name, dev,
                                  precision=precision)
            else:
                outcome = simulate_best_detailed(inst, dev,
                                                 precision=precision)
                m = outcome.best
        except FormatError as exc:
            rows.append([dev.name, args.format_name or "-",
                         f"failed: {exc}", "-", "-"])
            continue
        if m is None:
            reasons = "; ".join(
                f"{s.format}: {s.reason}" for s in outcome.skipped
            )
            rows.append([dev.name, "-",
                         f"all formats failed ({reasons})", "-", "-"])
            continue
        rows.append([dev.name, m.format, round(m.gflops, 2),
                     round(m.gflops_per_watt, 3), m.bottleneck])
    print(format_table(
        ["device", "format", "GFLOPS", "GFLOPS/W", "bottleneck"],
        rows, title=f"Predicted SpMV ({precision})",
    ))
    return 0


def _cmd_sweep(args) -> int:
    from .core.dataset import Dataset, sweep
    from .core.feature_space import build_dataset_specs
    from .devices import TESTBEDS, get_device
    from .io import save_table
    from .io.tableio import _resolve_format
    from .pipeline import RunReport, resolve_jobs
    from pathlib import Path

    # Fail on an unknown extension, a missing parent directory or an
    # unwritable path before minutes of sweeping.
    _resolve_format(Path(args.out), args.table_format)
    _prepare_output_path(args.out, "the sweep table")
    if args.health_json:
        _prepare_output_path(args.health_json, "the run report")
    if args.resume and args.run_dir and args.resume != args.run_dir:
        raise ValueError(
            "--resume already names the run directory; drop --run-dir "
            "or make them equal"
        )
    run_dir = args.resume or args.run_dir
    devices = (
        [get_device(d) for d in args.devices.split(",")]
        if args.devices
        else list(TESTBEDS.values())
    )
    dataset = Dataset(
        build_dataset_specs(args.scale), max_nnz=args.max_nnz,
        name=args.scale,
    )
    jobs = resolve_jobs(args.jobs)
    engine = f"{jobs} worker{'s' if jobs != 1 else ''}"
    if args.fused:
        engine += ", fused"
    if args.cache_dir:
        engine += f", cache at {args.cache_dir}"
    if run_dir:
        engine += f", {'resuming' if args.resume else 'journal at'} "
        engine += run_dir
    print(
        f"sweeping {len(dataset)} matrices on "
        f"{', '.join(d.name for d in devices)} ({engine}) ..."
    )
    report = RunReport()
    try:
        # Progress callbacks fire in the parent process under every
        # engine, so one carriage-return line works for serial and
        # parallel runs alike.
        table = sweep(
            dataset, devices, best_only=not args.all_formats,
            jobs=args.jobs, cache_dir=args.cache_dir, batch=args.batch,
            fused=args.fused,
            run_dir=run_dir, resume=bool(args.resume),
            pack_shards=args.pack_shards,
            faults=args.faults, chunk_timeout=args.chunk_timeout,
            max_retries=args.max_retries, report=report,
            dispatch=args.dispatch,
            progress=lambda i, n: print(f"\r  {i}/{n}", end="",
                                        flush=True),
        )
    except KeyboardInterrupt:
        # The engine has already flushed the journal (every completed
        # chunk's shard + record hit disk before this propagated).
        print()
        if args.health_json:
            report.write(args.health_json)
        if run_dir:
            print(
                f"interrupted — completed chunks are journalled; pick "
                f"up where this run stopped with:\n"
                f"  repro sweep --resume {run_dir} ... (same flags)",
                file=sys.stderr,
            )
        raise
    print()
    fmt = save_table(args.out, table, fmt=args.table_format)
    print(f"wrote {len(table)} measurement rows to {args.out} ({fmt})")
    if report.total_retries or report.chunks_degraded or report.timeouts:
        print(
            f"resilience: {report.total_retries} retries "
            f"({report.retries}), {len(report.chunks_degraded)} "
            f"degraded chunks, {report.cache_quarantined} quarantined "
            "cache entries"
        )
    if args.health_json:
        report.write(args.health_json)
        print(f"wrote run report to {args.health_json}")
    return 0


def _cmd_validate(args) -> int:
    from .analysis import format_table
    from .core.validation import (
        VALIDATION_SUITE, ape_best, friend_specs, mape, surrogate_spec,
    )
    from .devices import get_device
    from .perfmodel import MatrixInstance, simulate_best

    ids = {int(t) for t in args.ids.split(",")}
    device = get_device(args.device)
    refs, meds, rows = [], [], []
    for vm in VALIDATION_SUITE:
        if vm.id not in ids:
            continue
        base = simulate_best(
            MatrixInstance.from_spec(surrogate_spec(vm), max_nnz=60_000,
                                     name=vm.name),
            device,
        )
        if base is None:
            rows.append([vm.id, vm.name, "infeasible", "-", "-"])
            continue
        friends = []
        for k, fs in enumerate(
            friend_specs(vm, n_friends=args.friends, seed=3)
        ):
            m = simulate_best(
                MatrixInstance.from_spec(fs, max_nnz=60_000,
                                         name=f"{vm.name}~{k}"),
                device,
            )
            if m is not None:
                friends.append(m.gflops)
        if not friends:
            rows.append([vm.id, vm.name, round(base.gflops, 2), "-", "-"])
            continue
        refs.append(base.gflops)
        meds.append(float(np.median(friends)))
        rows.append([
            vm.id, vm.name, round(base.gflops, 2),
            round(float(np.median(friends)), 2),
            round(ape_best(base.gflops, friends), 2),
        ])
    title = f"Validation on {device.name}"
    if refs:
        title += f" — MAPE {mape(refs, meds):.2f}%"
    print(format_table(
        ["id", "matrix", "GFLOPS", "friends median", "APE-best %"],
        rows, title=title,
    ))
    return 0


def _cmd_experiment(args) -> int:
    from .experiments import ExperimentSpec, run_experiment
    from .io import write_rows

    if args.out:
        # Fail before the sweep runs, not after minutes of work: check
        # the extension, then probe that the path is writable ("a" so an
        # existing file is not truncated by the probe).
        if not args.out.endswith((".json", ".csv")):
            raise ValueError(
                f"unknown output extension for {args.out!r}; "
                "use .json (full result) or .csv (per-fold summary)"
            )
        probe_created = not os.path.exists(args.out)
        with open(args.out, "a"):
            pass
        if probe_created:
            # Don't leave a stray empty file if the run later fails.
            os.remove(args.out)
    spec = ExperimentSpec(
        scale=args.scale,
        devices=tuple(args.devices.split(",")) if args.devices else (),
        formats=tuple(args.formats.split(",")) if args.formats else None,
        precision="fp32" if args.fp32 else "fp64",
        max_nnz=args.max_nnz,
        limit=args.limit,
        protocol=args.protocol,
        n_splits=args.folds,
        seed=args.seed,
        model=args.model,
    )
    names = ", ".join(spec.device_names)
    table = None
    if args.table:
        from .io import load_table

        table = load_table(args.table)
        print(
            f"loaded {len(table)} measurement rows from {args.table}; "
            f"running {spec.protocol} experiment on {names} "
            f"(model={spec.model}, seed={spec.seed}) ..."
        )
    else:
        print(
            f"running {spec.protocol} experiment on {names} "
            f"(scale={spec.scale}, model={spec.model}, "
            f"seed={spec.seed}) ..."
        )
    result = run_experiment(
        spec, jobs=args.jobs, cache_dir=args.cache_dir, batch=args.batch,
        progress=lambda i, n: print(f"\r  sweep {i}/{n}", end="",
                                    flush=True),
        table=table,
    )
    print()
    print(result.render())
    if args.out:
        if args.out.endswith(".json"):
            with open(args.out, "w") as fh:
                fh.write(result.to_json())
        else:
            write_rows(args.out, result.to_rows())
        print(f"wrote results to {args.out}")
    return 0


_TABLE_PREFIX = "table/"
_CHUNK_RE = r"chunk-(\d{6})/"


def _cmd_pack(args) -> int:
    from pathlib import Path

    src = Path(args.src)
    if not src.exists():
        raise ValueError(
            f"{src} does not exist; point `repro pack` at a cache "
            "directory (--cache-dir) or a saved sweep table (.npz)"
        )
    if src.is_dir():
        from .pipeline.cache import pack_cache_dir

        entries, out = pack_cache_dir(
            src, out=args.out, prune=args.prune
        )
        what = f"{entries} cache entr{'y' if entries == 1 else 'ies'}"
        if args.prune:
            what += " (loose pairs pruned)"
    else:
        if args.prune:
            raise ValueError(
                "--prune only applies to cache directories; a packed "
                "table never shadows loose files"
            )
        from .io import load_table
        from .io.pack import PackWriter

        table = load_table(src)
        out = Path(args.out) if args.out else src.with_suffix(".rpak")
        blobs = table.to_blobs(prefix=_TABLE_PREFIX)
        with PackWriter.create(out) as writer:
            for key in sorted(blobs):
                kind = "meta" if key.endswith("__meta__") else "col"
                writer.add(key, kind, blobs[key])
        what = f"{len(table)} table rows ({len(blobs)} column blobs)"
    print(f"packed {what} into {out} ({out.stat().st_size} bytes)")
    return 0


def _cmd_unpack(args) -> int:
    import re
    from pathlib import Path

    from .core.table import SweepTable
    from .io.pack import Pack

    out = Path(args.out)
    with Pack.open(args.pack) as pack:
        keys = pack.keys()
        if any(key.startswith(_TABLE_PREFIX) for key in keys):
            if out.suffix != ".npz":
                raise ValueError(
                    f"{args.pack} holds a packed table; --out must be "
                    "an .npz path (tables unpack to the lossless "
                    "columnar format)"
                )
            table = SweepTable.from_blobs(
                {k: pack.read(k) for k in keys
                 if k.startswith(_TABLE_PREFIX)},
                prefix=_TABLE_PREFIX,
            )
            out.parent.mkdir(parents=True, exist_ok=True)
            table.to_npz(out)
            print(f"unpacked {len(table)} table rows to {out}")
            return 0
        chunk_ids = sorted({
            m.group(1) for m in
            (re.match(_CHUNK_RE, key) for key in keys) if m
        })
        if chunk_ids:
            out.mkdir(parents=True, exist_ok=True)
            for cid in chunk_ids:
                prefix = f"chunk-{cid}/"
                table = SweepTable.from_blobs(
                    {k: pack.read(k) for k in keys
                     if k.startswith(prefix)},
                    prefix=prefix,
                )
                table.to_npz(out / f"chunk-{cid}.npz")
            print(
                f"unpacked {len(chunk_ids)} chunk shards to {out}"
            )
            return 0
    from .pipeline.cache import unpack_cache

    written = unpack_cache(args.pack, out)
    print(f"unpacked {written} cache files to {out}")
    return 0


def _cmd_ls(args) -> int:
    from pathlib import Path

    from .io.pack import PACK_VERSION, Pack

    path = Path(args.pack)
    with Pack.open(path) as pack:
        records = pack.records()
        live = set(pack.keys())
        print(
            f"{path}: pack v{PACK_VERSION}, {len(live)} entries "
            f"({len(records)} records), {path.stat().st_size} bytes"
        )
        print(f"{'KEY':<40} {'KIND':<6} {'SIZE':>10} {'STORED':>10}")
        last = {rec.key: i for i, rec in enumerate(records)}
        for i, rec in enumerate(records):
            marker = "" if last[rec.key] == i else "  (shadowed)"
            print(
                f"{rec.key:<40} {rec.kind:<6} {rec.osize:>10} "
                f"{rec.csize:>10}{marker}"
            )
        if args.verify:
            for key in pack.keys():
                pack.read(key)  # raises PackError on any bad checksum
            print("all checksums verified")
    return 0


def _cmd_train(args) -> int:
    from .service import load_corpus, train_selector

    _prepare_output_path(args.out, "the selector artifact")
    if not args.out.endswith(".npz"):
        raise ValueError(
            f"unknown output extension for {args.out!r}; selector "
            "artifacts are .npz files"
        )
    table = load_corpus(args.table)
    formats = args.formats.split(",") if args.formats else None
    selector = train_selector(
        table, device=args.device, formats=formats,
        model=args.model, seed=args.seed,
    )
    selector.to_npz(args.out)
    n = len(table.unique("matrix")) if "matrix" in table.names else 0
    print(
        f"trained {args.model} selector on {n} matrices "
        f"({len(table)} rows); formats: "
        f"{', '.join(selector.formats)}"
    )
    print(f"wrote selector artifact to {args.out}")
    return 0


def _cmd_serve(args) -> int:
    from .ml.selector import FormatSelector
    from .service import ReproService, ServiceApp, load_corpus, \
        train_selector

    table = load_corpus(args.table)
    if args.selector:
        selector = FormatSelector.from_npz(args.selector)
        origin = f"selector from {args.selector}"
    else:
        formats = args.formats.split(",") if args.formats else None
        selector = train_selector(
            table, device=args.device, formats=formats,
            model=args.model, seed=args.seed,
        )
        origin = f"selector fitted at startup ({args.model})"
        if args.save_selector:
            _prepare_output_path(
                args.save_selector, "the selector artifact"
            )
            selector.to_npz(args.save_selector)
            print(f"wrote selector artifact to {args.save_selector}")
    access_log = None
    log_handle = None
    if args.access_log == "-":
        access_log = sys.stderr
    elif args.access_log != "off":
        _prepare_output_path(args.access_log, "the access log")
        log_handle = open(args.access_log, "a")
        access_log = log_handle
    app = ServiceApp(
        selector, table,
        micro_batch=args.micro_batch,
        window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
    )
    service = ReproService(
        app, host=args.host, port=args.port, access_log=access_log
    )
    host, port = service.address
    batching = (
        f"micro-batch window={args.batch_window_ms}ms "
        f"max={args.max_batch}"
        if args.micro_batch else "micro-batch off"
    )
    print(
        f"serving http://{host}:{port} — {len(table)} corpus rows, "
        f"{origin}, {batching}"
    )
    print("endpoints: POST /select, GET /sweep, /healthz, /stats")
    try:
        service.run()  # returns after SIGTERM/SIGINT drain
    finally:
        if log_handle is not None:
            log_handle.close()
    print("drained and stopped")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "features": _cmd_features,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "validate": _cmd_validate,
    "experiment": _cmd_experiment,
    "pack": _cmd_pack,
    "unpack": _cmd_unpack,
    "ls": _cmd_ls,
    "train": _cmd_train,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``repro`` console script)."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # Ctrl-C is a normal way to stop a long sweep, not a bug: no
        # traceback, the conventional 128+SIGINT exit status, and any
        # journal/report flushing already happened on the way up
        # (``repro sweep`` prints the --resume hint itself).
        print("interrupted", file=sys.stderr)
        return 130
    except ValueError as exc:
        # ValueError is this codebase's validation convention (specs,
        # registries, generators all raise it with actionable messages
        # for bad input), so it follows the argparse exit convention.
        # The cost is that an internal ValueError bug would be masked
        # too — set REPRO_DEBUG=1 to re-raise with the full traceback.
        if os.environ.get("REPRO_DEBUG", "") not in ("", "0"):
            raise
        print(f"error: {exc.args[0] if exc.args else exc}",
              file=sys.stderr)
        return 2
    except KeyError as exc:
        # The registries raise KeyError("unknown <kind> ...; available:
        # ...") for name lookups.  Only that convention is user input —
        # any other KeyError is a bug and must keep its traceback.
        message = exc.args[0] if exc.args else ""
        if isinstance(message, str) and message.startswith("unknown "):
            print(f"error: {message}", file=sys.stderr)
            return 2
        raise
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Deterministic, seeded fault injection for the sweep pipeline.

Real sweep failures — OOM-killed workers, segfaults, NFS hangs, corrupt
cache files — are rare and nondeterministic, which makes the resilience
machinery in :mod:`repro.pipeline.engine` untestable by waiting for
them.  A :class:`FaultPlan` turns each failure mode into a reproducible
event pinned to a chunk id, so the golden suites and the chaos CI job
can assert *bit-identical sweep output under faults* rather than merely
"it didn't crash".

Fault kinds
-----------
``crash``
    The worker process calls ``os._exit(17)`` when it picks up the
    chunk — models an OOM kill or segfault (no exception, no cleanup).
``error``
    The worker raises :class:`InjectedFaultError` — models a chunk-level
    exception (bad allocation, transient I/O error).
``hang``
    The worker sleeps far past any reasonable deadline — models a stuck
    NFS mount or livelocked dependency; only a per-chunk timeout
    recovers it.
``corrupt``
    The worker damages one existing instance-cache entry (truncation or
    a flipped byte, chosen deterministically from the plan seed) before
    running the chunk — models torn writes and disk rot; the cache's
    quarantine path must absorb it.
``stop``
    Fires in the *parent* the moment the chunk's result is journalled —
    models a mid-run ``kill``/Ctrl-C for resume tests without spawning
    an outer process.

Each fault fires on attempts ``0 .. attempts-1`` of its chunk
(``attempts=-1`` → every attempt, which forces the engine's graceful
degradation to an in-process serial re-execution).  Worker-side faults
never fire in-process, mirroring reality: an environment fault kills
the worker it happens in, not the algorithm.

Plans serialise to a compact spec string (``"crash@2,error@0x2,
hang@5,corrupt@1x*;seed=7"``) accepted by ``repro sweep --faults`` and
the ``REPRO_FAULTS`` environment variable, so any scenario a test
constructs is replayable from a shell.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .report import SweepError

__all__ = ["Fault", "FaultPlan", "InjectedFaultError", "FAULT_KINDS"]

FAULT_KINDS = ("crash", "error", "hang", "corrupt", "stop")

# Worker-side hang duration: far beyond any sane chunk deadline; the
# parent's timeout kill is the only way out, which is the point.
HANG_SECONDS = 3600.0

_EXIT_CODE = 17  # distinctive worker crash exit code


class InjectedFaultError(SweepError):
    """Raised by an armed ``error`` fault inside a worker."""


@dataclass(frozen=True)
class Fault:
    """One injected fault: ``kind`` at ``chunk``, first ``attempts``
    tries (``-1`` → every attempt)."""

    kind: str
    chunk: int
    attempts: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"available: {', '.join(FAULT_KINDS)}"
            )
        if self.chunk < 0:
            raise ValueError(f"fault chunk id must be >= 0, got {self.chunk}")
        if self.attempts == 0 or self.attempts < -1:
            raise ValueError(
                f"fault attempts must be positive or -1 (always), "
                f"got {self.attempts}"
            )

    def fires(self, chunk_id: int, attempt: int) -> bool:
        if chunk_id != self.chunk:
            return False
        return self.attempts == -1 or attempt < self.attempts

    def to_token(self) -> str:
        token = f"{self.kind}@{self.chunk}"
        if self.attempts == -1:
            return token + "x*"
        if self.attempts != 1:
            return token + f"x{self.attempts}"
        return token

    @classmethod
    def from_token(cls, token: str) -> "Fault":
        text = token.strip()
        if "@" not in text:
            raise ValueError(
                f"bad fault token {token!r}: expected kind@chunk[xN|x*]"
            )
        kind, _, rest = text.partition("@")
        attempts = 1
        if "x" in rest:
            chunk_text, _, att = rest.partition("x")
            attempts = -1 if att == "*" else int(att)
        else:
            chunk_text = rest
        return cls(kind=kind.strip(), chunk=int(chunk_text),
                   attempts=attempts)


class FaultPlan:
    """A deterministic set of :class:`Fault`\\ s plus the seed that
    drives any randomised side effects (corruption byte choices)."""

    def __init__(self, faults: Sequence[Fault] = (), seed: int = 0):
        self.faults: Tuple[Fault, ...] = tuple(faults)
        self.seed = int(seed)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """Parse ``"crash@2,error@0x2;seed=7"`` (``None``/empty → ``None``)."""
        if not spec:
            return None
        body, seed = spec, 0
        if ";" in spec:
            body, _, tail = spec.partition(";")
            tail = tail.strip()
            if not tail.startswith("seed="):
                raise ValueError(
                    f"bad fault spec tail {tail!r}: expected seed=N"
                )
            seed = int(tail[len("seed="):])
        faults = [
            Fault.from_token(token)
            for token in body.split(",") if token.strip()
        ]
        return cls(faults, seed=seed)

    def to_spec(self) -> str:
        body = ",".join(f.to_token() for f in self.faults)
        return f"{body};seed={self.seed}" if self.seed else body

    @classmethod
    def random(
        cls,
        seed: int,
        n_chunks: int,
        kinds: Sequence[str] = ("crash", "error", "hang", "corrupt"),
        rate: float = 0.25,
    ) -> "FaultPlan":
        """A seeded random chaos mix: each chunk independently draws a
        fault of a random ``kind`` with probability ``rate``.  Same seed
        → same plan, so every chaos CI failure is replayable."""
        rng = random.Random(seed)
        faults = [
            Fault(kind=rng.choice(list(kinds)), chunk=c)
            for c in range(n_chunks) if rng.random() < rate
        ]
        return cls(faults, seed=seed)

    # -- queries ---------------------------------------------------------
    def matching(self, chunk_id: int, attempt: int,
                 kinds: Sequence[str] = FAULT_KINDS) -> List[Fault]:
        return [
            f for f in self.faults
            if f.kind in kinds and f.fires(chunk_id, attempt)
        ]

    def stop_after(self, chunk_id: int) -> bool:
        """Parent-side: interrupt the run once ``chunk_id`` is journalled."""
        return any(
            f.kind == "stop" and f.chunk == chunk_id for f in self.faults
        )

    # -- worker-side firing ----------------------------------------------
    def fire(self, chunk_id: int, attempt: int,
             cache_dir: Optional[str] = None,
             keys: Optional[Sequence[str]] = None) -> None:
        """Trigger worker-side faults armed for ``(chunk_id, attempt)``.

        ``corrupt`` damages a cache entry and *returns* (the chunk then
        runs against the damaged cache); ``crash``/``hang``/``error``
        never return normally.  ``keys`` narrows corruption to the
        chunk's own content keys so the damaged entry is read — and must
        be quarantined and rematerialised — by the very chunk the fault
        targets.
        """
        for fault in self.matching(chunk_id, attempt,
                                   kinds=("corrupt",)):
            self._corrupt_cache_entry(cache_dir, chunk_id, keys)
        for fault in self.matching(chunk_id, attempt,
                                   kinds=("crash", "hang", "error")):
            if fault.kind == "crash":
                os._exit(_EXIT_CODE)
            if fault.kind == "hang":
                time.sleep(HANG_SECONDS)
            raise InjectedFaultError(
                f"injected fault: chunk {chunk_id} attempt {attempt}"
            )

    def _corrupt_cache_entry(self, cache_dir: Optional[str],
                             chunk_id: int,
                             keys: Optional[Sequence[str]]) -> None:
        """Truncate or bit-flip one existing cache file, chosen
        deterministically from ``(seed, chunk_id)``."""
        if not cache_dir:
            return
        root = Path(cache_dir)
        if not root.is_dir():
            return
        files = sorted(
            p for p in root.iterdir()
            if p.is_file() and p.suffix in (".npz", ".json")
        )
        if keys:
            targeted = [p for p in files if p.stem in set(keys)]
            files = targeted or files
        if not files:
            return
        rng = random.Random(f"{self.seed}:{chunk_id}")
        target = files[rng.randrange(len(files))]
        corrupt_file(target, mode=rng.choice(("truncate", "flip")),
                     rng=rng)


def corrupt_file(path, mode: str = "truncate",
                 rng: Optional[random.Random] = None) -> str:
    """Damage ``path`` in place: ``truncate`` cuts it roughly in half,
    ``flip`` XOR-flips one byte.  Returns the mode applied (a too-short
    file falls back to truncation to zero bytes)."""
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate" or len(data) < 2:
        path.write_bytes(data[: len(data) // 2])
        return "truncate"
    rng = rng or random.Random(0)
    pos = rng.randrange(len(data))
    damaged = bytearray(data)
    damaged[pos] ^= 0xFF
    path.write_bytes(bytes(damaged))
    return "flip"

"""Sharded, fault-tolerant sweep execution.

:func:`run_sweep` is the dataset-scale execution engine behind
:func:`repro.core.dataset.sweep`: it partitions spec indices into
contiguous chunks, fans the chunks out over worker processes
(``jobs=1`` stays fully in-process) and merges the per-chunk results
back in index order.  Chunks are columnar
:class:`~repro.core.table.SweepTable` slices — workers ship typed
column arrays, not dict lists — and the merge is
:meth:`SweepTable.concat`, which preserves first-seen category order
across chunk boundaries, so the merged table is row-for-row identical
to a serial sweep regardless of ``jobs``, cache state, faults or
resume history.

Two dispatch modes execute the parallel chunks:

* ``resilient`` (the default) — a self-managed worker crew with
  per-chunk deadlines, capped exponential-backoff retries on respawned
  workers, pool-death detection and graceful degradation: a chunk that
  keeps failing is re-executed in-process serially, so one poisoned
  chunk slows the sweep instead of aborting it.  Chunk execution is a
  pure function of ``(dataset, bounds, args)``, so every retry and
  fallback produces the same chunk table — the golden resilience suite
  pins bit-identity under every injected-fault scenario.
* ``pool`` — the plain ``multiprocessing.Pool`` path (the ≤5%%-overhead
  baseline for ``benchmarks/bench_resilience.py``); it has no retry,
  timeout or journal support and assumes a healthy pool.

``run_dir`` makes a run resumable: completed chunks are journalled with
atomic table shards (:mod:`repro.pipeline.journal`) and
``run_sweep(..., resume=True)`` skips them.  ``faults`` arms a
deterministic :class:`~repro.pipeline.faults.FaultPlan` (also via the
``REPRO_FAULTS`` environment variable) for the chaos suites.  A
:class:`~repro.pipeline.report.RunReport` passed via ``report=`` is
filled with retries, timeouts, degraded chunks, quarantined cache
entries and per-phase wall-clock.

Workers share one :class:`~repro.pipeline.cache.InstanceCache`
directory; entries are content-keyed and written atomically, so the
only cost of a cache race is a redundant materialisation, never a
corrupt entry — and a corrupt entry found on disk is quarantined and
rematerialised, never trusted.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.dataset import (
    Dataset, SweepTable, fused_spec_table, grid_spec_table, spec_rows,
)
from ..devices.base import Device
from .cache import InstanceCache
from .faults import FaultPlan
from .journal import RunJournal, sweep_config
from .report import ChunkFailedError, RunReport

__all__ = ["run_sweep", "resolve_jobs"]

# Chunks per worker: small enough to load-balance uneven spec costs,
# large enough to amortise task dispatch.
_CHUNKS_PER_JOB = 4

# Serial chunk size: specs scored per vectorised grid evaluation when
# ``jobs == 1`` — large enough to amortise the batch setup, small enough
# for responsive progress reporting.
_SERIAL_CHUNK = 16

# Resilient dispatch policy defaults.  Retries are per chunk, across all
# incident kinds; after ``max_retries`` re-dispatches the chunk degrades
# to an in-process serial re-execution.
_DEFAULT_MAX_RETRIES = 2
_BACKOFF_BASE = 0.05   # seconds; doubled per retry of the same chunk
_BACKOFF_CAP = 2.0
_POLL_INTERVAL = 0.2   # parent event-loop wake-up ceiling


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: ``0``/``None``/negative auto-detects."""
    if jobs is None or jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def resolve_dispatch(dispatch: Optional[str]) -> str:
    """Normalise a dispatch request (``None`` → ``REPRO_DISPATCH`` env →
    ``resilient``)."""
    mode = dispatch or os.environ.get("REPRO_DISPATCH") or "resilient"
    if mode not in ("resilient", "pool"):
        raise ValueError(
            f"unknown dispatch mode {mode!r}; available: resilient, pool"
        )
    return mode


def _chunk_bounds(n: int, n_chunks: int) -> List[tuple]:
    """Contiguous ``[lo, hi)`` index ranges covering ``range(n)``."""
    n_chunks = max(1, min(n_chunks, n))
    bounds = []
    for c in range(n_chunks):
        lo = (c * n) // n_chunks
        hi = ((c + 1) * n) // n_chunks
        if hi > lo:
            bounds.append((lo, hi))
    return bounds


def _sweep_range(
    dataset: Dataset,
    lo: int,
    hi: int,
    devices: Sequence[Device],
    best_only: bool,
    formats,
    seed: int,
    cache: Optional[InstanceCache],
    batch: bool = True,
    precision: str = "fp64",
    fused: bool = False,
) -> SweepTable:
    """Columnar chunk table for specs ``lo..hi`` with cache write-back.

    With ``batch`` (the default) the chunk is scored in one vectorised
    :func:`~repro.perfmodel.batch.simulate_grid` pass and the columns
    are gathered straight from the grid arrays; the scalar loop stays
    available as the reference engine (``batch=False``), its dict rows
    lifted into the same table schema.  ``fused`` (batch only) skips
    instances entirely — specs go straight to structure arrays and
    batched analytic stats, and the instance cache is neither read nor
    written (there is nothing materialised to persist).  All engines
    produce identical tables — the grid and fused agreement suites
    enforce it.
    """
    if fused:
        return fused_spec_table(
            dataset, lo, hi, devices,
            best_only=best_only, formats=formats, seed=seed,
            precision=precision,
        )
    if batch:
        # Materialise the chunk once; scoring and cache write-back reuse
        # these exact objects (a second dataset.instance() round-trip
        # used to re-consult the cache layer per spec).
        insts = [dataset.instance(i) for i in range(lo, hi)]
        table = grid_spec_table(
            dataset, lo, hi, devices,
            best_only=best_only, formats=formats, seed=seed,
            precision=precision, instances=insts,
        )
        if cache is not None:
            # Store after scoring so the persisted entries carry the
            # derived state (features, profiles, format stats) the grid
            # evaluation just computed — warm sweeps reload it all.
            for i, inst in zip(range(lo, hi), insts):
                cache.store(dataset.specs[i], dataset.max_nnz, inst)
        return table
    rows: List[dict] = []
    for i in range(lo, hi):
        rows.extend(
            spec_rows(
                dataset, i, devices,
                best_only=best_only, formats=formats, seed=seed,
                precision=precision,
            )
        )
        if cache is not None:
            cache.store(dataset.specs[i], dataset.max_nnz,
                        dataset.instance(i))
    if not rows:
        return SweepTable({})
    return SweepTable.from_rows(rows).with_constant("precision", precision)


def _chunk_table(
    dataset: Dataset,
    lo: int,
    hi: int,
    devices,
    best_only,
    formats,
    seed,
    cache,
    batch,
    precision,
    fused,
    progress_put: Optional[Callable[[int], None]] = None,
) -> SweepTable:
    """One pool chunk scored in ``_SERIAL_CHUNK``-sized grid passes.

    Shared verbatim by pool workers, resilient-crew workers and the
    in-process degradation fallback, so a chunk's table is identical no
    matter where (or how many times) it executes.
    """
    step = _SERIAL_CHUNK if batch else 1
    parts: List[SweepTable] = []
    for sub_lo in range(lo, hi, step):
        sub_hi = min(sub_lo + step, hi)
        parts.append(
            _sweep_range(
                dataset, sub_lo, sub_hi, devices, best_only,
                formats, seed, cache, batch, precision, fused,
            )
        )
        if progress_put is not None:
            progress_put(sub_hi - sub_lo)
    return parts[0] if len(parts) == 1 else SweepTable.concat(parts)


# -- worker-side state (initialised once per pool process) ------------------
_WORKER: dict = {}


def _init_worker(specs, max_nnz, name, devices, best_only, formats, seed,
                 cache_dir, batch, precision, fused,
                 progress_queue=None) -> None:
    cache = InstanceCache(cache_dir) if cache_dir else None
    _WORKER["dataset"] = Dataset(
        specs, max_nnz=max_nnz, name=name, cache=cache
    )
    _WORKER["args"] = (
        devices, best_only, formats, seed, cache, batch, precision, fused
    )
    _WORKER["progress_queue"] = progress_queue


def _run_chunk(task):
    chunk_id, (lo, hi) = task
    args = _WORKER["args"]
    queue = _WORKER.get("progress_queue")
    put = queue.put if queue is not None else None
    table = _chunk_table(_WORKER["dataset"], lo, hi, *args,
                         progress_put=put)
    return chunk_id, table, hi - lo


# -- resilient dispatch ------------------------------------------------------
def _worker_main(worker_id, task_conn, result_conn, init_args, fault_spec,
                 want_progress) -> None:
    """Crew worker loop: receive ``(chunk_id, lo, hi, attempt)`` tasks,
    send ``("ok", ...)``/``("error", ...)`` results (plus ``progress``
    ticks) back on a dedicated pipe.  ``None`` is the shutdown sentinel.
    """
    _init_worker(*init_args)
    dataset = _WORKER["dataset"]
    args = _WORKER["args"]
    cache = args[4]
    cache_dir = init_args[7]
    plan = FaultPlan.from_spec(fault_spec)
    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if task is None:
            return
        chunk_id, lo, hi, attempt = task
        try:
            if plan is not None:
                keys = None
                if cache_dir and plan.matching(chunk_id, attempt,
                                               kinds=("corrupt",)):
                    from .cache import spec_key
                    keys = [
                        spec_key(dataset.specs[i], dataset.max_nnz)
                        for i in range(lo, hi)
                    ]
                plan.fire(chunk_id, attempt, cache_dir=cache_dir,
                          keys=keys)
            put = None
            if want_progress:
                def put(count, _cid=chunk_id):
                    result_conn.send(("progress", _cid, count))
            table = _chunk_table(dataset, lo, hi, *args, progress_put=put)
            quarantined = cache.quarantined if cache is not None else 0
            result_conn.send(("ok", chunk_id, table, quarantined))
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            try:
                result_conn.send(
                    ("error", chunk_id, f"{type(exc).__name__}: {exc}")
                )
            except (OSError, ValueError):
                os._exit(1)


class _ChunkState:
    """Dispatch bookkeeping for one chunk: attempt count + backoff."""

    __slots__ = ("chunk_id", "lo", "hi", "attempts", "eligible_at")

    def __init__(self, chunk_id: int, lo: int, hi: int):
        self.chunk_id = chunk_id
        self.lo = lo
        self.hi = hi
        self.attempts = 0
        self.eligible_at = 0.0

    @property
    def size(self) -> int:
        return self.hi - self.lo


class _CrewWorker:
    """One crew process plus its task/result pipes."""

    def __init__(self, ctx, uid, init_args, fault_spec, want_progress):
        self.uid = uid
        task_recv, self.task_send = ctx.Pipe(duplex=False)
        self.result_recv, result_send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(uid, task_recv, result_send, init_args, fault_spec,
                  want_progress),
            daemon=True,
        )
        self.process.start()
        # Close the worker-side ends in the parent so fds aren't leaked.
        task_recv.close()
        result_send.close()
        self.chunk: Optional[_ChunkState] = None
        self.deadline: Optional[float] = None

    def assign(self, state: _ChunkState, now: float,
               chunk_timeout: Optional[float]) -> None:
        self.chunk = state
        self.deadline = (
            now + chunk_timeout if chunk_timeout is not None else None
        )
        self.task_send.send(
            (state.chunk_id, state.lo, state.hi, state.attempts)
        )

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        """Graceful shutdown request (sentinel); never raises."""
        try:
            self.task_send.send(None)
        except (OSError, ValueError):
            pass

    def kill(self) -> None:
        """Hard teardown: terminate, escalate to SIGKILL, reap, close."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(2.0)
            if self.process.is_alive():
                self.process.kill()
        self.process.join(2.0)
        for conn in (self.task_send, self.result_recv):
            try:
                conn.close()
            except OSError:
                pass


class _ProgressMeter:
    """Monotonic sweep progress under retries.

    Workers report sub-chunk spec counts; retried chunks re-report, so
    per-chunk tallies are capped at the chunk size and the published
    total (which includes resumed chunks) only ever grows, reaching
    exactly ``n`` on completion.
    """

    def __init__(self, sizes: Dict[int, int], n: int, base: int,
                 progress: Optional[Callable[[int, int], None]]):
        self._acc = {cid: 0 for cid in sizes}
        self._sizes = sizes
        self._n = n
        self._done = base
        self._progress = progress
        if progress is not None and base:
            progress(base, n)

    def add(self, chunk_id: int, count: int) -> None:
        if self._progress is None or chunk_id not in self._acc:
            return
        before = min(self._acc[chunk_id], self._sizes[chunk_id])
        self._acc[chunk_id] += count
        after = min(self._acc[chunk_id], self._sizes[chunk_id])
        if after > before:
            self._done += after - before
            self._progress(self._done, self._n)

    def complete(self, chunk_id: int) -> None:
        self.add(chunk_id, self._sizes.get(chunk_id, 0))


class _ResilientDispatch:
    """Parent-side event loop for the resilient worker crew."""

    def __init__(self, ctx, jobs, init_args, plan, want_progress,
                 chunk_timeout, max_retries, report, meter,
                 serial_fallback, on_chunk_done,
                 backoff_base=_BACKOFF_BASE, backoff_cap=_BACKOFF_CAP):
        self.ctx = ctx
        self.jobs = jobs
        self.init_args = init_args
        self.fault_spec = plan.to_spec() if plan is not None else None
        self.want_progress = want_progress
        self.chunk_timeout = chunk_timeout
        self.max_retries = max_retries
        self.report = report
        self.meter = meter
        self.serial_fallback = serial_fallback
        self.on_chunk_done = on_chunk_done
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.workers: List[_CrewWorker] = []
        self._uid = 0
        self._spawned = 0
        # Final cache-quarantine tallies per worker generation (workers
        # report cumulative counts with each completed chunk).
        self._quarantine: Dict[int, int] = {}

    # -- lifecycle -------------------------------------------------------
    def _spawn(self) -> _CrewWorker:
        self._uid += 1
        if self._spawned >= self.jobs:
            # Every spawn beyond the initial crew is a replacement for a
            # crashed, hung or wedged worker.
            self.report.worker_respawns += 1
        self._spawned += 1
        worker = _CrewWorker(self.ctx, self._uid, self.init_args,
                             self.fault_spec, self.want_progress)
        return worker

    def _retire(self, worker: _CrewWorker) -> None:
        worker.kill()
        if worker in self.workers:
            self.workers.remove(worker)

    def close(self) -> None:
        """Tear the crew down unconditionally — no zombie processes, no
        dangling pipes, whatever state the dispatch loop died in."""
        for worker in self.workers:
            worker.stop()
        deadline = time.monotonic() + 2.0
        for worker in self.workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in list(self.workers):
            self._retire(worker)
        self.report.cache_quarantined += sum(self._quarantine.values())

    # -- failure policy --------------------------------------------------
    def _fail(self, worker: _CrewWorker, kind: str, detail: str,
              pending: deque, degraded: List[_ChunkState]) -> None:
        state = worker.chunk
        worker.chunk = None
        worker.deadline = None
        state.attempts += 1
        self.report.record_incident(
            kind, state.chunk_id, state.attempts - 1, detail
        )
        if state.attempts > self.max_retries:
            degraded.append(state)
            self.report.record_degraded(state.chunk_id)
        else:
            state.eligible_at = time.monotonic() + min(
                self.backoff_base * 2 ** (state.attempts - 1),
                self.backoff_cap,
            )
            pending.append(state)

    # -- message handling ------------------------------------------------
    def _drain(self, worker: _CrewWorker, results: dict,
               pending: deque, degraded: List[_ChunkState]) -> None:
        """Consume every buffered message from one worker's pipe."""
        while True:
            try:
                if not worker.result_recv.poll(0):
                    return
                message = worker.result_recv.recv()
            except (EOFError, OSError):
                return
            tag = message[0]
            if tag == "progress":
                _, chunk_id, count = message
                self.meter.add(chunk_id, count)
            elif tag == "ok":
                _, chunk_id, table, quarantined = message
                self._quarantine[worker.uid] = int(quarantined)
                state = worker.chunk
                worker.chunk = None
                worker.deadline = None
                results[chunk_id] = table
                self.report.chunks_completed += 1
                self.meter.complete(chunk_id)
                self.on_chunk_done(state, table)
            elif worker.chunk is not None:
                # "error": the worker caught a chunk exception and
                # stays alive for the next assignment.
                _, chunk_id, detail = message
                self._fail(worker, "error", detail, pending, degraded)

    # -- main loop -------------------------------------------------------
    def run(self, states: List[_ChunkState]) -> Dict[int, SweepTable]:
        results: Dict[int, SweepTable] = {}
        pending: deque = deque(sorted(states, key=lambda s: s.chunk_id))
        degraded: List[_ChunkState] = []
        try:
            while pending or any(w.chunk is not None for w in self.workers):
                now = time.monotonic()
                # Retire idle workers that died on their own (e.g. a
                # crash fault firing after the result was sent).
                for worker in list(self.workers):
                    if worker.chunk is None and not worker.alive():
                        self._retire(worker)
                # Assign eligible chunks to idle (or newly spawned)
                # workers.
                eligible = sorted(
                    (s for s in pending if s.eligible_at <= now),
                    key=lambda s: s.chunk_id,
                )
                idle = [w for w in self.workers if w.chunk is None]
                for state in eligible:
                    if idle:
                        worker = idle.pop(0)
                    elif len(self.workers) < self.jobs:
                        worker = self._spawn()
                        self.workers.append(worker)
                    else:
                        break
                    pending.remove(state)
                    worker.assign(state, now, self.chunk_timeout)
                # Wait for results (bounded by the nearest deadline or
                # backoff expiry so hangs are noticed promptly).
                timeout = _POLL_INTERVAL
                for worker in self.workers:
                    if worker.deadline is not None:
                        timeout = min(timeout, worker.deadline - now)
                for state in pending:
                    timeout = min(timeout, state.eligible_at - now)
                timeout = max(0.005, timeout)
                conns = [w.result_recv for w in self.workers]
                if conns:
                    ready = _conn_wait(conns, timeout)
                else:
                    time.sleep(timeout)
                    ready = []
                by_conn = {w.result_recv: w for w in self.workers}
                for conn in ready:
                    worker = by_conn.get(conn)
                    if worker is not None:
                        self._drain(worker, results, pending, degraded)
                # Crash detection: an assigned worker that died mid-chunk.
                # Buffered messages are drained first — the result may
                # have made it out before the process died.
                for worker in list(self.workers):
                    if worker.chunk is not None and not worker.alive():
                        self._drain(worker, results, pending, degraded)
                        if worker.chunk is not None:
                            self._fail(
                                worker, "crash",
                                "worker process died (exitcode "
                                f"{worker.process.exitcode})",
                                pending, degraded,
                            )
                        self._retire(worker)
                # Deadline enforcement: kill and replace hung workers.
                if self.chunk_timeout is not None:
                    now = time.monotonic()
                    for worker in list(self.workers):
                        if (worker.chunk is not None
                                and worker.deadline is not None
                                and now >= worker.deadline):
                            self._fail(
                                worker, "timeout",
                                f"chunk {worker.chunk.chunk_id} "
                                f"exceeded the {self.chunk_timeout}s "
                                "deadline",
                                pending, degraded,
                            )
                            self._retire(worker)
            # Graceful degradation: chunks that failed every retry run
            # in-process serially — same chunk function, same table.
            if degraded:
                with self.report.phase("degraded"):
                    for state in sorted(degraded,
                                        key=lambda s: s.chunk_id):
                        table = self.serial_fallback(state)
                        results[state.chunk_id] = table
                        self.report.chunks_completed += 1
                        self.meter.complete(state.chunk_id)
                        self.on_chunk_done(state, table)
        finally:
            self.close()
        return results


def run_sweep(
    dataset: Dataset,
    devices: Sequence[Device],
    best_only: bool = True,
    formats=None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    cache: Optional[InstanceCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    batch: bool = True,
    precision: str = "fp64",
    fused: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
    pack_shards: bool = False,
    faults: Optional[Union[str, FaultPlan]] = None,
    chunk_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    report: Optional[RunReport] = None,
    dispatch: Optional[str] = None,
) -> SweepTable:
    """Sharded, cached, fault-tolerant sweep (see module docstring).

    ``cache`` takes precedence over ``cache_dir``; with ``jobs != 1`` the
    cache must be directory-backed, so pass ``cache_dir`` (each worker
    opens its own handle onto the shared directory).  ``batch`` routes
    chunk scoring through the vectorised grid simulator (identical rows,
    one NumPy pass per chunk); ``batch=False`` keeps the scalar loop.
    ``fused`` (requires ``batch``) scores chunks straight from the specs
    — structure generation, batched analytic stats and grid scoring in
    one pass, with no instance materialisation and no cache traffic.
    ``precision`` scores every cell at fp64 (default) or fp32 — the
    experiment runner sweeps one precision slice at a time.

    Resilience controls (resilient dispatch only): ``run_dir`` journals
    completed chunks for ``resume=True`` (``pack_shards`` stores them in
    a single ``shards.rpak`` pack instead of one file per chunk; resume
    always follows the layout journalled at create time, so the flag is
    ignored when resuming); ``chunk_timeout`` is the
    per-chunk deadline in seconds (``None`` → no deadline);
    ``max_retries`` caps re-dispatches per chunk before the in-process
    serial fallback; ``faults`` arms a deterministic
    :class:`FaultPlan` (spec string or instance; default: the
    ``REPRO_FAULTS`` environment variable); ``report`` is a
    :class:`RunReport` filled in place.  ``dispatch`` selects
    ``resilient`` (default, also via ``REPRO_DISPATCH``) or the plain
    ``pool`` baseline.

    ``progress`` fires monotonically as specs complete — per spec when
    serial, per completed ``_SERIAL_CHUNK``-sized sub-chunk under
    ``jobs > 1`` (and never goes backwards across retries); the callback
    must tolerate being invoked from the dispatch loop.
    """
    rep = report if report is not None else RunReport()
    journal_holder: List[Optional[RunJournal]] = [None]
    try:
        with rep.phase("total"):
            table = _run_sweep_inner(
                dataset, devices, best_only, formats, seed, jobs,
                cache_dir, cache, progress, batch, precision, fused,
                run_dir, resume, pack_shards, faults, chunk_timeout,
                max_retries, rep, dispatch, journal_holder,
            )
        rep.status = "complete"
        if journal_holder[0] is not None:
            journal_holder[0].record_end("complete")
        return table
    except KeyboardInterrupt:
        rep.status = "interrupted"
        if journal_holder[0] is not None:
            journal_holder[0].record_end("interrupted")
        raise
    except BaseException:
        rep.status = "failed"
        if journal_holder[0] is not None:
            journal_holder[0].record_end("failed")
        raise


def _run_sweep_inner(
    dataset, devices, best_only, formats, seed, jobs, cache_dir, cache,
    progress, batch, precision, fused, run_dir, resume, pack_shards,
    faults, chunk_timeout, max_retries, rep, dispatch, journal_holder,
) -> SweepTable:
    if fused and not batch:
        raise ValueError("fused sweeps require batch=True")
    n = len(dataset)
    jobs = resolve_jobs(jobs)
    jobs = min(jobs, max(n, 1))
    dispatch = resolve_dispatch(dispatch)
    if max_retries is None:
        max_retries = _DEFAULT_MAX_RETRIES
    if cache is None and cache_dir is not None:
        cache = InstanceCache(cache_dir)
    if isinstance(faults, FaultPlan):
        plan = faults
    else:
        plan = FaultPlan.from_spec(
            faults or os.environ.get("REPRO_FAULTS")
        )
    if dispatch == "pool" and (run_dir is not None or plan is not None
                               or chunk_timeout is not None):
        raise ValueError(
            "dispatch='pool' is the plain baseline: it supports no "
            "run_dir/resume, faults or chunk_timeout — use the default "
            "resilient dispatch"
        )
    if resume and run_dir is None:
        raise ValueError("resume=True requires run_dir")
    rep.engine = {
        "dispatch": dispatch, "jobs": jobs, "batch": bool(batch),
        "fused": bool(fused), "precision": precision, "n_specs": n,
        "max_retries": max_retries, "chunk_timeout": chunk_timeout,
        "journalled": run_dir is not None, "resumed": bool(resume),
        "shards": (
            None if run_dir is None
            else "pack" if pack_shards and not resume else "dir"
        ),
    }

    # -- journal / resume ------------------------------------------------
    journal: Optional[RunJournal] = None
    completed: Dict[int, SweepTable] = {}
    bounds: Optional[List[tuple]] = None
    if run_dir is not None:
        config = sweep_config(dataset, devices, best_only, formats, seed,
                              precision, batch, fused)
        if resume:
            journal = RunJournal.load(run_dir)
            journal.check_config(config)
            bounds = journal.bounds
            rep.engine["shards"] = journal.shard_store
            with rep.phase("resume_load"):
                completed = journal.completed_chunks()
            rep.chunks_resumed = len(completed)
        else:
            bounds = _chunk_bounds(n, jobs * _CHUNKS_PER_JOB)
            journal = RunJournal.create(
                run_dir, config, bounds,
                shard_store="pack" if pack_shards else "dir",
            )
        journal_holder[0] = journal

    def on_chunk_done(state: _ChunkState, table: SweepTable) -> None:
        if journal is not None:
            journal.write_shard(state.chunk_id, table)
            journal.record_chunk(
                state.chunk_id, state.lo, state.hi, state.attempts
            )
        if plan is not None and plan.stop_after(state.chunk_id):
            raise KeyboardInterrupt(
                f"injected stop after chunk {state.chunk_id}"
            )

    # -- serial ----------------------------------------------------------
    if jobs == 1 or n == 0:
        serial_dataset = dataset
        if cache is not None and dataset.cache is None and not fused:
            # Attach the cache for reads without mutating the caller's
            # dataset; instances shared through the cache's memory layer.
            serial_dataset = Dataset(
                dataset.specs, max_nnz=dataset.max_nnz,
                name=dataset.name, cache=cache,
            )
        if journal is None:
            chunks: List[SweepTable] = []
            step = _SERIAL_CHUNK if batch else 1
            rep.chunks_total = max((n + step - 1) // step, 0)
            for lo in range(0, n, step):
                hi = min(lo + step, n)
                chunks.append(
                    _sweep_range(
                        serial_dataset, lo, hi, devices, best_only,
                        formats, seed, cache, batch, precision, fused,
                    )
                )
                rep.chunks_completed += 1
                if progress is not None:
                    # Per-spec callbacks (the documented granularity),
                    # fired once the chunk they belong to is scored.
                    for i in range(lo, hi):
                        progress(i + 1, n)
            if cache is not None:
                rep.cache_quarantined += cache.quarantined
            return SweepTable.concat(chunks)
        # Journalled serial run: execute at the journalled chunk
        # granularity so shards/resume are jobs-independent.
        rep.chunks_total = len(bounds)
        done = 0
        tables: List[SweepTable] = []
        for chunk_id, (lo, hi) in enumerate(bounds):
            if chunk_id in completed:
                tables.append(completed[chunk_id])
            else:
                state = _ChunkState(chunk_id, lo, hi)
                table = _chunk_table(
                    serial_dataset, lo, hi, devices, best_only, formats,
                    seed, cache, batch, precision, fused,
                )
                rep.chunks_completed += 1
                tables.append(table)
                on_chunk_done(state, table)
            done += hi - lo
            if progress is not None:
                progress(done, n)
        if cache is not None:
            rep.cache_quarantined += cache.quarantined
        return SweepTable.concat(tables)

    # -- parallel --------------------------------------------------------
    if cache is not None and cache_dir is None:
        cache_dir = str(cache.root)
    if bounds is None:
        bounds = _chunk_bounds(n, jobs * _CHUNKS_PER_JOB)
    rep.chunks_total = len(bounds)

    # ``fork`` keeps start-up cheap where available; ``spawn`` elsewhere.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    init_args = (
        dataset.specs, dataset.max_nnz, dataset.name, list(devices),
        best_only, formats, seed, cache_dir, batch, precision, fused,
    )
    states = [
        _ChunkState(chunk_id, lo, hi)
        for chunk_id, (lo, hi) in enumerate(bounds)
        if chunk_id not in completed
    ]

    if dispatch == "pool":
        results = _run_pool(ctx, jobs, init_args, bounds, progress, n)
    else:
        sizes = {s.chunk_id: s.size for s in states}
        base = sum(hi - lo for cid, (lo, hi) in enumerate(bounds)
                   if cid in completed)
        meter = _ProgressMeter(sizes, n, base, progress)

        fallback_dataset: List[Optional[Dataset]] = [None]

        def serial_fallback(state: _ChunkState) -> SweepTable:
            if fallback_dataset[0] is None:
                fallback_dataset[0] = Dataset(
                    dataset.specs, max_nnz=dataset.max_nnz,
                    name=dataset.name,
                    cache=cache if not fused else None,
                )
            return _chunk_table(
                fallback_dataset[0], state.lo, state.hi, devices,
                best_only, formats, seed,
                cache if not fused else None, batch, precision, fused,
            )

        crew = _ResilientDispatch(
            ctx, jobs, init_args, plan, progress is not None,
            chunk_timeout, max_retries, rep, meter, serial_fallback,
            on_chunk_done,
        )
        with rep.phase("dispatch"):
            results = crew.run(states)

    results.update(completed)
    missing = [cid for cid in range(len(bounds)) if cid not in results]
    if missing:
        raise ChunkFailedError(
            f"chunks {missing} produced no result; the sweep cannot "
            "be merged"
        )
    with rep.phase("merge"):
        return SweepTable.concat(
            [results[chunk_id] for chunk_id in sorted(results)]
        )


def _run_pool(ctx, jobs, init_args, bounds, progress, n) -> dict:
    """The plain ``multiprocessing.Pool`` baseline dispatch.

    No retries, deadlines or journal — but teardown is unconditional:
    the pool is terminated and joined and the progress drain thread is
    unblocked by its sentinel in a ``finally``, so a worker exception or
    Ctrl-C never leaves a zombie pool or a dangling thread behind.
    """
    progress_queue = ctx.Queue() if progress is not None else None
    pool_init_args = init_args + (progress_queue,)

    drainer = None
    if progress_queue is not None:
        def _drain() -> None:
            # Exits when every spec is accounted for; the ``None``
            # sentinel unblocks it on abnormal shutdown.
            done = 0
            while done < n:
                count = progress_queue.get()
                if count is None:
                    return
                done += count
                progress(done, n)

        drainer = threading.Thread(target=_drain, daemon=True)
        drainer.start()

    results: dict = {}
    pool = ctx.Pool(processes=jobs, initializer=_init_worker,
                    initargs=pool_init_args)
    try:
        for chunk_id, chunk, _count in pool.imap_unordered(
            _run_chunk, list(enumerate(bounds))
        ):
            results[chunk_id] = chunk
    finally:
        # Unconditional teardown: terminate + join reaps every worker
        # even when imap raised (worker exception, Ctrl-C), and the
        # sentinel releases the drain thread before we join it.
        pool.terminate()
        pool.join()
        if progress_queue is not None:
            progress_queue.put(None)
            drainer.join()
            progress_queue.close()
    return results

"""Sharded sweep execution.

:func:`run_sweep` is the dataset-scale execution engine behind
:func:`repro.core.dataset.sweep`: it partitions spec indices into
contiguous chunks, fans the chunks out over a ``multiprocessing`` pool
(``jobs=1`` stays fully in-process) and merges the per-chunk results
back in index order.  Chunks are columnar
:class:`~repro.core.table.SweepTable` slices — workers ship typed
column arrays, not dict lists — and the merge is
:meth:`SweepTable.concat`, which preserves first-seen category order
across chunk boundaries, so the merged table is row-for-row identical
to a serial sweep regardless of ``jobs`` or cache state.

Workers share one :class:`~repro.pipeline.cache.InstanceCache` directory;
entries are content-keyed and written atomically, so the only cost of a
cache race is a redundant materialisation, never a corrupt entry.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Callable, List, Optional, Sequence

from ..core.dataset import (
    Dataset, SweepTable, fused_spec_table, grid_spec_table, spec_rows,
)
from ..devices.base import Device
from .cache import InstanceCache

__all__ = ["run_sweep", "resolve_jobs"]

# Chunks per worker: small enough to load-balance uneven spec costs,
# large enough to amortise task dispatch.
_CHUNKS_PER_JOB = 4

# Serial chunk size: specs scored per vectorised grid evaluation when
# ``jobs == 1`` — large enough to amortise the batch setup, small enough
# for responsive progress reporting.
_SERIAL_CHUNK = 16


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: ``0``/``None``/negative auto-detects."""
    if jobs is None or jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def _chunk_bounds(n: int, n_chunks: int) -> List[tuple]:
    """Contiguous ``[lo, hi)`` index ranges covering ``range(n)``."""
    n_chunks = max(1, min(n_chunks, n))
    bounds = []
    for c in range(n_chunks):
        lo = (c * n) // n_chunks
        hi = ((c + 1) * n) // n_chunks
        if hi > lo:
            bounds.append((lo, hi))
    return bounds


def _sweep_range(
    dataset: Dataset,
    lo: int,
    hi: int,
    devices: Sequence[Device],
    best_only: bool,
    formats,
    seed: int,
    cache: Optional[InstanceCache],
    batch: bool = True,
    precision: str = "fp64",
    fused: bool = False,
) -> SweepTable:
    """Columnar chunk table for specs ``lo..hi`` with cache write-back.

    With ``batch`` (the default) the chunk is scored in one vectorised
    :func:`~repro.perfmodel.batch.simulate_grid` pass and the columns
    are gathered straight from the grid arrays; the scalar loop stays
    available as the reference engine (``batch=False``), its dict rows
    lifted into the same table schema.  ``fused`` (batch only) skips
    instances entirely — specs go straight to structure arrays and
    batched analytic stats, and the instance cache is neither read nor
    written (there is nothing materialised to persist).  All engines
    produce identical tables — the grid and fused agreement suites
    enforce it.
    """
    if fused:
        return fused_spec_table(
            dataset, lo, hi, devices,
            best_only=best_only, formats=formats, seed=seed,
            precision=precision,
        )
    if batch:
        # Materialise the chunk once; scoring and cache write-back reuse
        # these exact objects (a second dataset.instance() round-trip
        # used to re-consult the cache layer per spec).
        insts = [dataset.instance(i) for i in range(lo, hi)]
        table = grid_spec_table(
            dataset, lo, hi, devices,
            best_only=best_only, formats=formats, seed=seed,
            precision=precision, instances=insts,
        )
        if cache is not None:
            # Store after scoring so the persisted entries carry the
            # derived state (features, profiles, format stats) the grid
            # evaluation just computed — warm sweeps reload it all.
            for i, inst in zip(range(lo, hi), insts):
                cache.store(dataset.specs[i], dataset.max_nnz, inst)
        return table
    rows: List[dict] = []
    for i in range(lo, hi):
        rows.extend(
            spec_rows(
                dataset, i, devices,
                best_only=best_only, formats=formats, seed=seed,
                precision=precision,
            )
        )
        if cache is not None:
            cache.store(dataset.specs[i], dataset.max_nnz,
                        dataset.instance(i))
    if not rows:
        return SweepTable({})
    return SweepTable.from_rows(rows).with_constant("precision", precision)


# -- worker-side state (initialised once per pool process) ------------------
_WORKER: dict = {}


def _init_worker(specs, max_nnz, name, devices, best_only, formats, seed,
                 cache_dir, batch, precision, fused,
                 progress_queue=None) -> None:
    cache = InstanceCache(cache_dir) if cache_dir else None
    _WORKER["dataset"] = Dataset(
        specs, max_nnz=max_nnz, name=name, cache=cache
    )
    _WORKER["args"] = (
        devices, best_only, formats, seed, cache, batch, precision, fused
    )
    _WORKER["progress_queue"] = progress_queue


def _run_chunk(task):
    chunk_id, (lo, hi) = task
    (devices, best_only, formats, seed, cache, batch, precision,
     fused) = _WORKER["args"]
    queue = _WORKER.get("progress_queue")
    # Score the pool chunk in _SERIAL_CHUNK-sized grid passes (matching
    # the serial engine's granularity) so long cold sweeps report
    # progress per sub-chunk rather than per pool chunk.
    step = _SERIAL_CHUNK if batch else 1
    parts: List[SweepTable] = []
    for sub_lo in range(lo, hi, step):
        sub_hi = min(sub_lo + step, hi)
        parts.append(
            _sweep_range(
                _WORKER["dataset"], sub_lo, sub_hi, devices, best_only,
                formats, seed, cache, batch, precision, fused,
            )
        )
        if queue is not None:
            queue.put(sub_hi - sub_lo)
    table = parts[0] if len(parts) == 1 else SweepTable.concat(parts)
    return chunk_id, table, hi - lo


def run_sweep(
    dataset: Dataset,
    devices: Sequence[Device],
    best_only: bool = True,
    formats=None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    cache: Optional[InstanceCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    batch: bool = True,
    precision: str = "fp64",
    fused: bool = False,
) -> SweepTable:
    """Sharded, cached sweep (see module docstring).

    ``cache`` takes precedence over ``cache_dir``; with ``jobs != 1`` the
    cache must be directory-backed, so pass ``cache_dir`` (each worker
    opens its own handle onto the shared directory).  ``batch`` routes
    chunk scoring through the vectorised grid simulator (identical rows,
    one NumPy pass per chunk); ``batch=False`` keeps the scalar loop.
    ``fused`` (requires ``batch``) scores chunks straight from the specs
    — structure generation, batched analytic stats and grid scoring in
    one pass, with no instance materialisation and no cache traffic.
    ``precision`` scores every cell at fp64 (default) or fp32 — the
    experiment runner sweeps one precision slice at a time.

    Under ``jobs > 1``, ``progress`` fires per completed
    ``_SERIAL_CHUNK``-sized sub-chunk (reported by the workers through a
    queue, drained on a helper thread), so long cold sweeps show
    incremental progress; the callback must tolerate being invoked from
    that thread.
    """
    if fused and not batch:
        raise ValueError("fused sweeps require batch=True")
    n = len(dataset)
    jobs = resolve_jobs(jobs)
    jobs = min(jobs, max(n, 1))
    if cache is None and cache_dir is not None:
        cache = InstanceCache(cache_dir)

    if jobs == 1 or n == 0:
        if cache is not None and dataset.cache is None and not fused:
            # Attach the cache for reads without mutating the caller's
            # dataset; instances shared through the cache's memory layer.
            dataset = Dataset(
                dataset.specs, max_nnz=dataset.max_nnz,
                name=dataset.name, cache=cache,
            )
        chunks: List[SweepTable] = []
        step = _SERIAL_CHUNK if batch else 1
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            chunks.append(
                _sweep_range(
                    dataset, lo, hi, devices, best_only, formats, seed,
                    cache, batch, precision, fused,
                )
            )
            if progress is not None:
                # Per-spec callbacks (the documented granularity), fired
                # once the chunk they belong to is scored.
                for i in range(lo, hi):
                    progress(i + 1, n)
        return SweepTable.concat(chunks)

    if cache is not None and cache_dir is None:
        cache_dir = str(cache.root)

    # ``fork`` keeps start-up cheap where available; ``spawn`` elsewhere.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    bounds = _chunk_bounds(n, jobs * _CHUNKS_PER_JOB)
    progress_queue = ctx.Queue() if progress is not None else None
    init_args = (
        dataset.specs, dataset.max_nnz, dataset.name, list(devices),
        best_only, formats, seed, cache_dir, batch, precision, fused,
        progress_queue,
    )

    drainer = None
    if progress_queue is not None:
        def _drain() -> None:
            # Exits when every spec is accounted for; the ``None``
            # sentinel unblocks it on abnormal shutdown.
            done = 0
            while done < n:
                count = progress_queue.get()
                if count is None:
                    return
                done += count
                progress(done, n)

        drainer = threading.Thread(target=_drain, daemon=True)
        drainer.start()

    results: dict = {}
    try:
        with ctx.Pool(
            processes=jobs, initializer=_init_worker, initargs=init_args
        ) as pool:
            for chunk_id, chunk, _count in pool.imap_unordered(
                _run_chunk, list(enumerate(bounds))
            ):
                results[chunk_id] = chunk
    finally:
        if progress_queue is not None:
            progress_queue.put(None)
            drainer.join()
    return SweepTable.concat(
        [results[chunk_id] for chunk_id in sorted(results)]
    )

"""Structured sweep errors and the per-run health report.

The resilient dispatch path (:func:`repro.pipeline.engine.run_sweep`)
never lets a single bad chunk take down a multi-hour sweep silently:
every incident — a crashed worker, a chunk exception, a blown deadline,
a quarantined cache entry — is classified under the :class:`SweepError`
taxonomy and accounted for in a :class:`RunReport` that the CLI can
persist via ``repro sweep --health-json``.  The report is plain data
(deterministic JSON) so dashboards and the chaos CI job can diff runs.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "SweepError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "ChunkFailedError",
    "ResumeError",
    "RunReport",
]


class SweepError(RuntimeError):
    """Base class for structured sweep-execution failures."""


class WorkerCrashError(SweepError):
    """A pool worker process died (OOM-kill, segfault, ``os._exit``)."""


class ChunkTimeoutError(SweepError):
    """A chunk missed its deadline and its worker was killed."""


class ChunkFailedError(SweepError):
    """A chunk failed every retry *and* the in-process serial fallback.

    This is the only incident that aborts a sweep: it means the chunk is
    deterministically broken (bad spec, code bug), not a transient
    environment fault, so retrying elsewhere cannot help.
    """


class ResumeError(SweepError, ValueError):
    """``--resume`` pointed at a journal whose recorded configuration
    does not match the requested sweep (also a :class:`ValueError`, so
    the CLI surfaces it as an actionable exit-2 message)."""


# Incident kinds accounted under RunReport.retries.
_RETRY_KINDS = ("crash", "error", "timeout")

# Bound the per-incident event log so a pathological run cannot grow the
# report without limit; the counters stay exact regardless.
_MAX_EVENTS = 200


@dataclass
class RunReport:
    """Aggregated health of one :func:`run_sweep` call.

    Mutated in place by the engine (pass one in via ``report=``); every
    field is plain data so :meth:`to_json` is deterministic for a given
    run history.
    """

    engine: Dict[str, object] = field(default_factory=dict)
    chunks_total: int = 0
    chunks_completed: int = 0
    chunks_resumed: int = 0
    chunks_degraded: List[int] = field(default_factory=list)
    retries: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in _RETRY_KINDS}
    )
    timeouts: int = 0
    worker_respawns: int = 0
    cache_quarantined: int = 0
    wall_clock: Dict[str, float] = field(default_factory=dict)
    events: List[Dict[str, object]] = field(default_factory=list)
    events_dropped: int = 0
    status: str = "pending"

    # -- incident accounting --------------------------------------------
    def record_incident(
        self, kind: str, chunk_id: int, attempt: int, detail: str = ""
    ) -> None:
        """Count one retryable incident (``crash``/``error``/``timeout``)."""
        if kind not in self.retries:
            self.retries[kind] = 0
        self.retries[kind] += 1
        if kind == "timeout":
            self.timeouts += 1
        if len(self.events) < _MAX_EVENTS:
            self.events.append(
                {"kind": kind, "chunk": chunk_id, "attempt": attempt,
                 "detail": detail}
            )
        else:
            self.events_dropped += 1

    def record_degraded(self, chunk_id: int) -> None:
        if chunk_id not in self.chunks_degraded:
            self.chunks_degraded.append(chunk_id)

    # -- phase timing ----------------------------------------------------
    class _Phase:
        def __init__(self, report: "RunReport", name: str):
            self._report, self._name = report, name

        def __enter__(self):
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc):
            self._report.wall_clock[self._name] = round(
                self._report.wall_clock.get(self._name, 0.0)
                + time.perf_counter() - self._t0, 6
            )
            return False

    def phase(self, name: str) -> "RunReport._Phase":
        """``with report.phase("dispatch"): ...`` wall-clock accounting."""
        return RunReport._Phase(self, name)

    # -- serialisation ---------------------------------------------------
    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def to_dict(self) -> dict:
        return {
            "engine": dict(self.engine),
            "chunks": {
                "total": self.chunks_total,
                "completed": self.chunks_completed,
                "resumed": self.chunks_resumed,
                "degraded": sorted(self.chunks_degraded),
            },
            "retries": {k: self.retries[k] for k in sorted(self.retries)},
            "total_retries": self.total_retries,
            "timeouts": self.timeouts,
            "worker_respawns": self.worker_respawns,
            "cache_quarantined": self.cache_quarantined,
            "wall_clock": {
                k: self.wall_clock[k] for k in sorted(self.wall_clock)
            },
            "events": list(self.events),
            "events_dropped": self.events_dropped,
            "status": self.status,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

"""Persistent + in-memory caching of materialised matrix instances.

Dataset-scale sweeps spend nearly all of their time materialising
:class:`~repro.perfmodel.instance.MatrixInstance` objects: generating the
representative matrix, extracting features, regenerating the declared-scale
row profile and converting to every storage format.  All of that is a pure
function of the :class:`~repro.core.generator.MatrixSpec` (plus the
``max_nnz`` representative cap), so it is content-addressed here:

* :func:`spec_key` — a stable hash of the spec's fields.  Everything that
  influences the generated structure is part of the key; dataset names and
  spec indices are not (they only label rows).
* :class:`InstanceCache` — a two-level store.  The first level is an
  in-process dictionary (shared by every :class:`~repro.core.dataset.Dataset`
  holding the cache).  The second level is a directory of
  ``<key>.npz`` + ``<key>.json`` pairs holding the CSR arrays / row profile
  and the derived statistics (features, per-format stats and refusals,
  SIMD-utilisation and imbalance memos).  Files are written atomically
  (temp file + ``os.replace``) so concurrent sweep workers can share one
  cache directory without locking.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..core.features import Features
from ..core.generator import MatrixSpec
from ..core.matrix import CSRMatrix
from ..devices.parallel import ImbalanceStats
from ..formats.base import FormatStats
from ..perfmodel.instance import MatrixInstance

__all__ = ["spec_key", "InstanceCache", "CACHE_VERSION"]

# Bump when the generator or the cached payload layout changes behaviour:
# the key changes, so stale entries are simply never looked up again.
# v2: format stats are produced by the analytic stats-only engine
# (`SparseFormat.stats_from_csr`).  Entries are value-identical to v1
# (the agreement suite proves it), but the version field in the JSON
# sidecar should record which engine filled them, so pre-existing cache
# dirs are invalidated cleanly rather than silently mixed.
CACHE_VERSION = 2


def spec_key(spec: MatrixSpec, max_nnz: int) -> str:
    """Stable content key for ``(spec, max_nnz)``.

    Hashes every spec field plus the representative cap and the cache
    version; two equal specs always map to the same key across processes
    and sessions (plain SHA-256 of the canonical JSON encoding).
    """
    payload = {f.name: getattr(spec, f.name)
               for f in dataclasses.fields(spec)}
    payload["__max_nnz__"] = int(max_nnz)
    payload["__version__"] = CACHE_VERSION
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def _to_py(obj):
    """JSON fallback for NumPy scalars."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    raise TypeError(f"not JSON-serialisable: {type(obj)!r}")


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _clone_with_name(inst: MatrixInstance, name: str) -> MatrixInstance:
    """A renamed wrapper sharing the instance's (immutable-in-practice)
    matrix and derived-state containers.

    Names label sweep rows and seed the measurement noise, so a cache hit
    must never rename an instance another dataset still holds; the shared
    dictionaries mean derived statistics computed through either wrapper
    keep enriching the same cache entry.
    """
    clone = MatrixInstance(matrix=inst.matrix, spec=inst.spec, name=name)
    clone.stats_engine = inst.stats_engine
    clone._features = inst._features
    clone._profile = inst._profile
    clone._format_stats = inst._format_stats
    clone._format_fail = inst._format_fail
    clone._simd_util = inst._simd_util
    clone._imbalance = inst._imbalance
    return clone


def _json_signature(inst: MatrixInstance) -> tuple:
    """What derived state the JSON sidecar would carry (for dirtiness)."""
    return (
        inst._features is not None,
        frozenset(inst._format_stats),
        frozenset(inst._format_fail),
        frozenset(inst._simd_util),
        frozenset(inst._imbalance),
    )


class InstanceCache:
    """Two-level (memory + directory) cache of materialised instances."""

    def __init__(self, root, keep_in_memory: bool = True):
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"cache path {self.root} exists and is not a directory"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep_in_memory = keep_in_memory
        self._mem: Dict[str, MatrixInstance] = {}
        self._disk_json_sig: Dict[str, tuple] = {}
        # Whether the on-disk NPZ is known to carry a row profile (the CSR
        # arrays themselves are content-keyed, so they never change).
        self._disk_npz_profile: Dict[str, bool] = {}
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        # Corrupt entries detected by this handle (moved, not deleted);
        # the sweep RunReport aggregates these counts across workers.
        self.quarantined = 0

    # -- paths -----------------------------------------------------------
    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # -- fetch -----------------------------------------------------------
    def fetch(
        self, spec: MatrixSpec, max_nnz: int, name: str = ""
    ) -> Optional[MatrixInstance]:
        """Cached instance for ``spec``, or ``None`` on a miss.

        ``name`` is applied to the returned instance (names label sweep
        rows and seed the measurement noise, so they must match what a
        fresh materialisation would have used).
        """
        key = spec_key(spec, max_nnz)
        inst = self._mem.get(key)
        if inst is not None:
            self.hits_memory += 1
            if inst.name != name:
                inst = _clone_with_name(inst, name)
            return inst
        inst = self._load_disk(key, spec, name)
        if inst is not None:
            self.hits_disk += 1
            if self.keep_in_memory:
                self._mem[key] = inst
            self._disk_json_sig[key] = _json_signature(inst)
            self._disk_npz_profile[key] = inst._profile is not None
            return inst
        self.misses += 1
        return None

    def _load_disk(
        self, key: str, spec: MatrixSpec, name: str
    ) -> Optional[MatrixInstance]:
        npz_path, json_path = self._npz_path(key), self._json_path(key)
        if not (npz_path.exists() and json_path.exists()):
            return None
        try:
            with np.load(npz_path) as npz:
                matrix = CSRMatrix(
                    int(npz["n_rows"]),
                    int(npz["n_cols"]),
                    npz["indptr"],
                    npz["indices"],
                    npz["data"],
                )
                profile = (
                    npz["profile"].astype(np.int64)
                    if "profile" in npz.files
                    else None
                )
            meta = json.loads(json_path.read_text())
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Partial/corrupt entry: treat as a miss and quarantine both
            # halves (the pair is only valid together) so the evidence
            # survives for inspection and the next store() rewrites the
            # entry cleanly.
            self._quarantine(npz_path, json_path)
            return None
        inst = MatrixInstance(matrix=matrix, spec=spec, name=name)
        if meta.get("features") is not None:
            inst._features = Features(**meta["features"])
        if profile is not None:
            inst._profile = profile
        inst._format_stats = {
            fmt: FormatStats(**d)
            for fmt, d in meta.get("format_stats", {}).items()
        }
        inst._format_fail = dict(meta.get("format_fail", {}))
        inst._simd_util = {
            int(w): float(v)
            for w, v in meta.get("simd_util", {}).items()
        }
        inst._imbalance = {}
        for enc, d in meta.get("imbalance", {}).items():
            strategy, workers, width = enc.rsplit("|", 2)
            inst._imbalance[(strategy, int(workers), int(width))] = (
                ImbalanceStats(**d)
            )
        return inst

    def _quarantine(self, *paths: Path) -> None:
        """Move a corrupt entry's files into ``quarantine/`` and count
        the incident.

        The move (``os.replace``) is atomic on the same filesystem, so
        concurrent workers race benignly: whoever moves first wins, the
        loser's missing-source ``OSError`` is tolerated.  A vanished
        quarantine directory or a cross-device link error must not take
        the sweep down either — detection is counted even if the move
        itself fails.
        """
        self.quarantined += 1
        try:
            self.quarantine_dir.mkdir(exist_ok=True)
        except OSError:
            return
        for path in paths:
            if not path.exists():
                continue
            target = self.quarantine_dir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_dir / f"{path.name}.{suffix}"
            try:
                os.replace(path, target)
            except OSError:
                pass

    # -- store -----------------------------------------------------------
    def store(
        self, spec: MatrixSpec, max_nnz: int, inst: MatrixInstance
    ) -> bool:
        """Persist ``inst`` (skipping whatever the on-disk entry already
        carries).  Returns ``True`` when any write happened.

        The NPZ (CSR arrays + profile) and the JSON sidecar (derived
        statistics) are tracked separately: the arrays are fixed by the
        content key, so adding e.g. one more imbalance memo only rewrites
        the small JSON file, never the multi-MB matrix payload.
        """
        key = spec_key(spec, max_nnz)
        if self.keep_in_memory:
            self._mem[key] = inst

        wrote = False
        have_profile = inst._profile is not None
        npz_path = self._npz_path(key)
        need_npz = not npz_path.exists() or (
            have_profile and self._disk_npz_profile.get(key) is not True
        )
        if need_npz:
            arrays = {
                "n_rows": np.int64(inst.matrix.n_rows),
                "n_cols": np.int64(inst.matrix.n_cols),
                "indptr": inst.matrix.indptr,
                "indices": inst.matrix.indices,
                "data": inst.matrix.data,
            }
            if have_profile:
                arrays["profile"] = inst._profile
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            _atomic_write_bytes(npz_path, buf.getvalue())
            self._disk_npz_profile[key] = have_profile
            wrote = True

        sig = _json_signature(inst)
        if self._disk_json_sig.get(key) == sig:
            return wrote

        meta = {
            "version": CACHE_VERSION,
            "features": (
                inst._features.to_dict()
                if inst._features is not None
                else None
            ),
            "format_stats": {
                fmt: dataclasses.asdict(st)
                for fmt, st in inst._format_stats.items()
            },
            "format_fail": inst._format_fail,
            "simd_util": {
                str(w): v for w, v in inst._simd_util.items()
            },
            "imbalance": {
                f"{s}|{w}|{sw}": dataclasses.asdict(st)
                for (s, w, sw), st in inst._imbalance.items()
            },
        }
        _atomic_write_bytes(
            self._json_path(key),
            json.dumps(meta, default=_to_py).encode(),
        )
        self._disk_json_sig[key] = sig
        return True

    # -- maintenance -----------------------------------------------------
    def drop_memory(self) -> None:
        """Release the in-process layer (disk entries stay)."""
        self._mem.clear()

    def __len__(self) -> int:
        return len(list(self.root.glob("*.npz")))

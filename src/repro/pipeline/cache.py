"""Persistent + in-memory caching of materialised matrix instances.

Dataset-scale sweeps spend nearly all of their time materialising
:class:`~repro.perfmodel.instance.MatrixInstance` objects: generating the
representative matrix, extracting features, regenerating the declared-scale
row profile and converting to every storage format.  All of that is a pure
function of the :class:`~repro.core.generator.MatrixSpec` (plus the
``max_nnz`` representative cap), so it is content-addressed here:

* :func:`spec_key` — a stable hash of the spec's fields.  Everything that
  influences the generated structure is part of the key; dataset names and
  spec indices are not (they only label rows).
* :class:`InstanceCache` — a layered store.  The first level is an
  in-process dictionary (shared by every :class:`~repro.core.dataset.Dataset`
  holding the cache).  The second level is the directory of
  ``<key>.npz`` + ``<key>.json`` pairs holding the CSR arrays / row profile
  and the derived statistics (features, per-format stats and refusals,
  SIMD-utilisation and imbalance memos).  Files are written atomically
  (temp file + ``os.replace``) so concurrent sweep workers can share one
  cache directory without locking.  The third level is an optional
  single-file *pack* (``cache.rpak``, see :mod:`repro.io.pack`): when the
  directory holds one, entries missing from the directory are served
  straight out of the pack — one mapped file, dict lookups, no per-key
  probing — which is how a corpus packed with ``repro pack`` ships as a
  single object.  Loose pairs always win over the pack (they are never
  older: the pack is a snapshot, later stores write pairs), and stores
  keep writing pairs, so the pack needs no write locking.

Corrupt entries — loose pairs, pack entries, or the pack file itself —
are *quarantined*, never deleted: the evidence moves (or is copied) into
``quarantine/`` under an atomically reserved name, the incident is
counted, and the entry is simply rematerialised.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..core.features import Features
from ..core.generator import MatrixSpec
from ..core.matrix import CSRMatrix
from ..devices.parallel import ImbalanceStats
from ..formats.base import FormatStats
from ..io.pack import Pack, PackError, PackWriter
from ..perfmodel.instance import MatrixInstance

__all__ = [
    "spec_key", "InstanceCache", "CACHE_VERSION", "PACK_NAME",
    "pack_cache_dir", "unpack_cache",
]

# Bump when the generator or the cached payload layout changes behaviour:
# the key changes, so stale entries are simply never looked up again.
# v2: format stats are produced by the analytic stats-only engine
# (`SparseFormat.stats_from_csr`).  Entries are value-identical to v1
# (the agreement suite proves it), but the version field in the JSON
# sidecar should record which engine filled them, so pre-existing cache
# dirs are invalidated cleanly rather than silently mixed.
CACHE_VERSION = 2

# The single-file pack a cache directory may carry (``repro pack``).
PACK_NAME = "cache.rpak"


def spec_key(spec: MatrixSpec, max_nnz: int) -> str:
    """Stable content key for ``(spec, max_nnz)``.

    Hashes every spec field plus the representative cap and the cache
    version; two equal specs always map to the same key across processes
    and sessions (plain SHA-256 of the canonical JSON encoding).
    """
    payload = {f.name: getattr(spec, f.name)
               for f in dataclasses.fields(spec)}
    payload["__max_nnz__"] = int(max_nnz)
    payload["__version__"] = CACHE_VERSION
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def _to_py(obj):
    """JSON fallback for NumPy scalars."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    raise TypeError(f"not JSON-serialisable: {type(obj)!r}")


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _clone_with_name(inst: MatrixInstance, name: str) -> MatrixInstance:
    """A renamed wrapper sharing the instance's (immutable-in-practice)
    matrix and derived-state containers.

    Names label sweep rows and seed the measurement noise, so a cache hit
    must never rename an instance another dataset still holds; the shared
    dictionaries mean derived statistics computed through either wrapper
    keep enriching the same cache entry.
    """
    clone = MatrixInstance(matrix=inst.matrix, spec=inst.spec, name=name)
    clone.stats_engine = inst.stats_engine
    clone._features = inst._features
    clone._profile = inst._profile
    clone._format_stats = inst._format_stats
    clone._format_fail = inst._format_fail
    clone._simd_util = inst._simd_util
    clone._imbalance = inst._imbalance
    return clone


def _json_signature(inst: MatrixInstance) -> tuple:
    """What derived state the JSON sidecar would carry (for dirtiness)."""
    return (
        inst._features is not None,
        frozenset(inst._format_stats),
        frozenset(inst._format_fail),
        frozenset(inst._simd_util),
        frozenset(inst._imbalance),
    )


class InstanceCache:
    """Layered (memory + directory + pack) cache of instances."""

    def __init__(self, root, keep_in_memory: bool = True):
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(
                f"cache path {self.root} exists and is not a directory"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep_in_memory = keep_in_memory
        self._mem: Dict[str, MatrixInstance] = {}
        self._disk_json_sig: Dict[str, tuple] = {}
        # Whether the on-disk NPZ is known to carry a row profile (the CSR
        # arrays themselves are content-keyed, so they never change).
        self._disk_npz_profile: Dict[str, bool] = {}
        # Complete-entry census (lazy; maintained by store/quarantine).
        self._census: Optional[Set[str]] = None
        self.hits_memory = 0
        self.hits_disk = 0
        self.hits_pack = 0
        self.misses = 0
        # Corrupt entries detected by this handle (moved, not deleted);
        # the sweep RunReport aggregates these counts across workers.
        self.quarantined = 0
        # Pack entries this handle found corrupt (never re-read).
        self._pack_bad: Set[str] = set()
        self._pack: Optional[Pack] = None
        if self.pack_path.exists():
            self._open_pack()

    # -- paths -----------------------------------------------------------
    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _json_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @property
    def pack_path(self) -> Path:
        return self.root / PACK_NAME

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _open_pack(self) -> None:
        """Open ``cache.rpak``; a pack that fails validation (bad magic,
        truncation, checksum, version drift) is quarantined — moved, not
        deleted — and the cache continues on the directory layout."""
        try:
            self._pack = Pack.open(self.pack_path)
        except PackError:
            self._pack = None
            self._quarantine(self.pack_path)

    # -- fetch -----------------------------------------------------------
    def fetch(
        self, spec: MatrixSpec, max_nnz: int, name: str = ""
    ) -> Optional[MatrixInstance]:
        """Cached instance for ``spec``, or ``None`` on a miss.

        ``name`` is applied to the returned instance (names label sweep
        rows and seed the measurement noise, so they must match what a
        fresh materialisation would have used).
        """
        key = spec_key(spec, max_nnz)
        inst = self._mem.get(key)
        if inst is not None:
            self.hits_memory += 1
            if inst.name != name:
                inst = _clone_with_name(inst, name)
            return inst
        inst = self._load_disk(key, spec, name)
        if inst is not None:
            self.hits_disk += 1
            self._remember(key, inst)
            return inst
        inst = self._load_pack(key, spec, name)
        if inst is not None:
            self.hits_pack += 1
            self._remember(key, inst)
            return inst
        self.misses += 1
        return None

    def _remember(self, key: str, inst: MatrixInstance) -> None:
        if self.keep_in_memory:
            self._mem[key] = inst
        self._disk_json_sig[key] = _json_signature(inst)
        self._disk_npz_profile[key] = inst._profile is not None

    def _load_disk(
        self, key: str, spec: MatrixSpec, name: str
    ) -> Optional[MatrixInstance]:
        npz_path, json_path = self._npz_path(key), self._json_path(key)
        if not (npz_path.exists() and json_path.exists()):
            return None
        try:
            with np.load(npz_path) as npz:
                matrix, profile = self._parse_arrays(npz)
            meta = json.loads(json_path.read_text())
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # Partial/corrupt entry: treat as a miss and quarantine both
            # halves (the pair is only valid together) so the evidence
            # survives for inspection and the next store() rewrites the
            # entry cleanly.
            self._quarantine(npz_path, json_path)
            return None
        return self._build(matrix, profile, meta, spec, name)

    def _load_pack(
        self, key: str, spec: MatrixSpec, name: str
    ) -> Optional[MatrixInstance]:
        """Entry served out of the single-file pack (one dict lookup per
        half, zero directory probing).

        A pack entry that fails its checksum or does not parse is
        quarantined as evidence — its raw bytes are *copied* out into
        ``quarantine/`` (the pack itself is shared and read-only) — and
        the key is remembered as bad so it is never re-read.
        """
        pack = self._pack
        if pack is None or key in self._pack_bad:
            return None
        npz_key, json_key = f"{key}.npz", f"{key}.json"
        if npz_key not in pack or json_key not in pack:
            return None
        try:
            # BytesIO accepts the zero-copy memoryview directly (one
            # copy into its buffer instead of two through bytes()).
            with np.load(io.BytesIO(pack.read(npz_key))) as npz:
                matrix, profile = self._parse_arrays(npz)
            meta = json.loads(bytes(pack.read(json_key)))
        except (PackError, OSError, ValueError, KeyError,
                zipfile.BadZipFile):
            self._pack_bad.add(key)
            evidence = []
            for entry_key in (npz_key, json_key):
                try:
                    evidence.append(
                        (entry_key,
                         bytes(pack.read(entry_key, verify=False)))
                    )
                except (PackError, KeyError, OSError):
                    continue
            self._quarantine_bytes(evidence)
            return None
        return self._build(matrix, profile, meta, spec, name)

    @staticmethod
    def _parse_arrays(npz) -> Tuple[CSRMatrix, Optional[np.ndarray]]:
        matrix = CSRMatrix(
            int(npz["n_rows"]),
            int(npz["n_cols"]),
            npz["indptr"],
            npz["indices"],
            npz["data"],
        )
        profile = (
            npz["profile"].astype(np.int64)
            if "profile" in npz.files
            else None
        )
        return matrix, profile

    @staticmethod
    def _build(matrix, profile, meta, spec, name) -> MatrixInstance:
        inst = MatrixInstance(matrix=matrix, spec=spec, name=name)
        if meta.get("features") is not None:
            inst._features = Features(**meta["features"])
        if profile is not None:
            inst._profile = profile
        inst._format_stats = {
            fmt: FormatStats(**d)
            for fmt, d in meta.get("format_stats", {}).items()
        }
        inst._format_fail = dict(meta.get("format_fail", {}))
        inst._simd_util = {
            int(w): float(v)
            for w, v in meta.get("simd_util", {}).items()
        }
        inst._imbalance = {}
        for enc, d in meta.get("imbalance", {}).items():
            strategy, workers, width = enc.rsplit("|", 2)
            inst._imbalance[(strategy, int(workers), int(width))] = (
                ImbalanceStats(**d)
            )
        return inst

    # -- quarantine ------------------------------------------------------
    def _reserve_quarantine_name(self, name: str) -> Optional[Path]:
        """Atomically reserve ``quarantine/<name>[.N]``.

        ``O_CREAT | O_EXCL`` makes the reservation itself the race
        arbiter: two workers quarantining same-named evidence at the
        same instant get *different* suffixes, where the old
        ``while target.exists()`` probe let both pick the same ``.N``
        and silently clobber one worker's evidence.
        """
        suffix = 0
        while True:
            target = self.quarantine_dir / (
                name if suffix == 0 else f"{name}.{suffix}"
            )
            try:
                fd = os.open(
                    target, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                suffix += 1
                continue
            except OSError:
                return None
            os.close(fd)
            return target

    def _quarantine(self, *paths: Path) -> None:
        """Move a corrupt entry's files into ``quarantine/`` and count
        the incident.

        The name is reserved exclusively first, then ``os.replace``
        (atomic on the same filesystem) moves the evidence over the
        reservation.  Concurrent workers race benignly: whoever moves a
        source first wins, the loser's missing-source ``OSError`` is
        tolerated.  A vanished quarantine directory or a cross-device
        link error must not take the sweep down either — detection is
        counted even if the move itself fails.
        """
        self.quarantined += 1
        try:
            self.quarantine_dir.mkdir(exist_ok=True)
        except OSError:
            return
        for path in paths:
            if not path.exists():
                continue
            target = self._reserve_quarantine_name(path.name)
            if target is None:
                continue
            try:
                os.replace(path, target)
            except OSError:
                try:
                    os.unlink(target)  # release the unused reservation
                except OSError:
                    pass
            else:
                self._forget_census(path.name)

    def _quarantine_bytes(self, evidence) -> None:
        """Copy corrupt pack-entry bytes into ``quarantine/`` — one
        counted incident per entry pair (the pack is shared and
        read-only, so evidence is copied, not moved)."""
        self.quarantined += 1
        try:
            self.quarantine_dir.mkdir(exist_ok=True)
        except OSError:
            return
        for name, payload in evidence:
            target = self._reserve_quarantine_name(name)
            if target is None:
                continue
            try:
                target.write_bytes(payload)
            except OSError:
                pass
            self._forget_census(name)

    def _forget_census(self, file_name: str) -> None:
        if self._census is None:
            return
        stem = file_name.rsplit(".", 1)[0]
        for suffix in (".npz", ".json"):
            if file_name.endswith(suffix):
                stem = file_name[: -len(suffix)]
        self._census.discard(stem)

    # -- store -----------------------------------------------------------
    def store(
        self, spec: MatrixSpec, max_nnz: int, inst: MatrixInstance
    ) -> bool:
        """Persist ``inst`` (skipping whatever the on-disk entry already
        carries).  Returns ``True`` when any write happened.

        The NPZ (CSR arrays + profile) and the JSON sidecar (derived
        statistics) are tracked separately: the arrays are fixed by the
        content key, so adding e.g. one more imbalance memo only rewrites
        the small JSON file, never the multi-MB matrix payload.  Entries
        already served by the pack are not duplicated into the
        directory unless they gained state the pack lacks (the pack is
        read-only; loose pairs shadow it on fetch).
        """
        key = spec_key(spec, max_nnz)
        if self.keep_in_memory:
            self._mem[key] = inst

        wrote = False
        have_profile = inst._profile is not None
        npz_path = self._npz_path(key)
        pack_has_npz = (
            self._pack is not None
            and f"{key}.npz" in self._pack
            and key not in self._pack_bad
        )
        need_npz = (
            not (npz_path.exists() or pack_has_npz)
            or (have_profile
                and self._disk_npz_profile.get(key) is not True)
        )
        if need_npz:
            arrays = {
                "n_rows": np.int64(inst.matrix.n_rows),
                "n_cols": np.int64(inst.matrix.n_cols),
                "indptr": inst.matrix.indptr,
                "indices": inst.matrix.indices,
                "data": inst.matrix.data,
            }
            if have_profile:
                arrays["profile"] = inst._profile
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            _atomic_write_bytes(npz_path, buf.getvalue())
            self._disk_npz_profile[key] = have_profile
            wrote = True

        sig = _json_signature(inst)
        if self._disk_json_sig.get(key) == sig:
            if wrote and self._census is not None:
                self._census.add(key)
            return wrote

        meta = {
            "version": CACHE_VERSION,
            "features": (
                inst._features.to_dict()
                if inst._features is not None
                else None
            ),
            "format_stats": {
                fmt: dataclasses.asdict(st)
                for fmt, st in inst._format_stats.items()
            },
            "format_fail": inst._format_fail,
            "simd_util": {
                str(w): v for w, v in inst._simd_util.items()
            },
            "imbalance": {
                f"{s}|{w}|{sw}": dataclasses.asdict(st)
                for (s, w, sw), st in inst._imbalance.items()
            },
        }
        _atomic_write_bytes(
            self._json_path(key),
            json.dumps(meta, default=_to_py).encode(),
        )
        self._disk_json_sig[key] = sig
        if self._census is not None:
            self._census.add(key)
        return True

    # -- maintenance -----------------------------------------------------
    def drop_memory(self) -> None:
        """Release the in-process layer (disk entries stay)."""
        self._mem.clear()

    def _complete_keys(self) -> Set[str]:
        """Content keys with both halves present (directory or pack)."""
        complete = _complete_keys_static(self.root)
        if self._pack is not None:
            pack_keys = set(self._pack.keys())
            complete |= {
                k[:-4] for k in pack_keys
                if k.endswith(".npz")
                and f"{k[:-4]}.json" in pack_keys
                and k[:-4] not in self._pack_bad
            }
        return complete

    def __len__(self) -> int:
        """Complete entries visible to this handle.

        Counts only ``.npz``+``.json`` *pairs* (an orphaned half —
        e.g. a crash between the two atomic writes — is not a usable
        entry) plus packed entries.  The census is one directory scan,
        taken lazily and then maintained by ``store``/quarantine, so
        repeated calls cost O(1) instead of re-listing the directory.
        """
        if self._census is None:
            self._census = self._complete_keys()
        return len(self._census)


# -- pack conversion ---------------------------------------------------------
def pack_cache_dir(
    root, out=None, prune: bool = False
) -> Tuple[int, Path]:
    """Fold a cache directory's complete entry pairs into a single-file
    pack (default ``<root>/cache.rpak``); returns ``(entries, path)``.

    File bytes are stored verbatim (NPZ raw, JSON deflated), so
    :func:`unpack_cache` reproduces the original files byte-identically.
    With ``prune``, the loose pairs are removed *after* the sealed pack
    has been re-opened and every entry's checksum re-verified against
    it — the pack then serves the whole corpus by itself.
    """
    root = Path(root)
    if not root.is_dir():
        raise ValueError(
            f"{root} is not a cache directory; point `repro pack` at a "
            "--cache-dir previously filled by `repro sweep`"
        )
    out = Path(out) if out is not None else root / PACK_NAME
    keys = sorted(_complete_keys_static(root))
    with PackWriter.create(out) as writer:
        for key in keys:
            writer.add(
                f"{key}.npz", "npz",
                (root / f"{key}.npz").read_bytes(),
            )
            writer.add(
                f"{key}.json", "json",
                (root / f"{key}.json").read_bytes(),
                compress=True,
            )
    if prune:
        with Pack.open(out) as pack:
            for key in keys:
                pack.read(f"{key}.npz")   # checksum re-verified
                pack.read(f"{key}.json")
        for key in keys:
            for path in (root / f"{key}.npz", root / f"{key}.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
    return len(keys), out


def _complete_keys_static(root: Path) -> Set[str]:
    npz_stems: Set[str] = set()
    json_stems: Set[str] = set()
    with os.scandir(root) as it:
        for entry in it:
            name = entry.name
            if name.endswith(".npz"):
                npz_stems.add(name[:-4])
            elif name.endswith(".json"):
                json_stems.add(name[:-5])
    return npz_stems & json_stems


def unpack_cache(pack_path, out_dir) -> int:
    """Write every ``npz``/``json`` entry of a pack back out as loose
    files (byte-identical to what :func:`pack_cache_dir` read); returns
    the number of files written."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    with Pack.open(pack_path) as pack:
        for key in pack.keys():
            entry = pack.entry(key)
            if entry.kind not in ("npz", "json"):
                continue
            _atomic_write_bytes(
                out_dir / key, bytes(pack.read(key))
            )
            written += 1
    return written

"""Crash-safe run journal + per-chunk table shards for resumable sweeps.

A journalled sweep (``run_sweep(..., run_dir=...)``) leaves a run
directory that survives any kind of death — worker crash, parent
``kill -9``, Ctrl-C — in a state a later ``repro sweep --resume
<run-dir>`` can pick up without redoing completed work::

    <run-dir>/
      journal.jsonl          append-only event log (one JSON per line)
      shards/chunk-000042.npz  atomic per-chunk SweepTable shards
      shards.rpak            pack-backed shards (``shard_store="pack"``)

Records are appended with flush + fsync and shards are written
temp-file-then-``os.replace``, so at every instant the directory is a
consistent prefix of the run: a journalled chunk record implies its
shard is fully on disk.  A torn trailing line (the parent died
mid-append) is tolerated and ignored on load.

Shards live in one of two stores, pinned by the ``begin`` record (so
resume always reads the layout the run was started with; journals
written before the field existed default to the directory layout):

* ``"dir"`` (default) — one ``shards/chunk-NNNNNN.npz`` file per chunk.
* ``"pack"`` — all chunks appended into a single ``shards.rpak``
  (:mod:`repro.io.pack`): each chunk's :class:`SweepTable` becomes a
  ``chunk-NNNNNN/``-prefixed group of column-blob entries, committed
  with the pack's two-phase append before the chunk record is
  journalled.  Appends happen only in the parent process (the same
  place the journal itself is written), satisfying the pack's
  single-writer contract; retried chunks re-append idempotently.

The ``begin`` record pins the sweep *configuration fingerprint* —
content keys of every spec, device names, seed, precision, engine
flags — plus the chunk bounds.  Resume refuses a mismatched
configuration (:class:`~repro.pipeline.report.ResumeError`) and always
re-executes against the journalled bounds, so the merged table is
byte-identical to an uninterrupted run regardless of the ``--jobs``
value used on either side of the interruption.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.table import SchemaVersionError, SweepTable
from ..io.pack import Pack, PackError, append_entries
from .cache import spec_key
from .report import ResumeError

__all__ = ["RunJournal", "sweep_config", "JOURNAL_VERSION", "SHARD_STORES"]

JOURNAL_VERSION = 1

# Recognised shard layouts (see module docstring).
SHARD_STORES = ("dir", "pack")


def sweep_config(dataset, devices, best_only, formats, seed, precision,
                 batch, fused) -> dict:
    """The configuration fingerprint journalled with a run.

    Everything that changes the merged table is in here (specs via their
    content keys, devices, seed, precision, engine mode); everything
    proven not to (jobs, cache state, dispatch mode) is not, so a run
    can be resumed with different parallelism on a different machine.
    """
    digest = hashlib.sha256()
    for spec in dataset.specs:
        digest.update(spec_key(spec, dataset.max_nnz).encode())
        digest.update(b"\n")
    return {
        "n_specs": len(dataset),
        "dataset_name": dataset.name,
        "max_nnz": int(dataset.max_nnz),
        "dataset_sha": digest.hexdigest()[:32],
        "devices": [d.name for d in devices],
        "best_only": bool(best_only),
        "formats": list(formats) if formats else None,
        "seed": int(seed),
        "precision": precision,
        "batch": bool(batch),
        "fused": bool(fused),
    }


class RunJournal:
    """Append-only journal + shard store for one sweep run."""

    def __init__(self, run_dir, shard_store: str = "dir"):
        if shard_store not in SHARD_STORES:
            raise ValueError(
                f"unknown shard store {shard_store!r}; "
                f"choose one of {SHARD_STORES}"
            )
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / "journal.jsonl"
        self.shards_dir = self.run_dir / "shards"
        self.shard_store = shard_store
        self.config: dict = {}
        self.bounds: List[Tuple[int, int]] = []
        # chunk id -> shard file name / pack prefix (last record wins)
        self._chunks: Dict[int, str] = {}
        self.ended: Optional[str] = None

    @property
    def pack_path(self) -> Path:
        return self.run_dir / "shards.rpak"

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def create(cls, run_dir, config: dict,
               bounds: Sequence[Tuple[int, int]],
               shard_store: str = "dir") -> "RunJournal":
        """Start a fresh journal; refuses a directory that already holds
        one (resume it or pick a new directory — never silently clobber
        hours of completed shards)."""
        journal = cls(run_dir, shard_store=shard_store)
        if journal.path.exists():
            raise ResumeError(
                f"{journal.path} already exists; resume it with "
                f"--resume {journal.run_dir} or choose a fresh --run-dir"
            )
        journal.run_dir.mkdir(parents=True, exist_ok=True)
        if shard_store == "dir":
            journal.shards_dir.mkdir(exist_ok=True)
        journal.config = dict(config)
        journal.bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        # ``shards`` is a top-level begin field, NOT a config key:
        # check_config compares every config key both ways, and the shard
        # layout is storage, not sweep configuration — a pack-backed run
        # must stay resumable against the same sweep flags.
        journal._append({
            "event": "begin",
            "version": JOURNAL_VERSION,
            "shards": shard_store,
            "config": journal.config,
            "bounds": [[lo, hi] for lo, hi in journal.bounds],
        })
        return journal

    @classmethod
    def load(cls, run_dir) -> "RunJournal":
        """Read a journal back, tolerating a torn trailing line."""
        journal = cls(run_dir)
        if not journal.path.exists():
            raise ResumeError(
                f"no journal at {journal.path}; nothing to resume"
            )
        lines = journal.path.read_bytes().splitlines()
        records = []
        for i, raw in enumerate(lines):
            try:
                records.append(json.loads(raw))
            except ValueError:
                if i == len(lines) - 1:
                    break  # torn tail: the parent died mid-append
                raise ResumeError(
                    f"{journal.path} is corrupt at line {i + 1} "
                    "(not valid JSON and not the trailing record)"
                )
        if not records or records[0].get("event") != "begin":
            raise ResumeError(
                f"{journal.path} has no begin record; the run directory "
                "was never initialised — start a fresh run"
            )
        begin = records[0]
        if begin.get("version") != JOURNAL_VERSION:
            raise ResumeError(
                f"{journal.path} was written by journal version "
                f"{begin.get('version')}; this build reads version "
                f"{JOURNAL_VERSION}"
            )
        store = begin.get("shards", "dir")
        if store not in SHARD_STORES:
            raise ResumeError(
                f"{journal.path} uses unknown shard store {store!r}; "
                f"this build reads {SHARD_STORES}"
            )
        journal.shard_store = store
        journal.config = begin["config"]
        journal.bounds = [
            (int(lo), int(hi)) for lo, hi in begin["bounds"]
        ]
        for rec in records[1:]:
            if rec.get("event") == "chunk":
                journal._chunks[int(rec["chunk"])] = rec["shard"]
            elif rec.get("event") == "end":
                journal.ended = rec.get("status")
        return journal

    def check_config(self, config: dict) -> None:
        """Raise :class:`ResumeError` naming every differing key."""
        mismatched = sorted(
            key for key in set(self.config) | set(config)
            if self.config.get(key) != config.get(key)
        )
        if mismatched:
            detail = "; ".join(
                f"{key}: journal={self.config.get(key)!r} "
                f"requested={config.get(key)!r}" for key in mismatched
            )
            raise ResumeError(
                f"cannot resume {self.run_dir}: the journalled sweep "
                f"configuration differs ({detail}); rerun with the "
                "original flags or start a fresh --run-dir"
            )

    # -- record appends --------------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def record_chunk(self, chunk_id: int, lo: int, hi: int,
                     attempt: int) -> None:
        self._chunks[chunk_id] = self._shard_name(chunk_id)
        self._append({
            "event": "chunk", "chunk": int(chunk_id),
            "lo": int(lo), "hi": int(hi), "attempt": int(attempt),
            "shard": self._shard_name(chunk_id),
        })

    def record_end(self, status: str) -> None:
        self.ended = status
        self._append({"event": "end", "status": status})

    # -- shards ----------------------------------------------------------
    def _shard_name(self, chunk_id: int) -> str:
        if self.shard_store == "pack":
            return self._pack_prefix(chunk_id)
        return f"chunk-{chunk_id:06d}.npz"

    @staticmethod
    def _pack_prefix(chunk_id: int) -> str:
        return f"chunk-{chunk_id:06d}/"

    def shard_path(self, chunk_id: int) -> Path:
        return self.shards_dir / f"chunk-{chunk_id:06d}.npz"

    def write_shard(self, chunk_id: int, table: SweepTable) -> None:
        """Atomic shard write.

        Directory store: temp file in the shards dir, then
        ``os.replace`` — a reader (or a resume after a kill) only ever
        sees absent or complete shards.  Pack store: the chunk's column
        blobs go through the pack's two-phase append (blobs + new entry
        table written past EOF and fsynced before the header commits),
        so a kill mid-append leaves the previous pack state intact.
        Either way the chunk record is journalled only after this
        returns, preserving "record implies complete shard".
        """
        if self.shard_store == "pack":
            prefix = self._pack_prefix(chunk_id)
            blobs = table.to_blobs(prefix=prefix)
            append_entries(
                self.pack_path,
                [(key, "meta" if key.endswith("__meta__") else "col",
                  blob)
                 for key, blob in sorted(blobs.items())],
            )
            return
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        path = self.shard_path(chunk_id)
        fd, tmp = tempfile.mkstemp(
            dir=self.shards_dir, prefix=f".{path.name}."
        )
        os.close(fd)
        try:
            table.to_npz(tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_shard(self, chunk_id: int) -> SweepTable:
        if self.shard_store == "pack":
            with Pack.open(self.pack_path) as pack:
                return self._shard_from_pack(pack, chunk_id)
        return SweepTable.from_npz(self.shard_path(chunk_id))

    def _shard_from_pack(self, pack: Pack, chunk_id: int) -> SweepTable:
        prefix = self._pack_prefix(chunk_id)
        blobs = {
            key: pack.read(key)
            for key in pack.keys() if key.startswith(prefix)
        }
        return SweepTable.from_blobs(blobs, prefix=prefix)

    def completed_chunks(self) -> Dict[int, SweepTable]:
        """Journalled chunks whose shards load cleanly.

        A journal record normally implies a complete shard (records are
        appended only after the atomic shard write), but resume stays
        defensive: an unreadable or missing shard — or, for the pack
        store, a chunk whose entries fail their checksums — just means
        that chunk re-executes.  Re-doing work is always safe, trusting
        a damaged shard never is.  An unreadable pack file means every
        chunk re-executes (the journal itself is still intact).
        """
        loaded: Dict[int, SweepTable] = {}
        if self.shard_store == "pack":
            try:
                pack = Pack.open(self.pack_path)
            except (PackError, OSError):
                return loaded
            with pack:
                for chunk_id in sorted(self._chunks):
                    try:
                        loaded[chunk_id] = self._shard_from_pack(
                            pack, chunk_id
                        )
                    except (PackError, SchemaVersionError, OSError,
                            ValueError, KeyError):
                        continue
            return loaded
        for chunk_id in sorted(self._chunks):
            try:
                loaded[chunk_id] = self.load_shard(chunk_id)
            except (OSError, ValueError):
                continue
        return loaded

"""Sweep execution pipeline: sharding, persistence, caching, resilience.

The pipeline industrialises the dataset sweep that every figure/table
bench and the CLI run: :func:`run_sweep` partitions specs into chunks,
executes them serially or across a self-healing worker crew (per-chunk
deadlines, capped-backoff retries, pool-death detection, in-process
degradation), and merges results deterministically;
:class:`InstanceCache` content-keys each
:class:`~repro.core.generator.MatrixSpec` and persists materialised
instances (CSR arrays, features, row profiles, per-format statistics)
so warm sweeps skip generation entirely — quarantining, never trusting,
corrupt entries.  :class:`RunJournal` makes long sweeps resumable
(``repro sweep --resume``), :class:`FaultPlan` injects deterministic
chaos for the resilience suites, and :class:`RunReport` accounts every
incident for ``repro sweep --health-json``.
"""

from .cache import CACHE_VERSION, InstanceCache, spec_key
from .engine import resolve_jobs, run_sweep
from .faults import Fault, FaultPlan, InjectedFaultError, corrupt_file
from .journal import RunJournal, sweep_config
from .report import (
    ChunkFailedError,
    ChunkTimeoutError,
    ResumeError,
    RunReport,
    SweepError,
    WorkerCrashError,
)

__all__ = [
    "CACHE_VERSION",
    "InstanceCache",
    "spec_key",
    "resolve_jobs",
    "run_sweep",
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "corrupt_file",
    "RunJournal",
    "sweep_config",
    "RunReport",
    "SweepError",
    "WorkerCrashError",
    "ChunkTimeoutError",
    "ChunkFailedError",
    "ResumeError",
]

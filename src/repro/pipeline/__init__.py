"""Sweep execution pipeline: sharding, persistence, instance caching.

The pipeline industrialises the dataset sweep that every figure/table
bench and the CLI run: :func:`run_sweep` partitions specs into chunks,
executes them serially or across a process pool, and merges results
deterministically; :class:`InstanceCache` content-keys each
:class:`~repro.core.generator.MatrixSpec` and persists materialised
instances (CSR arrays, features, row profiles, per-format statistics) so
warm sweeps skip generation entirely.
"""

from .cache import CACHE_VERSION, InstanceCache, spec_key
from .engine import resolve_jobs, run_sweep

__all__ = [
    "CACHE_VERSION",
    "InstanceCache",
    "spec_key",
    "resolve_jobs",
    "run_sweep",
]

"""Columnar experiment results: per-fold reports + aggregate tables.

An :class:`ExperimentResult` is the runner's output: the spec manifest,
one :class:`FoldResult` per (device, fold) with the selector's
:class:`~repro.ml.selector.SelectionReport` and per-instance choice
detail, and aggregation helpers that render Table-IV-style summaries,
win rates and oracle-vs-chosen confusion tables through the
:mod:`repro.analysis` layer.

Serialisation is deterministic: ``to_json`` sorts keys and the fold
order is fixed by the runner, so the same spec always produces
byte-identical JSON (the golden regression suite pins this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis import confusion_table, format_table
from .spec import ExperimentSpec

__all__ = ["FoldResult", "ExperimentResult"]


@dataclass(frozen=True)
class FoldResult:
    """One evaluated fold: which slice was held out and how it scored.

    ``report`` is None for folds that could not run (e.g. a
    leave-one-device-out fold whose source devices share no format with
    the held-out device); ``note`` then says why.
    """

    device: str
    fold: str
    n_train: int
    n_test: int
    report: Optional[dict] = None
    choices: List[dict] = field(default_factory=list)
    note: str = ""

    @property
    def scored(self) -> bool:
        return self.report is not None

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "fold": self.fold,
            "n_train": self.n_train,
            "n_test": self.n_test,
            "report": dict(self.report) if self.report else None,
            "choices": list(self.choices),
            "note": self.note,
        }


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    spec: ExperimentSpec
    folds: List[FoldResult]
    n_instances: int
    n_rows: int

    # ------------------------------------------------------------------
    def scored_folds(self) -> List[FoldResult]:
        return [f for f in self.folds if f.scored]

    def summary(self) -> Dict[str, dict]:
        """Per-device aggregates over scored folds (plus ``overall``).

        ``mean_*`` average the per-fold report fields;
        ``worst_retained`` is the minimum over folds — the paper's
        guarantee-style number.
        """
        def aggregate(reports: List[dict]) -> dict:
            return {
                "n_folds": len(reports),
                "top1_accuracy": float(
                    np.mean([r["top1_accuracy"] for r in reports])
                ),
                "mean_retained": float(
                    np.mean([r["mean_retained"] for r in reports])
                ),
                "worst_retained": float(
                    np.min([r["worst_retained"] for r in reports])
                ),
                "n_matrices": int(
                    np.sum([r["n_matrices"] for r in reports])
                ),
            }

        groups: Dict[str, List[dict]] = {}
        for f in self.scored_folds():
            groups.setdefault(f.device, []).append(f.report)
        out = {
            device: aggregate(reports)
            for device, reports in sorted(groups.items())
        }
        all_reports = [r for reports in groups.values() for r in reports]
        if all_reports:
            out["overall"] = aggregate(all_reports)
        return out

    def confusion(self, device: Optional[str] = None) -> dict:
        """Oracle-vs-chosen counts, pooled or for one device."""
        pairs = [
            (c["oracle"], c["chosen"])
            for f in self.scored_folds()
            if device is None or f.device == device
            for c in f.choices
        ]
        return confusion_table(pairs)

    def win_rates(self, device: Optional[str] = None) -> Dict[str, dict]:
        """Per-format oracle wins vs selector picks (percent)."""
        oracle: Dict[str, int] = {}
        chosen: Dict[str, int] = {}
        total = 0
        for f in self.scored_folds():
            if device is not None and f.device != device:
                continue
            for c in f.choices:
                oracle[c["oracle"]] = oracle.get(c["oracle"], 0) + 1
                chosen[c["chosen"]] = chosen.get(c["chosen"], 0) + 1
                total += 1
        if not total:
            return {}
        return {
            fmt: {
                "oracle_pct": 100.0 * oracle.get(fmt, 0) / total,
                "selected_pct": 100.0 * chosen.get(fmt, 0) / total,
            }
            for fmt in sorted(set(oracle) | set(chosen))
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": 1,
            "spec": self.spec.to_dict(),
            "n_instances": self.n_instances,
            "n_rows": self.n_rows,
            "folds": [f.to_dict() for f in self.folds],
            "summary": self.summary(),
            "confusion": self.confusion(),
            "win_rates": self.win_rates(),
        }

    def to_json(self) -> str:
        """Deterministic JSON: same spec -> byte-identical text."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_rows(self) -> List[dict]:
        """Flat per-fold rows (CSV export schema)."""
        rows = []
        for f in self.folds:
            row = {
                "device": f.device,
                "fold": f.fold,
                "n_train": f.n_train,
                "n_test": f.n_test,
                "note": f.note,
            }
            if f.scored:
                row.update(
                    top1_accuracy=f.report["top1_accuracy"],
                    mean_retained=f.report["mean_retained"],
                    worst_retained=f.report["worst_retained"],
                    n_matrices=f.report["n_matrices"],
                )
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable report (per-fold table + device summary)."""
        fold_rows = []
        for f in self.folds:
            if f.scored:
                fold_rows.append([
                    f.device, f.fold, f.n_test,
                    round(f.report["top1_accuracy"], 3),
                    round(f.report["mean_retained"], 3),
                    round(f.report["worst_retained"], 3),
                    "",
                ])
            else:
                fold_rows.append(
                    [f.device, f.fold, f.n_test, "-", "-", "-",
                     f.note or "skipped"]
                )
        spec = self.spec
        title = (
            f"{spec.protocol} selector experiment — scale={spec.scale}, "
            f"model={spec.model}, precision={spec.precision}, "
            f"seed={spec.seed}"
        )
        parts = [format_table(
            ["device", "fold", "held-out", "top-1 acc", "mean retained",
             "worst retained", "note"],
            fold_rows, title=title,
        )]
        summary_rows = [
            [name, s["n_folds"], s["n_matrices"],
             round(s["top1_accuracy"], 3), round(s["mean_retained"], 3),
             round(s["worst_retained"], 3)]
            for name, s in self.summary().items()
        ]
        if summary_rows:
            parts.append(format_table(
                ["device", "folds", "matrices", "top-1 acc",
                 "mean retained", "worst retained"],
                summary_rows, title="Summary",
            ))
        return "\n".join(parts)

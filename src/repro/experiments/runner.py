"""Experiment execution: sweep -> split -> train -> evaluate.

:func:`run_experiment` is the end-to-end driver behind ``repro
experiment``: it sweeps the artificial dataset through the batched
pipeline (one per-format measurement row per grid cell), builds the
protocol's deterministic folds, trains one
:class:`~repro.ml.FormatSelector` per fold and evaluates it batched on
the held-out slice.  Everything downstream of the sweep is pure
book-keeping, so the result is a deterministic function of the spec:
same seed, byte-identical result JSON — across ``jobs`` counts, cache
states and batch modes (the sweep engines are row-identical by
construction).

Protocols
---------
``kfold``
    Per device: instances are split into ``n_splits`` seeded folds; each
    fold trains on the other folds' rows and evaluates on its own.  This
    is the paper's per-device evaluation protocol.
``lodo``
    Leave-one-device-out transfer: for each held-out device, training
    rows are pooled from the *other* devices — restricted to the
    held-out device's candidate formats, per-(matrix, format) GFLOPS
    averaged across source devices — and evaluated on the held-out
    device's own rows.  Folds whose sources share no format with the
    held-out device (e.g. the FPGA's VSL) are recorded as skipped.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..core.dataset import Dataset, SweepTable, sweep
from ..core.feature_space import build_dataset_specs
from ..devices import get_device
from ..ml.selector import FormatSelector
from .report import ExperimentResult, FoldResult
from .spec import ExperimentSpec
from .splits import kfold_splits, leave_one_device_out

__all__ = ["run_experiment"]

# Row keys that are per-measurement, not per-matrix: stripped when
# pooling rows across source devices for the lodo protocol.
_MEASUREMENT_ONLY = ("device", "format", "gflops", "watts",
                     "gflops_per_watt", "bottleneck")


def _as_table(table) -> SweepTable:
    """Lift dict rows into a table (synthetic fixtures, legacy callers)."""
    if isinstance(table, SweepTable):
        return table
    return SweepTable.from_rows(list(table))


def _kfold_folds(
    spec: ExperimentSpec, table: SweepTable, devices
) -> List[FoldResult]:
    table = _as_table(table)
    folds: List[FoldResult] = []
    for dev in devices:
        dev_table = table.where(device=dev.name)
        if len(dev_table) == 0:
            folds.append(FoldResult(
                device=dev.name, fold="fold0", n_train=0, n_test=0,
                note=f"no measurable matrices on {dev.name}",
            ))
            continue
        keys = dev_table.unique("matrix")
        if len(keys) < spec.n_splits:
            # Capacity skips can leave a device with fewer measurable
            # matrices than folds.  The sweep has already run, so record
            # a skipped fold with the reason instead of discarding every
            # other device's results.  (Statically doomed fold counts —
            # n_splits > len(dataset) or > limit — are rejected before
            # the sweep.)
            folds.append(FoldResult(
                device=dev.name, fold="fold0", n_train=0,
                n_test=len(keys),
                note=(
                    f"only {len(keys)} measurable matrices for "
                    f"n_splits={spec.n_splits}; lower --folds or raise "
                    "--limit/--scale"
                ),
            ))
            continue
        for fi, fold in enumerate(
            kfold_splits(keys, spec.n_splits, spec.seed)
        ):
            train = dev_table.where_in("matrix", fold.train)
            test = dev_table.where_in("matrix", fold.test)
            selector = FormatSelector(
                spec.candidate_formats(dev),
                feature_keys=spec.feature_keys,
                model_factory=spec.model_factory(),
            ).fit(train)
            report = selector.evaluate(test, detail=True)
            choices = report.pop("choices")
            folds.append(FoldResult(
                device=dev.name, fold=f"fold{fi}",
                n_train=len(fold.train), n_test=len(fold.test),
                report=dict(report), choices=choices,
            ))
    return folds


def _pooled_training_rows(rows, held_out: str, candidates) -> List[dict]:
    """Source-device rows pooled per (matrix, format) for lodo.

    Feature columns are per-matrix (identical across a matrix's rows on
    every device), so any row of the matrix provides them; the pooled
    target is the mean GFLOPS across source devices, and the ``device``
    coordinate is dropped — the pooled table is device-less by design.
    """
    feats: dict = {}
    perf: dict = {}
    for r in rows:
        if r["device"] == held_out or r["format"] not in candidates:
            continue
        key = r["matrix"]
        feats.setdefault(key, r)
        perf.setdefault(key, {}).setdefault(r["format"], []).append(
            r["gflops"]
        )
    pooled: List[dict] = []
    for key, by_format in perf.items():
        base = {
            k: v for k, v in feats[key].items()
            if k not in _MEASUREMENT_ONLY
        }
        for fmt, gflops in by_format.items():
            pooled.append(
                {**base, "format": fmt, "gflops": float(np.mean(gflops))}
            )
    return pooled


def _lodo_folds(
    spec: ExperimentSpec, table: SweepTable, devices
) -> List[FoldResult]:
    table = _as_table(table)
    # Pooling averages per (matrix, format) across source devices — a
    # synthetic, device-less table, built through the dict shim (it is
    # tiny: one row per matrix and candidate format).  The held-out
    # evaluation slice stays a zero-copy-category table slice.
    rows = table.rows
    folds: List[FoldResult] = []
    for fold in leave_one_device_out([d.name for d in devices]):
        held_out = fold.test[0]
        held_dev = get_device(held_out)
        candidates = spec.candidate_formats(held_dev)
        train = _pooled_training_rows(rows, held_out, set(candidates))
        test = table.where(device=held_out)
        n_train = len({r["matrix"] for r in train})
        n_test = len(test.unique("matrix"))
        if not train or not len(test):
            if not train:
                has_source = any(
                    r["device"] != held_out for r in rows
                )
                why = (
                    f"no source-device rows carry any of {held_out}'s "
                    f"candidate formats" if has_source
                    else "source devices produced no measurable rows"
                )
            else:
                why = f"no measurable matrices on {held_out}"
            folds.append(FoldResult(
                device=held_out, fold=held_out, n_train=n_train,
                n_test=n_test, note=why,
            ))
            continue
        selector = FormatSelector(
            candidates,
            feature_keys=spec.feature_keys,
            model_factory=spec.model_factory(),
        ).fit(train)
        report = selector.evaluate(test, detail=True)
        choices = report.pop("choices")
        folds.append(FoldResult(
            device=held_out, fold=held_out, n_train=n_train,
            n_test=n_test, report=dict(report), choices=choices,
        ))
    return folds


def run_experiment(
    spec: ExperimentSpec,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    batch: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    table: Optional[SweepTable] = None,
) -> ExperimentResult:
    """Run one cross-validated selector experiment end-to-end.

    ``jobs``/``cache_dir``/``batch`` tune the sweep engine only — they
    never change the result (row-identical engines, bit-identical
    batched selector scoring).  ``progress`` receives the sweep's
    (done, total) callbacks.

    ``table`` skips the sweep entirely and runs the protocol over a
    saved :class:`~repro.core.table.SweepTable` (``repro experiment
    --table``): it must be a ``best_only=False`` sweep at the spec's
    precision, and a table that matches what the spec would have swept
    reproduces the swept result byte for byte.
    """
    spec.validate()
    devices = [get_device(name) for name in spec.device_names]
    if table is not None:
        _check_saved_table(spec, table)
        n_instances = len(table.unique("matrix"))
    else:
        dataset_specs = build_dataset_specs(spec.scale)
        if spec.limit is not None:
            dataset_specs = dataset_specs[:spec.limit]
        dataset = Dataset(
            dataset_specs, max_nnz=spec.max_nnz, name=spec.scale
        )
        n_instances = len(dataset)
    if spec.protocol == "kfold" and n_instances < spec.n_splits:
        # The instance count upper-bounds the measurable matrices per
        # device; reject a statically doomed fold count before the
        # sweep runs (or before the saved table is sliced).
        raise ValueError(
            f"dataset has {n_instances} instances for "
            f"n_splits={spec.n_splits}; lower --folds or raise "
            "--limit/--scale"
        )
    if table is None:
        table = sweep(
            dataset, devices, best_only=False,
            formats=list(spec.formats) if spec.formats else None,
            seed=spec.seed, jobs=jobs, cache_dir=cache_dir, batch=batch,
            precision=spec.precision, progress=progress,
        )
    if spec.protocol == "kfold":
        folds = _kfold_folds(spec, table, devices)
    else:
        folds = _lodo_folds(spec, table, devices)
    return ExperimentResult(
        spec=spec, folds=folds, n_instances=n_instances,
        n_rows=len(table),
    )


def _check_saved_table(spec: ExperimentSpec, table: SweepTable) -> None:
    """Fail fast, actionably, when a saved table cannot back the spec."""
    for column in ("matrix", "device", "format", "gflops"):
        if column not in table.names:
            raise ValueError(
                f"saved table has no {column!r} column (columns: "
                f"{table.names}); pass a measurement table written by "
                "`repro sweep --out table.npz`"
            )
    if "precision" in table.names:
        precisions = table.unique("precision")
        if precisions and precisions != [spec.precision]:
            raise ValueError(
                f"saved table was swept at precision "
                f"{', '.join(precisions)} but the experiment asks for "
                f"{spec.precision}; re-sweep at {spec.precision} or "
                "drop the mismatched flag"
            )
    if len(table) and len(table.categories("format")) > 1:
        g, _ = table.group_index("matrix")
        d, _ = table.group_index("device")
        n_dev = int(d.max()) + 1
        per_pair = np.bincount(g * n_dev + d)
        if per_pair[per_pair > 0].max() == 1:
            raise ValueError(
                "saved table looks like a best-only sweep (one row per "
                "matrix and device, several formats overall); the "
                "experiment protocols train on per-format rows — "
                "re-run `repro sweep --all-formats --out ...`"
            )

"""Declarative experiment manifests.

An :class:`ExperimentSpec` pins every input of a paper-style selector
evaluation — dataset, devices, candidate formats, model family, CV
protocol, seed — as one JSON-serialisable value object.  Two runs of the
same spec produce byte-identical result JSON (the acceptance property
the end-to-end suite locks down), so a manifest fully identifies its
result.

See ``docs/experiments.md`` for the manifest schema.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Optional, Tuple

from ..core.feature_space import DATASET_PRESETS
from ..devices import TESTBEDS
from ..formats.base import FORMAT_REGISTRY
from ..ml.forest import RandomForestRegressor
from ..ml.knn import KNeighborsRegressor
from ..ml.linear import RidgeRegression
from ..ml.selector import MINIMAL_FEATURES
from ..perfmodel.simulator import PRECISIONS

__all__ = ["ExperimentSpec", "MODEL_FAMILIES", "PROTOCOLS", "SCALES"]

SCALES = tuple(DATASET_PRESETS)  # the core presets are the registry
PROTOCOLS = ("kfold", "lodo")

# Model families the runner can instantiate.  Factories take the spec
# seed so reseeding an experiment reseeds its models too (bagging draws),
# while two runs of one spec stay identical.
MODEL_FAMILIES = {
    "forest": lambda seed: RandomForestRegressor(
        n_estimators=25, random_state=seed
    ),
    "knn": lambda seed: KNeighborsRegressor(
        n_neighbors=5, weights="distance"
    ),
    "linear": lambda seed: RidgeRegression(alpha=1.0),
}


@dataclass(frozen=True)
class ExperimentSpec:
    """Inputs of one cross-validated selector experiment.

    ``devices=()`` means all nine testbeds; ``formats=None`` keeps each
    device's Table-II list.  ``limit`` truncates the dataset to its first
    N specs (smoke runs).  ``protocol`` is ``"kfold"`` (instances split
    into ``n_splits`` seeded folds, one selector per device per fold) or
    ``"lodo"`` (leave-one-device-out transfer: train on the other
    devices' pooled rows, evaluate on the held-out device).
    """

    scale: str = "tiny"
    devices: Tuple[str, ...] = ()
    formats: Optional[Tuple[str, ...]] = None
    precision: str = "fp64"
    max_nnz: int = 80_000
    limit: Optional[int] = None
    protocol: str = "kfold"
    n_splits: int = 5
    seed: int = 0
    model: str = "forest"
    feature_keys: Tuple[str, ...] = tuple(MINIMAL_FEATURES)

    def __post_init__(self):
        # Normalise list inputs (JSON round-trips produce lists).
        for name in ("devices", "feature_keys"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if self.formats is not None:
            object.__setattr__(self, "formats", tuple(self.formats))
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` with an actionable message on bad input."""
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; available: {list(SCALES)}"
            )
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"available: {list(PROTOCOLS)}"
            )
        if self.model not in MODEL_FAMILIES:
            raise ValueError(
                f"unknown model {self.model!r}; "
                f"available: {sorted(MODEL_FAMILIES)}"
            )
        if self.precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {self.precision!r}; "
                f"available: {sorted(PRECISIONS)}"
            )
        for dev in self.devices:
            if dev not in TESTBEDS:
                raise ValueError(
                    f"unknown device {dev!r}; "
                    f"available: {sorted(TESTBEDS)}"
                )
        if len(set(self.devices)) != len(self.devices):
            # A duplicated device would silently double-sweep and
            # double-count its folds in the summary.
            raise ValueError(
                f"duplicate devices in {list(self.devices)}"
            )
        for fmt in self.formats or ():
            if fmt not in FORMAT_REGISTRY:
                raise ValueError(
                    f"unknown format {fmt!r}; "
                    f"available: {sorted(FORMAT_REGISTRY)}"
                )
        if self.formats is not None and \
                len(set(self.formats)) != len(self.formats):
            raise ValueError(
                f"duplicate formats in {list(self.formats)}"
            )
        if self.protocol == "kfold" and self.n_splits < 2:
            raise ValueError("n_splits must be >= 2 for k-fold CV")
        if (self.protocol == "kfold" and self.limit is not None
                and self.limit < self.n_splits):
            # Statically doomed: no device can ever see more instances
            # than ``limit`` — reject before the sweep, not after it.
            raise ValueError(
                f"limit={self.limit} provides fewer instances than "
                f"n_splits={self.n_splits}; lower --folds or raise "
                "--limit"
            )
        if self.protocol == "lodo" and len(self.device_names) < 2:
            raise ValueError(
                "leave-one-device-out needs at least two devices"
            )
        if self.max_nnz < 1:
            raise ValueError("max_nnz must be >= 1")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1 (or omitted)")
        if not self.feature_keys:
            raise ValueError("need at least one feature key")

    # ------------------------------------------------------------------
    @property
    def device_names(self) -> Tuple[str, ...]:
        """Resolved device list (``()`` expands to all testbeds)."""
        return self.devices or tuple(TESTBEDS)

    def model_factory(self):
        """Zero-argument factory for this spec's regressor family."""
        family, seed = MODEL_FAMILIES[self.model], self.seed
        return lambda: family(seed)

    def candidate_formats(self, device) -> Tuple[str, ...]:
        """Candidate formats on one device (explicit list or Table-II)."""
        return tuple(self.formats) if self.formats else tuple(device.formats)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = asdict(self)
        out["formats"] = list(self.formats) if self.formats else None
        out["devices"] = list(self.devices)
        out["feature_keys"] = list(self.feature_keys)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown experiment spec keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**payload)

"""Deterministic cross-validation splits.

Both protocols return plain tuples of *keys* (matrix names or device
names), not indices, so folds stay meaningful across engines and cache
states.  Splits are pure functions of ``(keys, n_splits, seed)``:
seeded, order-normalised, and — the property suite's invariant — the
test folds partition the key set (pairwise disjoint and exhaustive).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Fold", "kfold_splits", "leave_one_device_out"]


class Fold(Tuple[Tuple[str, ...], Tuple[str, ...]]):
    """A (train_keys, test_keys) pair with named accessors."""

    def __new__(cls, train, test):
        return super().__new__(cls, (tuple(train), tuple(test)))

    @property
    def train(self) -> Tuple[str, ...]:
        return self[0]

    @property
    def test(self) -> Tuple[str, ...]:
        return self[1]


def kfold_splits(
    keys: Sequence[str], n_splits: int, seed: int = 0
) -> List[Fold]:
    """Shuffled k-fold partition of ``keys``.

    Keys are deduplicated preserving first appearance, then permuted by
    a ``default_rng(seed)`` draw over their *sorted* order — so the folds
    depend only on the key set and the seed, never on row order.
    """
    uniq = sorted(dict.fromkeys(keys))
    if not uniq:
        raise ValueError("no keys to split")
    if n_splits < 2 or n_splits > len(uniq):
        raise ValueError(
            f"need 2 <= n_splits <= {len(uniq)} keys, got "
            f"n_splits={n_splits}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(uniq))
    chunks = np.array_split(order, n_splits)
    folds = []
    for i in range(n_splits):
        test = tuple(uniq[j] for j in chunks[i])
        train = tuple(
            uniq[j] for c in range(n_splits) if c != i for j in chunks[c]
        )
        folds.append(Fold(train, test))
    return folds


def leave_one_device_out(
    devices: Sequence[str],
) -> List[Fold]:
    """One fold per device: train on the others, test on the held-out one.

    Order follows the input device list (already deterministic — specs
    normalise it), duplicates rejected.
    """
    devices = list(devices)
    if len(set(devices)) != len(devices):
        raise ValueError(f"duplicate devices in {devices}")
    if len(devices) < 2:
        raise ValueError("leave-one-device-out needs at least two devices")
    return [
        Fold([d for d in devices if d != held_out], [held_out])
        for held_out in devices
    ]

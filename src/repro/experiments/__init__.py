"""Reproducible selector experiments: spec -> sweep -> CV -> report."""
from .spec import ExperimentSpec, MODEL_FAMILIES, PROTOCOLS, SCALES
from .splits import Fold, kfold_splits, leave_one_device_out
from .runner import run_experiment
from .report import ExperimentResult, FoldResult

"""Regression metrics and data-splitting utilities."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["mape_score", "rmse", "r2_score", "train_test_split", "kfold"]


def mape_score(y_true, y_pred) -> float:
    """Mean absolute percentage error (percent), ignoring zero targets."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    mask = y_true != 0
    if not mask.any():
        return 0.0
    return float(
        100.0
        * np.mean(np.abs(y_pred[mask] - y_true[mask]) / np.abs(y_true[mask]))
    )


def rmse(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 0 for a constant-target degenerate."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0:
        return 0.0
    ss_res = float(((y_true - y_pred) ** 2).sum())
    return 1.0 - ss_res / ss_tot


def train_test_split(
    X, y, test_fraction: float = 0.25, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, X_test, y_train, y_test)."""
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("length mismatch")
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(y))
    n_test = max(1, int(round(test_fraction * len(y))))
    test, train = order[:n_test], order[n_test:]
    return X[train], X[test], y[train], y[test]


def kfold(
    n_samples: int, n_splits: int = 5, seed: int = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) pairs for shuffled k-fold CV."""
    if n_splits < 2 or n_splits > n_samples:
        raise ValueError("need 2 <= n_splits <= n_samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_samples)
    folds = np.array_split(order, n_splits)
    for i in range(n_splits):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(n_splits) if j != i])
        yield train, test

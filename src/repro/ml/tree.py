"""CART regression tree (variance-reduction splits), vectorised.

The split search evaluates every candidate threshold of a feature in one
NumPy pass (prefix sums of sorted targets), giving an O(n log n) per-node
cost without Python inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(X, y, min_leaf):
    """Best (feature, threshold, sse) over all features, or None.

    For each feature, candidates are midpoints between consecutive distinct
    sorted values; split SSE is computed from prefix sums.
    """
    n, d = X.shape
    total = y.sum()
    total_sq = (y**2).sum()
    best = None  # (sse, feature, threshold)
    for j in range(d):
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        ys = y[order]
        csum = np.cumsum(ys)
        csum_sq = np.cumsum(ys**2)
        # split after position i (left = first i+1 points)
        k = np.arange(1, n)  # left sizes
        valid = (xs[1:] != xs[:-1]) & (k >= min_leaf) & (n - k >= min_leaf)
        if not valid.any():
            continue
        left_sum = csum[:-1]
        left_sq = csum_sq[:-1]
        right_sum = total - left_sum
        right_sq = total_sq - left_sq
        sse = (
            left_sq - left_sum**2 / k
            + right_sq - right_sum**2 / (n - k)
        )
        sse = np.where(valid, sse, np.inf)
        i = int(np.argmin(sse))
        if np.isfinite(sse[i]) and (best is None or sse[i] < best[0]):
            best = (float(sse[i]), j, float((xs[i] + xs[i + 1]) / 2.0))
    return best


class DecisionTreeRegressor:
    """Regression tree with depth / leaf-size / impurity stopping rules."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 3,
        min_impurity_decrease: float = 0.0,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self.n_features_: int = 0

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y) or len(y) == 0:
            raise ValueError("bad training shapes")
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self._root = self._grow(X, y, depth=0, rng=rng)
        return self

    def _grow(self, X, y, depth, rng) -> _Node:
        node = _Node(value=float(y.mean()))
        n = len(y)
        if (
            depth >= self.max_depth
            or n < 2 * self.min_samples_leaf
            or np.all(y == y[0])
        ):
            return node
        # Feature subsampling (used by the random forest).
        if self.max_features and self.max_features < X.shape[1]:
            feats = rng.choice(
                X.shape[1], size=self.max_features, replace=False
            )
        else:
            feats = np.arange(X.shape[1])
        found = _best_split(X[:, feats], y, self.min_samples_leaf)
        if found is None:
            return node
        sse, j_local, thr = found
        parent_sse = float(((y - y.mean()) ** 2).sum())
        if parent_sse - sse < self.min_impurity_decrease * max(n, 1):
            return node
        j = int(feats[j_local])
        mask = X[:, j] <= thr
        node.feature = j
        node.threshold = thr
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("bad predict shape")
        out = np.empty(len(X), dtype=np.float64)
        # Iterative routing, vectorised per node via index partitions.
        stack = [(self._root, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    def depth(self) -> int:
        """Realised depth of the fitted tree."""
        def _d(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        if self._root is None:
            raise RuntimeError("model not fitted")
        return _d(self._root)

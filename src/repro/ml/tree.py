"""CART regression tree (variance-reduction splits), vectorised.

The split search evaluates every candidate threshold of a feature in one
NumPy pass (prefix sums of sorted targets).  With ``presort`` (the
default) each feature is argsorted once per ``fit`` and the per-feature
sorted orders are *partitioned* down the recursion — an O(n) subset per
node instead of an O(n log n) re-sort, while producing bit-identical
trees to the re-sorting search (``presort=False``, kept as the
reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(X, y, min_leaf):
    """Best (feature, threshold, sse) over all features, or None.

    For each feature, candidates are midpoints between consecutive distinct
    sorted values; split SSE is computed from prefix sums.
    """
    n, d = X.shape
    total = y.sum()
    total_sq = (y**2).sum()
    best = None  # (sse, feature, threshold)
    for j in range(d):
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        ys = y[order]
        csum = np.cumsum(ys)
        csum_sq = np.cumsum(ys**2)
        # split after position i (left = first i+1 points)
        k = np.arange(1, n)  # left sizes
        valid = (xs[1:] != xs[:-1]) & (k >= min_leaf) & (n - k >= min_leaf)
        if not valid.any():
            continue
        left_sum = csum[:-1]
        left_sq = csum_sq[:-1]
        right_sum = total - left_sum
        right_sq = total_sq - left_sq
        sse = (
            left_sq - left_sum**2 / k
            + right_sq - right_sum**2 / (n - k)
        )
        sse = np.where(valid, sse, np.inf)
        i = int(np.argmin(sse))
        if np.isfinite(sse[i]) and (best is None or sse[i] < best[0]):
            best = (float(sse[i]), j, float((xs[i] + xs[i + 1]) / 2.0))
    return best


def _best_split_presorted(X, y, idx, sorted_idx, feats, min_leaf):
    """`_best_split` over a node given per-feature presorted row indices.

    ``idx`` holds the node's rows in original order (for the totals);
    ``sorted_idx[:, f]`` holds the same rows sorted by feature ``f``.
    Because stable argsorts and order-preserving partitions both sort by
    (value, original position), the per-feature orders — and hence every
    prefix sum, tie-break and threshold — match the re-sorting search
    bit for bit.
    """
    n = len(idx)
    y_node = y[idx]
    total = y_node.sum()
    total_sq = (y_node**2).sum()
    best = None  # (sse, local feature index, threshold)
    k = np.arange(1, n)  # left sizes
    for j_local, j in enumerate(feats):
        order = sorted_idx[:, j]
        xs = X[order, j]
        ys = y[order]
        csum = np.cumsum(ys)
        csum_sq = np.cumsum(ys**2)
        valid = (xs[1:] != xs[:-1]) & (k >= min_leaf) & (n - k >= min_leaf)
        if not valid.any():
            continue
        left_sum = csum[:-1]
        left_sq = csum_sq[:-1]
        right_sum = total - left_sum
        right_sq = total_sq - left_sq
        sse = (
            left_sq - left_sum**2 / k
            + right_sq - right_sum**2 / (n - k)
        )
        sse = np.where(valid, sse, np.inf)
        i = int(np.argmin(sse))
        if np.isfinite(sse[i]) and (best is None or sse[i] < best[0]):
            best = (float(sse[i]), j_local, float((xs[i] + xs[i + 1]) / 2.0))
    return best


class DecisionTreeRegressor:
    """Regression tree with depth / leaf-size / impurity stopping rules."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 3,
        min_impurity_decrease: float = 0.0,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
        presort: bool = True,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.random_state = random_state
        self.presort = presort
        self._root: Optional[_Node] = None
        self._flat: Optional[dict] = None
        self.n_features_: int = 0

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y) or len(y) == 0:
            raise ValueError("bad training shapes")
        self.n_features_ = X.shape[1]
        self._flat = None
        rng = np.random.default_rng(self.random_state)
        if self.presort:
            # One stable argsort per feature for the whole fit; nodes
            # partition these orders instead of re-sorting their subsets.
            sorted_idx = np.argsort(X, axis=0, kind="stable")
            self._root = self._grow_presorted(
                X, y, np.arange(len(y), dtype=np.int64), sorted_idx,
                depth=0, rng=rng,
            )
        else:
            self._root = self._grow(X, y, depth=0, rng=rng)
        return self

    def _choose_features(self, d, rng) -> np.ndarray:
        """Candidate features for one split (forest subsampling)."""
        if self.max_features and self.max_features < d:
            return rng.choice(d, size=self.max_features, replace=False)
        return np.arange(d)

    def _grow(self, X, y, depth, rng) -> _Node:
        node = _Node(value=float(y.mean()))
        n = len(y)
        if (
            depth >= self.max_depth
            or n < 2 * self.min_samples_leaf
            or np.all(y == y[0])
        ):
            return node
        feats = self._choose_features(X.shape[1], rng)
        found = _best_split(X[:, feats], y, self.min_samples_leaf)
        if found is None:
            return node
        sse, j_local, thr = found
        parent_sse = float(((y - y.mean()) ** 2).sum())
        if parent_sse - sse < self.min_impurity_decrease * max(n, 1):
            return node
        j = int(feats[j_local])
        mask = X[:, j] <= thr
        node.feature = j
        node.threshold = thr
        node.left = self._grow(X[mask], y[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, rng)
        return node

    def _grow_presorted(self, X, y, idx, sorted_idx, depth, rng) -> _Node:
        """`_grow` over row-index views of the full training arrays.

        ``idx`` is the node's rows in original order; ``sorted_idx`` its
        (n_node, d) per-feature sorted orders.  Every statistic is computed
        over exactly the arrays the copying path would build, in the same
        order, so the grown tree is identical bit for bit.
        """
        y_node = y[idx]
        node = _Node(value=float(y_node.mean()))
        n = len(idx)
        if (
            depth >= self.max_depth
            or n < 2 * self.min_samples_leaf
            or np.all(y_node == y_node[0])
        ):
            return node
        feats = self._choose_features(X.shape[1], rng)
        found = _best_split_presorted(
            X, y, idx, sorted_idx, feats, self.min_samples_leaf
        )
        if found is None:
            return node
        sse, j_local, thr = found
        parent_sse = float(((y_node - y_node.mean()) ** 2).sum())
        if parent_sse - sse < self.min_impurity_decrease * max(n, 1):
            return node
        j = int(feats[j_local])
        go_left = X[idx, j] <= thr
        idx_left, idx_right = idx[go_left], idx[~go_left]
        # Partition every feature's sorted order by left membership —
        # order-preserving, so children stay sorted without re-sorting.
        is_left = np.zeros(len(y), dtype=bool)
        is_left[idx_left] = True
        mask2d = is_left[sorted_idx]
        d = sorted_idx.shape[1]
        left_sorted = (
            sorted_idx.T[mask2d.T].reshape(d, len(idx_left)).T
        )
        right_sorted = (
            sorted_idx.T[~mask2d.T].reshape(d, len(idx_right)).T
        )
        node.feature = j
        node.threshold = thr
        node.left = self._grow_presorted(
            X, y, idx_left, left_sorted, depth + 1, rng
        )
        node.right = self._grow_presorted(
            X, y, idx_right, right_sorted, depth + 1, rng
        )
        return node

    def predict(self, X) -> np.ndarray:
        """Leaf values of the rows of ``X``.

        Routing runs over the flattened node arrays (:meth:`to_arrays`):
        at most ``depth`` vectorised steps regardless of batch width, so
        a single-row query costs the same handful of NumPy calls as a
        64-row micro-batch.  Every row takes exactly the comparisons the
        node walk (:meth:`_predict_walk`, kept as the reference oracle)
        would take and lands on the same leaf, so the outputs are
        bit-identical for every batch size.
        """
        if self._root is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("bad predict shape")
        flat = self._flat
        if flat is None:
            flat = self._flat = self._flatten()
        feature, threshold = flat["feature"], flat["threshold"]
        left, right, value = flat["left"], flat["right"], flat["value"]
        node = np.zeros(len(X), dtype=np.int64)
        while True:
            feat = feature[node]
            live = feat >= 0  # internal nodes; leaves store -1
            if not live.any():
                break
            rows = np.nonzero(live)[0]
            at = node[rows]
            go_left = X[rows, feat[rows]] <= threshold[at]
            node[rows] = np.where(go_left, left[at], right[at])
        return value[node]

    def _predict_walk(self, X) -> np.ndarray:
        """Node-object routing via index partitions (reference oracle)."""
        if self._root is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError("bad predict shape")
        out = np.empty(len(X), dtype=np.float64)
        stack = [(self._root, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if len(idx) == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    # -- flattened node arrays (predict fast path + serialisation) -----
    def _flatten(self) -> dict:
        """Preorder node arrays: ``feature`` (-1 marks a leaf),
        ``threshold``, ``left``/``right`` child indices, ``value``."""
        feats: list = []
        thr: list = []
        left: list = []
        right: list = []
        value: list = []

        def walk(node: _Node) -> int:
            i = len(feats)
            feats.append(node.feature if not node.is_leaf else -1)
            thr.append(node.threshold)
            left.append(-1)
            right.append(-1)
            value.append(node.value)
            if not node.is_leaf:
                left[i] = walk(node.left)
                right[i] = walk(node.right)
            return i

        walk(self._root)
        return {
            "feature": np.array(feats, dtype=np.int64),
            "threshold": np.array(thr, dtype=np.float64),
            "left": np.array(left, dtype=np.int64),
            "right": np.array(right, dtype=np.int64),
            "value": np.array(value, dtype=np.float64),
        }

    def to_arrays(self) -> dict:
        """Fitted state as plain arrays (``feature``/``threshold``/
        ``left``/``right``/``value`` + ``n_features``), the inverse of
        :meth:`from_arrays`; thresholds and leaf values round-trip
        exactly, so a reloaded tree predicts bit-identically."""
        if self._root is None:
            raise RuntimeError("model not fitted")
        flat = self._flat
        if flat is None:
            flat = self._flat = self._flatten()
        out = {k: v.copy() for k, v in flat.items()}
        out["n_features"] = np.int64(self.n_features_)
        return out

    @classmethod
    def from_arrays(cls, arrays: dict) -> "DecisionTreeRegressor":
        """Rebuild a fitted tree from :meth:`to_arrays` output."""
        feature = np.asarray(arrays["feature"], dtype=np.int64)
        threshold = np.asarray(arrays["threshold"], dtype=np.float64)
        left = np.asarray(arrays["left"], dtype=np.int64)
        right = np.asarray(arrays["right"], dtype=np.int64)
        value = np.asarray(arrays["value"], dtype=np.float64)
        n = len(feature)
        if not n or any(
            len(a) != n for a in (threshold, left, right, value)
        ):
            raise ValueError("inconsistent tree arrays")

        def build(i: int) -> _Node:
            if not 0 <= i < n:
                raise ValueError(f"tree child index {i} out of range")
            node = _Node(
                feature=int(feature[i]), threshold=float(threshold[i]),
                value=float(value[i]),
            )
            if feature[i] >= 0:
                node.left = build(int(left[i]))
                node.right = build(int(right[i]))
            return node

        tree = cls()
        tree._root = build(0)
        tree.n_features_ = int(arrays["n_features"])
        tree._flat = {
            "feature": feature, "threshold": threshold,
            "left": left, "right": right, "value": value,
        }
        return tree

    def depth(self) -> int:
        """Realised depth of the fitted tree."""
        def _d(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_d(node.left), _d(node.right))

        if self._root is None:
            raise RuntimeError("model not fitted")
        return _d(self._root)

"""Random-forest regressor: bagged CART trees with feature subsampling."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees.

    Each tree is fitted on a bootstrap resample with ``max_features``
    candidate features per split (default: ceil(sqrt(d))).
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 12,
        min_samples_leaf: int = 3,
        max_features: Optional[int] = None,
        random_state: int = 0,
        presort: bool = True,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.presort = presort
        self.trees_ = []

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y) or len(y) == 0:
            raise ValueError("bad training shapes")
        rng = np.random.default_rng(self.random_state)
        d = X.shape[1]
        m = self.max_features or max(1, int(np.ceil(np.sqrt(d))))
        self.trees_ = []
        for t in range(self.n_estimators):
            idx = rng.integers(0, len(y), size=len(y))
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=m,
                random_state=int(rng.integers(0, 2**31 - 1)),
                presort=self.presort,
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model not fitted")
        # Validate and convert once; each tree's asarray is then a no-op,
        # which matters when the selector batches hundreds of queries.
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.trees_[0].n_features_:
            raise ValueError(
                f"bad predict shape {X.shape}; expected "
                f"(n, {self.trees_[0].n_features_})"
            )
        # Sequential tree-order accumulation: ``stack(...).mean(axis=0)``
        # switches between pairwise and strided reduction with the batch
        # width, which would make batched predictions differ from
        # single-row ones in the last ulp.  This order is identical for
        # every batch size, keeping the selector's batch path bit-equal
        # to its scalar oracle.
        out = np.zeros(len(X), dtype=np.float64)
        for tree in self.trees_:
            out += tree.predict(X)
        out /= len(self.trees_)
        return out

    def to_state(self) -> dict:
        """Fitted state as a flat dict of arrays (one
        ``tree/<t>/<field>`` entry per node array), the inverse of
        :meth:`from_state`; a reloaded forest predicts bit-identically."""
        if not self.trees_:
            raise RuntimeError("model not fitted")
        state = {"n_trees": np.int64(len(self.trees_))}
        for t, tree in enumerate(self.trees_):
            for field, arr in tree.to_arrays().items():
                state[f"tree/{t}/{field}"] = arr
        return state

    @classmethod
    def from_state(cls, state: dict) -> "RandomForestRegressor":
        n_trees = int(state["n_trees"])
        model = cls(n_estimators=max(n_trees, 1))
        model.trees_ = [
            DecisionTreeRegressor.from_arrays({
                field: state[f"tree/{t}/{field}"]
                for field in ("feature", "threshold", "left", "right",
                              "value", "n_features")
            })
            for t in range(n_trees)
        ]
        model.n_estimators = n_trees
        return model

"""k-nearest-neighbour regressor on standardised features.

The natural model for the paper's "friends" idea: a matrix's performance
is predicted by feature-space neighbours.  Distances are computed in one
vectorised pass; features are z-scored so MB-scale and [0, 1]-scale axes
contribute comparably.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KNeighborsRegressor"]

# Budget for the (chunk, n_train, d) broadcast difference temporary.
# The one-shot form allocates O(n_query * n_train * d) — 1.6 GiB for a
# 5k x 5k query at d=8 — so queries are processed in chunks sized to keep
# the temporary near this budget; per-query arithmetic is unchanged, so
# chunked predictions are bit-identical to the one-shot ones.
CHUNK_BUDGET_BYTES = 32 * 2**20


class KNeighborsRegressor:
    """Uniform or inverse-distance-weighted k-NN regression."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._X = None
        self._y = None
        self._mu = None
        self._sd = None

    def fit(self, X, y) -> "KNeighborsRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y) or len(y) == 0:
            raise ValueError("bad training shapes")
        self._mu = X.mean(axis=0)
        self._sd = X.std(axis=0)
        self._sd[self._sd == 0] = 1.0
        self._X = (X - self._mu) / self._sd
        self._y = y
        return self

    def predict(self, X) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        Xs = (X - self._mu) / self._sd
        k = min(self.n_neighbors, len(self._y))
        n_train, d = self._X.shape
        chunk = max(1, int(CHUNK_BUDGET_BYTES // (n_train * d * 8)))
        out = np.empty(len(Xs), dtype=np.float64)
        for lo in range(0, len(Xs), chunk):
            q = Xs[lo:lo + chunk]
            # (chunk, n_train) distance matrix; rows are independent, so
            # chunk boundaries cannot change any query's result.
            d2 = ((q[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            ys = self._y[nn]
            if self.weights == "uniform":
                out[lo:lo + len(q)] = ys.mean(axis=1)
            else:
                dist = np.sqrt(np.take_along_axis(d2, nn, axis=1))
                w = 1.0 / np.maximum(dist, 1e-12)
                out[lo:lo + len(q)] = (ys * w).sum(axis=1) / w.sum(axis=1)
        return out

    def to_state(self) -> dict:
        """Fitted state as arrays (inverse of :meth:`from_state`); the
        standardised training matrix round-trips exactly, so a reloaded
        model predicts bit-identically."""
        if self._X is None:
            raise RuntimeError("model not fitted")
        return {
            "X": self._X,
            "y": self._y,
            "mu": self._mu,
            "sd": self._sd,
            "n_neighbors": np.int64(self.n_neighbors),
            "weights": np.array(self.weights),
        }

    @classmethod
    def from_state(cls, state: dict) -> "KNeighborsRegressor":
        model = cls(
            n_neighbors=int(state["n_neighbors"]),
            weights=str(state["weights"]),
        )
        model._X = np.asarray(state["X"], dtype=np.float64)
        model._y = np.asarray(state["y"], dtype=np.float64)
        model._mu = np.asarray(state["mu"], dtype=np.float64)
        model._sd = np.asarray(state["sd"], dtype=np.float64)
        return model

"""Feature-based format selection.

The paper's related-work line (SMAT [4], BestSF [14], ...) trains
predictors that pick the best storage format from matrix features.
:class:`FormatSelector` packages that workflow on top of the repro stack:
one regressor per candidate format, trained on (five-feature vector ->
GFLOPS) pairs from a sweep; selection is the argmax of predicted GFLOPS.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .forest import RandomForestRegressor

__all__ = ["FormatSelector", "SelectionReport"]

MINIMAL_FEATURES = [
    "mem_footprint_mb",
    "avg_nnz_per_row",
    "skew_coeff",
    "cross_row_similarity",
    "avg_num_neighbours",
]


class SelectionReport(dict):
    """Evaluation summary: accuracy + performance retained vs oracle."""

    @property
    def accuracy(self) -> float:
        return self["top1_accuracy"]

    @property
    def retained(self) -> float:
        return self["mean_retained"]


class FormatSelector:
    """Predict the best storage format for a matrix from its features.

    Parameters
    ----------
    formats:
        Candidate format names (e.g. a device's Table-II list).
    feature_keys:
        Feature-dict keys used as the input vector (default: the paper's
        minimal five).
    model_factory:
        Zero-argument callable returning a fresh regressor with
        ``fit``/``predict`` (default: a 25-tree random forest).
    """

    def __init__(
        self,
        formats: Sequence[str],
        feature_keys: Optional[Sequence[str]] = None,
        model_factory=None,
    ):
        if not formats:
            raise ValueError("need at least one candidate format")
        self.formats = list(formats)
        self.feature_keys = list(feature_keys or MINIMAL_FEATURES)
        self._factory = model_factory or (
            lambda: RandomForestRegressor(n_estimators=25, random_state=0)
        )
        self._models: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _vector(self, features: dict) -> np.ndarray:
        return np.array(
            [np.log1p(abs(float(features[k]))) for k in self.feature_keys]
        )

    def fit(self, rows: Sequence[dict]) -> "FormatSelector":
        """Train from sweep rows: dicts with the feature keys plus
        ``format`` and ``gflops``.

        A format that refused a matrix simply has no row for it; the model
        treats missing observations as zero performance for that matrix.
        """
        by_matrix: Dict[str, dict] = {}
        perf: Dict[str, Dict[str, float]] = {}
        for r in rows:
            key = r.get("matrix") or id(r)
            by_matrix[key] = r
            perf.setdefault(key, {})[r["format"]] = r["gflops"]
        if not by_matrix:
            raise ValueError("no training rows")
        keys = list(by_matrix)
        X = np.array([self._vector(by_matrix[k]) for k in keys])
        for fmt in self.formats:
            y = np.array([perf[k].get(fmt, 0.0) for k in keys])
            self._models[fmt] = self._factory().fit(X, y)
        return self

    def predict_gflops(self, features: dict) -> Dict[str, float]:
        """Predicted GFLOPS for every candidate format."""
        if not self._models:
            raise RuntimeError("selector not fitted")
        x = self._vector(features)[None, :]
        return {
            fmt: float(model.predict(x)[0])
            for fmt, model in self._models.items()
        }

    def select(self, features: dict) -> str:
        """The format with the highest predicted GFLOPS."""
        scores = self.predict_gflops(features)
        return max(scores, key=scores.get)

    # ------------------------------------------------------------------
    def evaluate(self, rows: Sequence[dict]) -> SelectionReport:
        """Top-1 accuracy and oracle-relative performance on held-out rows
        (same schema as :meth:`fit`)."""
        perf: Dict[str, Dict[str, float]] = {}
        feats: Dict[str, dict] = {}
        for r in rows:
            key = r.get("matrix") or id(r)
            perf.setdefault(key, {})[r["format"]] = r["gflops"]
            feats[key] = r
        if not perf:
            raise ValueError("no evaluation rows")
        hits, retained = 0, []
        for key, truth in perf.items():
            oracle = max(truth, key=truth.get)
            chosen = self.select(feats[key])
            hits += chosen == oracle
            retained.append(truth.get(chosen, 0.0) / truth[oracle])
        return SelectionReport(
            top1_accuracy=hits / len(perf),
            mean_retained=float(np.mean(retained)),
            worst_retained=float(np.min(retained)),
            n_matrices=len(perf),
        )

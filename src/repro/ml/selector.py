"""Feature-based format selection.

The paper's related-work line (SMAT [4], BestSF [14], ...) trains
predictors that pick the best storage format from matrix features.
:class:`FormatSelector` packages that workflow on top of the repro stack:
one regressor per candidate format, trained on (five-feature vector ->
GFLOPS) pairs from a sweep; selection is the argmax of predicted GFLOPS.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.table import SweepTable, _write_npz
from .forest import RandomForestRegressor
from .knn import KNeighborsRegressor
from .linear import LinearRegression, RidgeRegression

__all__ = [
    "FormatSelector", "SelectionReport", "SelectorVersionError",
    "SELECTOR_SCHEMA_VERSION",
]

SELECTOR_SCHEMA_VERSION = 1

# Persistable model families (npz ``__kind__`` tag -> class).  A model
# participates by exposing ``to_state() -> dict[str, ndarray]`` and
# ``from_state(state)`` with bit-identical reloaded predictions.
MODEL_IO: Dict[str, type] = {
    "forest": RandomForestRegressor,
    "knn": KNeighborsRegressor,
    "linear": LinearRegression,
    "ridge": RidgeRegression,
}
_KIND_OF = {cls: kind for kind, cls in MODEL_IO.items()}


class SelectorVersionError(ValueError):
    """A selector artifact from an incompatible schema version (the
    :class:`~repro.core.table.SchemaVersionError` convention)."""

MINIMAL_FEATURES = [
    "mem_footprint_mb",
    "avg_nnz_per_row",
    "skew_coeff",
    "cross_row_similarity",
    "avg_num_neighbours",
]


def _instance_key(row: dict):
    """Explicit grouping key tying a measurement row to its matrix.

    Per-format rows of one matrix must collapse to one training example,
    so the key has to be stable across rows: the matrix name when
    present, else the sweep's ``spec_index`` or the grid's ``instance``
    index.  Rows with none of these are ambiguous — grouping them by
    object identity would silently treat every row as a distinct matrix
    (each format row becomes its own "matrix" with exactly one
    observation), so we refuse instead.
    """
    name = row.get("matrix")
    if name:
        return ("matrix", name)
    for alt in ("spec_index", "instance"):
        value = row.get(alt)
        if value is not None:
            return (alt, value)
    raise ValueError(
        "measurement row carries no 'matrix' name, 'spec_index' or "
        "'instance' key to group per-format rows by; add one of them "
        "(anonymous rows cannot be grouped unambiguously)"
    )


def _mixed_coordinate_error(coord: str, seen) -> ValueError:
    return ValueError(
        f"measurement rows span multiple {coord}s "
        f"({sorted(seen)}); fit one selector per {coord} "
        "(filter the rows or simulate one grid slice at a time)"
    )


def _as_rows(rows):
    """Accept dict rows or a ``GridResult`` (duck-typed on
    ``to_rows(with_features=...)``), and refuse row sets that mix
    devices or precisions.

    ``SweepTable`` never reaches this path — fit/evaluate consume its
    columns directly; this shim materialises the *other* row sources
    exactly once.  The selector's feature vector carries no
    device/precision coordinate, so rows from several devices (or
    fp64+fp32) would assign conflicting targets to one feature vector —
    and per-format dicts would silently keep whichever device's row came
    last.  Train one selector per (device, precision) slice instead.
    """
    if hasattr(rows, "to_rows"):
        rows = rows.to_rows(with_features=True)
    else:
        rows = list(rows)  # materialise: inspected twice below
    for coord in ("device", "precision"):
        seen = {r[coord] for r in rows if coord in r}
        if len(seen) > 1:
            raise _mixed_coordinate_error(coord, seen)
    return rows


def _check_table_coordinates(table: SweepTable) -> None:
    """The multi-device/precision guard, as a vectorised uniqueness
    check on the categorical codes (no row materialisation)."""
    for coord in ("device", "precision"):
        if coord in table.names:
            seen = table.unique(coord)
            if len(seen) > 1:
                raise _mixed_coordinate_error(coord, seen)


def _table_key_column(table: SweepTable) -> str:
    """The grouping column of a table (mirrors :func:`_instance_key`)."""
    for name in ("matrix", "spec_index", "instance"):
        if name in table.names:
            return name
    raise ValueError(
        "measurement row carries no 'matrix' name, 'spec_index' or "
        "'instance' key to group per-format rows by; add one of them "
        "(anonymous rows cannot be grouped unambiguously)"
    )


class SelectionReport(dict):
    """Evaluation summary: accuracy + performance retained vs oracle."""

    @property
    def accuracy(self) -> float:
        return self["top1_accuracy"]

    @property
    def retained(self) -> float:
        return self["mean_retained"]


class FormatSelector:
    """Predict the best storage format for a matrix from its features.

    Parameters
    ----------
    formats:
        Candidate format names (e.g. a device's Table-II list).
    feature_keys:
        Feature-dict keys used as the input vector (default: the paper's
        minimal five).
    model_factory:
        Zero-argument callable returning a fresh regressor with
        ``fit``/``predict`` (default: a 25-tree random forest).
    """

    def __init__(
        self,
        formats: Sequence[str],
        feature_keys: Optional[Sequence[str]] = None,
        model_factory=None,
    ):
        if not formats:
            raise ValueError("need at least one candidate format")
        self.formats = list(formats)
        self.feature_keys = list(feature_keys or MINIMAL_FEATURES)
        self._factory = model_factory or (
            lambda: RandomForestRegressor(n_estimators=25, random_state=0)
        )
        self._models: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _vector(self, features: dict) -> np.ndarray:
        return np.array(
            [np.log1p(abs(float(features[k]))) for k in self.feature_keys]
        )

    def _matrix(self, features_seq: Sequence[dict]) -> np.ndarray:
        """Feature matrix for many instances in one vectorised pass.

        ``np.log1p`` is applied elementwise either way, so each row is
        bit-identical to the corresponding :meth:`_vector` call — the
        batch paths below rely on that.
        """
        raw = np.array(
            [[abs(float(f[k])) for k in self.feature_keys]
             for f in features_seq],
            dtype=np.float64,
        ).reshape(len(features_seq), len(self.feature_keys))
        return np.log1p(raw)

    def _table_groups(
        self, table: SweepTable
    ) -> Tuple[np.ndarray, List, np.ndarray]:
        """``(group_id per row, group keys, feature matrix X)`` for a
        columnar table.

        Groups are per-matrix in first-appearance order and ``X`` row
        ``i`` is bit-identical to ``_vector`` of group ``i``'s features
        (``np.log1p``/``np.abs`` are applied elementwise either way);
        the dict path's last-row-per-group feature choice is preserved
        via an unbuffered per-group max of row positions.
        """
        _check_table_coordinates(table)
        g, keys = table.group_index(_table_key_column(table))
        last = np.full(len(keys), -1, dtype=np.int64)
        np.maximum.at(last, g, np.arange(len(table)))
        raw = np.stack(
            [
                np.abs(table.column(k)[last].astype(np.float64))
                for k in self.feature_keys
            ],
            axis=1,
        )
        return g, keys, np.log1p(raw)

    def fit(self, rows) -> "FormatSelector":
        """Train from a :class:`~repro.core.table.SweepTable` (the
        columnar fast path), from sweep dict rows with the feature keys
        plus ``format`` and ``gflops``, or directly from a
        :class:`~repro.perfmodel.batch.GridResult`.

        Rows are grouped per matrix by an explicit instance key (name,
        ``spec_index`` or grid ``instance`` index); anonymous rows raise.
        A format that refused a matrix simply has no row for it; the model
        treats missing observations as zero performance for that matrix.
        All input forms train bit-identical models.
        """
        if isinstance(rows, SweepTable):
            return self._fit_table(rows)
        by_matrix: Dict[tuple, dict] = {}
        perf: Dict[tuple, Dict[str, float]] = {}
        for r in _as_rows(rows):
            key = _instance_key(r)
            by_matrix[key] = r
            perf.setdefault(key, {})[r["format"]] = r["gflops"]
        if not by_matrix:
            raise ValueError("no training rows")
        keys = list(by_matrix)
        X = self._matrix([by_matrix[k] for k in keys])
        for fmt in self.formats:
            y = np.array([perf[k].get(fmt, 0.0) for k in keys])
            self._models[fmt] = self._factory().fit(X, y)
        return self

    def _fit_table(self, table: SweepTable) -> "FormatSelector":
        if len(table) == 0:
            raise ValueError("no training rows")
        g, _, X = self._table_groups(table)
        fmt_codes = table.codes("format")
        fmt_cats = table.categories("format")
        gflops = table.column("gflops")
        for fmt in self.formats:
            y = np.zeros(len(X))
            if fmt in fmt_cats:
                sel = fmt_codes == fmt_cats.index(fmt)
                # Duplicate (matrix, format) rows keep the last value,
                # exactly as the dict path's per-format dict does.
                y[g[sel]] = gflops[sel]
            self._models[fmt] = self._factory().fit(X, y)
        return self

    def predict_gflops(self, features: dict) -> Dict[str, float]:
        """Predicted GFLOPS for every candidate format."""
        if not self._models:
            raise RuntimeError("selector not fitted")
        x = self._vector(features)[None, :]
        return {
            fmt: float(model.predict(x)[0])
            for fmt, model in self._models.items()
        }

    def select(self, features: dict) -> str:
        """The format with the highest predicted GFLOPS."""
        scores = self.predict_gflops(features)
        return max(scores, key=scores.get)

    # ------------------------------------------------------------------
    def predict_gflops_batch(
        self, features_seq: Sequence[dict]
    ) -> Dict[str, np.ndarray]:
        """Predicted GFLOPS for every format over many instances.

        One ``model.predict`` call per format over the whole batch;
        entry ``[fmt][i]`` equals ``predict_gflops(features_seq[i])[fmt]``
        bit for bit (per-sample tree routing and the per-format model are
        independent of batch size).
        """
        if not self._models:
            raise RuntimeError("selector not fitted")
        X = self._matrix(list(features_seq))
        return {
            fmt: np.asarray(model.predict(X), dtype=np.float64)
            for fmt, model in self._models.items()
        }

    def select_batch(self, features_seq: Sequence[dict]) -> List[str]:
        """Best predicted format per instance (batch :meth:`select`).

        Ties resolve to the earliest fitted format, exactly as the
        scalar ``max`` over the prediction dict does.
        """
        features_seq = list(features_seq)
        if not features_seq:
            if not self._models:
                raise RuntimeError("selector not fitted")
            return []
        scores = self.predict_gflops_batch(features_seq)
        names = list(scores)
        stacked = np.stack([scores[f] for f in names])
        return [names[i] for i in np.argmax(stacked, axis=0)]

    # ------------------------------------------------------------------
    def evaluate(
        self, rows, batch: bool = True, detail: bool = False
    ) -> SelectionReport:
        """Top-1 accuracy and oracle-relative performance on held-out
        rows (a :class:`~repro.core.table.SweepTable`, dict rows with
        the :meth:`fit` schema, or a ``GridResult``).

        ``batch`` (the default) scores all held-out instances with one
        ``model.predict`` per format; ``batch=False`` keeps the
        per-instance scalar loop as the reference oracle.  All input
        forms and both scoring paths produce bit-identical reports.
        ``detail`` adds a ``choices`` list with the per-instance
        (oracle, chosen, retained) triples that the experiment reports
        aggregate into win/confusion tables.
        """
        if isinstance(rows, SweepTable):
            return self._evaluate_table(rows, batch=batch, detail=detail)
        perf: Dict[tuple, Dict[str, float]] = {}
        feats: Dict[tuple, dict] = {}
        for r in _as_rows(rows):
            key = _instance_key(r)
            perf.setdefault(key, {})[r["format"]] = r["gflops"]
            feats[key] = r
        if not perf:
            raise ValueError("no evaluation rows")
        keys = list(perf)
        if batch:
            chosen_per_key = self.select_batch([feats[k] for k in keys])
        else:
            chosen_per_key = [self.select(feats[k]) for k in keys]
        hits, retained, choices = 0, [], []
        for key, chosen in zip(keys, chosen_per_key):
            truth = perf[key]
            oracle = max(truth, key=truth.get)
            hits += chosen == oracle
            kept = truth.get(chosen, 0.0) / truth[oracle]
            retained.append(kept)
            if detail:
                choices.append({
                    "instance": key[1],
                    "oracle": oracle,
                    "chosen": chosen,
                    "retained": kept,
                })
        report = SelectionReport(
            top1_accuracy=hits / len(perf),
            mean_retained=float(np.mean(retained)),
            worst_retained=float(np.min(retained)),
            n_matrices=len(perf),
        )
        if detail:
            report["choices"] = choices
        return report

    def _evaluate_table(
        self, table: SweepTable, batch: bool, detail: bool
    ) -> SelectionReport:
        """Columnar :meth:`evaluate`: the per-group perf dicts become a
        dense (group, format) matrix, built with two fancy-index
        assignments instead of a dict per matrix."""
        if len(table) == 0:
            raise ValueError("no evaluation rows")
        if not self._models:
            raise RuntimeError("selector not fitted")
        g, keys, X = self._table_groups(table)
        n_groups = len(keys)
        if batch:
            preds = {
                fmt: np.asarray(model.predict(X), dtype=np.float64)
                for fmt, model in self._models.items()
            }
            names = list(preds)
            stacked = np.stack([preds[f] for f in names])
            chosen_names = [
                names[i] for i in np.argmax(stacked, axis=0)
            ]
        else:
            chosen_names = []
            for i in range(n_groups):
                scores = {
                    fmt: float(model.predict(X[i:i + 1])[0])
                    for fmt, model in self._models.items()
                }
                chosen_names.append(max(scores, key=scores.get))

        fmt_codes = table.codes("format")
        fmt_cats = table.categories("format")
        gflops = table.column("gflops")
        perf = np.full((n_groups, len(fmt_cats)), -np.inf)
        seen = np.zeros((n_groups, len(fmt_cats)), dtype=bool)
        perf[g, fmt_codes] = gflops  # duplicates: last value, as dicts
        seen[g, fmt_codes] = True
        oracle_idx = np.argmax(perf, axis=1)
        code_of = {fmt: c for c, fmt in enumerate(fmt_cats)}

        hits, retained, choices = 0, np.empty(n_groups), []
        for i in range(n_groups):
            oracle = fmt_cats[int(oracle_idx[i])]
            chosen = chosen_names[i]
            cc = code_of.get(chosen, -1)
            num = perf[i, cc] if cc >= 0 and seen[i, cc] else 0.0
            kept = num / perf[i, oracle_idx[i]]
            hits += chosen == oracle
            retained[i] = kept
            if detail:
                choices.append({
                    "instance": keys[i],
                    "oracle": oracle,
                    "chosen": chosen,
                    "retained": float(kept),
                })
        report = SelectionReport(
            top1_accuracy=hits / n_groups,
            mean_retained=float(np.mean(retained)),
            worst_retained=float(np.min(retained)),
            n_matrices=n_groups,
        )
        if detail:
            report["choices"] = choices
        return report

    # ------------------------------------------------------------------
    def to_npz(self, path: Union[str, Path]) -> None:
        """Persist the fitted selector as a lossless NPZ artifact.

        The artifact records the schema version, the candidate formats,
        the feature keys and every per-format model's fitted state
        (:data:`MODEL_IO` families only); :meth:`from_npz` rebuilds a
        selector whose predictions are bit-identical — the contract
        that lets ``repro serve`` and ``repro experiment`` share one
        trained model file.  The write is deterministic (pinned zip
        timestamps, stable member order), like ``SweepTable.to_npz``.
        """
        if not self._models:
            raise RuntimeError(
                "selector not fitted; fit before saving"
            )
        payload: Dict[str, np.ndarray] = {
            "__selector_schema__": np.int64(SELECTOR_SCHEMA_VERSION),
            "formats": np.array(self.formats, dtype=np.str_),
            "feature_keys": np.array(self.feature_keys, dtype=np.str_),
        }
        for i, fmt in enumerate(self.formats):
            model = self._models[fmt]
            kind = _KIND_OF.get(type(model))
            if kind is None:
                raise ValueError(
                    f"cannot persist model {type(model).__name__!r} for "
                    f"format {fmt!r}; persistable families: "
                    f"{sorted(MODEL_IO)}"
                )
            payload[f"model/{i}/__kind__"] = np.array(kind)
            for key, arr in model.to_state().items():
                payload[f"model/{i}/{key}"] = np.asanyarray(arr)
        with open(path, "wb") as fh:
            _write_npz(fh, payload)

    @classmethod
    def from_npz(cls, path: Union[str, Path]) -> "FormatSelector":
        """Load a selector saved by :meth:`to_npz`.

        Raises :class:`SelectorVersionError` (a ``ValueError``) when the
        file is not a selector artifact or was written by a different
        schema version, with the retrain hint.
        """
        path = Path(path)
        try:
            data = np.load(path)
        except (zipfile.BadZipFile, ValueError, EOFError) as exc:
            # Not an npz at all: bad zip, numpy's pickle fallback on
            # arbitrary bytes, or an empty file.
            raise SelectorVersionError(
                f"{path} is not a selector artifact ({exc}); save one "
                "with FormatSelector.to_npz or `repro train --out`"
            ) from exc
        with data:
            if "__selector_schema__" not in data:
                raise SelectorVersionError(
                    f"{path} is not a selector artifact (no "
                    "__selector_schema__ entry); save one with "
                    "FormatSelector.to_npz or `repro train --out`"
                )
            version = int(data["__selector_schema__"])
            if version != SELECTOR_SCHEMA_VERSION:
                raise SelectorVersionError(
                    f"{path} was written with selector schema "
                    f"version {version} but this build reads "
                    f"version {SELECTOR_SCHEMA_VERSION}; retrain "
                    "the artifact with `repro train`"
                )
            formats = [str(f) for f in data["formats"]]
            feature_keys = [str(k) for k in data["feature_keys"]]
            selector = cls(formats, feature_keys=feature_keys)
            for i, fmt in enumerate(formats):
                prefix = f"model/{i}/"
                kind = str(data[prefix + "__kind__"])
                family = MODEL_IO.get(kind)
                if family is None:
                    raise SelectorVersionError(
                        f"{path} holds an unknown model kind "
                        f"{kind!r} for format {fmt!r}; known "
                        f"kinds: {sorted(MODEL_IO)}"
                    )
                state = {
                    key[len(prefix):]: data[key]
                    for key in data.files
                    if key.startswith(prefix)
                    and key != prefix + "__kind__"
                }
                selector._models[fmt] = family.from_state(state)
            return selector

"""From-scratch ML substrate for feature-based performance prediction."""
from .linear import LinearRegression, RidgeRegression
from .tree import DecisionTreeRegressor
from .forest import RandomForestRegressor
from .knn import KNeighborsRegressor
from .metrics import mape_score, rmse, r2_score, train_test_split, kfold
from .selector import (
    FormatSelector, SelectionReport, SelectorVersionError,
    SELECTOR_SCHEMA_VERSION,
)

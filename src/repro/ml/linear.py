"""Linear models: ordinary least squares and ridge regression.

Closed-form normal-equation solvers on standardised features; used as the
weakest baseline in the performance-prediction experiments (SpMV
performance is strongly non-linear in the features, which is the point the
tree models make).
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearRegression", "RidgeRegression"]


class LinearRegression:
    """Ordinary least squares with intercept.

    Features are standardised internally for conditioning; coefficients
    are reported in the original feature scale.
    """

    def __init__(self):
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        mu = X.mean(axis=0)
        sd = X.std(axis=0)
        sd[sd == 0] = 1.0
        Xs = (X - mu) / sd
        A = np.column_stack([np.ones(len(Xs)), Xs])
        beta, *_ = np.linalg.lstsq(A, y, rcond=None)
        self.coef_ = beta[1:] / sd
        self.intercept_ = float(beta[0] - (self.coef_ * mu).sum())
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            # Single sample as a vector (the old ``X @ coef`` accepted
            # this shape, returning a scalar).
            return (X * self.coef_).sum() + self.intercept_
        # Row-wise multiply-and-sum instead of ``X @ coef``: BLAS picks
        # different accumulation orders for gemv vs gemm, so matmul
        # results can drift in the last ulp with the batch width.  The
        # per-row pairwise sum is independent of how many rows are
        # predicted together, which the selector's batch path relies on.
        return (X * self.coef_).sum(axis=1) + self.intercept_

    def to_state(self) -> dict:
        """Fitted state as arrays (inverse of :meth:`from_state`);
        coefficients round-trip exactly."""
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        return {
            "coef": np.asarray(self.coef_, dtype=np.float64),
            "intercept": np.float64(self.intercept_),
        }

    @classmethod
    def from_state(cls, state: dict) -> "LinearRegression":
        model = cls()
        model.coef_ = np.asarray(state["coef"], dtype=np.float64)
        model.intercept_ = float(state["intercept"])
        return model


class RidgeRegression(LinearRegression):
    """L2-regularised least squares (standardised features)."""

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha

    def fit(self, X, y) -> "RidgeRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("bad shapes")
        mu = X.mean(axis=0)
        sd = X.std(axis=0)
        sd[sd == 0] = 1.0
        Xs = (X - mu) / sd
        n_feat = Xs.shape[1]
        G = Xs.T @ Xs + self.alpha * np.eye(n_feat)
        b = Xs.T @ (y - y.mean())
        w = np.linalg.solve(G, b)
        self.coef_ = w / sd
        self.intercept_ = float(y.mean() - (self.coef_ * mu).sum())
        return self

"""Service application state: corpus + selector + query handling.

Everything HTTP-agnostic lives here so the endpoint logic is testable
without sockets: loading the corpus (``.npz``/``.csv``/``.json`` tables
or ``.rpak`` table packs), training or loading the
:class:`~repro.ml.FormatSelector`, parsing ``/select`` payloads,
slicing ``/sweep`` queries out of the loaded
:class:`~repro.core.table.SweepTable` and rendering JSON/CSV bodies.
"""

from __future__ import annotations

import dataclasses
import io
import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.generator import MatrixSpec
from ..core.table import SweepTable
from ..ml.selector import FormatSelector
from .batcher import MicroBatcher
from .stats import ServiceStats

__all__ = [
    "BadRequest", "ServiceApp", "load_corpus", "train_selector",
]

_TABLE_PREFIX = "table/"

# /sweep query parameters that are not column filters.
_RESERVED_PARAMS = ("fmt", "limit", "offset", "columns")

# Rendered /sweep slices kept (keyed by the canonical query); repeat
# queries — dashboards polling one slice — skip the filter+render work.
SWEEP_CACHE_SIZE = 128


class BadRequest(ValueError):
    """Client error: becomes an HTTP 400 with the message as body."""


def load_corpus(path) -> SweepTable:
    """Load the sweep corpus from a saved table or a table pack.

    ``.npz``/``.csv``/``.json`` go through :func:`repro.io.load_table`;
    ``.rpak`` must be a packed table (``repro pack table.npz``).
    """
    path = Path(path)
    if path.suffix == ".rpak":
        from ..io.pack import Pack

        with Pack.open(path) as pack:
            keys = [
                k for k in pack.keys() if k.startswith(_TABLE_PREFIX)
            ]
            if not keys:
                raise ValueError(
                    f"{path} is not a packed table (no "
                    f"{_TABLE_PREFIX}* entries); pack one with "
                    "`repro pack table.npz`"
                )
            return SweepTable.from_blobs(
                {k: pack.read(k) for k in keys}, prefix=_TABLE_PREFIX
            )
    from ..io import load_table

    return load_table(path)


def _looks_best_only(table: SweepTable) -> bool:
    """One row per (matrix, device) while several formats exist —
    the :func:`repro.experiments.runner` heuristic."""
    if not len(table) or len(table.categories("format")) <= 1:
        return False
    g, _ = table.group_index("matrix")
    d, _ = table.group_index("device")
    n_dev = int(d.max()) + 1
    per_pair = np.bincount(g * n_dev + d)
    return bool(per_pair[per_pair > 0].max() == 1)


def train_selector(
    table: SweepTable,
    device: Optional[str] = None,
    formats: Optional[Sequence[str]] = None,
    model: str = "forest",
    seed: int = 0,
) -> FormatSelector:
    """Fit a :class:`~repro.ml.FormatSelector` from a saved sweep table.

    The table must carry per-format rows (``repro sweep
    --all-formats``); a multi-device table needs ``device`` to name the
    slice to train on (the selector is per-device by construction).
    ``formats`` defaults to the formats present in the slice.
    """
    from ..experiments.spec import MODEL_FAMILIES

    if model not in MODEL_FAMILIES:
        raise ValueError(
            f"unknown model family {model!r}; available: "
            f"{sorted(MODEL_FAMILIES)}"
        )
    for column in ("matrix", "device", "format", "gflops"):
        if column not in table.names:
            raise ValueError(
                f"corpus has no {column!r} column (columns: "
                f"{table.names}); pass a measurement table written by "
                "`repro sweep --out`"
            )
    devices = table.unique("device")
    if device is not None:
        if device not in devices:
            raise ValueError(
                f"device {device!r} has no rows in the corpus; "
                f"available: {devices}"
            )
        table = table.where(device=device)
    elif len(devices) > 1:
        raise ValueError(
            f"corpus spans devices {devices}; the selector is "
            "per-device — pick one with --device"
        )
    if _looks_best_only(table):
        raise ValueError(
            "corpus looks like a best-only sweep (one row per matrix "
            "and device, several formats overall); the selector trains "
            "on per-format rows — re-run `repro sweep --all-formats "
            "--out ...`"
        )
    candidates = (
        list(formats) if formats else list(table.unique("format"))
    )
    missing = [f for f in candidates if f not in table.unique("format")]
    if missing:
        raise ValueError(
            f"formats {missing} have no rows in the corpus slice; "
            f"present: {table.unique('format')}"
        )
    family = MODEL_FAMILIES[model]
    selector = FormatSelector(
        candidates, model_factory=lambda: family(seed)
    )
    return selector.fit(table)


# -- /select payload parsing -----------------------------------------
_SPEC_FIELDS = {f.name for f in dataclasses.fields(MatrixSpec)}
# Declared-scale feature mapping (MatrixSpec field -> paper feature),
# mirroring what the sweep records for a spec before materialisation.
_SPEC_FEATURES = {
    "avg_nnz_per_row": "avg_nnz_per_row",
    "skew_coeff": "skew_coeff",
    "cross_row_sim": "cross_row_similarity",
    "avg_num_neigh": "avg_num_neighbours",
}


def _features_from_spec(spec_dict: dict,
                        feature_keys: Sequence[str]) -> dict:
    unknown = sorted(
        set(spec_dict) - _SPEC_FIELDS - {"mem_footprint_mb"}
    )
    if unknown:
        raise BadRequest(
            f"unknown spec fields {unknown}; MatrixSpec takes "
            f"{sorted(_SPEC_FIELDS)} (or mem_footprint_mb instead of "
            "n_rows)"
        )
    spec_dict = dict(spec_dict)
    try:
        if "mem_footprint_mb" in spec_dict:
            footprint = spec_dict.pop("mem_footprint_mb")
            avg = spec_dict.pop("avg_nnz_per_row", None)
            if avg is None:
                raise BadRequest(
                    "a footprint spec needs avg_nnz_per_row too"
                )
            spec = MatrixSpec.from_footprint(
                float(footprint), float(avg), **spec_dict
            )
        else:
            if "n_rows" not in spec_dict:
                raise BadRequest(
                    "spec needs n_rows (or mem_footprint_mb) and "
                    "avg_nnz_per_row"
                )
            if "avg_nnz_per_row" not in spec_dict:
                raise BadRequest("spec needs avg_nnz_per_row")
            spec_dict.setdefault("n_cols", spec_dict["n_rows"])
            spec = MatrixSpec(**spec_dict)
    except BadRequest:
        raise
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad spec: {exc}") from exc
    features = {"mem_footprint_mb": spec.mem_footprint_mb}
    for field, feature in _SPEC_FEATURES.items():
        features[feature] = float(getattr(spec, field))
    missing = [k for k in feature_keys if k not in features]
    if missing:
        raise BadRequest(
            f"the loaded selector needs feature keys {missing} that a "
            "spec does not determine; send an explicit "
            '{"features": {...}} payload'
        )
    return features


def _parse_select_payload(payload,
                          feature_keys: Sequence[str]) -> dict:
    """``/select`` body -> feature dict for the selector."""
    if not isinstance(payload, dict):
        raise BadRequest(
            'body must be a JSON object: {"features": {...}} or '
            '{"spec": {...}}'
        )
    if "features" in payload:
        features = payload["features"]
        if not isinstance(features, dict):
            raise BadRequest('"features" must be an object')
        missing = [k for k in feature_keys if k not in features]
        if missing:
            raise BadRequest(
                f"missing feature keys {missing}; the loaded selector "
                f"uses {list(feature_keys)}"
            )
        out = {}
        for key in feature_keys:
            try:
                out[key] = float(features[key])
            except (TypeError, ValueError) as exc:
                raise BadRequest(
                    f"feature {key!r} must be a number, got "
                    f"{features[key]!r}"
                ) from exc
        return out
    if "spec" in payload:
        spec = payload["spec"]
        if not isinstance(spec, dict):
            raise BadRequest('"spec" must be an object')
        return _features_from_spec(spec, feature_keys)
    raise BadRequest(
        'body must carry "features" (explicit feature values) or '
        '"spec" (a MatrixSpec to derive them from)'
    )


class ServiceApp:
    """Loaded state plus endpoint logic (HTTP-agnostic).

    ``select`` routes through the micro-batcher when enabled; the
    response for a given payload is identical either way — batching
    is purely a throughput mechanism (see docs/service.md).
    """

    def __init__(
        self,
        selector: FormatSelector,
        table: SweepTable,
        micro_batch: bool = True,
        window_ms: float = 2.0,
        max_batch: int = 64,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        self.selector = selector
        self.table = table
        self.stats = stats or ServiceStats()
        self.micro_batch = micro_batch
        self.window_ms = window_ms
        self.max_batch = max_batch
        self._batcher = (
            MicroBatcher(
                self._evaluate_batch,
                window_s=window_ms / 1000.0,
                max_batch=max_batch,
                stats=self.stats,
            )
            if micro_batch
            else None
        )
        self._sweep_cache: "OrderedDict[tuple, Tuple[bytes, str]]" = (
            OrderedDict()
        )
        self._sweep_lock = threading.Lock()
        # Warm the predict path (flattens every tree) so the first
        # request is not the one paying the one-off setup cost.
        self.selector.predict_gflops_batch(
            [{k: 0.0 for k in self.selector.feature_keys}]
        )

    # -- /select -------------------------------------------------------
    def _evaluate_batch(self, features_seq: Sequence[dict]) -> List[dict]:
        """One batched evaluate; entry ``i`` is exactly what a direct
        scalar ``select``/``predict_gflops`` pair would return for
        ``features_seq[i]`` (the selector's batch paths are
        bit-identical per entry, ties resolve to the earliest fitted
        format in both)."""
        scores = self.selector.predict_gflops_batch(features_seq)
        names = list(scores)
        out = []
        for i in range(len(features_seq)):
            per_format = {
                fmt: float(scores[fmt][i]) for fmt in names
            }
            chosen = max(per_format, key=per_format.get)
            out.append({
                "format": chosen,
                "predicted_gflops": per_format[chosen],
                "gflops": per_format,
            })
        return out

    def select(self, payload) -> dict:
        """Handle one ``/select`` body (already JSON-decoded)."""
        features = _parse_select_payload(
            payload, self.selector.feature_keys
        )
        if self._batcher is not None:
            return self._batcher.submit(features)
        return self._evaluate_batch([features])[0]

    # -- /sweep --------------------------------------------------------
    def _coerce_filter(self, name: str, raw: str):
        """Parse a query-string value through the column's dtype."""
        if self.table.is_categorical(name):
            return raw
        dtype = self.table.column(name).dtype
        try:
            if dtype.kind in "iu":
                return int(raw)
            if dtype.kind == "b":
                if raw.lower() in ("1", "true"):
                    return True
                if raw.lower() in ("0", "false"):
                    return False
                raise ValueError(raw)
            return float(raw)
        except ValueError as exc:
            raise BadRequest(
                f"filter {name}={raw!r} does not parse as the "
                f"column's {dtype} dtype"
            ) from exc

    def sweep_query(self, params: Dict[str, str]) -> Tuple[bytes, str]:
        """Handle one ``/sweep`` query: ``(body, content_type)``.

        Any parameter named after a table column filters on it
        (comma-separated values select any of them via ``where_in``);
        ``columns`` projects, ``limit``/``offset`` paginate, ``fmt``
        picks ``json`` (default) or ``csv``.
        """
        key = tuple(sorted(params.items()))
        with self._sweep_lock:
            cached = self._sweep_cache.get(key)
            if cached is not None:
                self._sweep_cache.move_to_end(key)
        self.stats.record_cache(hit=cached is not None)
        if cached is not None:
            return cached
        body, ctype = self._render_sweep(params)
        with self._sweep_lock:
            self._sweep_cache[key] = (body, ctype)
            while len(self._sweep_cache) > SWEEP_CACHE_SIZE:
                self._sweep_cache.popitem(last=False)
        return body, ctype

    def _render_sweep(self, params: Dict[str, str]) -> Tuple[bytes, str]:
        fmt = params.get("fmt", "json")
        if fmt not in ("json", "csv"):
            raise BadRequest(
                f"unknown fmt {fmt!r}; use json or csv"
            )
        try:
            limit = (
                int(params["limit"]) if "limit" in params else None
            )
            offset = int(params.get("offset", "0"))
        except ValueError as exc:
            raise BadRequest(
                f"limit/offset must be integers: {exc}"
            ) from exc
        if (limit is not None and limit < 0) or offset < 0:
            raise BadRequest("limit/offset must be >= 0")
        names = self.table.names
        columns = names
        if "columns" in params:
            columns = [
                c for c in params["columns"].split(",") if c
            ]
            unknown = [c for c in columns if c not in names]
            if unknown:
                raise BadRequest(
                    f"unknown columns {unknown}; available: {names}"
                )
        sliced = self.table
        for name, raw in params.items():
            if name in _RESERVED_PARAMS:
                continue
            if name not in names:
                raise BadRequest(
                    f"unknown filter column {name!r}; available "
                    f"columns: {names} (plus "
                    f"{', '.join(_RESERVED_PARAMS)})"
                )
            if "," in raw:
                values = [
                    self._coerce_filter(name, v)
                    for v in raw.split(",") if v
                ]
                sliced = sliced.where_in(name, values)
            else:
                sliced = sliced.where(
                    **{name: self._coerce_filter(name, raw)}
                )
        total = len(sliced)
        stop = total if limit is None else min(offset + limit, total)
        if offset or stop != total:
            sliced = sliced.select(np.arange(offset, max(offset, stop)))
        rows = [
            {c: row[c] for c in columns} for row in sliced.iter_rows()
        ]
        if fmt == "csv":
            out = io.StringIO()
            out.write(",".join(columns) + "\n")
            for row in rows:
                out.write(
                    ",".join(str(row[c]) for c in columns) + "\n"
                )
            return out.getvalue().encode(), "text/csv; charset=utf-8"
        body = json.dumps({
            "total": total,
            "returned": len(rows),
            "rows": rows,
        }, sort_keys=True)
        return body.encode(), "application/json"

    # -- /healthz and /stats -------------------------------------------
    def healthz(self) -> dict:
        return {
            "status": "ok",
            "rows": len(self.table),
            "matrices": len(self.table.unique("matrix"))
            if "matrix" in self.table.names else 0,
            "formats": list(self.selector.formats),
            "feature_keys": list(self.selector.feature_keys),
            "micro_batch": self.micro_batch,
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
        }

    def stats_snapshot(self) -> dict:
        return self.stats.snapshot()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Flush and stop the batcher (graceful-shutdown tail)."""
        if self._batcher is not None:
            self._batcher.close()

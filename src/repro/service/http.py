"""Stdlib HTTP front end: ThreadingHTTPServer + graceful lifecycle.

Endpoints
---------
``POST /select``   features or MatrixSpec -> chosen format + GFLOPS
``GET  /sweep``    filtered slices of the loaded table (JSON/CSV)
``GET  /healthz``  liveness + loaded-corpus summary
``GET  /stats``    request counts, batch sizes, p50/p99 latency

Shutdown is graceful: SIGTERM (and SIGINT under ``repro serve``) stops
the accept loop, in-flight requests run to completion (handler threads
are joined), the micro-batcher flushes its queue, and the process exits
0.  Every request emits one structured JSON log line.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, TextIO, Tuple
from urllib.parse import parse_qsl, urlsplit

from .._version import __version__
from .app import BadRequest, ServiceApp

__all__ = ["ReproService"]

# Maximum accepted /select body; a feature dict is a few hundred bytes,
# so anything larger is a client bug, rejected before allocation.
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections drop after this long so a draining
    # server's thread-join is bounded by seconds, not by clients that
    # never hang up.
    timeout = 5.0
    # Status line, headers and body leave in separate small writes;
    # without TCP_NODELAY, Nagle + delayed ACK turns that into ~40ms
    # stalls per response on loopback keep-alive connections.
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------
    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002
        pass  # replaced by the structured per-request line

    def _reply(self, status: int, body: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        if self.server.draining:  # type: ignore[attr-defined]
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, obj) -> None:
        self._reply(
            status, json.dumps(obj, sort_keys=True).encode(),
            "application/json",
        )

    def _handle(self, endpoint: str, fn) -> None:
        t0 = time.perf_counter()
        status = 500
        try:
            status = fn()
        except BrokenPipeError:
            status = 499  # client went away mid-response
        except BadRequest as exc:
            status = 400
            self._reply_json(status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — must answer anyway
            status = 500
            self._reply_json(
                status,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
        finally:
            ms = (time.perf_counter() - t0) * 1000.0
            self.app.stats.observe(
                endpoint, ms, error=status >= 400
            )
            self.server.log_request_json({  # type: ignore[attr-defined]
                "ts": datetime.now(timezone.utc).isoformat(),
                "method": self.command,
                "path": self.path,
                "status": status,
                "dur_ms": round(ms, 3),
                "client": self.client_address[0],
            })

    # -- endpoints -----------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        url = urlsplit(self.path)
        if url.path == "/healthz":
            def run() -> int:
                self._reply_json(200, self.app.healthz())
                return 200
            self._handle("healthz", run)
        elif url.path == "/stats":
            def run() -> int:
                self._reply_json(200, self.app.stats_snapshot())
                return 200
            self._handle("stats", run)
        elif url.path == "/sweep":
            def run() -> int:
                params = dict(parse_qsl(url.query))
                body, ctype = self.app.sweep_query(params)
                self._reply(200, body, ctype)
                return 200
            self._handle("sweep", run)
        else:
            self._handle("unknown", self._not_found)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if urlsplit(self.path).path != "/select":
            self._handle("unknown", self._not_found)
            return

        def run() -> int:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                raise BadRequest("empty body; POST a JSON object")
            if length > MAX_BODY_BYTES:
                raise BadRequest(
                    f"body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                )
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise BadRequest(f"malformed JSON: {exc}") from exc
            self._reply_json(200, self.app.select(payload))
            return 200

        self._handle("select", run)

    def _not_found(self) -> int:
        self._reply_json(404, {
            "error": f"no such endpoint {self.path!r}",
            "endpoints": [
                "POST /select", "GET /sweep", "GET /healthz",
                "GET /stats",
            ],
        })
        return 404


class _Server(ThreadingHTTPServer):
    # Non-daemon handler threads + block_on_close: server_close() joins
    # every in-flight request — the drain half of graceful shutdown.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    # The stdlib default backlog of 5 drops SYNs when a client fleet
    # connects at once; the kernel retry then shows up as ~1s latency
    # outliers on first contact.
    request_queue_size = 128

    def __init__(self, address, app: ServiceApp,
                 access_log: Optional[TextIO]) -> None:
        self.app = app
        self.access_log = access_log
        self.draining = False
        self._log_lock = threading.Lock()
        super().__init__(address, _Handler)

    def log_request_json(self, record: dict) -> None:
        if self.access_log is None:
            return
        line = json.dumps(record, sort_keys=True)
        with self._log_lock:
            try:
                self.access_log.write(line + "\n")
                self.access_log.flush()
            except ValueError:
                pass  # log stream already closed during teardown


class ReproService:
    """Service lifecycle: bind, serve, drain.

    ``start()`` serves from a background thread (tests, benches);
    ``run()`` serves in the calling thread with signal-driven graceful
    shutdown (the ``repro serve`` foreground path).  Both finish by
    draining: stop accepting, join in-flight handlers, flush and stop
    the batcher.
    """

    def __init__(
        self,
        app: ServiceApp,
        host: str = "127.0.0.1",
        port: int = 0,
        access_log: Optional[TextIO] = None,
    ) -> None:
        self.app = app
        self._server = _Server((host, port), app, access_log)
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` — port 0 resolves at bind time."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- background mode (tests, benches) ------------------------------
    def start(self) -> "ReproService":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-accept", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful drain, callable from any thread; idempotent."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._server.draining = True
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join()
        self._server.server_close()  # joins in-flight handlers
        self.app.close()             # flushes the micro-batcher

    # -- foreground mode (repro serve) ---------------------------------
    def run(self, handle_signals=(signal.SIGTERM, signal.SIGINT)) -> None:
        """Serve until a signal arrives, then drain and return."""
        previous = {}

        def request_shutdown(signum, frame):
            # shutdown() must not run on the serve_forever thread, and
            # a signal handler does: hand it to a helper thread.
            self._server.draining = True
            threading.Thread(
                target=self._server.shutdown, daemon=True
            ).start()

        for signum in handle_signals:
            previous[signum] = signal.signal(signum, request_shutdown)
        try:
            self._server.serve_forever()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self._stopped.set()
            self._server.server_close()
            self.app.close()

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

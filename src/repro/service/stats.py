"""Thread-safe request statistics for the service (``GET /stats``).

Counters plus a fixed-size latency window per endpoint; percentiles are
computed on demand from the window, so a long-running server reports
*recent* p50/p99 rather than an all-time average that no longer
describes current behaviour.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

import numpy as np

__all__ = ["ServiceStats"]

# Latencies kept per endpoint.  4096 samples bound both memory and the
# percentile cost while still covering several seconds at the QPS the
# bench sustains.
LATENCY_WINDOW = 4096


class _Window:
    """Fixed-size ring of the most recent latency samples (ms)."""

    __slots__ = ("buf", "n", "i")

    def __init__(self) -> None:
        self.buf = np.empty(LATENCY_WINDOW, dtype=np.float64)
        self.n = 0   # filled samples
        self.i = 0   # next write slot

    def add(self, ms: float) -> None:
        self.buf[self.i] = ms
        self.i = (self.i + 1) % LATENCY_WINDOW
        self.n = min(self.n + 1, LATENCY_WINDOW)

    def percentiles(self) -> Dict[str, float]:
        if self.n == 0:
            return {"p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        window = self.buf[: self.n]
        p50, p99 = np.percentile(window, [50.0, 99.0])
        return {
            "p50_ms": round(float(p50), 3),
            "p99_ms": round(float(p99), 3),
            "max_ms": round(float(window.max()), 3),
        }


class ServiceStats:
    """Counters and latency windows shared by every handler thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._windows: Dict[str, _Window] = {}
        self._batch_flushes = 0
        self._batched_requests = 0
        self._max_batch = 0
        self._batch_sizes: List[int] = []
        self._cache_hits = 0
        self._cache_misses = 0

    # -- recording -----------------------------------------------------
    def observe(self, endpoint: str, ms: float,
                error: bool = False) -> None:
        """One handled request: latency plus outcome."""
        with self._lock:
            self._requests[endpoint] = (
                self._requests.get(endpoint, 0) + 1
            )
            if error:
                self._errors[endpoint] = (
                    self._errors.get(endpoint, 0) + 1
                )
            window = self._windows.get(endpoint)
            if window is None:
                window = self._windows[endpoint] = _Window()
            window.add(ms)

    def record_batch(self, size: int) -> None:
        """One batcher flush of ``size`` coalesced requests."""
        with self._lock:
            self._batch_flushes += 1
            self._batched_requests += size
            self._max_batch = max(self._max_batch, size)
            self._batch_sizes.append(size)
            if len(self._batch_sizes) > LATENCY_WINDOW:
                del self._batch_sizes[: -LATENCY_WINDOW]

    def record_cache(self, hit: bool) -> None:
        """One ``/sweep`` slice-cache probe."""
        with self._lock:
            if hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> dict:
        """One consistent JSON-safe view (the ``/stats`` body)."""
        with self._lock:
            endpoints = {}
            for name in sorted(self._requests):
                entry = {
                    "requests": self._requests[name],
                    "errors": self._errors.get(name, 0),
                }
                entry.update(self._windows[name].percentiles())
                endpoints[name] = entry
            flushes = self._batch_flushes
            mean_size = (
                self._batched_requests / flushes if flushes else 0.0
            )
            return {
                "uptime_s": round(
                    time.monotonic() - self._started, 3
                ),
                "endpoints": endpoints,
                "batcher": {
                    "flushes": flushes,
                    "requests": self._batched_requests,
                    "mean_size": round(mean_size, 3),
                    "max_size": self._max_batch,
                },
                "sweep_cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                },
            }

"""Long-running sweep/selector HTTP service (``repro serve``).

The service is a thin, stdlib-only layer over the batched library
paths: it loads a trained :class:`~repro.ml.FormatSelector` and a
:class:`~repro.core.table.SweepTable` corpus once at startup, then
serves format-selection queries (``POST /select``) through a
micro-batching request coalescer and sweep-table slices
(``GET /sweep``) straight from the loaded columns.  No modelling code
lives here — every answer is produced by the same
``select_batch``/``predict_gflops_batch``/``where`` calls a library
caller would make, and single-request responses are bit-identical to
the direct calls (see docs/service.md for the contract).
"""

from .app import BadRequest, ServiceApp, load_corpus, train_selector
from .batcher import MicroBatcher
from .http import ReproService
from .stats import ServiceStats

__all__ = [
    "BadRequest",
    "MicroBatcher",
    "ReproService",
    "ServiceApp",
    "ServiceStats",
    "load_corpus",
    "train_selector",
]

"""Micro-batching request coalescer.

Concurrent ``/select`` requests land here one at a time; the batcher
gathers everything that arrives within a short window (or until a max
batch size) and issues **one** batched evaluate per flush, demuxing the
per-request results back to the waiting handler threads.

The contract that makes this safe is the library's: the selector's
batch paths are bit-identical per entry to the scalar calls for every
batch size, so coalescing changes *when* work happens but never *what*
any request receives — a request batched with 63 strangers gets exactly
the bytes a solo call would have produced.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

__all__ = ["MicroBatcher"]


class _Pending:
    __slots__ = ("item", "event", "result", "error")

    def __init__(self, item) -> None:
        self.item = item
        self.event = threading.Event()
        self.result = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Coalesce concurrent calls into batched ``evaluate`` invocations.

    Parameters
    ----------
    evaluate:
        ``evaluate(items) -> results`` with ``len(results) ==
        len(items)`` and result ``i`` depending only on item ``i``.
    window_s:
        After the first request of a batch arrives, wait at most this
        long for company before flushing (0 flushes immediately with
        whatever has queued up — still a batch under concurrency).
    max_batch:
        Flush early once this many requests are waiting.
    stats:
        Optional :class:`~repro.service.stats.ServiceStats`; every
        flush records its batch size.
    """

    def __init__(
        self,
        evaluate: Callable[[Sequence], List],
        window_s: float = 0.002,
        max_batch: int = 64,
        stats=None,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._evaluate = evaluate
        self.window_s = window_s
        self.max_batch = max_batch
        self._stats = stats
        self._cond = threading.Condition()
        self._pending: List[_Pending] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # -- caller side ---------------------------------------------------
    def submit(self, item):
        """Block until the batch containing ``item`` is evaluated and
        return this item's result (exceptions from ``evaluate``
        propagate to every caller of the failed batch)."""
        pending = _Pending(item)
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._pending.append(pending)
            self._cond.notify_all()
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        """Flush whatever is queued, then stop the flusher thread.

        Idempotent; ``submit`` raises afterwards.  Called by the
        server's graceful-shutdown path after the listener has drained.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join()

    # -- flusher thread ------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:
                    return  # closed and drained
                if self.window_s > 0 and not self._closed:
                    # The first queued request opened the window; keep
                    # gathering until it elapses or the batch is full.
                    deadline = time.monotonic() + self.window_s
                    while (
                        len(self._pending) < self.max_batch
                        and not self._closed
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
            self._flush(batch)

    def _flush(self, batch: List[_Pending]) -> None:
        try:
            results = self._evaluate([p.item for p in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"evaluate returned {len(results)} results for "
                    f"{len(batch)} items"
                )
            for pending, result in zip(batch, results):
                pending.result = result
        except BaseException as exc:  # demuxed to every waiter
            for pending in batch:
                pending.error = exc
        finally:
            if self._stats is not None:
                self._stats.record_batch(len(batch))
            for pending in batch:
                pending.event.set()

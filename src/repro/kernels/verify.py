"""Correctness harness: every format kernel against scipy and each other."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.matrix import CSRMatrix
from ..formats.base import FORMAT_REGISTRY, FormatError
from .spmv import make_x

__all__ = ["verify_format", "verify_all_formats", "VerifyResult"]

RTOL = 1e-9
ATOL = 1e-11


class VerifyResult(dict):
    """Mapping format name -> 'ok' | 'refused: …' | 'FAILED: …'."""

    @property
    def all_ok(self) -> bool:
        return all(v == "ok" or v.startswith("refused") for v in self.values())


def verify_format(
    mat: CSRMatrix, format_name: str, x: Optional[np.ndarray] = None
) -> str:
    """Check one format's SpMV and CSR round-trip against the reference."""
    if x is None:
        x = make_x(mat.n_cols)
    reference = mat.to_scipy() @ x
    cls = FORMAT_REGISTRY[format_name]
    try:
        fmt = cls.from_csr(mat)
    except FormatError as exc:
        return f"refused: {exc}"
    y = fmt.spmv(x)
    if not np.allclose(y, reference, rtol=RTOL, atol=ATOL):
        worst = float(np.max(np.abs(y - reference)))
        return f"FAILED: spmv deviates (max abs err {worst:.3e})"
    back = fmt.to_csr()
    if not np.allclose(
        back.to_dense(), mat.to_dense(), rtol=RTOL, atol=ATOL
    ):
        return "FAILED: CSR round-trip deviates"
    return "ok"


def verify_all_formats(
    mat: CSRMatrix, names: Optional[Sequence[str]] = None
) -> VerifyResult:
    """Run :func:`verify_format` for all (or the given) registered formats."""
    x = make_x(mat.n_cols)
    out = VerifyResult()
    for name in names if names is not None else sorted(FORMAT_REGISTRY):
        out[name] = verify_format(mat, name, x)
    return out

"""Host SpMV execution, timing and correctness verification."""
from .spmv import spmv_reference, time_spmv, make_x, HostTiming
from .verify import verify_format, verify_all_formats, VerifyResult

"""Host SpMV execution and timing.

The device models *predict* performance; this module *runs* the NumPy
kernels on the host for correctness verification and for the
pytest-benchmark suite (bench_kernels), following the paper's measurement
protocol: warm-up, fixed iteration count, GFLOPS from useful flops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.matrix import CSRMatrix
from ..formats.base import SparseFormat, get_format

__all__ = ["spmv_reference", "HostTiming", "time_spmv", "make_x"]


def spmv_reference(mat: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Reference ``y = A @ x`` (delegates to the validated CSR kernel)."""
    return mat.spmv(x)


def make_x(n_cols: int, seed: int = 0) -> np.ndarray:
    """Deterministic dense input vector in [0.5, 1.5) (away from zero so
    cancellation does not mask kernel bugs)."""
    rng = np.random.default_rng(seed)
    return rng.random(n_cols) + 0.5


@dataclass(frozen=True)
class HostTiming:
    """Result of a host kernel timing run."""

    format: str
    iterations: int
    seconds_per_iter: float
    gflops: float
    nnz: int


def time_spmv(
    fmt: SparseFormat,
    x: Optional[np.ndarray] = None,
    iterations: int = 16,
    warmup: int = 2,
) -> HostTiming:
    """Time ``fmt.spmv`` on the host (paper protocol: warm-up + average).

    Useful flops are ``2 * nnz`` regardless of padding, matching how the
    paper converts time to GFLOPS.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    n_cols = fmt.shape[1]
    if x is None:
        x = make_x(n_cols)
    for _ in range(warmup):
        fmt.spmv(x)
    t0 = time.perf_counter()
    for _ in range(iterations):
        y = fmt.spmv(x)
    elapsed = (time.perf_counter() - t0) / iterations
    del y
    flops = 2.0 * fmt.nnz
    return HostTiming(
        format=fmt.name,
        iterations=iterations,
        seconds_per_iter=elapsed,
        gflops=flops / max(elapsed, 1e-12) / 1e9,
        nnz=fmt.nnz,
    )

"""Storage-format abstraction.

Every format in Section II-B is implemented as a :class:`SparseFormat`
subclass: conversion from CSR, a correct (NumPy-vectorised) SpMV kernel,
exact memory accounting, and the structural statistics the performance
model consumes (padding ratio, metadata volume, work partitioning quality).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch

__all__ = [
    "SparseFormat",
    "FormatStats",
    "FormatStatsBatch",
    "FormatError",
    "CapacityError",
    "register_format",
    "get_format",
    "available_formats",
    "FORMAT_REGISTRY",
]

INDEX_BYTES = 4
VALUE_BYTES = 8


class FormatError(ValueError):
    """A matrix cannot be represented in this format (e.g. padding blowup)."""


class CapacityError(FormatError):
    """The converted matrix exceeds a hard storage capacity (paper: VSL
    matrices overflowing the Alveo-U280 HBM channels)."""


@dataclass(frozen=True)
class FormatStats:
    """Structural statistics of a converted matrix.

    Attributes
    ----------
    stored_elements:
        Total value slots stored, including padding.
    padding_elements:
        Explicit zero slots added by the format.
    memory_bytes:
        Exact storage size (values + all metadata).
    metadata_bytes:
        Bytes spent on anything that is not a value (indices, pointers,
        descriptors).
    balance_aware:
        Whether the format's work distribution equalises nonzeros rather
        than rows (drives the imbalance penalty in the device model).
    simd_friendly:
        Whether the layout exposes contiguous per-row/per-chunk vector work.
    """

    stored_elements: int
    padding_elements: int
    memory_bytes: int
    metadata_bytes: int
    balance_aware: bool = False
    simd_friendly: bool = False

    @property
    def padding_ratio(self) -> float:
        """Padding slots as a fraction of *useful* nonzeros."""
        useful = self.stored_elements - self.padding_elements
        return self.padding_elements / useful if useful else 0.0


@dataclass
class FormatStatsBatch:
    """Columnar :class:`FormatStats` for a chunk of matrices.

    One entry per matrix of a :class:`~repro.core.matrix.CSRStructBatch`.
    Refusals are carried in-band: ``fail[i]`` marks matrices the format
    rejected and ``fail_reason[i]`` holds the exact :class:`FormatError`
    message the scalar path would have raised — the fused sweep replays
    both, so skip reasons stay bit-identical to the instance path.
    """

    stored_elements: np.ndarray
    padding_elements: np.ndarray
    memory_bytes: np.ndarray
    metadata_bytes: np.ndarray
    balance_aware: np.ndarray
    simd_friendly: np.ndarray
    fail: np.ndarray
    fail_reason: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.stored_elements = np.asarray(
            self.stored_elements, dtype=np.int64
        )
        self.padding_elements = np.asarray(
            self.padding_elements, dtype=np.int64
        )
        self.memory_bytes = np.asarray(self.memory_bytes, dtype=np.int64)
        self.metadata_bytes = np.asarray(self.metadata_bytes, dtype=np.int64)
        self.balance_aware = np.asarray(self.balance_aware, dtype=bool)
        self.simd_friendly = np.asarray(self.simd_friendly, dtype=bool)
        self.fail = np.asarray(self.fail, dtype=bool)

    def __len__(self) -> int:
        return len(self.stored_elements)

    @classmethod
    def empty(cls, n: int) -> "FormatStatsBatch":
        """All-zero batch of size ``n`` (filled entry by entry)."""
        return cls(
            stored_elements=np.zeros(n, dtype=np.int64),
            padding_elements=np.zeros(n, dtype=np.int64),
            memory_bytes=np.zeros(n, dtype=np.int64),
            metadata_bytes=np.zeros(n, dtype=np.int64),
            balance_aware=np.zeros(n, dtype=bool),
            simd_friendly=np.zeros(n, dtype=bool),
            fail=np.zeros(n, dtype=bool),
        )

    def put(self, i: int, st: FormatStats) -> None:
        """Store one scalar result at position ``i``."""
        self.stored_elements[i] = st.stored_elements
        self.padding_elements[i] = st.padding_elements
        self.memory_bytes[i] = st.memory_bytes
        self.metadata_bytes[i] = st.metadata_bytes
        self.balance_aware[i] = st.balance_aware
        self.simd_friendly[i] = st.simd_friendly

    def stats(self, i: int) -> FormatStats:
        """Scalar view of entry ``i``; replays the stored refusal."""
        if self.fail[i]:
            raise FormatError(self.fail_reason[i])
        return FormatStats(
            stored_elements=int(self.stored_elements[i]),
            padding_elements=int(self.padding_elements[i]),
            memory_bytes=int(self.memory_bytes[i]),
            metadata_bytes=int(self.metadata_bytes[i]),
            balance_aware=bool(self.balance_aware[i]),
            simd_friendly=bool(self.simd_friendly[i]),
        )


class SparseFormat(abc.ABC):
    """Abstract sparse storage format.

    Subclasses set ``name`` (registry key), ``category`` ("state-of-practice"
    or "research" — the paper's two groups) and ``device_classes`` (which of
    cpu/gpu/fpga the format is used on in Table II).
    """

    name: str = "abstract"
    category: str = "state-of-practice"
    device_classes = ("cpu", "gpu")

    @classmethod
    @abc.abstractmethod
    def from_csr(cls, mat: CSRMatrix) -> "SparseFormat":
        """Convert from CSR.  Raises :class:`FormatError` when infeasible."""

    @abc.abstractmethod
    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR (used by round-trip verification)."""

    @abc.abstractmethod
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Compute ``y = A @ x``."""

    @abc.abstractmethod
    def stats(self) -> FormatStats:
        """Structural statistics for the performance model."""

    @classmethod
    def stats_from_csr(cls, mat: CSRMatrix) -> FormatStats:
        """Analytic statistics: what ``from_csr(mat).stats()`` would return,
        without materialising the format.

        The scoring path (:meth:`repro.perfmodel.MatrixInstance.format_stats`)
        never touches a format's payload arrays, so built-in formats override
        this with closed-form computations over the CSR structure arrays —
        including the exact :class:`FormatError`/:class:`CapacityError`
        rejections ``from_csr`` would raise, with identical messages.  This
        default falls back to a full conversion so third-party subclasses
        keep working unchanged.
        """
        return cls.from_csr(mat).stats()

    @classmethod
    def stats_from_csr_batch(
        cls,
        batch: CSRStructBatch,
        matrices=None,
    ) -> FormatStatsBatch:
        """Batched analytic statistics for a whole structure chunk.

        The fused cold path calls this once per format per chunk.  Hot
        formats override it with vectorised column math over the stacked
        structure arrays; this default is the per-instance fallback — it
        scores each matrix through :meth:`stats_from_csr` and folds
        refusals into the batch's ``fail``/``fail_reason`` fields, so
        fallback formats produce the same columns (and the same error
        messages) as the scalar path, just one matrix at a time.

        ``matrices`` optionally supplies pre-materialised per-chunk
        :class:`CSRMatrix` views (the fused driver shares one set across
        every fallback format); otherwise each is built from the batch.
        """
        n = len(batch)
        out = FormatStatsBatch.empty(n)
        for i in range(n):
            mat = matrices[i] if matrices is not None else batch.matrix(i)
            try:
                out.put(i, cls.stats_from_csr(mat))
            except FormatError as exc:
                out.fail[i] = True
                out.fail_reason[i] = str(exc)
        return out

    @classmethod
    def stats_at_density_from_csr(
        cls, mat: CSRMatrix, cell_density: float
    ) -> FormatStats:
        """Analytic counterpart of the ``stats_at_density`` correction hook
        (density-rescaled statistics for scaled rectangular representatives).

        Formats exposing ``stats_at_density`` override this; the default
        materialises and delegates, so third-party hooks keep working.
        """
        fmt = cls.from_csr(mat)
        if hasattr(fmt, "stats_at_density"):
            return fmt.stats_at_density(cell_density)
        return fmt.stats()

    # Convenience -------------------------------------------------------
    @property
    @abc.abstractmethod
    def shape(self):
        """(n_rows, n_cols)."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Useful (non-padding) nonzeros."""

    def memory_bytes(self) -> int:
        return self.stats().memory_bytes

    def memory_mb(self) -> float:
        return self.memory_bytes() / (1024.0 * 1024.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        r, c = self.shape
        return f"<{type(self).__name__} {r}x{c} nnz={self.nnz}>"


FORMAT_REGISTRY: Dict[str, Type[SparseFormat]] = {}


def register_format(cls: Type[SparseFormat]) -> Type[SparseFormat]:
    """Class decorator adding a format to the global registry."""
    if cls.name in FORMAT_REGISTRY:
        raise ValueError(f"duplicate format name {cls.name!r}")
    FORMAT_REGISTRY[cls.name] = cls
    return cls


def get_format(name: str) -> Type[SparseFormat]:
    """Look up a format class by registry name."""
    try:
        return FORMAT_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown format {name!r}; available: "
            f"{sorted(FORMAT_REGISTRY)}"
        ) from None


def available_formats(
    device_class: Optional[str] = None, category: Optional[str] = None
) -> List[str]:
    """Registry names, optionally filtered by device class / category."""
    names = []
    for name, cls in sorted(FORMAT_REGISTRY.items()):
        if device_class is not None and device_class not in cls.device_classes:
            continue
        if category is not None and cls.category != category:
            continue
        names.append(name)
    return names

"""CSR5 — Liu & Vinter [20], Section II-B.5.

CSR5 re-tiles the nonzero stream into fixed-size 2-D tiles (omega lanes x
sigma depth) and performs a segmented sum with per-tile descriptors, making
the work distribution independent of row boundaries — the load-imbalance
cure for GPUs.  We store the exact tile descriptor metadata (bit flags,
per-tile row offsets) and execute the segmented-sum schedule tile-free but
nnz-partitioned, which is the same arithmetic in vectorised NumPy.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch, csr_from_coo
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatStats,
    FormatStatsBatch,
    SparseFormat,
    register_format,
)

__all__ = ["CSR5"]


@register_format
class CSR5(SparseFormat):
    """CSR5: tiled, nnz-balanced segmented-sum SpMV."""

    name = "CSR5"
    category = "research"
    device_classes = ("cpu", "gpu")
    partition_strategy = "nnz_split"

    OMEGA = 32   # tile lanes (GPU warp width in the paper's GPU targets)
    SIGMA = 16   # tile depth

    def __init__(self, mat: CSRMatrix, tile_ptr, tile_desc_bits):
        self.mat = mat
        self.tile_ptr = tile_ptr            # first row touched by each tile
        self.tile_desc_bits = tile_desc_bits  # descriptor payload (bytes)

    @classmethod
    def from_csr(cls, mat: CSRMatrix) -> "CSR5":
        tile_nnz = cls.OMEGA * cls.SIGMA
        n_tiles = (mat.nnz + tile_nnz - 1) // tile_nnz
        # tile_ptr[t]: row containing the first nonzero of tile t.
        starts = np.arange(n_tiles, dtype=np.int64) * tile_nnz
        tile_ptr = (
            np.searchsorted(mat.indptr, starts, side="right") - 1
            if n_tiles
            else np.zeros(0, dtype=np.int64)
        )
        # Descriptor: one bit flag per nonzero slot marking row starts, plus
        # y_offset/seg_offset words per tile lane (as in the CSR5 paper).
        desc_bits = n_tiles * (tile_nnz + 2 * cls.OMEGA * 32)
        return cls(mat, tile_ptr.astype(np.int64), int(desc_bits))

    @classmethod
    def stats_from_csr(cls, mat: CSRMatrix) -> FormatStats:
        """Closed-form stats: CSR storage plus per-tile descriptor maths."""
        tile_nnz = cls.OMEGA * cls.SIGMA
        n_tiles = (mat.nnz + tile_nnz - 1) // tile_nnz
        desc_bits = n_tiles * (tile_nnz + 2 * cls.OMEGA * 32)
        csr_meta = mat.nnz * INDEX_BYTES + (mat.n_rows + 1) * INDEX_BYTES
        desc_bytes = (desc_bits + 7) // 8 + n_tiles * INDEX_BYTES
        return FormatStats(
            stored_elements=mat.nnz,
            padding_elements=0,
            memory_bytes=mat.nnz * VALUE_BYTES + csr_meta + desc_bytes,
            metadata_bytes=csr_meta + desc_bytes,
            balance_aware=True,
            simd_friendly=True,
        )

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Pure column math: tile-descriptor stats for the whole chunk."""
        n = len(batch)
        nnz = batch.nnz
        tile_nnz = cls.OMEGA * cls.SIGMA
        n_tiles = (nnz + tile_nnz - 1) // tile_nnz
        desc_bits = n_tiles * (tile_nnz + 2 * cls.OMEGA * 32)
        csr_meta = (nnz + batch.n_rows + 1) * INDEX_BYTES
        desc_bytes = (desc_bits + 7) // 8 + n_tiles * INDEX_BYTES
        return FormatStatsBatch(
            stored_elements=nnz,
            padding_elements=np.zeros(n, dtype=np.int64),
            memory_bytes=nnz * VALUE_BYTES + csr_meta + desc_bytes,
            metadata_bytes=csr_meta + desc_bytes,
            balance_aware=np.ones(n, dtype=bool),
            simd_friendly=np.ones(n, dtype=bool),
            fail=np.zeros(n, dtype=bool),
        )

    def to_csr(self) -> CSRMatrix:
        return self.mat

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        mat = self.mat
        if mat.nnz == 0:
            return np.zeros(mat.n_rows)
        # Segmented sum over the flat nonzero stream: identical arithmetic
        # to the per-tile partial sums + carry propagation of CSR5.
        products = mat.data * x[mat.indices]
        csum = np.concatenate(([0.0], np.cumsum(products)))
        return csum[mat.indptr[1:]] - csum[mat.indptr[:-1]]

    def stats(self) -> FormatStats:
        nnz = self.mat.nnz
        csr_meta = nnz * INDEX_BYTES + (self.mat.n_rows + 1) * INDEX_BYTES
        desc_bytes = (self.tile_desc_bits + 7) // 8 + len(
            self.tile_ptr
        ) * INDEX_BYTES
        return FormatStats(
            stored_elements=nnz,
            padding_elements=0,
            memory_bytes=nnz * VALUE_BYTES + csr_meta + desc_bytes,
            metadata_bytes=csr_meta + desc_bytes,
            balance_aware=True,   # tiles split rows; work is nnz-balanced
            simd_friendly=True,   # fixed omega x sigma tiles
        )

    @property
    def shape(self):
        return self.mat.shape

    @property
    def nnz(self) -> int:
        return self.mat.nnz

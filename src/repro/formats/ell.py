"""ELLPACK and HYB formats — Section II-B.3.

ELL stores dense ``n_rows x max_row_len`` column/value arrays, padding every
shorter row — excellent SIMD behaviour for balanced matrices, catastrophic
padding for skewed ones.  HYB bounds the damage by storing the first ``k``
nonzeros per row in ELL and the overflow in COO (``k`` defaults to the
average row length, the heuristic the paper cites).
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch, csr_from_coo
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatError,
    FormatStats,
    FormatStatsBatch,
    SparseFormat,
    register_format,
)
from .coo import COO

__all__ = ["ELL", "HYB"]

# Conversion aborts when padding would inflate storage beyond this factor
# over CSR — mirroring real libraries refusing pathological ELL conversions.
DEFAULT_MAX_BLOWUP = 32.0


def _ell_arrays(mat: CSRMatrix, width: int):
    """Dense (n_rows, width) column-index and value arrays with padding.

    Padded slots hold column 0 and value 0: gathers stay in-bounds and the
    padded products vanish in the reduction.
    """
    n_rows = mat.n_rows
    cols = np.zeros((n_rows, width), dtype=np.int32)
    vals = np.zeros((n_rows, width), dtype=np.float64)
    lengths = np.minimum(mat.row_lengths, width)
    # Scatter each row's first `width` elements into the dense arrays.
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
    # Position within row: global index minus row start.
    starts = np.repeat(mat.indptr[:-1], lengths)
    offsets = np.arange(len(rows), dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths
    )
    src = starts + offsets
    cols[rows, offsets] = mat.indices[src]
    vals[rows, offsets] = mat.data[src]
    return cols, vals, lengths


@register_format
class ELL(SparseFormat):
    """ELLPACK: dense padded storage keyed by the longest row."""

    name = "ELL"
    category = "state-of-practice"
    device_classes = ("gpu",)
    # Every row costs the same padded width -> inherently balanced.
    partition_strategy = "element"

    def __init__(self, n_rows, n_cols, ell_cols, ell_vals, nnz):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.ell_cols = ell_cols
        self.ell_vals = ell_vals
        self._nnz = int(nnz)

    @classmethod
    def _padded_extent(cls, mat: CSRMatrix, max_blowup: float):
        """(width, stored slots) with the blowup gate applied — the single
        source of the rejection threshold and message for both the
        conversion and the analytic stats."""
        width = int(mat.row_lengths.max()) if mat.n_rows else 0
        stored = mat.n_rows * width
        if mat.nnz and stored > max_blowup * mat.nnz:
            raise FormatError(
                f"ELL padding blowup {stored / max(mat.nnz, 1):.1f}x exceeds "
                f"limit {max_blowup}x (max row {width}, "
                f"avg {mat.nnz / max(mat.n_rows, 1):.1f})"
            )
        return width, stored

    @classmethod
    def from_csr(
        cls, mat: CSRMatrix, max_blowup: float = DEFAULT_MAX_BLOWUP
    ) -> "ELL":
        width, _ = cls._padded_extent(mat, max_blowup)
        cols, vals, _ = _ell_arrays(mat, width)
        return cls(mat.n_rows, mat.n_cols, cols, vals, mat.nnz)

    @classmethod
    def stats_from_csr(
        cls, mat: CSRMatrix, max_blowup: float = DEFAULT_MAX_BLOWUP
    ) -> FormatStats:
        """Closed-form stats: stored = n_rows x max row length, no arrays."""
        _, stored = cls._padded_extent(mat, max_blowup)
        meta = stored * INDEX_BYTES
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - mat.nnz,
            memory_bytes=stored * (INDEX_BYTES + VALUE_BYTES),
            metadata_bytes=meta,
            balance_aware=True,
            simd_friendly=True,
        )

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Vectorised padded-extent stats; refusal messages are formatted
        with the exact scalar arithmetic of :meth:`_padded_extent`."""
        n = len(batch)
        nnz = batch.nnz
        width = np.zeros(n, dtype=np.int64)
        for i in range(n):
            seg = batch.lengths_of(i)
            if len(seg):
                width[i] = seg.max()
        stored = batch.n_rows * width
        fail = (nnz > 0) & (stored > DEFAULT_MAX_BLOWUP * nnz)
        out = FormatStatsBatch(
            stored_elements=stored,
            padding_elements=stored - nnz,
            memory_bytes=stored * (INDEX_BYTES + VALUE_BYTES),
            metadata_bytes=stored * INDEX_BYTES,
            balance_aware=np.ones(n, dtype=bool),
            simd_friendly=np.ones(n, dtype=bool),
            fail=fail,
        )
        for i in np.flatnonzero(fail):
            s, z, r = int(stored[i]), int(nnz[i]), int(batch.n_rows[i])
            out.fail_reason[int(i)] = (
                f"ELL padding blowup {s / max(z, 1):.1f}x exceeds "
                f"limit {DEFAULT_MAX_BLOWUP}x (max row {int(width[i])}, "
                f"avg {z / max(r, 1):.1f})"
            )
        return out

    def to_csr(self) -> CSRMatrix:
        mask = self.ell_vals != 0.0
        rows, slots = np.nonzero(mask)
        return csr_from_coo(
            self.n_rows, self.n_cols,
            rows, self.ell_cols[rows, slots], self.ell_vals[rows, slots],
            sum_duplicates=False,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.ell_cols.size == 0:
            return np.zeros(self.n_rows)
        # One fused gather-multiply-reduce across the dense slot axis: the
        # exact data-parallel schedule ELL exists to enable.
        return (self.ell_vals * x[self.ell_cols]).sum(axis=1)

    def stats(self) -> FormatStats:
        stored = self.ell_vals.size
        meta = stored * INDEX_BYTES
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - self._nnz,
            memory_bytes=stored * (INDEX_BYTES + VALUE_BYTES),
            metadata_bytes=meta,
            balance_aware=True,  # every row costs the same (padded) work
            simd_friendly=True,
        )

    @property
    def shape(self):
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self._nnz


@register_format
class HYB(SparseFormat):
    """Hybrid ELL + COO split at ``k`` nonzeros per row (cuSPARSE-9.2 HYB)."""

    name = "HYB"
    category = "state-of-practice"
    device_classes = ("gpu",)
    partition_strategy = "element"

    def __init__(self, ell_part: ELL, coo_part: COO, k: int):
        self.ell_part = ell_part
        self.coo_part = coo_part
        self.k = int(k)
        if ell_part.shape != coo_part.shape:
            raise ValueError("ELL and COO parts must agree on shape")

    @classmethod
    def from_csr(cls, mat: CSRMatrix, k: int = None) -> "HYB":
        if k is None:
            # Paper heuristic: threshold at the average row length.
            k = max(1, int(round(mat.nnz / max(mat.n_rows, 1))))
        k = int(k)
        lengths = mat.row_lengths
        ell_len = np.minimum(lengths, k)
        ell_width = int(ell_len.max()) if mat.n_rows else 0
        cols, vals, _ = _ell_arrays(mat, ell_width)
        ell_nnz = int(ell_len.sum())
        ell_part = ELL(mat.n_rows, mat.n_cols, cols, vals, ell_nnz)

        # Overflow elements (position >= k within their row) go to COO.
        rows_all = np.repeat(
            np.arange(mat.n_rows, dtype=np.int64), lengths
        )
        pos = np.arange(mat.nnz, dtype=np.int64) - np.repeat(
            mat.indptr[:-1], lengths
        )
        over = pos >= k
        coo_part = COO(
            mat.n_rows, mat.n_cols,
            rows_all[over], mat.indices[over], mat.data[over],
        )
        return cls(ell_part, coo_part, k)

    @classmethod
    def stats_from_csr(cls, mat: CSRMatrix, k: int = None) -> FormatStats:
        """Closed-form ELL-part + COO-part stats at the split threshold."""
        if k is None:
            k = max(1, int(round(mat.nnz / max(mat.n_rows, 1))))
        k = int(k)
        ell_len = np.minimum(mat.row_lengths, k)
        ell_width = int(ell_len.max()) if mat.n_rows else 0
        ell_nnz = int(ell_len.sum())
        ell_stored = mat.n_rows * ell_width
        coo_nnz = mat.nnz - ell_nnz
        ell_meta = ell_stored * INDEX_BYTES
        coo_meta = 2 * coo_nnz * INDEX_BYTES
        return FormatStats(
            stored_elements=ell_stored + coo_nnz,
            padding_elements=ell_stored - ell_nnz,
            memory_bytes=(
                ell_stored * (INDEX_BYTES + VALUE_BYTES)
                + coo_meta + coo_nnz * VALUE_BYTES
            ),
            metadata_bytes=ell_meta + coo_meta,
            balance_aware=True,
            simd_friendly=True,
        )

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Vectorised split-threshold stats over the chunk (never refuses)."""
        n = len(batch)
        nnz = batch.nnz
        k = np.maximum(
            1, np.round(nnz / np.maximum(batch.n_rows, 1)).astype(np.int64)
        )
        ell_width = np.zeros(n, dtype=np.int64)
        ell_nnz = np.zeros(n, dtype=np.int64)
        for i in range(n):
            seg = batch.lengths_of(i)
            if len(seg):
                clipped = np.minimum(seg, k[i])
                ell_width[i] = clipped.max()
                ell_nnz[i] = clipped.sum()
        ell_stored = batch.n_rows * ell_width
        coo_nnz = nnz - ell_nnz
        ell_meta = ell_stored * INDEX_BYTES
        coo_meta = 2 * coo_nnz * INDEX_BYTES
        return FormatStatsBatch(
            stored_elements=ell_stored + coo_nnz,
            padding_elements=ell_stored - ell_nnz,
            memory_bytes=(
                ell_stored * (INDEX_BYTES + VALUE_BYTES)
                + coo_meta + coo_nnz * VALUE_BYTES
            ),
            metadata_bytes=ell_meta + coo_meta,
            balance_aware=np.ones(n, dtype=bool),
            simd_friendly=np.ones(n, dtype=bool),
            fail=np.zeros(n, dtype=bool),
        )

    def to_csr(self) -> CSRMatrix:
        a = self.ell_part.to_csr()
        b = self.coo_part.to_csr()
        rows = np.concatenate(
            [
                np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_lengths),
                np.repeat(np.arange(b.n_rows, dtype=np.int64), b.row_lengths),
            ]
        )
        cols = np.concatenate([a.indices, b.indices])
        vals = np.concatenate([a.data, b.data])
        return csr_from_coo(
            a.n_rows, a.n_cols, rows, cols, vals, sum_duplicates=False
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        return self.ell_part.spmv(x) + self.coo_part.spmv(x)

    def stats(self) -> FormatStats:
        e = self.ell_part.stats()
        c = self.coo_part.stats()
        return FormatStats(
            stored_elements=e.stored_elements + c.stored_elements,
            padding_elements=e.padding_elements,
            memory_bytes=e.memory_bytes + c.memory_bytes,
            metadata_bytes=e.metadata_bytes + c.metadata_bytes,
            balance_aware=True,
            simd_friendly=True,
        )

    @property
    def shape(self):
        return self.ell_part.shape

    @property
    def nnz(self) -> int:
        return self.ell_part.nnz + self.coo_part.nnz

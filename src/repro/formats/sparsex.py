"""SparseX-style substructure compression — Elafrou et al. [28].

SparseX scans the matrix for dense substructures (horizontal / vertical /
diagonal / block runs) and encodes each with minimal metadata, directly
attacking memory-bandwidth intensity.  We implement the detector that
dominates in the paper's feature space — horizontal unit runs, driven by
``avg_num_neigh`` — with singletons as length-1 runs.  Encoded column
metadata shrinks from 4 bytes per nonzero to ~6 bytes per *run*, which is
where the large-matrix advantage in Fig 7 comes from.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatStats,
    SparseFormat,
    register_format,
)

__all__ = ["SparseX"]

# Encoded unit header: 4-byte start column + 1-byte type + 1-byte length.
UNIT_HEADER_BYTES = 6


@register_format
class SparseX(SparseFormat):
    """Horizontal-run + singleton substructure encoding of a sparse matrix."""

    name = "SparseX"
    category = "research"
    device_classes = ("cpu",)
    partition_strategy = "nnz_row"
    MAX_RUN = 255  # length field is one byte

    def __init__(self, mat, run_id, run_start, run_len):
        self.mat = mat
        self.run_id = run_id        # run index of every nonzero
        self.run_start = run_start  # start column per run
        self.run_len = run_len      # length per run (1 = singleton)

    @classmethod
    def from_csr(cls, mat: CSRMatrix) -> "SparseX":
        if mat.nnz == 0:
            z = np.zeros(0, dtype=np.int64)
            return cls(mat, z, z, z)
        rows = np.repeat(
            np.arange(mat.n_rows, dtype=np.int64), mat.row_lengths
        )
        # A new run starts at row changes, column gaps > 1, or when the
        # current run hits the 1-byte length limit.
        col_diff = np.diff(mat.indices.astype(np.int64))
        new_run = np.concatenate(
            ([True], (np.diff(rows) != 0) | (col_diff != 1))
        )
        run_id = np.cumsum(new_run) - 1
        # Enforce MAX_RUN by splitting long runs: position within run.
        pos = np.arange(mat.nnz, dtype=np.int64)
        run_first = np.concatenate(([0], np.nonzero(new_run)[0][1:]))
        # recompute: index of run start for each element
        start_of = np.zeros(mat.nnz, dtype=np.int64)
        starts_idx = np.nonzero(new_run)[0]
        start_of = starts_idx[run_id]
        within = pos - start_of
        extra_break = within % cls.MAX_RUN == 0
        new_run2 = new_run | (extra_break & (within > 0))
        run_id = np.cumsum(new_run2) - 1
        starts_idx = np.nonzero(new_run2)[0]
        run_start = mat.indices[starts_idx].astype(np.int64)
        run_len = np.diff(np.concatenate((starts_idx, [mat.nnz])))
        return cls(mat, run_id, run_start, run_len)

    @classmethod
    def stats_from_csr(cls, mat: CSRMatrix) -> FormatStats:
        """Closed-form stats from the encoded-run count.

        A maximal horizontal run of length L encodes as ``ceil(L / MAX_RUN)``
        units (the detector splits at the 1-byte length limit), so the run
        count follows from row boundaries and column gaps alone.
        """
        if mat.nnz == 0:
            n_runs = 0
        else:
            rows = np.repeat(
                np.arange(mat.n_rows, dtype=np.int64), mat.row_lengths
            )
            col_diff = np.diff(mat.indices.astype(np.int64))
            new_run = np.concatenate(
                ([True], (np.diff(rows) != 0) | (col_diff != 1))
            )
            starts_idx = np.nonzero(new_run)[0]
            base_len = np.diff(np.concatenate((starts_idx, [mat.nnz])))
            n_runs = int((-(-base_len // cls.MAX_RUN)).sum())
        meta = (
            n_runs * UNIT_HEADER_BYTES
            + (mat.n_rows + 1) * INDEX_BYTES
        )
        return FormatStats(
            stored_elements=mat.nnz,
            padding_elements=0,
            memory_bytes=mat.nnz * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=False,
            simd_friendly=True,
        )

    def to_csr(self) -> CSRMatrix:
        return self.mat

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        mat = self.mat
        if mat.nnz == 0:
            return np.zeros(mat.n_rows)
        # Reconstruct columns from run metadata (the decode step of the
        # SparseX executor), then run the usual segmented reduction.
        starts_idx = np.concatenate(
            ([0], np.cumsum(self.run_len)[:-1])
        )
        within = np.arange(mat.nnz, dtype=np.int64) - starts_idx[self.run_id]
        cols = self.run_start[self.run_id] + within
        products = mat.data * x[cols]
        csum = np.concatenate(([0.0], np.cumsum(products)))
        return csum[mat.indptr[1:]] - csum[mat.indptr[:-1]]

    def stats(self) -> FormatStats:
        nnz = self.mat.nnz
        n_runs = len(self.run_len)
        meta = (
            n_runs * UNIT_HEADER_BYTES
            + (self.mat.n_rows + 1) * INDEX_BYTES
        )
        return FormatStats(
            stored_elements=nnz,
            padding_elements=0,
            memory_bytes=nnz * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=False,
            simd_friendly=True,  # runs vectorise trivially
        )

    def compression_ratio(self) -> float:
        """Format bytes relative to plain CSR (< 1 means compressed)."""
        csr_bytes = self.mat.memory_bytes()
        return self.memory_bytes() / csr_bytes if csr_bytes else 1.0

    @property
    def shape(self):
        return self.mat.shape

    @property
    def nnz(self) -> int:
        return self.mat.nnz

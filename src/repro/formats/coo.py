"""Coordinate format (COO) — Section II-B.1.

Three ``nnz``-length arrays (row, column, value).  Trivially load-balanced
(work can be split anywhere) but carries the heaviest metadata: 8 index
bytes per nonzero versus CSR's amortised ~4.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch, csr_from_coo
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatStats,
    FormatStatsBatch,
    SparseFormat,
    register_format,
)

__all__ = ["COO"]


@register_format
class COO(SparseFormat):
    """COO: ``(row_idx, col_idx, value)`` triplets sorted by row."""

    name = "COO"
    category = "state-of-practice"
    device_classes = ("cpu", "gpu")
    partition_strategy = "element"

    def __init__(self, n_rows, n_cols, rows, cols, vals):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = np.ascontiguousarray(rows, dtype=np.int32)
        self.cols = np.ascontiguousarray(cols, dtype=np.int32)
        self.vals = np.ascontiguousarray(vals, dtype=np.float64)
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise ValueError("COO arrays must have equal length")

    @classmethod
    def from_csr(cls, mat: CSRMatrix) -> "COO":
        rows = np.repeat(
            np.arange(mat.n_rows, dtype=np.int32),
            mat.row_lengths,
        )
        return cls(mat.n_rows, mat.n_cols, rows, mat.indices, mat.data)

    def to_csr(self) -> CSRMatrix:
        return csr_from_coo(
            self.n_rows, self.n_cols, self.rows, self.cols, self.vals,
            sum_duplicates=False,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        # Scatter-add of per-element products: bincount performs the whole
        # atomic-accumulation pattern in one vectorised pass.
        if self.nnz == 0:
            return np.zeros(self.n_rows)
        return np.bincount(
            self.rows, weights=self.vals * x[self.cols],
            minlength=self.n_rows,
        )

    def stats(self) -> FormatStats:
        return self._coo_stats(self.nnz)

    @classmethod
    def stats_from_csr(cls, mat: CSRMatrix) -> FormatStats:
        return cls._coo_stats(mat.nnz)

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Pure column math: triplet storage for the chunk (never refuses)."""
        n = len(batch)
        nnz = batch.nnz
        meta = 2 * nnz * INDEX_BYTES
        return FormatStatsBatch(
            stored_elements=nnz,
            padding_elements=np.zeros(n, dtype=np.int64),
            memory_bytes=meta + nnz * VALUE_BYTES,
            metadata_bytes=meta,
            balance_aware=np.ones(n, dtype=bool),
            simd_friendly=np.zeros(n, dtype=bool),
            fail=np.zeros(n, dtype=bool),
        )

    @staticmethod
    def _coo_stats(nnz: int) -> FormatStats:
        meta = 2 * nnz * INDEX_BYTES
        return FormatStats(
            stored_elements=nnz,
            padding_elements=0,
            memory_bytes=meta + nnz * VALUE_BYTES,
            metadata_bytes=meta,
            balance_aware=True,   # elements can be split evenly anywhere
            simd_friendly=False,  # scattered row writes
        )

    @property
    def shape(self):
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return len(self.vals)

"""VSL — the Vitis Sparse Library CSC variant for the Alveo-U280 FPGA
(Section II-B.4).

The matrix is split into 2-D partitions: column blocks sized to the
on-chip ``x``-buffer, each divided into 16 row groups fed by dedicated HBM
channels.  Inside a partition every column's nonzeros are zero-padded to a
multiple of the floating-point accumulation latency so the pipeline never
stalls.  The padding is the format's Achilles heel: highly sparse columns
cost a full latency-depth slot each, and when the padded stream exceeds the
HBM channels' capacity the conversion *fails* — exactly the behaviour the
paper reports for large sparse matrices on the Alveo.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, csr_from_coo
from .base import (
    VALUE_BYTES,
    CapacityError,
    FormatStats,
    SparseFormat,
    register_format,
)

__all__ = ["VSL"]


@register_format
class VSL(SparseFormat):
    """Vitis-style 2-D partitioned CSC with latency padding."""

    name = "VSL"
    category = "state-of-practice"
    device_classes = ("fpga",)
    partition_strategy = "lockstep_channel"

    N_CHANNELS = 16        # compute units / HBM channel groups
    ACC_LATENCY = 8        # double-precision accumulation pipeline depth
    COL_BLOCK = 4096       # columns per partition (x-buffer capacity)
    ENTRY_BYTES = VALUE_BYTES + 4  # value + packed (row-in-group, col) index

    def __init__(self, n_rows, n_cols, rows, cols, vals, padded_slots,
                 partition_counts=None):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.padded_slots = int(padded_slots)
        # nnz count per occupied (column-block, channel, column) partition
        # cell; kept for density-rescaled padding estimates.
        self.partition_counts = (
            partition_counts
            if partition_counts is not None
            else np.zeros(0, dtype=np.int64)
        )

    @classmethod
    def from_csr(
        cls, mat: CSRMatrix, capacity_bytes: int = None
    ) -> "VSL":
        """Convert, raising :class:`CapacityError` if the padded stream
        would not fit in ``capacity_bytes`` of HBM."""
        # CSC view: transpose gives column-sorted elements.
        t = mat.transpose()  # rows of t = columns of mat
        col_lengths_full = t.row_lengths  # nnz per original column

        # Padded slot count: within each (column block x row group)
        # partition, each non-empty column pads to a multiple of the
        # accumulation latency.  Count per-partition column populations.
        if mat.nnz:
            rows_of_elem = np.repeat(
                np.arange(t.n_rows, dtype=np.int64), col_lengths_full
            )  # original column of each element
            cols_of_elem = t.indices.astype(np.int64)  # original row
            group = cols_of_elem % cls.N_CHANNELS
            block = rows_of_elem // cls.COL_BLOCK
            # population per (block, group, column)
            key = (
                block * (cls.N_CHANNELS * (mat.n_cols + 1))
                + group * (mat.n_cols + 1)
                + rows_of_elem
            )
            key.sort()
            boundaries = np.concatenate(([True], np.diff(key) != 0))
            counts = np.diff(
                np.concatenate((np.nonzero(boundaries)[0], [len(key)]))
            )
            lat = cls.ACC_LATENCY
            padded = (
                np.ceil(counts / lat).astype(np.int64) * lat
            ).sum()
        else:
            counts = np.zeros(0, dtype=np.int64)
            padded = 0

        cls._check_capacity(padded, capacity_bytes)

        rows_out = t.indices.astype(np.int32)  # original row index
        cols_out = np.repeat(
            np.arange(t.n_rows, dtype=np.int32), col_lengths_full
        )
        return cls(
            mat.n_rows, mat.n_cols, rows_out, cols_out, t.data.copy(),
            padded, partition_counts=counts,
        )

    @classmethod
    def _check_capacity(cls, padded: int, capacity_bytes) -> None:
        """The HBM capacity gate — single source of threshold and message
        for both the conversion and the analytic stats."""
        if capacity_bytes is not None and padded * cls.ENTRY_BYTES > capacity_bytes:
            raise CapacityError(
                f"VSL padded stream {padded * cls.ENTRY_BYTES / 2**30:.2f} GiB "
                f"exceeds HBM capacity {capacity_bytes / 2**30:.2f} GiB"
            )

    @classmethod
    def _padded_slots_of_csr(cls, mat: CSRMatrix) -> int:
        """Padded slot count straight from the CSR arrays (no transpose).

        Each element's partition cell is keyed on (column block, row group,
        column) exactly as ``from_csr`` keys it; the sorted key multiset —
        and hence the per-cell populations and latency padding — is
        identical whether elements are visited in CSC or CSR order.
        """
        if mat.nnz == 0:
            return 0
        rows = np.repeat(
            np.arange(mat.n_rows, dtype=np.int64), mat.row_lengths
        )
        cols = mat.indices.astype(np.int64)
        key = (
            (cols // cls.COL_BLOCK) * (cls.N_CHANNELS * (mat.n_cols + 1))
            + (rows % cls.N_CHANNELS) * (mat.n_cols + 1)
            + cols
        )
        key.sort()
        boundaries = np.concatenate(([True], np.diff(key) != 0))
        counts = np.diff(
            np.concatenate((np.nonzero(boundaries)[0], [len(key)]))
        )
        lat = cls.ACC_LATENCY
        return int((np.ceil(counts / lat).astype(np.int64) * lat).sum())

    @classmethod
    def stats_from_csr(
        cls, mat: CSRMatrix, capacity_bytes: int = None
    ) -> FormatStats:
        """Closed-form stats (and the same :class:`CapacityError` gate) from
        per-partition column populations."""
        padded = cls._padded_slots_of_csr(mat)
        cls._check_capacity(padded, capacity_bytes)
        nnz = mat.nnz
        stored = max(padded, nnz)
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - nnz,
            memory_bytes=stored * cls.ENTRY_BYTES,
            metadata_bytes=stored * (cls.ENTRY_BYTES - VALUE_BYTES),
            balance_aware=True,
            simd_friendly=True,
        )

    def to_csr(self) -> CSRMatrix:
        return csr_from_coo(
            self.n_rows, self.n_cols, self.rows, self.cols, self.vals,
            sum_duplicates=False,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if len(self.vals) == 0:
            return np.zeros(self.n_rows)
        # Column-major streaming accumulation, as the 16 CUs perform it.
        return np.bincount(
            self.rows, weights=self.vals * x[self.cols],
            minlength=self.n_rows,
        )

    def stats(self) -> FormatStats:
        nnz = len(self.vals)
        stored = max(self.padded_slots, nnz)
        mem = stored * self.ENTRY_BYTES
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - nnz,
            memory_bytes=mem,
            metadata_bytes=stored * (self.ENTRY_BYTES - VALUE_BYTES),
            balance_aware=True,   # channels stream independently
            simd_friendly=True,
        )

    @classmethod
    def expected_padding_ratio(cls, cell_density: float) -> float:
        """Expected padded-over-useful slot ratio at a given per-partition-
        cell density (nonzeros per (column, channel) cell), under a Poisson
        occupancy model.

        Used when the structure statistics come from a down-scaled
        *rectangular* representative whose per-column density does not
        match the declared matrix (scaling measured cell counts would
        concentrate mass instead of occupying more cells).
        """
        lam = float(cell_density)
        if lam <= 0:
            return 1.0
        lat = cls.ACC_LATENCY
        # E[ceil(X / lat) * lat] for X ~ Poisson(lam), truncated far into
        # the tail.
        kmax = max(int(lam + 10.0 * np.sqrt(lam) + lat), 4 * lat)
        k = np.arange(1, kmax + 1)
        log_p = k * np.log(lam) - lam - np.cumsum(np.log(k))
        p = np.exp(log_p)
        padded = (np.ceil(k / lat) * lat * p).sum()
        return float(max(padded / lam, 1.0))

    def stats_at_density(self, cell_density: float) -> FormatStats:
        """Statistics re-estimated at a declared per-cell density."""
        nnz = len(self.vals)
        if nnz == 0:
            return self.stats()
        ratio = self.expected_padding_ratio(cell_density)
        stored = int(round(nnz * ratio))
        mem = stored * self.ENTRY_BYTES
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - nnz,
            memory_bytes=mem,
            metadata_bytes=stored * (self.ENTRY_BYTES - VALUE_BYTES),
            balance_aware=True,
            simd_friendly=True,
        )

    @classmethod
    def stats_at_density_from_csr(
        cls, mat: CSRMatrix, cell_density: float
    ) -> FormatStats:
        """Analytic :meth:`stats_at_density`: the rescaled estimate depends
        only on nnz and the Poisson padding ratio, never on the arrays."""
        nnz = mat.nnz
        if nnz == 0:
            return cls.stats_from_csr(mat)
        ratio = cls.expected_padding_ratio(cell_density)
        stored = int(round(nnz * ratio))
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - nnz,
            memory_bytes=stored * cls.ENTRY_BYTES,
            metadata_bytes=stored * (cls.ENTRY_BYTES - VALUE_BYTES),
            balance_aware=True,
            simd_friendly=True,
        )

    @property
    def shape(self):
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return len(self.vals)

"""Vendor 'state-of-practice' library implementations (Table II).

MKL Inspector-Executor, AOCL-Sparse, the ARM Performance Library and
cuSPARSE all ship CSR(/COO) kernels with an analysis ("inspector") phase
that picks a balanced, vectorised schedule.  Storage-wise they are CSR/COO;
what distinguishes them is the kernel schedule, which the device model
reads from the ``balance_aware`` / ``simd_friendly`` flags and the
``partition_strategy`` attribute.
"""

from __future__ import annotations

from .base import register_format
from .coo import COO
from .csr import _CSRBase

__all__ = ["MKLInspectorExecutor", "AOCLSparse", "ARMPLSparse",
           "CuSparseCSR", "CuSparseCOO"]


@register_format
class MKLInspectorExecutor(_CSRBase):
    """Intel MKL Inspector-Executor CSR ("MKL-IE").

    The inspector analyses the row-length distribution and installs a
    balanced, vectorised executor — CSR storage with a tuned schedule.
    """

    name = "MKL-IE"
    category = "state-of-practice"
    device_classes = ("cpu",)
    partition_strategy = "nnz_row"
    STATS_FLAGS = {"balance_aware": True, "simd_friendly": True}


@register_format
class AOCLSparse(_CSRBase):
    """AMD AOCL-Sparse inspector-executor CSR."""

    name = "AOCL-Sparse"
    category = "state-of-practice"
    device_classes = ("cpu",)
    partition_strategy = "nnz_row"
    STATS_FLAGS = {"balance_aware": True, "simd_friendly": True}


@register_format
class ARMPLSparse(_CSRBase):
    """ARM Performance Libraries structure-optimised CSR."""

    name = "ARMPL"
    category = "state-of-practice"
    device_classes = ("cpu",)
    partition_strategy = "nnz_row"
    STATS_FLAGS = {"balance_aware": True, "simd_friendly": True}


@register_format
class CuSparseCSR(_CSRBase):
    """NVIDIA cuSPARSE-11 CSR SpMV (warp-per-row with dynamic grouping)."""

    name = "cuSPARSE-CSR"
    category = "state-of-practice"
    device_classes = ("gpu",)
    partition_strategy = "warp_row"
    STATS_FLAGS = {"balance_aware": False, "simd_friendly": True}


@register_format
class CuSparseCOO(COO):
    """NVIDIA cuSPARSE-11 COO SpMV (element-balanced atomic accumulation)."""

    name = "cuSPARSE-COO"
    category = "state-of-practice"
    device_classes = ("gpu",)

"""BCSR (blocked CSR) — register-blocking format from the related work
(Im/Yelick/Vuduc SPARSITY & OSKI line).

Nonzeros are grouped into dense ``b x b`` tiles addressed by block row
pointers and block column indices; zero fill inside tiles buys amortised
index metadata and register-level reuse.  Conversion fails when fill-in
explodes (scattered matrices).
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, csr_from_coo
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatError,
    FormatStats,
    SparseFormat,
    register_format,
)

__all__ = ["BCSR"]


@register_format
class BCSR(SparseFormat):
    """Blocked CSR with square ``b x b`` tiles (default b=2)."""

    name = "BCSR"
    category = "state-of-practice"
    device_classes = ("cpu",)
    partition_strategy = "row_block"
    DEFAULT_BLOCK = 2
    DEFAULT_MAX_FILL = 8.0

    def __init__(self, n_rows, n_cols, b, block_rows, block_cols, blocks,
                 nnz):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.b = int(b)
        self.block_rows = block_rows  # block-row index per tile
        self.block_cols = block_cols  # block-col index per tile
        self.blocks = blocks          # (n_blocks, b, b) dense tiles
        self._nnz = int(nnz)

    @classmethod
    def from_csr(
        cls,
        mat: CSRMatrix,
        b: int = DEFAULT_BLOCK,
        max_fill: float = DEFAULT_MAX_FILL,
    ) -> "BCSR":
        if b < 1:
            raise ValueError("block size must be >= 1")
        if mat.nnz == 0:
            return cls(
                mat.n_rows, mat.n_cols, b,
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                np.zeros((0, b, b)), 0,
            )
        rows = np.repeat(
            np.arange(mat.n_rows, dtype=np.int64), mat.row_lengths
        )
        cols = mat.indices.astype(np.int64)
        br, bc = rows // b, cols // b
        n_block_cols = (mat.n_cols + b - 1) // b
        keys = br * n_block_cols + bc
        order = np.argsort(keys, kind="stable")
        keys_s = keys[order]
        uniq_mask = np.concatenate(([True], np.diff(keys_s) != 0))
        n_blocks = int(uniq_mask.sum())
        cls._check_fill(n_blocks, b, mat.nnz, max_fill)
        block_of = np.cumsum(uniq_mask) - 1
        uniq_keys = keys_s[uniq_mask]
        blocks = np.zeros((n_blocks, b, b), dtype=np.float64)
        blocks[
            block_of, rows[order] % b, cols[order] % b
        ] = mat.data[order]
        return cls(
            mat.n_rows, mat.n_cols, b,
            (uniq_keys // n_block_cols).astype(np.int64),
            (uniq_keys % n_block_cols).astype(np.int64),
            blocks, mat.nnz,
        )

    @classmethod
    def _check_fill(
        cls, n_blocks: int, b: int, nnz: int, max_fill: float
    ) -> None:
        """The fill-in gate — single source of threshold and message for
        both the conversion and the analytic stats.  Requires ``nnz > 0``."""
        fill = n_blocks * b * b / nnz
        if fill > max_fill:
            raise FormatError(
                f"BCSR fill-in {fill:.1f}x exceeds limit {max_fill}x "
                f"({n_blocks} blocks of {b}x{b} for {nnz} nnz)"
            )

    @classmethod
    def stats_from_csr(
        cls,
        mat: CSRMatrix,
        b: int = DEFAULT_BLOCK,
        max_fill: float = DEFAULT_MAX_FILL,
    ) -> FormatStats:
        """Closed-form stats from the occupied-tile count (no tile arrays)."""
        if b < 1:
            raise ValueError("block size must be >= 1")
        n_block_rows = (mat.n_rows + b - 1) // b
        if mat.nnz == 0:
            meta = (n_block_rows + 1) * INDEX_BYTES
            return FormatStats(
                stored_elements=0, padding_elements=0,
                memory_bytes=meta, metadata_bytes=meta,
                balance_aware=False, simd_friendly=True,
            )
        rows = np.repeat(
            np.arange(mat.n_rows, dtype=np.int64), mat.row_lengths
        )
        n_block_cols = (mat.n_cols + b - 1) // b
        keys = (rows // b) * n_block_cols + mat.indices.astype(np.int64) // b
        n_blocks = len(np.unique(keys))
        cls._check_fill(n_blocks, b, mat.nnz, max_fill)
        stored = n_blocks * b * b
        meta = n_blocks * INDEX_BYTES + (n_block_rows + 1) * INDEX_BYTES
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - mat.nnz,
            memory_bytes=stored * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=False,
            simd_friendly=True,
        )

    def to_csr(self) -> CSRMatrix:
        if len(self.blocks) == 0:
            return csr_from_coo(self.n_rows, self.n_cols, [], [], [])
        blk, i, j = np.nonzero(self.blocks != 0.0)
        rows = self.block_rows[blk] * self.b + i
        cols = self.block_cols[blk] * self.b + j
        valid = (rows < self.n_rows) & (cols < self.n_cols)
        return csr_from_coo(
            self.n_rows, self.n_cols,
            rows[valid], cols[valid], self.blocks[blk, i, j][valid],
            sum_duplicates=False,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        b = self.b
        if len(self.blocks) == 0:
            return np.zeros(self.n_rows)
        # Pad x to a whole number of blocks, gather per-block x slices, and
        # contract each b x b tile against its slice in one einsum.
        n_block_cols = (self.n_cols + b - 1) // b
        x_pad = np.zeros(n_block_cols * b, dtype=np.float64)
        x_pad[: self.n_cols] = x
        xs = x_pad[
            (self.block_cols[:, None] * b
             + np.arange(b, dtype=np.int64)[None, :])
        ]
        contrib = np.einsum("kij,kj->ki", self.blocks, xs)
        n_block_rows = (self.n_rows + b - 1) // b
        y_pad = np.zeros((n_block_rows, b), dtype=np.float64)
        np.add.at(y_pad, self.block_rows, contrib)
        return y_pad.reshape(-1)[: self.n_rows]

    def stats(self) -> FormatStats:
        stored = self.blocks.size
        n_block_rows = (self.n_rows + self.b - 1) // self.b
        meta = (
            len(self.blocks) * INDEX_BYTES       # block column indices
            + (n_block_rows + 1) * INDEX_BYTES   # block row pointers
        )
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - self._nnz,
            memory_bytes=stored * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=False,
            simd_friendly=True,
        )

    @property
    def shape(self):
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self._nnz

"""CSR variants — Section II-B.2 and the CSR flavours of Table II.

``NaiveCSR`` is the plain row-parallel kernel; ``VectorizedCSR`` models the
SIMD-within-row variant ("Vec-CSR"); ``BalancedCSR`` adds nonzero-balanced
row partitioning ("Bal-CSR", the IBM POWER9 entry).  All three share CSR
storage — they differ in kernel schedule, which is what the device model
consumes (``balance_aware`` / ``simd_friendly`` flags and the partitioner
attached to each).
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatStats,
    FormatStatsBatch,
    SparseFormat,
    register_format,
)

__all__ = ["NaiveCSR", "VectorizedCSR", "BalancedCSR"]


class _CSRBase(SparseFormat):
    """Shared CSR storage and conversion plumbing."""

    partition_strategy = "row_block"  # consumed by devices.parallel
    # Kernel-schedule flags reported by `stats`; CSR storage itself is
    # identical across the family, so subclasses only override these.
    STATS_FLAGS = {"balance_aware": False, "simd_friendly": False}

    def __init__(self, mat: CSRMatrix):
        self.mat = mat

    @classmethod
    def from_csr(cls, mat: CSRMatrix):
        return cls(mat)

    def to_csr(self) -> CSRMatrix:
        return self.mat

    def spmv(self, x: np.ndarray) -> np.ndarray:
        return self.mat.spmv(x)

    @classmethod
    def _csr_stats(cls, n_rows: int, nnz: int) -> FormatStats:
        meta = nnz * INDEX_BYTES + (n_rows + 1) * INDEX_BYTES
        return FormatStats(
            stored_elements=nnz,
            padding_elements=0,
            memory_bytes=meta + nnz * VALUE_BYTES,
            metadata_bytes=meta,
            **cls.STATS_FLAGS,
        )

    def stats(self) -> FormatStats:
        return self._csr_stats(self.mat.n_rows, self.mat.nnz)

    @classmethod
    def stats_from_csr(cls, mat: CSRMatrix) -> FormatStats:
        return cls._csr_stats(mat.n_rows, mat.nnz)

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Vectorised `_csr_stats` over the whole chunk (never refuses)."""
        nnz = batch.nnz
        meta = (nnz + batch.n_rows + 1) * INDEX_BYTES
        n = len(batch)
        return FormatStatsBatch(
            stored_elements=nnz,
            padding_elements=np.zeros(n, dtype=np.int64),
            memory_bytes=meta + nnz * VALUE_BYTES,
            metadata_bytes=meta,
            balance_aware=np.full(
                n, cls.STATS_FLAGS["balance_aware"], dtype=bool
            ),
            simd_friendly=np.full(
                n, cls.STATS_FLAGS["simd_friendly"], dtype=bool
            ),
            fail=np.zeros(n, dtype=bool),
        )

    @property
    def shape(self):
        return self.mat.shape

    @property
    def nnz(self) -> int:
        return self.mat.nnz


@register_format
class NaiveCSR(_CSRBase):
    """Standard row-parallel CSR SpMV ("Naive-CSR" in Fig 7)."""

    name = "Naive-CSR"
    category = "state-of-practice"
    device_classes = ("cpu", "gpu")
    partition_strategy = "row_block"
    STATS_FLAGS = {"balance_aware": False, "simd_friendly": False}


@register_format
class VectorizedCSR(_CSRBase):
    """CSR with vectorised within-row accumulation ("Vec-CSR" in Fig 7).

    Same storage as CSR; the kernel processes each row's nonzeros with SIMD
    lanes, improving ILP for long rows but doing nothing for imbalance.
    """

    name = "Vectorized-CSR"
    category = "state-of-practice"
    device_classes = ("cpu",)
    partition_strategy = "row_block"
    STATS_FLAGS = {"balance_aware": False, "simd_friendly": True}

    def spmv(self, x: np.ndarray) -> np.ndarray:
        # NumPy's segmented evaluation *is* the vectorised schedule.
        return self.mat.spmv(x)


@register_format
class BalancedCSR(_CSRBase):
    """CSR with nonzero-balanced row blocks ("Bal-CSR" in Fig 7).

    Rows are grouped so that every worker receives an (approximately) equal
    number of nonzeros — row-resolution balancing, i.e. a long row still
    belongs to a single worker.
    """

    name = "Balanced-CSR"
    category = "state-of-practice"
    device_classes = ("cpu",)
    partition_strategy = "nnz_row"
    STATS_FLAGS = {"balance_aware": True, "simd_friendly": False}

    def spmv(self, x: np.ndarray) -> np.ndarray:
        return self.mat.spmv(x)

    def row_partition(self, n_workers: int) -> np.ndarray:
        """Row boundaries assigning ~equal nonzeros per worker.

        Returns ``n_workers + 1`` row offsets.  Used both by the kernel
        schedule and by the device model's imbalance measurement.
        """
        nnz = self.mat.nnz
        targets = np.linspace(0, nnz, n_workers + 1)
        bounds = np.searchsorted(self.mat.indptr, targets, side="left")
        bounds[0], bounds[-1] = 0, self.mat.n_rows
        return np.maximum.accumulate(bounds).astype(np.int64)

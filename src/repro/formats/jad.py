"""JAD (jagged diagonal) format — the classic vector-machine layout the
paper's related work cites alongside DIA ("diagonal (DIA, JAD) ... formats
representing specific structures", Section VI).

Rows are permuted by descending length; the k-th nonzero of every row long
enough forms "jagged diagonal" k, stored contiguously.  Every jagged
diagonal is a unit-stride vector operation over all still-active rows —
maximal vector length without any padding, at the cost of a row
permutation and per-diagonal pointers.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch, csr_from_coo
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatStats,
    FormatStatsBatch,
    SparseFormat,
    register_format,
)

__all__ = ["JAD"]


@register_format
class JAD(SparseFormat):
    """Jagged diagonal storage with row permutation."""

    name = "JAD"
    category = "state-of-practice"
    device_classes = ("cpu",)
    partition_strategy = "nnz_row"

    def __init__(self, n_rows, n_cols, jd_ptr, cols, vals, row_perm, nnz):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.jd_ptr = jd_ptr      # start offset of each jagged diagonal
        self.cols = cols          # column indices, diagonal-major
        self.vals = vals          # values, diagonal-major
        self.row_perm = row_perm  # permuted position -> original row
        self._nnz = int(nnz)

    @classmethod
    def from_csr(cls, mat: CSRMatrix) -> "JAD":
        lengths = mat.row_lengths
        # Permute rows by descending length (stable for determinism).
        row_perm = np.argsort(-lengths, kind="stable").astype(np.int64)
        perm_lengths = lengths[row_perm]
        n_diag = int(perm_lengths[0]) if mat.n_rows and mat.nnz else 0

        # Diagonal k holds the k-th element of every row with length > k;
        # active[k] = #rows with length > k, computed with one binary
        # search per diagonal over the ascending length profile.
        if n_diag:
            ascending = perm_lengths[::-1]
            active = mat.n_rows - np.searchsorted(
                ascending, np.arange(n_diag), side="right"
            )
        else:
            active = np.zeros(0, dtype=np.int64)
        jd_ptr = np.concatenate(([0], np.cumsum(active))).astype(np.int64)

        cols = np.zeros(mat.nnz, dtype=np.int32)
        vals = np.zeros(mat.nnz, dtype=np.float64)
        # Element j of permuted row p lands at jd_ptr[j] + p (rows with
        # length > j occupy the first positions of diagonal j because the
        # permutation sorts by descending length).
        reps = perm_lengths
        p_of_elem = np.repeat(np.arange(mat.n_rows, dtype=np.int64), reps)
        j_of_elem = np.arange(mat.nnz, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(reps)[:-1])), reps
        )
        src = np.repeat(mat.indptr[:-1][row_perm], reps) + j_of_elem
        dst = jd_ptr[j_of_elem] + p_of_elem
        cols[dst] = mat.indices[src]
        vals[dst] = mat.data[src]
        return cls(
            mat.n_rows, mat.n_cols, jd_ptr, cols, vals, row_perm, mat.nnz
        )

    @classmethod
    def stats_from_csr(cls, mat: CSRMatrix) -> FormatStats:
        """Closed-form stats: the jagged-diagonal count is the longest row
        (``len(jd_ptr) == n_diag + 1``); storage is nnz with no padding."""
        n_diag = (
            int(mat.row_lengths.max()) if mat.n_rows and mat.nnz else 0
        )
        meta = (
            mat.nnz * INDEX_BYTES
            + (n_diag + 1) * INDEX_BYTES
            + mat.n_rows * INDEX_BYTES  # permutation
        )
        return FormatStats(
            stored_elements=mat.nnz,
            padding_elements=0,
            memory_bytes=mat.nnz * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=True,
            simd_friendly=True,
        )

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Vectorised jagged-diagonal stats over the chunk (never refuses)."""
        n = len(batch)
        nnz = batch.nnz
        n_diag = np.zeros(n, dtype=np.int64)
        for i in range(n):
            seg = batch.lengths_of(i)
            if len(seg) and nnz[i]:
                n_diag[i] = seg.max()
        meta = (nnz + n_diag + 1 + batch.n_rows) * INDEX_BYTES
        return FormatStatsBatch(
            stored_elements=nnz,
            padding_elements=np.zeros(n, dtype=np.int64),
            memory_bytes=nnz * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=np.ones(n, dtype=bool),
            simd_friendly=np.ones(n, dtype=bool),
            fail=np.zeros(n, dtype=bool),
        )

    def to_csr(self) -> CSRMatrix:
        if self._nnz == 0:
            return csr_from_coo(self.n_rows, self.n_cols, [], [], [])
        rows_out, cols_out, vals_out = [], [], []
        for k in range(len(self.jd_ptr) - 1):
            lo, hi = int(self.jd_ptr[k]), int(self.jd_ptr[k + 1])
            p = np.arange(hi - lo, dtype=np.int64)
            rows_out.append(self.row_perm[p])
            cols_out.append(self.cols[lo:hi])
            vals_out.append(self.vals[lo:hi])
        return csr_from_coo(
            self.n_rows, self.n_cols,
            np.concatenate(rows_out), np.concatenate(cols_out),
            np.concatenate(vals_out), sum_duplicates=False,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        y_perm = np.zeros(self.n_rows, dtype=np.float64)
        # One unit-stride AXPY-style gather per jagged diagonal: the
        # vector-machine schedule JAD exists for.
        for k in range(len(self.jd_ptr) - 1):
            lo, hi = int(self.jd_ptr[k]), int(self.jd_ptr[k + 1])
            y_perm[: hi - lo] += self.vals[lo:hi] * x[self.cols[lo:hi]]
        y = np.zeros(self.n_rows, dtype=np.float64)
        y[self.row_perm] = y_perm
        return y

    def stats(self) -> FormatStats:
        meta = (
            self._nnz * INDEX_BYTES
            + len(self.jd_ptr) * INDEX_BYTES
            + self.n_rows * INDEX_BYTES  # permutation
        )
        return FormatStats(
            stored_elements=self._nnz,
            padding_elements=0,
            memory_bytes=self._nnz * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=True,   # diagonals shrink smoothly with length
            simd_friendly=True,
        )

    @property
    def shape(self):
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self._nnz

"""Sparse storage formats and their SpMV kernels (paper Section II-B)."""
from .base import (
    CapacityError, FormatError, FormatStats, SparseFormat,
    FORMAT_REGISTRY, available_formats, get_format, register_format,
)
from .coo import COO
from .csr import BalancedCSR, NaiveCSR, VectorizedCSR
from .ell import ELL, HYB
from .sellcs import SELLCSigma
from .csr5 import CSR5
from .merge import MergeCSR, merge_path_partition
from .sparsex import SparseX
from .vsl import VSL
from .dia import DIA
from .jad import JAD
from .bcsr import BCSR
from .vendor import (
    AOCLSparse, ARMPLSparse, CuSparseCOO, CuSparseCSR, MKLInspectorExecutor,
)

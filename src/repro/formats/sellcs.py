"""SELL-C-sigma — Kreutzer et al. [27], Section II-B.5.

Rows are sorted by length within windows of ``sigma`` rows, then grouped
into chunks of ``C`` rows; each chunk is padded only to its *own* longest
row.  ``C`` matches the hardware vector width, ``sigma`` trades sorting
scope (padding reduction) against x-access locality.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, csr_from_coo
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatStats,
    SparseFormat,
    register_format,
)

__all__ = ["SELLCSigma"]


@register_format
class SELLCSigma(SparseFormat):
    """SELL-C-σ: sorted, chunked ELLPACK with per-chunk padding."""

    name = "SELL-C-s"
    category = "research"
    device_classes = ("cpu",)
    partition_strategy = "sell_chunk"

    DEFAULT_C = 32
    DEFAULT_SIGMA = 1024

    def __init__(
        self, n_rows, n_cols, chunk_ptr, chunk_width, cols, vals,
        row_perm, nnz, C,
    ):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.chunk_ptr = chunk_ptr        # element offset of each chunk
        self.chunk_width = chunk_width    # padded width per chunk
        self.cols = cols                  # chunk-major, column-major in chunk
        self.vals = vals
        self.row_perm = row_perm          # permuted row -> original row
        self._nnz = int(nnz)
        self.C = int(C)

    @classmethod
    def from_csr(
        cls, mat: CSRMatrix, C: int = None, sigma: int = None
    ) -> "SELLCSigma":
        C = cls.DEFAULT_C if C is None else int(C)
        sigma = cls.DEFAULT_SIGMA if sigma is None else int(sigma)
        if C < 1 or sigma < 1:
            raise ValueError("C and sigma must be >= 1")
        n_rows = mat.n_rows
        lengths = mat.row_lengths

        # Sort rows by descending length inside each sigma-window.
        row_perm = np.arange(n_rows, dtype=np.int64)
        for w0 in range(0, n_rows, sigma):
            w1 = min(w0 + sigma, n_rows)
            order = np.argsort(-lengths[w0:w1], kind="stable")
            row_perm[w0:w1] = w0 + order
        perm_lengths = lengths[row_perm]

        n_chunks = (n_rows + C - 1) // C
        pad_rows = n_chunks * C - n_rows
        if pad_rows:
            perm_lengths = np.concatenate(
                [perm_lengths, np.zeros(pad_rows, dtype=np.int64)]
            )
        chunk_width = perm_lengths.reshape(n_chunks, C).max(axis=1)
        chunk_ptr = np.concatenate(
            ([0], np.cumsum(chunk_width * C))
        ).astype(np.int64)

        total = int(chunk_ptr[-1])
        cols = np.zeros(total, dtype=np.int32)
        vals = np.zeros(total, dtype=np.float64)

        # Scatter: element j of permuted row r (chunk q, lane l) lands at
        # chunk_ptr[q] + j * C + l (column-major within the chunk -> unit
        # stride across SIMD lanes).
        src_rows = row_perm  # permuted position p holds original row
        reps = lengths[src_rows]
        p_of_elem = np.repeat(np.arange(n_rows, dtype=np.int64), reps)
        j_of_elem = np.arange(int(reps.sum()), dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(reps)[:-1])), reps
        )
        src = np.repeat(mat.indptr[:-1][src_rows], reps) + j_of_elem
        q = p_of_elem // C
        lane = p_of_elem - q * C
        dst = chunk_ptr[q] + j_of_elem * C + lane
        cols[dst] = mat.indices[src]
        vals[dst] = mat.data[src]
        return cls(
            mat.n_rows, mat.n_cols, chunk_ptr, chunk_width, cols, vals,
            row_perm, mat.nnz, C,
        )

    def to_csr(self) -> CSRMatrix:
        rows_out, cols_out, vals_out = [], [], []
        C = self.C
        for qi in range(len(self.chunk_width)):
            width = int(self.chunk_width[qi])
            if width == 0:
                continue
            base = int(self.chunk_ptr[qi])
            block_cols = self.cols[base : base + width * C].reshape(width, C)
            block_vals = self.vals[base : base + width * C].reshape(width, C)
            mask = block_vals != 0.0
            j, lane = np.nonzero(mask)
            p = qi * C + lane
            valid = p < self.n_rows
            rows_out.append(self.row_perm[p[valid]])
            cols_out.append(block_cols[j[valid], lane[valid]])
            vals_out.append(block_vals[j[valid], lane[valid]])
        if not rows_out:
            return csr_from_coo(self.n_rows, self.n_cols, [], [], [])
        return csr_from_coo(
            self.n_rows, self.n_cols,
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
            sum_duplicates=False,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        y_perm = np.zeros(len(self.chunk_width) * self.C, dtype=np.float64)
        C = self.C
        # Chunk-at-a-time: each chunk is a dense (width, C) tile reduced
        # along the width axis — the SIMD schedule SELL-C-σ targets.
        for qi in range(len(self.chunk_width)):
            width = int(self.chunk_width[qi])
            if width == 0:
                continue
            base = int(self.chunk_ptr[qi])
            block_cols = self.cols[base : base + width * C].reshape(width, C)
            block_vals = self.vals[base : base + width * C].reshape(width, C)
            y_perm[qi * C : (qi + 1) * C] = (
                block_vals * x[block_cols]
            ).sum(axis=0)
        y = np.zeros(self.n_rows, dtype=np.float64)
        y[self.row_perm] = y_perm[: self.n_rows]
        return y

    def stats(self) -> FormatStats:
        stored = int(self.chunk_ptr[-1])
        meta = (
            stored * INDEX_BYTES
            + (len(self.chunk_width) + 1) * INDEX_BYTES  # chunk pointers
            + len(self.chunk_width) * INDEX_BYTES        # widths
            + self.n_rows * INDEX_BYTES                  # row permutation
        )
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - self._nnz,
            memory_bytes=stored * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=False,
            simd_friendly=True,
        )

    @property
    def shape(self):
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self._nnz

"""SELL-C-sigma — Kreutzer et al. [27], Section II-B.5.

Rows are sorted by length within windows of ``sigma`` rows, then grouped
into chunks of ``C`` rows; each chunk is padded only to its *own* longest
row.  ``C`` matches the hardware vector width, ``sigma`` trades sorting
scope (padding reduction) against x-access locality.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch, csr_from_coo
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatStats,
    FormatStatsBatch,
    SparseFormat,
    register_format,
)

__all__ = ["SELLCSigma"]


@register_format
class SELLCSigma(SparseFormat):
    """SELL-C-σ: sorted, chunked ELLPACK with per-chunk padding."""

    name = "SELL-C-s"
    category = "research"
    device_classes = ("cpu",)
    partition_strategy = "sell_chunk"

    DEFAULT_C = 32
    DEFAULT_SIGMA = 1024

    def __init__(
        self, n_rows, n_cols, chunk_ptr, chunk_width, cols, vals,
        row_perm, nnz, C,
    ):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.chunk_ptr = chunk_ptr        # element offset of each chunk
        self.chunk_width = chunk_width    # padded width per chunk
        self.cols = cols                  # chunk-major, column-major in chunk
        self.vals = vals
        self.row_perm = row_perm          # permuted row -> original row
        self._nnz = int(nnz)
        self.C = int(C)

    @classmethod
    def from_csr(
        cls, mat: CSRMatrix, C: int = None, sigma: int = None
    ) -> "SELLCSigma":
        C = cls.DEFAULT_C if C is None else int(C)
        sigma = cls.DEFAULT_SIGMA if sigma is None else int(sigma)
        if C < 1 or sigma < 1:
            raise ValueError("C and sigma must be >= 1")
        n_rows = mat.n_rows
        lengths = mat.row_lengths

        # Sort rows by descending length inside each sigma-window: all the
        # full windows in one 2-D stable argsort, the tail window (if any)
        # separately — identical permutation to a per-window loop.
        row_perm = np.arange(n_rows, dtype=np.int64)
        full = (n_rows // sigma) * sigma
        if full:
            order = np.argsort(
                -lengths[:full].reshape(-1, sigma), axis=1, kind="stable"
            )
            row_perm[:full] = (
                np.arange(0, full, sigma, dtype=np.int64)[:, None] + order
            ).reshape(-1)
        if full < n_rows:
            order = np.argsort(-lengths[full:], kind="stable")
            row_perm[full:] = full + order
        perm_lengths = lengths[row_perm]

        n_chunks = (n_rows + C - 1) // C
        pad_rows = n_chunks * C - n_rows
        if pad_rows:
            perm_lengths = np.concatenate(
                [perm_lengths, np.zeros(pad_rows, dtype=np.int64)]
            )
        chunk_width = perm_lengths.reshape(n_chunks, C).max(axis=1)
        chunk_ptr = np.concatenate(
            ([0], np.cumsum(chunk_width * C))
        ).astype(np.int64)

        total = int(chunk_ptr[-1])
        cols = np.zeros(total, dtype=np.int32)
        vals = np.zeros(total, dtype=np.float64)

        # Scatter: element j of permuted row r (chunk q, lane l) lands at
        # chunk_ptr[q] + j * C + l (column-major within the chunk -> unit
        # stride across SIMD lanes).
        src_rows = row_perm  # permuted position p holds original row
        reps = lengths[src_rows]
        p_of_elem = np.repeat(np.arange(n_rows, dtype=np.int64), reps)
        j_of_elem = np.arange(int(reps.sum()), dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(reps)[:-1])), reps
        )
        src = np.repeat(mat.indptr[:-1][src_rows], reps) + j_of_elem
        q = p_of_elem // C
        lane = p_of_elem - q * C
        dst = chunk_ptr[q] + j_of_elem * C + lane
        cols[dst] = mat.indices[src]
        vals[dst] = mat.data[src]
        return cls(
            mat.n_rows, mat.n_cols, chunk_ptr, chunk_width, cols, vals,
            row_perm, mat.nnz, C,
        )

    def to_csr(self) -> CSRMatrix:
        # One pass over the flat slot arrays: slot s of chunk q holds depth
        # j = (s - chunk_ptr[q]) // C, lane (s - chunk_ptr[q]) % C, i.e.
        # permuted row q*C + lane.  Ascending s reproduces the chunk-major,
        # depth-then-lane emission order of the per-chunk loop exactly.
        C = self.C
        s = np.nonzero(self.vals != 0.0)[0]
        if len(s) == 0:
            return csr_from_coo(self.n_rows, self.n_cols, [], [], [])
        q = np.searchsorted(self.chunk_ptr, s, side="right") - 1
        lane = (s - self.chunk_ptr[q]) % C
        p = q * C + lane
        valid = p < self.n_rows
        return csr_from_coo(
            self.n_rows, self.n_cols,
            self.row_perm[p[valid]],
            self.cols[s[valid]],
            self.vals[s[valid]],
            sum_duplicates=False,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        widths = np.asarray(self.chunk_width, dtype=np.int64)
        y_perm = np.zeros(len(widths) * self.C, dtype=np.float64)
        C = self.C
        # Chunks grouped by padded width: every group is a dense
        # (n_chunks, width, C) tile stack reduced along the width axis in
        # one fused gather-multiply-reduce — the SIMD schedule SELL-C-σ
        # targets, without a Python loop over chunks.  The per-chunk
        # reduction order (depth-major over each contiguous (width, C)
        # tile) is unchanged, so results match the chunk-at-a-time loop.
        for width in np.unique(widths):
            if width == 0:
                continue
            sel = np.nonzero(widths == width)[0]
            slots = (
                self.chunk_ptr[sel][:, None]
                + np.arange(width * C, dtype=np.int64)[None, :]
            )
            tile_vals = self.vals[slots].reshape(len(sel), width, C)
            tile_cols = self.cols[slots].reshape(len(sel), width, C)
            lanes = (
                sel[:, None] * C + np.arange(C, dtype=np.int64)[None, :]
            )
            y_perm[lanes.reshape(-1)] = (
                (tile_vals * x[tile_cols]).sum(axis=1).reshape(-1)
            )
        y = np.zeros(self.n_rows, dtype=np.float64)
        y[self.row_perm] = y_perm[: self.n_rows]
        return y

    @classmethod
    def _chunk_widths_of_lengths(
        cls, lengths: np.ndarray, C: int, sigma: int
    ) -> np.ndarray:
        """Per-chunk padded widths after window sorting, from lengths alone.

        Only the *values* of the window-sorted length profile matter for
        padding, so a plain descending sort per window replaces the
        argsort/permutation of the full conversion.
        """
        n_rows = len(lengths)
        n_chunks = (n_rows + C - 1) // C
        if n_chunks == 0:
            return np.zeros(0, dtype=np.int64)
        perm_lengths = np.zeros(n_chunks * C, dtype=np.int64)
        full = (n_rows // sigma) * sigma
        if full:
            perm_lengths[:full] = -np.sort(
                -lengths[:full].reshape(-1, sigma), axis=1
            ).reshape(-1)
        if full < n_rows:
            perm_lengths[full:n_rows] = -np.sort(-lengths[full:])
        return perm_lengths.reshape(n_chunks, C).max(axis=1)

    @classmethod
    def stats_from_csr(
        cls, mat: CSRMatrix, C: int = None, sigma: int = None
    ) -> FormatStats:
        """Closed-form stats from the window-sorted row-length profile."""
        C = cls.DEFAULT_C if C is None else int(C)
        sigma = cls.DEFAULT_SIGMA if sigma is None else int(sigma)
        if C < 1 or sigma < 1:
            raise ValueError("C and sigma must be >= 1")
        widths = cls._chunk_widths_of_lengths(mat.row_lengths, C, sigma)
        n_chunks = len(widths)
        stored = int(widths.sum()) * C
        meta = (
            stored * INDEX_BYTES
            + (n_chunks + 1) * INDEX_BYTES  # chunk pointers
            + n_chunks * INDEX_BYTES        # widths
            + mat.n_rows * INDEX_BYTES      # row permutation
        )
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - mat.nnz,
            memory_bytes=stored * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=False,
            simd_friendly=True,
        )

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Window-sorted padding stats per matrix, straight from the
        stacked row-length segments (never refuses)."""
        C, sigma = cls.DEFAULT_C, cls.DEFAULT_SIGMA
        n = len(batch)
        nnz = batch.nnz
        stored = np.zeros(n, dtype=np.int64)
        n_chunks = np.zeros(n, dtype=np.int64)
        for i in range(n):
            widths = cls._chunk_widths_of_lengths(
                batch.lengths_of(i), C, sigma
            )
            n_chunks[i] = len(widths)
            stored[i] = int(widths.sum()) * C
        meta = (
            stored * INDEX_BYTES
            + (n_chunks + 1) * INDEX_BYTES
            + n_chunks * INDEX_BYTES
            + batch.n_rows * INDEX_BYTES
        )
        return FormatStatsBatch(
            stored_elements=stored,
            padding_elements=stored - nnz,
            memory_bytes=stored * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=np.zeros(n, dtype=bool),
            simd_friendly=np.ones(n, dtype=bool),
            fail=np.zeros(n, dtype=bool),
        )

    def stats(self) -> FormatStats:
        stored = int(self.chunk_ptr[-1])
        meta = (
            stored * INDEX_BYTES
            + (len(self.chunk_width) + 1) * INDEX_BYTES  # chunk pointers
            + len(self.chunk_width) * INDEX_BYTES        # widths
            + self.n_rows * INDEX_BYTES                  # row permutation
        )
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - self._nnz,
            memory_bytes=stored * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=False,
            simd_friendly=True,
        )

    @property
    def shape(self):
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self._nnz

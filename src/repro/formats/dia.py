"""DIA (diagonal) format — classic structure-specific storage.

Stores every populated diagonal as a dense stripe.  Superb for banded
matrices (column metadata is one offset per diagonal), unusable when the
nonzeros scatter across many diagonals — the conversion guard mirrors that.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch, csr_from_coo
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatError,
    FormatStats,
    FormatStatsBatch,
    SparseFormat,
    register_format,
)

__all__ = ["DIA"]


@register_format
class DIA(SparseFormat):
    """Diagonal storage: ``(n_diags, n_rows)`` value stripes + offsets."""

    name = "DIA"
    category = "state-of-practice"
    device_classes = ("cpu",)
    partition_strategy = "element"
    DEFAULT_MAX_BLOWUP = 16.0

    def __init__(self, n_rows, n_cols, offsets, diags, nnz):
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.offsets = offsets  # diagonal offsets (col - row)
        self.diags = diags      # (n_diags, n_rows) values, row-indexed
        self._nnz = int(nnz)

    @classmethod
    def _populated_diagonals(cls, mat: CSRMatrix, max_blowup: float):
        """(rows, offs, uniq offsets) with the blowup gate applied — the
        single source of the rejection threshold and message for both the
        conversion and the analytic stats.  Requires ``mat.nnz > 0``."""
        rows = np.repeat(
            np.arange(mat.n_rows, dtype=np.int64), mat.row_lengths
        )
        offs = mat.indices.astype(np.int64) - rows
        uniq = np.unique(offs)
        stored = len(uniq) * mat.n_rows
        if stored > max_blowup * mat.nnz:
            raise FormatError(
                f"DIA needs {len(uniq)} diagonals "
                f"({stored / mat.nnz:.1f}x blowup > {max_blowup}x)"
            )
        return rows, offs, uniq

    @classmethod
    def from_csr(
        cls, mat: CSRMatrix, max_blowup: float = DEFAULT_MAX_BLOWUP
    ) -> "DIA":
        if mat.nnz == 0:
            return cls(
                mat.n_rows, mat.n_cols,
                np.zeros(0, dtype=np.int64),
                np.zeros((0, mat.n_rows)), 0,
            )
        rows, offs, uniq = cls._populated_diagonals(mat, max_blowup)
        diag_idx = np.searchsorted(uniq, offs)
        diags = np.zeros((len(uniq), mat.n_rows), dtype=np.float64)
        diags[diag_idx, rows] = mat.data
        return cls(mat.n_rows, mat.n_cols, uniq, diags, mat.nnz)

    @classmethod
    def stats_from_csr(
        cls, mat: CSRMatrix, max_blowup: float = DEFAULT_MAX_BLOWUP
    ) -> FormatStats:
        """Closed-form stats from the populated-diagonal count alone."""
        if mat.nnz == 0:
            return FormatStats(
                stored_elements=0, padding_elements=0,
                memory_bytes=0, metadata_bytes=0,
                balance_aware=True, simd_friendly=True,
            )
        _, _, uniq = cls._populated_diagonals(mat, max_blowup)
        stored = len(uniq) * mat.n_rows
        meta = len(uniq) * INDEX_BYTES
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - mat.nnz,
            memory_bytes=stored * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=True,
            simd_friendly=True,
        )

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Per-matrix diagonal counts straight from the structure arrays
        (one ``np.unique`` each, no :class:`CSRMatrix` materialisation)."""
        n = len(batch)
        nnz = batch.nnz
        out = FormatStatsBatch.empty(n)
        out.balance_aware[:] = True
        out.simd_friendly[:] = True
        for i in range(n):
            z = int(nnz[i])
            if z == 0:
                continue
            n_rows = int(batch.n_rows[i])
            rows = np.repeat(
                np.arange(n_rows, dtype=np.int64), batch.lengths_of(i)
            )
            offs = batch.indices_of(i).astype(np.int64) - rows
            n_uniq = len(np.unique(offs))
            stored = n_uniq * n_rows
            if stored > cls.DEFAULT_MAX_BLOWUP * z:
                out.fail[i] = True
                out.fail_reason[i] = (
                    f"DIA needs {n_uniq} diagonals "
                    f"({stored / z:.1f}x blowup > "
                    f"{cls.DEFAULT_MAX_BLOWUP}x)"
                )
                continue
            out.stored_elements[i] = stored
            out.padding_elements[i] = stored - z
            out.memory_bytes[i] = stored * VALUE_BYTES + n_uniq * INDEX_BYTES
            out.metadata_bytes[i] = n_uniq * INDEX_BYTES
        return out

    def to_csr(self) -> CSRMatrix:
        d, rows = np.nonzero(self.diags != 0.0)
        cols = rows + self.offsets[d]
        valid = (cols >= 0) & (cols < self.n_cols)
        return csr_from_coo(
            self.n_rows, self.n_cols,
            rows[valid], cols[valid], self.diags[d[valid], rows[valid]],
            sum_duplicates=False,
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        y = np.zeros(self.n_rows, dtype=np.float64)
        rows = np.arange(self.n_rows, dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = rows + off
            valid = (cols >= 0) & (cols < self.n_cols)
            y[valid] += self.diags[d, valid] * x[cols[valid]]
        return y

    def stats(self) -> FormatStats:
        stored = self.diags.size
        meta = len(self.offsets) * INDEX_BYTES
        return FormatStats(
            stored_elements=stored,
            padding_elements=stored - self._nnz,
            memory_bytes=stored * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=True,
            simd_friendly=True,
        )

    @property
    def shape(self):
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return self._nnz

"""Merge-based CSR SpMV — Merrill & Garland [26], Section II-B.5.

Storage is plain CSR; the novelty is the *merge-path* work decomposition:
the (row-pointer, nonzero) merge lattice of total length ``n_rows + nnz``
is split into equal diagonals, so every worker gets the same number of
(row-transition + multiply-add) work items regardless of skew.  We
implement the real 2-D merge-path search (used by the device model's
imbalance measurement) and a correct kernel.
"""

from __future__ import annotations

import numpy as np

from ..core.matrix import CSRMatrix, CSRStructBatch
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    FormatStats,
    FormatStatsBatch,
    SparseFormat,
    register_format,
)

__all__ = ["MergeCSR", "merge_path_partition"]


def merge_path_partition(
    indptr: np.ndarray, n_workers: int
) -> np.ndarray:
    """Merge-path split points for ``n_workers`` equal diagonals.

    Returns an ``(n_workers + 1, 2)`` array of ``(row, nnz)`` coordinates on
    the merge lattice; worker ``w`` consumes rows/nonzeros between
    consecutive coordinates.  The per-worker total work
    ``(rows consumed) + (nnz consumed)`` differs by at most one item.
    """
    n_rows = len(indptr) - 1
    nnz = int(indptr[-1])
    total = n_rows + nnz
    diagonals = np.linspace(0, total, n_workers + 1).astype(np.int64)
    coords = np.empty((n_workers + 1, 2), dtype=np.int64)
    # On diagonal d we need the largest row i with i + indptr[i] <= d,
    # i.e. a binary search over the monotone sequence i + indptr[i].
    keys = np.arange(n_rows + 1, dtype=np.int64) + indptr
    rows = np.searchsorted(keys, diagonals, side="right") - 1
    rows = np.clip(rows, 0, n_rows)
    coords[:, 0] = rows
    coords[:, 1] = diagonals - rows
    coords[:, 1] = np.clip(coords[:, 1], 0, nnz)
    coords[0] = (0, 0)
    coords[-1] = (n_rows, nnz)
    return coords


@register_format
class MergeCSR(SparseFormat):
    """Merge-path scheduled CSR ("MergeCSR" in Fig 7)."""

    name = "Merge-CSR"
    category = "research"
    device_classes = ("cpu", "gpu")
    partition_strategy = "merge_path"

    def __init__(self, mat: CSRMatrix):
        self.mat = mat

    @classmethod
    def from_csr(cls, mat: CSRMatrix) -> "MergeCSR":
        return cls(mat)

    def to_csr(self) -> CSRMatrix:
        return self.mat

    def partition(self, n_workers: int) -> np.ndarray:
        """Merge-path coordinates for ``n_workers`` workers."""
        return merge_path_partition(self.mat.indptr, n_workers)

    def spmv(self, x: np.ndarray, n_workers: int = 8) -> np.ndarray:
        """Merge-path SpMV: per-worker partial sums + cross-boundary fixup.

        Each worker performs a serial segmented sum over its merge-path
        range; rows straddling worker boundaries are completed by the fixup
        pass — exactly the algorithm of [26], expressed with vectorised
        per-worker reductions.
        """
        x = np.asarray(x, dtype=np.float64)
        mat = self.mat
        if mat.nnz == 0:
            return np.zeros(mat.n_rows)
        products = mat.data * x[mat.indices]
        csum = np.concatenate(([0.0], np.cumsum(products)))
        y = csum[mat.indptr[1:]] - csum[mat.indptr[:-1]]
        # The cumulative-sum evaluation is algebraically identical to the
        # per-worker partial sums + carry fixup; the merge-path coordinates
        # only dictate *who* computes each span, which the device model
        # consumes via `partition`.
        return y

    def stats(self) -> FormatStats:
        return self.stats_from_csr(self.mat)

    @classmethod
    def stats_from_csr(cls, mat: CSRMatrix) -> FormatStats:
        """Closed-form stats: plain CSR storage; the merge-path worker math
        partitions the ``n_rows + nnz`` lattice at schedule time and adds no
        stored metadata."""
        nnz = mat.nnz
        meta = nnz * INDEX_BYTES + (mat.n_rows + 1) * INDEX_BYTES
        return FormatStats(
            stored_elements=nnz,
            padding_elements=0,
            memory_bytes=nnz * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=True,   # equal merge-path diagonals by design
            simd_friendly=False,
        )

    @classmethod
    def stats_from_csr_batch(
        cls, batch: CSRStructBatch, matrices=None
    ) -> FormatStatsBatch:
        """Pure column math: plain CSR storage for the chunk, schedule-time
        merge-path metadata adds nothing stored (never refuses)."""
        n = len(batch)
        nnz = batch.nnz
        meta = (nnz + batch.n_rows + 1) * INDEX_BYTES
        return FormatStatsBatch(
            stored_elements=nnz,
            padding_elements=np.zeros(n, dtype=np.int64),
            memory_bytes=nnz * VALUE_BYTES + meta,
            metadata_bytes=meta,
            balance_aware=np.ones(n, dtype=bool),
            simd_friendly=np.zeros(n, dtype=bool),
            fail=np.zeros(n, dtype=bool),
        )

    @property
    def shape(self):
        return self.mat.shape

    @property
    def nnz(self) -> int:
        return self.mat.nnz

"""Golden end-to-end regression: sweep -> fit -> evaluate.

The whole chain — dataset materialisation, grid scoring, selector
training, batched evaluation — must produce *identical* results across
every execution engine: serial vs parallel sweeps, batched vs scalar
grid scoring, analytic vs materialised format stats, batched vs scalar
selector evaluation.  Any drift in any layer shows up here as a
field-level diff of the SelectionReport (and of the raw measurement
rows, checked first for a sharper failure signal).
"""

import pytest

from repro.core.dataset import Dataset, sweep
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.experiments import ExperimentSpec, run_experiment
from repro.ml import FormatSelector, KNeighborsRegressor

N_SPECS = 8
MAX_NNZ = 20_000
DEVICE = "INTEL-XEON"


def _dataset():
    return Dataset(
        build_dataset_specs("tiny")[:N_SPECS], max_nnz=MAX_NNZ,
        name="golden",
    )


def _chain(jobs=1, batch=True, stats_engine="analytic", eval_batch=True,
           cache_dir=None):
    """One full sweep -> fit -> evaluate pass; returns (rows, report)."""
    from repro.perfmodel.instance import MatrixInstance

    assert MatrixInstance.stats_engine == "analytic"  # default unchanged
    dataset = _dataset()
    if stats_engine != "analytic":
        # Pin the engine on the concrete instances (serial runs only —
        # worker processes would re-materialise with the class default).
        assert jobs == 1
        for i in range(len(dataset)):
            dataset.instance(i).stats_engine = stats_engine
    table = sweep(
        dataset, [TESTBEDS[DEVICE]], best_only=False, seed=0,
        jobs=jobs, batch=batch, cache_dir=cache_dir,
    )
    rows = table.rows
    names = sorted({r["matrix"] for r in rows})
    train = [r for r in rows if r["matrix"] in names[: N_SPECS // 2]]
    test = [r for r in rows if r["matrix"] in names[N_SPECS // 2:]]
    selector = FormatSelector(
        list(TESTBEDS[DEVICE].formats),
        model_factory=lambda: KNeighborsRegressor(
            n_neighbors=3, weights="distance"
        ),
    ).fit(train)
    return rows, selector.evaluate(test, batch=eval_batch)


@pytest.fixture(scope="module")
def golden():
    """The reference chain: serial, batched, analytic stats."""
    return _chain()


class TestGoldenChain:
    def test_reference_report_is_complete_and_sane(self, golden):
        _, report = golden
        assert set(report) == {
            "top1_accuracy", "mean_retained", "worst_retained",
            "n_matrices",
        }
        assert report["n_matrices"] == N_SPECS // 2
        assert 0.0 <= report["top1_accuracy"] <= 1.0
        assert 0.0 < report["worst_retained"] \
            <= report["mean_retained"] <= 1.0

    def test_rerun_is_bit_identical(self, golden):
        rows, report = _chain()
        assert rows == golden[0]
        assert report == golden[1]

    def test_parallel_sweep_matches_serial(self, golden, tmp_path):
        rows, report = _chain(jobs=2, cache_dir=str(tmp_path / "cache"))
        assert rows == golden[0]
        assert report == golden[1]

    def test_scalar_grid_matches_batched(self, golden):
        rows, report = _chain(batch=False)
        assert rows == golden[0]
        assert report == golden[1]

    def test_materialised_stats_match_analytic(self, golden):
        rows, report = _chain(stats_engine="materialise")
        assert rows == golden[0]
        assert report == golden[1]

    def test_scalar_evaluate_matches_batched(self, golden):
        rows, report = _chain(eval_batch=False)
        assert rows == golden[0]
        assert report == golden[1]


class TestGoldenExperiment:
    """The experiment driver inherits the chain's engine-independence."""

    def test_experiment_json_identical_across_engines(self, tmp_path):
        spec = ExperimentSpec(
            scale="tiny", devices=(DEVICE,), limit=N_SPECS,
            max_nnz=MAX_NNZ, n_splits=2, model="knn",
        )
        reference = run_experiment(spec).to_json()
        assert run_experiment(spec, jobs=2).to_json() == reference
        assert run_experiment(spec, batch=False).to_json() == reference
        cache = str(tmp_path / "cache")
        assert run_experiment(spec, cache_dir=cache).to_json() == reference
        assert run_experiment(spec, cache_dir=cache).to_json() == reference


class TestColumnarAgreement:
    """The table redesign's golden pin: every columnar fast path equals
    the dict-row seed behaviour bit for bit, and the full chain survives
    an NPZ round trip byte-identically."""

    @pytest.fixture(scope="class")
    def table(self):
        return sweep(
            _dataset(), [TESTBEDS[DEVICE]], best_only=False, seed=0,
        )

    def _reports(self, train, test, eval_batch=True):
        selector = FormatSelector(
            list(TESTBEDS[DEVICE].formats),
            model_factory=lambda: KNeighborsRegressor(
                n_neighbors=3, weights="distance"
            ),
        ).fit(train)
        return selector.evaluate(test, batch=eval_batch, detail=True)

    @pytest.mark.parametrize("eval_batch", [True, False])
    def test_columnar_selector_equals_dict_row_path(self, table,
                                                    eval_batch):
        names = sorted({r["matrix"] for r in table.rows})
        half = names[: N_SPECS // 2]
        train_t = table.where_in("matrix", half)
        test_t = table.where_in("matrix", names[N_SPECS // 2:])
        columnar = self._reports(train_t, test_t, eval_batch)
        reference = self._reports(
            train_t.to_rows(), test_t.to_rows(), eval_batch
        )
        assert columnar == reference

    def test_npz_roundtrip_is_lossless(self, table, tmp_path):
        path = tmp_path / "sweep.npz"
        table.to_npz(path)
        from repro.core.table import SweepTable

        back = SweepTable.from_npz(path)
        assert back == table
        assert back.to_rows() == table.to_rows()

    def test_experiment_from_saved_table_is_byte_identical(
        self, tmp_path
    ):
        spec = ExperimentSpec(
            scale="tiny", devices=(DEVICE,), limit=N_SPECS,
            max_nnz=MAX_NNZ, n_splits=2, model="knn",
        )
        reference = run_experiment(spec).to_json()
        dataset = Dataset(
            build_dataset_specs("tiny")[:N_SPECS], max_nnz=MAX_NNZ,
            name="tiny",
        )
        saved = sweep(dataset, [TESTBEDS[DEVICE]], best_only=False,
                      seed=0)
        path = tmp_path / "sweep.npz"
        saved.to_npz(path)
        from repro.core.table import SweepTable

        loaded = run_experiment(
            spec, table=SweepTable.from_npz(path)
        )
        assert loaded.to_json() == reference

"""CLI resilience flags: --faults, --run-dir/--resume, --health-json."""

import json

import pytest

from repro.cli import main
from repro.core.table import SweepTable

from tests.pipeline.golden import assert_bit_identical


@pytest.fixture(autouse=True)
def small_dataset(monkeypatch):
    import repro.core.feature_space as fs

    original = fs.build_dataset_specs
    monkeypatch.setattr(
        "repro.core.feature_space.build_dataset_specs",
        lambda scale, **kw: original(scale, **kw)[:6],
    )


BASE = ["sweep", "--scale", "tiny", "--devices", "Tesla-A100",
        "--max-nnz", "5000"]


@pytest.fixture()
def clean_table(tmp_path):
    out = tmp_path / "clean.npz"
    assert main(BASE + ["--out", str(out)]) == 0
    return SweepTable.from_npz(out)


class TestFaultedSweeps:
    def test_faulted_parallel_sweep_matches_clean(self, tmp_path,
                                                  clean_table):
        out = tmp_path / "faulted.npz"
        assert main(BASE + ["--jobs", "2", "--faults", "crash@1,error@3",
                            "--out", str(out)]) == 0
        assert_bit_identical(SweepTable.from_npz(out), clean_table)

    def test_health_json_written(self, tmp_path):
        health = tmp_path / "health.json"
        assert main(BASE + ["--jobs", "2", "--faults", "error@0",
                            "--health-json", str(health),
                            "--out", str(tmp_path / "t.npz")]) == 0
        data = json.loads(health.read_text())
        assert data["status"] == "complete"
        assert data["retries"]["error"] >= 1
        assert data["wall_clock"]["total"] > 0


class TestInterruptAndResume:
    def test_stop_resume_roundtrip(self, tmp_path, clean_table, capsys):
        run_dir = tmp_path / "run"
        out = tmp_path / "table.npz"
        rc = main(BASE + ["--jobs", "2", "--run-dir", str(run_dir),
                          "--faults", "stop@2", "--out", str(out)])
        assert rc == 130
        err = capsys.readouterr().err
        assert "--resume" in err and str(run_dir) in err
        assert not out.exists()  # interrupted before the final write
        assert (run_dir / "journal.jsonl").exists()

        rc = main(BASE + ["--jobs", "2", "--resume", str(run_dir),
                          "--out", str(out)])
        assert rc == 0
        assert_bit_identical(SweepTable.from_npz(out), clean_table)

    def test_health_json_flushed_on_interrupt(self, tmp_path):
        health = tmp_path / "health.json"
        rc = main(BASE + ["--jobs", "2", "--run-dir",
                          str(tmp_path / "run"), "--faults", "stop@1",
                          "--health-json", str(health),
                          "--out", str(tmp_path / "t.npz")])
        assert rc == 130
        assert json.loads(health.read_text())["status"] == "interrupted"


class TestBadArguments:
    def test_resume_run_dir_conflict(self, tmp_path, capsys):
        rc = main(BASE + ["--resume", str(tmp_path / "a"),
                          "--run-dir", str(tmp_path / "b"),
                          "--out", str(tmp_path / "t.npz")])
        assert rc == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_without_journal(self, tmp_path, capsys):
        rc = main(BASE + ["--resume", str(tmp_path / "void"),
                          "--out", str(tmp_path / "t.npz")])
        assert rc == 2
        assert "resume" in capsys.readouterr().err

    def test_existing_run_dir_refused(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(BASE + ["--run-dir", str(run_dir),
                            "--out", str(tmp_path / "a.npz")]) == 0
        rc = main(BASE + ["--run-dir", str(run_dir),
                          "--out", str(tmp_path / "b.npz")])
        assert rc == 2
        assert "already exists" in capsys.readouterr().err

    def test_pool_dispatch_rejects_faults(self, tmp_path, capsys):
        rc = main(BASE + ["--jobs", "2", "--dispatch", "pool",
                          "--faults", "crash@0",
                          "--out", str(tmp_path / "t.npz")])
        assert rc == 2
        assert "pool" in capsys.readouterr().err


class TestDispatchFlag:
    def test_pool_dispatch_parity(self, tmp_path, clean_table):
        out = tmp_path / "pool.npz"
        assert main(BASE + ["--jobs", "2", "--dispatch", "pool",
                            "--out", str(out)]) == 0
        assert_bit_identical(SweepTable.from_npz(out), clean_table)

"""Columnar analysis reductions vs the dict-row reference, field for
field, over a full testbed grid.

`format_wins`/`win_table`/`feature_slice`/`bottleneck_census`/
`optimal_ranges` each keep their historical dict-row implementation as
the reference path; feeding the SweepTable itself must produce exactly
the same values (same floats, same keys) through the vectorised column
reductions.
"""

import os

import pytest

from repro.analysis import (
    bottleneck_census, feature_slice, format_wins, optimal_ranges,
    win_table,
)
from repro.core.dataset import Dataset, sweep
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS

TINY = build_dataset_specs("tiny")
SPECS = TINY if os.environ.get("REPRO_EXHAUSTIVE") == "1" else TINY[::7]
DEVICES = [TESTBEDS[name] for name in
           ("AMD-EPYC-24", "Tesla-A100", "Alveo-U280")]


@pytest.fixture(scope="module")
def best_table():
    """Best-format rows across every device class (Fig 2-6 shape)."""
    return sweep(
        Dataset(SPECS, max_nnz=6_000, name="parity"), DEVICES,
        best_only=True,
    )


@pytest.fixture(scope="module")
def formats_table():
    """Per-format rows on one device (Fig 7 / selector shape)."""
    return sweep(
        Dataset(SPECS, max_nnz=6_000, name="parity"), DEVICES[:1],
        best_only=False,
    )


class TestWinsParity:
    def test_format_wins(self, best_table):
        cpu = best_table.where(device="AMD-EPYC-24")
        assert format_wins(cpu) == format_wins(cpu.rows)

    def test_format_wins_per_format_rows(self, formats_table):
        assert format_wins(formats_table) == \
            format_wins(formats_table.rows)

    def test_format_wins_empty(self, best_table):
        empty = best_table.where(device="no-such-device")
        assert format_wins(empty) == {} == format_wins(empty.rows)

    def test_win_table(self, best_table):
        devices = [d.name for d in DEVICES] + ["no-such-device"]
        assert win_table(best_table, devices) == \
            win_table(best_table.rows, devices)


class TestCensusParity:
    @pytest.mark.parametrize("by", ["device", "format", "matrix"])
    def test_bottleneck_census(self, best_table, by):
        assert bottleneck_census(best_table, by=by) == \
            bottleneck_census(best_table.rows, by=by)

    def test_census_values_sum_to_100(self, best_table):
        census = bottleneck_census(best_table)
        assert census
        for fractions in census.values():
            assert abs(sum(fractions.values()) - 100.0) < 1e-9


class TestFeatureSliceParity:
    FIXED = {
        "req_footprint_mb": lambda v: v < 600,
        "req_avg_nnz": lambda v: v >= 5,
    }

    @pytest.mark.parametrize("sweep_key", ["req_neigh", "req_skew"])
    def test_feature_slice(self, best_table, sweep_key):
        columnar = feature_slice(best_table, sweep_key, self.FIXED)
        reference = feature_slice(best_table.rows, sweep_key, self.FIXED)
        assert columnar == reference
        assert columnar  # the slice actually selected something

    def test_all_rows_filtered_out(self, best_table):
        fixed = {"req_footprint_mb": lambda v: False}
        assert feature_slice(best_table, "req_neigh", fixed) == {} == \
            feature_slice(best_table.rows, "req_neigh", fixed)

    def test_categorical_fixed_and_sweep_keys(self, best_table):
        """Regression: predicates on categorical columns (decoded str
        values carry no .item()) and categorical sweep keys must work
        and match the dict path."""
        fixed = {"device": lambda d: d == "AMD-EPYC-24"}
        assert feature_slice(best_table, "req_neigh", fixed) == \
            feature_slice(best_table.rows, "req_neigh", fixed)
        assert feature_slice(best_table, "format", {}) == \
            feature_slice(best_table.rows, "format", {})


class TestOptimalRangesParity:
    @pytest.mark.parametrize("feature_key", [
        "req_footprint_mb", "avg_nnz_per_row", "skew_coeff",
    ])
    def test_optimal_ranges(self, best_table, feature_key):
        columnar = optimal_ranges(best_table, feature_key)
        reference = optimal_ranges(best_table.rows, feature_key)
        assert columnar == reference
        assert columnar is not None

    def test_top_fraction_validation(self, best_table):
        with pytest.raises(ValueError, match="top_fraction"):
            optimal_ranges(best_table, "skew_coeff", top_fraction=0.0)

    def test_empty_returns_none(self, best_table):
        empty = best_table.where(device="no-such-device")
        assert optimal_ranges(empty, "skew_coeff") is None

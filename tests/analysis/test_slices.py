"""Feature slicing, bottleneck census and optimal-range extraction."""

import pytest

from repro.analysis import bottleneck_census, feature_slice, optimal_ranges


ROWS = [
    {"device": "cpu", "req_neigh": 0.05, "req_skew": 0, "gflops": 10.0,
     "bottleneck": "memory_bandwidth"},
    {"device": "cpu", "req_neigh": 1.9, "req_skew": 0, "gflops": 20.0,
     "bottleneck": "memory_bandwidth"},
    {"device": "cpu", "req_neigh": 1.9, "req_skew": 10000, "gflops": 5.0,
     "bottleneck": "low_ilp"},
    {"device": "gpu", "req_neigh": 0.05, "req_skew": 0, "gflops": 50.0,
     "bottleneck": "memory_latency"},
]


class TestFeatureSlice:
    def test_sweep_with_fixed_predicates(self):
        out = feature_slice(
            ROWS, "req_neigh",
            fixed={"req_skew": lambda v: v == 0,
                   "device": lambda v: v == "cpu"},
        )
        assert set(out) == {0.05, 1.9}
        assert out[0.05].median == 10.0
        assert out[1.9].median == 20.0

    def test_no_fixed_predicates(self):
        out = feature_slice(ROWS, "device", fixed={})
        assert out["cpu"].n == 3

    def test_empty_slice(self):
        out = feature_slice(
            ROWS, "req_neigh", fixed={"req_skew": lambda v: v == 42}
        )
        assert out == {}


class TestBottleneckCensus:
    def test_per_device_percentages(self):
        census = bottleneck_census(ROWS)
        assert census["cpu"]["memory_bandwidth"] == pytest.approx(200 / 3)
        assert census["cpu"]["low_ilp"] == pytest.approx(100 / 3)
        assert census["gpu"] == {"memory_latency": 100.0}

    def test_group_by_other_key(self):
        census = bottleneck_census(ROWS, by="bottleneck")
        assert set(census) == {
            "memory_bandwidth", "low_ilp", "memory_latency"
        }

    def test_dataset_is_memory_bound_overall(self):
        """Integration: the simulator reproduces the paper's conclusion
        that SpMV remains memory-bound for most of the dataset."""
        from repro.core.dataset import Dataset, sweep
        from repro.core.feature_space import build_dataset_specs
        from repro.devices import TESTBEDS

        ds = Dataset(build_dataset_specs("tiny")[:30], max_nnz=30_000,
                     name="census")
        table = sweep(ds, [TESTBEDS["AMD-EPYC-64"]])
        census = bottleneck_census(table.rows)["AMD-EPYC-64"]
        assert census.get("memory_bandwidth", 0.0) > 50.0


class TestOptimalRanges:
    def test_top_quartile_range(self):
        out = optimal_ranges(ROWS, "req_neigh", top_fraction=0.25)
        assert out["n"] >= 1
        assert out["min"] <= out["median"] <= out["max"]

    def test_empty_rows(self):
        assert optimal_ranges([], "x") is None

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            optimal_ranges(ROWS, "req_neigh", top_fraction=0.0)

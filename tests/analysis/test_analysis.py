"""Analysis layer: boxplot stats, binning, wins, rendering."""

import numpy as np
import pytest

from repro.analysis import (
    BoxStats,
    ascii_boxplot,
    bin_by,
    box_stats,
    boxplot_panel,
    format_table,
    format_wins,
    geometric_mean,
    win_table,
)


class TestBoxStats:
    def test_five_numbers(self):
        s = box_stats([1, 2, 3, 4, 5])
        assert s.minimum == 1 and s.maximum == 5
        assert s.median == 3
        assert s.mean == 3
        assert s.n == 5
        assert s.iqr == s.q3 - s.q1

    def test_single_value(self):
        s = box_stats([7.0])
        assert s.minimum == s.median == s.maximum == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_quartile_ordering(self):
        rng = np.random.default_rng(0)
        s = box_stats(rng.random(1000))
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum

    def test_as_row(self):
        s = box_stats([1.0, 2.0])
        assert len(s.as_row()) == 7


class TestBinning:
    def test_labels_and_contents(self):
        rows = [
            {"mb": 2.0, "gflops": 10.0},
            {"mb": 100.0, "gflops": 20.0},
            {"mb": 600.0, "gflops": 5.0},
        ]
        bins = bin_by(rows, "mb", [32, 512], value_key="gflops")
        assert list(bins) == ["<32", "32-512", ">=512"]
        assert bins["<32"] == [10.0]
        assert bins["32-512"] == [20.0]
        assert bins[">=512"] == [5.0]

    def test_boundary_goes_right(self):
        rows = [{"v": 32.0, "gflops": 1.0}]
        bins = bin_by(rows, "v", [32])
        assert bins[">=32"] == [1.0]


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestWins:
    def test_percentages(self):
        rows = [{"format": "A"}] * 3 + [{"format": "B"}]
        wins = format_wins(rows)
        assert wins == {"A": 75.0, "B": 25.0}

    def test_empty(self):
        assert format_wins([]) == {}

    def test_win_table_by_device(self):
        rows = [
            {"device": "d1", "format": "A"},
            {"device": "d1", "format": "A"},
            {"device": "d2", "format": "B"},
        ]
        table = win_table(rows, ["d1", "d2"])
        assert table["d1"] == {"A": 100.0}
        assert table["d2"] == {"B": 100.0}


class TestRendering:
    def test_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bbbb", 22.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(line) == len(lines[2]) or i < 2
                   for i, line in enumerate(lines[2:], 2))

    def test_boxplot_markers(self):
        s = box_stats([0.0, 25.0, 50.0, 75.0, 100.0])
        plot = ascii_boxplot(s, 0.0, 100.0, width=41)
        assert plot[0] == "|"
        assert plot[-1] == "|"
        assert plot[20] == "M"
        assert "=" in plot

    def test_panel_renders_all_rows(self):
        panel = boxplot_panel(
            {"a": box_stats([1, 2, 3]), "b": box_stats([2, 4, 8])}
        )
        assert "a" in panel and "b" in panel
        assert "med=" in panel

    def test_panel_log_scale(self):
        panel = boxplot_panel(
            {"a": box_stats([1, 10, 100])}, log=True
        )
        assert "[log scale]" in panel

    def test_panel_empty(self):
        assert boxplot_panel({}) == "(no data)"

    def test_degenerate_range(self):
        s = box_stats([5.0, 5.0])
        plot = ascii_boxplot(s, 5.0, 5.0)
        assert "M" in plot

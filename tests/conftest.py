"""Shared fixtures: small deterministic matrices covering the archetypes."""

import numpy as np
import pytest

from repro.core.generator import artificial_matrix_generation
from repro.core.matrix import CSRMatrix, csr_from_dense


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dense():
    """Hand-written 4x5 matrix with known features."""
    return np.array(
        [
            [1.0, 2.0, 0.0, 0.0, 0.0],   # run of 2
            [0.0, 3.0, 4.0, 0.0, 5.0],   # run of 2 + singleton
            [0.0, 0.0, 0.0, 0.0, 0.0],   # empty row
            [6.0, 0.0, 0.0, 0.0, 7.0],   # two singletons
        ]
    )


@pytest.fixture(scope="session")
def tiny_csr(tiny_dense):
    return csr_from_dense(tiny_dense)


@pytest.fixture(scope="session")
def regular_matrix():
    """Balanced, clustered, similar rows (the 'friendly' archetype)."""
    return artificial_matrix_generation(
        600, 600, 12, skew_coeff=1, bw_scaled=0.3,
        cross_row_sim=0.8, avg_num_neigh=1.4, seed=7,
    )


@pytest.fixture(scope="session")
def skewed_matrix():
    """Heavy-tailed row lengths (imbalance archetype)."""
    return artificial_matrix_generation(
        2000, 2000, 8, skew_coeff=100, bw_scaled=0.4,
        cross_row_sim=0.3, avg_num_neigh=0.5, seed=8,
    )


@pytest.fixture(scope="session")
def irregular_matrix():
    """Scattered accesses (latency archetype)."""
    return artificial_matrix_generation(
        800, 800, 10, skew_coeff=2, bw_scaled=0.9,
        cross_row_sim=0.05, avg_num_neigh=0.05, seed=9,
    )


@pytest.fixture(scope="session")
def banded_matrix():
    """Narrow band: DIA/BCSR-friendly."""
    n = 300
    dense = np.zeros((n, n))
    for off in (-1, 0, 1):
        idx = np.arange(max(0, -off), min(n, n - off))
        dense[idx, idx + off] = 1.0 + idx
    return csr_from_dense(dense)


@pytest.fixture(scope="session")
def all_archetypes(tiny_csr, regular_matrix, skewed_matrix,
                   irregular_matrix, banded_matrix):
    return {
        "tiny": tiny_csr,
        "regular": regular_matrix,
        "skewed": skewed_matrix,
        "irregular": irregular_matrix,
        "banded": banded_matrix,
    }


def empty_matrix(n_rows=5, n_cols=7) -> CSRMatrix:
    return CSRMatrix(
        n_rows, n_cols, np.zeros(n_rows + 1, dtype=np.int64),
        np.zeros(0, dtype=np.int32), np.zeros(0),
    )

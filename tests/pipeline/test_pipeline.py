"""Pipeline engine + cache: determinism, round-trips, sharding.

The sweep tests run on a strided cross-section of the tiny preset (every
bin and feature axis is represented) so the suite stays fast; set
``REPRO_EXHAUSTIVE=1`` to run them on the full preset.
"""

import os

import numpy as np
import pytest

from repro.core.dataset import Dataset, sweep
from repro.core.feature_space import build_dataset_specs
from repro.core.generator import MatrixSpec
from repro.devices import TESTBEDS
from repro.pipeline import InstanceCache, run_sweep, resolve_jobs, spec_key

DEVICES = [TESTBEDS["AMD-EPYC-24"], TESTBEDS["Tesla-A100"]]
MAX_NNZ = 6_000

TINY = build_dataset_specs("tiny")
SPECS = TINY if os.environ.get("REPRO_EXHAUSTIVE") == "1" else TINY[::7]


def tiny_dataset(specs=None, cache=None):
    return Dataset(
        SPECS if specs is None else specs,
        max_nnz=MAX_NNZ, name="tiny", cache=cache,
    )


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("sweep-cache"))


@pytest.fixture(scope="module")
def serial_table():
    return sweep(tiny_dataset(), DEVICES)


class TestSpecKey:
    def test_stable_across_equal_specs(self):
        a = MatrixSpec.from_footprint(4.0, 10.0, seed=3)
        b = MatrixSpec.from_footprint(4.0, 10.0, seed=3)
        assert spec_key(a, 100) == spec_key(b, 100)

    def test_sensitive_to_fields_and_cap(self):
        a = MatrixSpec.from_footprint(4.0, 10.0, seed=3)
        keys = {
            spec_key(a, 100),
            spec_key(a, 200),
            spec_key(MatrixSpec.from_footprint(4.0, 10.0, seed=4), 100),
            spec_key(MatrixSpec.from_footprint(8.0, 10.0, seed=3), 100),
        }
        assert len(keys) == 4


class TestParallelDeterminism:
    def test_parallel_equals_serial_rows(self, serial_table):
        par = sweep(tiny_dataset(), DEVICES, jobs=3)
        assert par.rows == serial_table.rows

    def test_precision_threads_through_every_engine(self, serial_table):
        """``precision`` reaches the scalar and batched paths in serial
        and parallel runs alike — identical rows, different from fp64."""
        fp32 = sweep(tiny_dataset(), DEVICES, precision="fp32")
        assert fp32.rows != serial_table.rows
        assert sweep(
            tiny_dataset(), DEVICES, precision="fp32", jobs=2
        ).rows == fp32.rows
        assert sweep(
            tiny_dataset(), DEVICES, precision="fp32", batch=False
        ).rows == fp32.rows

    def test_progress_reports_monotonic_totals(self):
        seen = []
        sweep(
            tiny_dataset(specs=SPECS[:8]), DEVICES[:1], jobs=2,
            progress=lambda i, n: seen.append((i, n)),
        )
        assert seen, "progress callback never fired"
        assert all(n == 8 for _, n in seen)
        assert [i for i, _ in seen] == sorted(i for i, _ in seen)
        assert seen[-1][0] == 8

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


class TestCache:
    def test_cold_then_warm_rows_identical(self, serial_table, cache_dir):
        cold = sweep(tiny_dataset(), DEVICES, cache_dir=cache_dir)
        assert cold.rows == serial_table.rows
        # A fresh dataset + fresh cache handle: everything reloads from
        # disk, nothing is regenerated.
        warm = sweep(tiny_dataset(), DEVICES, cache_dir=cache_dir)
        assert warm.rows == serial_table.rows
        assert len(InstanceCache(cache_dir)) == len(SPECS)

    def test_parallel_with_shared_cache_matches_serial(
        self, serial_table, cache_dir
    ):
        par = sweep(tiny_dataset(), DEVICES, jobs=2, cache_dir=cache_dir)
        assert par.rows == serial_table.rows

    def test_batched_sweep_persists_derived_state(self, tmp_path):
        """Regression: the batch engine must write cache entries *after*
        grid scoring, so the persisted instances carry the features,
        format stats and SIMD/imbalance memos the scoring computed —
        otherwise every warm sweep re-derives all of it."""
        dev = TESTBEDS["INTEL-XEON"]
        sweep(tiny_dataset(specs=SPECS[:2]), [dev],
              cache_dir=str(tmp_path))
        for spec in SPECS[:2]:
            restored = InstanceCache(tmp_path).fetch(spec, MAX_NNZ)
            assert restored is not None
            assert restored._features is not None
            assert set(dev.formats) <= (
                set(restored._format_stats) | set(restored._format_fail)
            )
            assert dev.simd_width_dp in restored._simd_util
            assert restored._imbalance

    def test_instance_roundtrip_exact(self, tmp_path):
        spec = TINY[0]
        cache = InstanceCache(tmp_path)
        ds = tiny_dataset(specs=[spec])
        inst = ds.instance(0)
        inst.features  # populate every derived quantity
        inst.row_profile()
        inst.format_stats("Naive-CSR")
        inst.simd_utilisation(8)
        inst.imbalance("row_block", 16, 8)
        assert cache.store(spec, MAX_NNZ, inst)

        restored = InstanceCache(tmp_path).fetch(
            spec, MAX_NNZ, name=inst.name
        )
        assert restored is not None
        assert restored.matrix == inst.matrix
        assert restored.features == inst.features
        np.testing.assert_array_equal(
            restored.row_profile(), inst.row_profile()
        )
        assert (
            restored.format_stats("Naive-CSR")
            == inst.format_stats("Naive-CSR")
        )
        assert restored.simd_utilisation(8) == inst.simd_utilisation(8)
        assert restored.imbalance("row_block", 16, 8) == inst.imbalance(
            "row_block", 16, 8
        )

    def test_store_skips_unchanged_entries(self, tmp_path):
        spec = TINY[1]
        cache = InstanceCache(tmp_path)
        ds = tiny_dataset(specs=[spec], cache=cache)
        inst = ds.instance(0)
        inst.features
        assert cache.store(spec, MAX_NNZ, inst) is True
        assert cache.store(spec, MAX_NNZ, inst) is False  # signature equal
        inst.format_stats("COO")  # new derived state -> dirty again
        assert cache.store(spec, MAX_NNZ, inst) is True

    def test_fetch_renames_instance(self, tmp_path):
        spec = TINY[2]
        cache = InstanceCache(tmp_path)
        inst = Dataset([spec], max_nnz=MAX_NNZ, name="a").instance(0)
        cache.store(spec, MAX_NNZ, inst)
        got = cache.fetch(spec, MAX_NNZ, name="b[0]")
        assert got is not None and got.name == "b[0]"
        # A memory hit under a different name must not rename the instance
        # other datasets hold (names seed the measurement noise)...
        again = cache.fetch(spec, MAX_NNZ, name="c[0]")
        assert again.name == "c[0]" and got.name == "b[0]"
        # ...while derived state still flows into the shared cache entry.
        again.format_stats("COO")
        assert "COO" in got._format_stats

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = TINY[3]
        cache = InstanceCache(tmp_path)
        inst = Dataset([spec], max_nnz=MAX_NNZ, name="x").instance(0)
        cache.store(spec, MAX_NNZ, inst)
        for p in tmp_path.glob("*.json"):
            p.write_text("{ not json")
        fresh = InstanceCache(tmp_path)
        assert fresh.fetch(spec, MAX_NNZ, name="x[0]") is None

    def test_corrupt_npz_is_a_miss_and_heals(self, tmp_path):
        spec = TINY[3]
        cache = InstanceCache(tmp_path)
        inst = Dataset([spec], max_nnz=MAX_NNZ, name="x").instance(0)
        cache.store(spec, MAX_NNZ, inst)
        npz = next(tmp_path.glob("*.npz"))
        npz.write_bytes(b"garbage, not a zip archive")
        fresh = InstanceCache(tmp_path)
        assert fresh.fetch(spec, MAX_NNZ, name="x[0]") is None
        assert not npz.exists()  # cleared so the next store rewrites it
        assert fresh.store(spec, MAX_NNZ, inst) is True
        assert InstanceCache(tmp_path).fetch(
            spec, MAX_NNZ, name="x[0]"
        ) is not None

    def test_memo_change_rewrites_json_only(self, tmp_path):
        spec = TINY[3]
        cache = InstanceCache(tmp_path)
        inst = Dataset([spec], max_nnz=MAX_NNZ, name="x").instance(0)
        inst.features
        inst.row_profile()
        inst.simd_utilisation(8)
        cache.store(spec, MAX_NNZ, inst)
        warm = InstanceCache(tmp_path)
        got = warm.fetch(spec, MAX_NNZ, name="x[0]")
        npz = next(tmp_path.glob("*.npz"))
        mtime = npz.stat().st_mtime_ns
        got.simd_utilisation(32)  # derived memo only
        assert warm.store(spec, MAX_NNZ, got) is True
        assert npz.stat().st_mtime_ns == mtime  # matrix payload untouched


class TestRunSweepDirect:
    def test_run_sweep_accepts_cache_object(self, tmp_path):
        specs = SPECS[:6]
        reference = run_sweep(tiny_dataset(specs=specs), DEVICES)
        cache = InstanceCache(tmp_path)
        table = run_sweep(tiny_dataset(specs=specs), DEVICES, cache=cache)
        assert table.rows == reference.rows
        assert cache.misses > 0
        again = run_sweep(tiny_dataset(specs=specs), DEVICES, cache=cache)
        assert again.rows == reference.rows
        assert cache.hits_memory > 0

    def test_empty_dataset(self):
        table = run_sweep(
            Dataset([], max_nnz=MAX_NNZ, name="empty"), DEVICES, jobs=4
        )
        assert len(table) == 0

"""Golden resilience suite: bit-identical sweeps under injected faults.

Every scenario asserts the strongest available contract — the merged
table is *bit-identical* (column dtypes, raw values, category tables)
to a fault-free serial sweep — not merely that the run survived.  Set
``REPRO_CHAOS=1`` to additionally run the seeded random chaos matrix
(the CI chaos job does).
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core.dataset import Dataset
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.pipeline import (
    FaultPlan, ResumeError, RunJournal, RunReport, run_sweep,
)
from repro.pipeline.engine import resolve_dispatch

from tests.pipeline.golden import assert_bit_identical

DEVICES = [TESTBEDS["Tesla-A100"]]
MAX_NNZ = 5_000
SPECS = build_dataset_specs("tiny")[::13]  # 14 specs -> 8 chunks at jobs=2


def dataset(cache=None):
    return Dataset(SPECS, max_nnz=MAX_NNZ, name="tiny", cache=cache)


@pytest.fixture(scope="module")
def golden():
    return run_sweep(dataset(), DEVICES)


class TestFaultScenarios:
    def test_worker_crash_is_retried(self, golden):
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, faults="crash@1",
                          report=rep)
        assert_bit_identical(table, golden)
        assert rep.retries["crash"] == 1
        assert rep.worker_respawns >= 1
        assert rep.status == "complete"
        assert rep.chunks_completed == rep.chunks_total

    def test_chunk_error_is_retried(self, golden):
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, faults="error@0x2",
                          report=rep)
        assert_bit_identical(table, golden)
        assert rep.retries["error"] == 2
        assert rep.chunks_degraded == []

    def test_hang_recovered_by_deadline(self, golden):
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, faults="hang@2",
                          chunk_timeout=3.0, report=rep)
        assert_bit_identical(table, golden)
        assert rep.timeouts >= 1
        assert rep.retries["timeout"] >= 1

    def test_poisoned_chunk_degrades_in_process(self, golden):
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, faults="error@0x*",
                          report=rep)
        assert_bit_identical(table, golden)
        assert rep.chunks_degraded == [0]
        assert rep.status == "complete"

    def test_fault_pileup(self, golden):
        rep = RunReport()
        table = run_sweep(
            dataset(), DEVICES, jobs=2,
            faults="crash@0,error@3x2,crash@5,error@7x*", report=rep,
        )
        assert_bit_identical(table, golden)
        assert rep.retries["crash"] == 2
        assert rep.chunks_degraded == [7]

    def test_faults_armed_via_environment(self, golden, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@1")
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, report=rep)
        assert_bit_identical(table, golden)
        assert rep.retries["error"] == 1

    def test_no_zombie_processes_after_faulted_run(self):
        run_sweep(dataset(), DEVICES, jobs=2, faults="crash@2,hang@4",
                  chunk_timeout=3.0)
        assert multiprocessing.active_children() == []

    def test_progress_monotonic_under_faults(self):
        seen = []
        run_sweep(dataset(), DEVICES, jobs=2, faults="crash@1,error@3",
                  progress=lambda i, n: seen.append((i, n)))
        assert seen and seen[-1][0] == len(SPECS)
        assert all(n == len(SPECS) for _, n in seen)
        assert [i for i, _ in seen] == sorted(i for i, _ in seen)


class TestResume:
    def test_stop_fault_then_resume(self, golden, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(dataset(), DEVICES, jobs=2, run_dir=run_dir,
                      faults="stop@2")
        journal = RunJournal.load(run_dir)
        assert journal.ended == "interrupted"
        done_before = set(journal.completed_chunks())
        assert 2 in done_before
        assert len(done_before) < len(journal.bounds)
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, run_dir=run_dir,
                          resume=True, report=rep)
        assert_bit_identical(table, golden)
        assert rep.chunks_resumed == len(done_before)
        assert RunJournal.load(run_dir).ended == "complete"

    def test_resume_with_different_jobs(self, golden, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(dataset(), DEVICES, jobs=2, run_dir=run_dir,
                      faults="stop@1")
        # Serial resume of a 2-worker run: journalled bounds make the
        # merge jobs-independent.
        table = run_sweep(dataset(), DEVICES, jobs=1, run_dir=run_dir,
                          resume=True)
        assert_bit_identical(table, golden)

    def test_fresh_journalled_serial_run(self, golden, tmp_path):
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=1,
                          run_dir=tmp_path / "run", report=rep)
        assert_bit_identical(table, golden)
        assert rep.engine["journalled"] is True
        assert RunJournal.load(tmp_path / "run").ended == "complete"

    def test_resume_requires_a_journal(self, tmp_path):
        with pytest.raises(ResumeError):
            run_sweep(dataset(), DEVICES, run_dir=tmp_path / "void",
                      resume=True)

    def test_resume_refuses_changed_config(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(dataset(), DEVICES, jobs=2, run_dir=run_dir,
                      faults="stop@0")
        with pytest.raises(ResumeError, match="precision"):
            run_sweep(dataset(), DEVICES, jobs=2, run_dir=run_dir,
                      resume=True, precision="fp32")

    def test_resume_needs_run_dir(self):
        with pytest.raises(ValueError):
            run_sweep(dataset(), DEVICES, resume=True)

    def test_sigkill_mid_run_then_resume(self, golden, tmp_path):
        """The real thing: a journalled sweep killed with SIGKILL mid-run
        resumes to a bit-identical table.  The subprocess hangs on chunk
        6 (no deadline), so the kill always lands mid-run."""
        run_dir = tmp_path / "run"
        script = (
            "import sys\n"
            "from repro.core.dataset import Dataset\n"
            "from repro.core.feature_space import build_dataset_specs\n"
            "from repro.devices import TESTBEDS\n"
            "from repro.pipeline import run_sweep\n"
            "specs = build_dataset_specs('tiny')[::13]\n"
            "ds = Dataset(specs, max_nnz=5000, name='tiny')\n"
            "run_sweep(ds, [TESTBEDS['Tesla-A100']], jobs=2,\n"
            "          run_dir=sys.argv[1], faults='hang@6')\n"
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_DISPATCH", None)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(run_dir)],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        shards = run_dir / "shards"
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if (shards.is_dir()
                        and len(list(shards.glob("chunk-*.npz"))) >= 2):
                    break
                assert proc.poll() is None, \
                    "sweep subprocess exited before it could be killed"
                time.sleep(0.1)
            else:
                pytest.fail("no journalled shards appeared within 120s")
        finally:
            # Kill the whole process group: the parent AND its workers.
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            proc.wait()
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, run_dir=run_dir,
                          resume=True, report=rep)
        assert_bit_identical(table, golden)
        assert rep.chunks_resumed >= 2


class TestDispatchModes:
    def test_pool_baseline_parity(self, golden):
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, dispatch="pool",
                          report=rep)
        assert_bit_identical(table, golden)
        assert rep.engine["dispatch"] == "pool"

    def test_pool_rejects_resilience_controls(self, tmp_path):
        for kwargs in ({"run_dir": tmp_path / "r"},
                       {"faults": "crash@0"},
                       {"chunk_timeout": 5.0}):
            with pytest.raises(ValueError, match="pool"):
                run_sweep(dataset(), DEVICES, jobs=2, dispatch="pool",
                          **kwargs)

    def test_resolve_dispatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISPATCH", raising=False)
        assert resolve_dispatch(None) == "resilient"
        assert resolve_dispatch("pool") == "pool"
        monkeypatch.setenv("REPRO_DISPATCH", "pool")
        assert resolve_dispatch(None) == "pool"
        with pytest.raises(ValueError, match="dispatch"):
            resolve_dispatch("carrier-pigeon")


class TestRunReport:
    def test_report_round_trips(self, golden, tmp_path):
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, faults="error@1",
                          report=rep)
        assert_bit_identical(table, golden)
        data = rep.to_dict()
        assert json.loads(rep.to_json()) == data
        for phase in ("dispatch", "merge", "total"):
            assert phase in data["wall_clock"]
        assert data["engine"]["jobs"] == 2
        assert data["status"] == "complete"
        assert data["retries"]["error"] == 1
        assert data["events"][0]["chunk"] == 1
        path = tmp_path / "health.json"
        rep.write(path)
        assert json.loads(path.read_text()) == data

    def test_event_log_is_bounded(self):
        rep = RunReport()
        for i in range(500):
            rep.record_incident("error", i, 0)
        assert len(rep.events) == 200
        assert rep.events_dropped == 300
        assert rep.retries["error"] == 500  # counters stay exact


CHAOS = os.environ.get("REPRO_CHAOS") == "1"


@pytest.mark.skipif(not CHAOS,
                    reason="seeded chaos matrix: set REPRO_CHAOS=1")
class TestChaosMatrix:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_plan_bit_identical(self, golden, tmp_path, seed):
        warm = tmp_path / "cache"
        assert_bit_identical(
            run_sweep(dataset(), DEVICES, cache_dir=str(warm)), golden
        )
        plan = FaultPlan.random(
            seed, n_chunks=8,
            kinds=("crash", "error", "hang", "corrupt"), rate=0.4,
        )
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2, faults=plan,
                          chunk_timeout=5.0, cache_dir=str(warm),
                          report=rep)
        assert_bit_identical(table, golden)
        assert rep.status == "complete"
        assert multiprocessing.active_children() == []

"""RunJournal: crash-safe JSONL log, atomic shards, config fingerprint."""

import json

import pytest

from repro.core.dataset import Dataset
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.pipeline import ResumeError, RunJournal, run_sweep, sweep_config
from repro.pipeline.journal import JOURNAL_VERSION

DEVICES = [TESTBEDS["Tesla-A100"]]
MAX_NNZ = 5_000
SPECS = build_dataset_specs("tiny")[::45]  # 4 specs: journal unit scale

BOUNDS = [(0, 2), (2, 4)]


def dataset(specs=None):
    return Dataset(SPECS if specs is None else specs,
                   max_nnz=MAX_NNZ, name="tiny")


def config(**overrides):
    kwargs = dict(dataset=dataset(), devices=DEVICES, best_only=True,
                  formats=None, seed=0, precision="fp64", batch=True,
                  fused=False)
    kwargs.update(overrides)
    return sweep_config(**kwargs)


@pytest.fixture(scope="module")
def chunk_table():
    return run_sweep(dataset(SPECS[:2]), DEVICES)


class TestConfigFingerprint:
    def test_stable_across_equal_runs(self):
        assert config() == config()

    def test_sensitive_to_table_changing_knobs(self):
        base = config()
        assert config(seed=3)["seed"] != base["seed"]
        assert config(precision="fp32")["precision"] != base["precision"]
        assert (config(dataset=dataset(SPECS[:2]))["dataset_sha"]
                != base["dataset_sha"])

    def test_parallelism_knobs_are_not_fingerprinted(self):
        # jobs / cache / dispatch are proven not to change the table, so
        # a run may be resumed with different parallelism elsewhere.
        assert {"jobs", "cache_dir", "dispatch"} & set(config()) == set()


class TestJournalLifecycle:
    def test_create_then_load_round_trip(self, tmp_path):
        RunJournal.create(tmp_path / "run", config(), BOUNDS)
        loaded = RunJournal.load(tmp_path / "run")
        assert loaded.config == config()
        assert loaded.bounds == BOUNDS
        assert loaded.completed_chunks() == {}
        assert loaded.ended is None

    def test_create_refuses_existing_journal(self, tmp_path):
        RunJournal.create(tmp_path / "run", config(), BOUNDS)
        with pytest.raises(ResumeError, match="already exists"):
            RunJournal.create(tmp_path / "run", config(), BOUNDS)

    def test_load_missing_journal(self, tmp_path):
        with pytest.raises(ResumeError, match="nothing to resume"):
            RunJournal.load(tmp_path / "void")

    def test_records_and_shards_reload(self, tmp_path, chunk_table):
        journal = RunJournal.create(tmp_path / "run", config(), BOUNDS)
        journal.write_shard(0, chunk_table)
        journal.record_chunk(0, 0, 2, attempt=1)
        journal.record_end("complete")
        loaded = RunJournal.load(tmp_path / "run")
        assert loaded.ended == "complete"
        completed = loaded.completed_chunks()
        assert list(completed) == [0]
        assert completed[0].rows == chunk_table.rows

    def test_torn_trailing_line_tolerated(self, tmp_path, chunk_table):
        journal = RunJournal.create(tmp_path / "run", config(), BOUNDS)
        journal.write_shard(0, chunk_table)
        journal.record_chunk(0, 0, 2, attempt=0)
        # The parent died mid-append: a partial JSON record at the tail.
        with open(journal.path, "a") as fh:
            fh.write('{"event": "chunk", "chu')
        loaded = RunJournal.load(tmp_path / "run")
        assert list(loaded.completed_chunks()) == [0]
        assert loaded.ended is None

    def test_corrupt_middle_line_refused(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", config(), BOUNDS)
        with open(journal.path, "a") as fh:
            fh.write("not json at all\n")
        journal.record_end("complete")
        with pytest.raises(ResumeError, match="corrupt"):
            RunJournal.load(tmp_path / "run")

    def test_missing_begin_record_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "journal.jsonl").write_text(
            json.dumps({"event": "chunk", "chunk": 0, "shard": "x"}) + "\n"
        )
        with pytest.raises(ResumeError, match="begin"):
            RunJournal.load(run_dir)

    def test_version_mismatch_refused(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", config(), BOUNDS)
        lines = journal.path.read_text().splitlines()
        begin = json.loads(lines[0])
        assert begin["version"] == JOURNAL_VERSION
        begin["version"] = JOURNAL_VERSION + 1
        lines[0] = json.dumps(begin)
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ResumeError, match="version"):
            RunJournal.load(tmp_path / "run")

    def test_check_config_names_the_differing_keys(self, tmp_path):
        journal = RunJournal.create(tmp_path / "run", config(), BOUNDS)
        journal.check_config(config())  # identical: no complaint
        with pytest.raises(ResumeError, match="seed"):
            journal.check_config(config(seed=9))
        with pytest.raises(ResumeError, match="precision"):
            journal.check_config(config(precision="fp32"))


class TestShards:
    def test_write_is_atomic_no_temp_files_left(self, tmp_path,
                                                chunk_table):
        journal = RunJournal.create(tmp_path / "run", config(), BOUNDS)
        journal.write_shard(0, chunk_table)
        names = sorted(p.name for p in journal.shards_dir.iterdir())
        assert names == ["chunk-000000.npz"]

    def test_rewrite_last_record_wins(self, tmp_path, chunk_table):
        journal = RunJournal.create(tmp_path / "run", config(), BOUNDS)
        for attempt in (0, 1):
            journal.write_shard(1, chunk_table)
            journal.record_chunk(1, 2, 4, attempt=attempt)
        loaded = RunJournal.load(tmp_path / "run")
        assert list(loaded.completed_chunks()) == [1]

    def test_unreadable_shard_means_rerun_not_crash(self, tmp_path,
                                                    chunk_table):
        journal = RunJournal.create(tmp_path / "run", config(), BOUNDS)
        journal.write_shard(0, chunk_table)
        journal.record_chunk(0, 0, 2, attempt=0)
        journal.write_shard(1, chunk_table)
        journal.record_chunk(1, 2, 4, attempt=0)
        journal.shard_path(1).write_bytes(b"not a zip archive")
        loaded = RunJournal.load(tmp_path / "run")
        # Chunk 1 silently drops out of the completed set: it will be
        # re-executed on resume, which is always safe.
        assert list(loaded.completed_chunks()) == [0]

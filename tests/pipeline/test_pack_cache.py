"""Pack-backed cache + pack-backed journal shards.

Mirror of tests/pipeline/test_quarantine.py for the pack era: a warm
sweep served entirely out of ``cache.rpak`` must be row-for-row
bit-identical to the directory-cache and no-cache paths, and every pack
corruption mode must quarantine evidence (never delete) and leave the
sweep output bit-identical.
"""

import os
import shutil
import threading

import pytest

from repro.core.dataset import Dataset
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.io.pack import HEADER_SIZE
from repro.pipeline import InstanceCache, RunReport, run_sweep
from repro.pipeline.cache import PACK_NAME, pack_cache_dir, unpack_cache
from repro.pipeline.journal import RunJournal, sweep_config

from tests.pipeline.golden import assert_bit_identical

DEVICES = [TESTBEDS["Tesla-A100"]]
MAX_NNZ = 5_000
SPECS = build_dataset_specs("tiny")[::29]  # 7 specs


def dataset(cache=None):
    return Dataset(SPECS, max_nnz=MAX_NNZ, name="tiny", cache=cache)


@pytest.fixture(scope="module")
def golden_and_packed_cache(tmp_path_factory):
    """Golden table + a cache directory whose entries live only in the
    pack (loose pairs pruned after checksum verification)."""
    warm = tmp_path_factory.mktemp("packed-cache")
    table = run_sweep(dataset(), DEVICES, cache_dir=str(warm))
    entries, _ = pack_cache_dir(warm, prune=True)
    assert entries == len(SPECS)
    assert not list(warm.glob("*.npz"))
    return table, warm


class TestPackBackedCache:
    def test_warm_sweep_from_pack_bit_identical(
            self, golden_and_packed_cache, tmp_path):
        golden, packed = golden_and_packed_cache
        cache_dir = tmp_path / "cache"
        shutil.copytree(packed, cache_dir)
        cache = InstanceCache(cache_dir)
        table = run_sweep(dataset(), DEVICES, cache=cache)
        assert_bit_identical(table, golden)
        assert cache.hits_pack == len(SPECS)
        assert cache.misses == 0
        assert cache.quarantined == 0

    def test_loose_pair_shadows_pack(self, golden_and_packed_cache,
                                     tmp_path):
        """A later store writes loose pairs; fetch must prefer them
        over the (older, read-only) pack snapshot."""
        golden, packed = golden_and_packed_cache
        cache_dir = tmp_path / "cache"
        shutil.copytree(packed, cache_dir)
        unpack_cache(cache_dir / PACK_NAME, cache_dir)
        cache = InstanceCache(cache_dir)
        table = run_sweep(dataset(), DEVICES, cache=cache)
        assert_bit_identical(table, golden)
        assert cache.hits_disk == len(SPECS)
        assert cache.hits_pack == 0

    @pytest.mark.parametrize("mode", ["magic", "truncate"])
    def test_corrupt_pack_file_quarantined(
            self, golden_and_packed_cache, tmp_path, mode):
        """An unreadable pack is moved into quarantine/ wholesale; the
        sweep rematerialises everything and stays bit-identical."""
        golden, packed = golden_and_packed_cache
        cache_dir = tmp_path / "cache"
        shutil.copytree(packed, cache_dir)
        pack_path = cache_dir / PACK_NAME
        data = pack_path.read_bytes()
        if mode == "magic":
            pack_path.write_bytes(b"NOTAPACK" + data[8:])
        else:
            pack_path.write_bytes(data[: HEADER_SIZE // 2])
        cache = InstanceCache(cache_dir)
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, cache=cache, report=rep)
        assert_bit_identical(table, golden)
        assert cache.quarantined == 1
        assert rep.cache_quarantined >= 1
        assert not pack_path.exists()
        assert (cache_dir / "quarantine" / PACK_NAME).exists()

    def test_corrupt_pack_entry_quarantined_as_copy(
            self, golden_and_packed_cache, tmp_path):
        """One flipped blob byte: only that entry is treated as a miss,
        its raw bytes are copied out as evidence, and the rest of the
        pack keeps serving hits."""
        golden, packed = golden_and_packed_cache
        cache_dir = tmp_path / "cache"
        shutil.copytree(packed, cache_dir)
        pack_path = cache_dir / PACK_NAME
        data = bytearray(pack_path.read_bytes())
        data[HEADER_SIZE] ^= 0xFF  # first blob byte = first entry
        pack_path.write_bytes(bytes(data))
        cache = InstanceCache(cache_dir)
        table = run_sweep(dataset(), DEVICES, cache=cache)
        assert_bit_identical(table, golden)
        assert cache.hits_pack == len(SPECS) - 1
        assert cache.quarantined == 1
        assert pack_path.exists()  # the pack itself is untouched
        evidence = sorted(
            p.name for p in (cache_dir / "quarantine").iterdir()
        )
        assert len(evidence) == 2  # both halves copied out as a pair
        assert {n.rsplit(".", 1)[1] for n in evidence} == {"npz", "json"}


class TestLen:
    def test_counts_only_complete_pairs(self, tmp_path):
        spec = SPECS[0]
        inst = Dataset([spec], max_nnz=MAX_NNZ, name="x").instance(0)
        cache = InstanceCache(tmp_path)
        cache.store(spec, MAX_NNZ, inst)
        assert len(InstanceCache(tmp_path)) == 1
        # An orphaned half (crash between the two atomic writes) is not
        # a usable entry and must not be counted.
        (tmp_path / f"{'0' * 32}.npz").write_bytes(b"orphan")
        (tmp_path / f"{'f' * 32}.json").write_text("{}")
        assert len(InstanceCache(tmp_path)) == 1

    def test_census_is_cached_not_rescanned(self, tmp_path):
        spec = SPECS[0]
        inst = Dataset([spec], max_nnz=MAX_NNZ, name="x").instance(0)
        cache = InstanceCache(tmp_path)
        assert len(cache) == 0
        cache.store(spec, MAX_NNZ, inst)
        # store() updated the census incrementally; a file that appears
        # behind the handle's back is invisible until a fresh handle
        # scans — proving repeated len() calls do not re-list the dir.
        real = os.scandir
        calls = []

        def counting_scandir(*a, **k):
            calls.append(a)
            return real(*a, **k)

        os.scandir = counting_scandir
        try:
            for _ in range(10):
                assert len(cache) == 1
        finally:
            os.scandir = real
        assert calls == []

    def test_pack_entries_counted(self, golden_and_packed_cache,
                                  tmp_path):
        _, packed = golden_and_packed_cache
        cache_dir = tmp_path / "cache"
        shutil.copytree(packed, cache_dir)
        assert len(InstanceCache(cache_dir)) == len(SPECS)

    def test_quarantine_updates_census(self, tmp_path):
        spec = SPECS[0]
        inst = Dataset([spec], max_nnz=MAX_NNZ, name="x").instance(0)
        cache = InstanceCache(tmp_path)
        cache.store(spec, MAX_NNZ, inst)
        next(tmp_path.glob("*.json")).write_text("{ torn")
        fresh = InstanceCache(tmp_path)
        assert len(fresh) == 1          # census taken before detection
        assert fresh.fetch(spec, MAX_NNZ, name="x[0]") is None
        assert len(fresh) == 0          # quarantine removed the entry


class TestConcurrentQuarantine:
    def test_same_name_collisions_keep_every_piece_of_evidence(
            self, tmp_path):
        """Regression for the quarantine collision race: N workers
        quarantining same-named files at the same instant must end up
        with N distinct evidence files — the old ``while
        target.exists()`` probe let two workers pick the same ``.N``
        suffix and clobber each other."""
        n = 8
        contents = [f"evidence-{i}".encode() for i in range(n)]
        victims = []
        for i in range(n):
            sub = tmp_path / f"w{i}"
            sub.mkdir()
            victim = sub / "victim.json"
            victim.write_bytes(contents[i])
            victims.append(victim)
        caches = [InstanceCache(tmp_path) for _ in range(n)]
        barrier = threading.Barrier(n)
        errors = []

        def worker(i):
            try:
                barrier.wait()
                caches[i]._quarantine(victims[i])
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        moved = list((tmp_path / "quarantine").iterdir())
        assert len(moved) == n
        assert sorted(p.read_bytes() for p in moved) == sorted(contents)
        assert all(not v.exists() for v in victims)


class TestPackShards:
    def config(self):
        return sweep_config(
            dataset(), DEVICES, True, None, 0, "fp64", True, False
        )

    def test_journalled_pack_sweep_and_resume(self, golden_and_packed_cache,
                                              tmp_path):
        golden, _ = golden_and_packed_cache
        run_dir = tmp_path / "run"
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, run_dir=str(run_dir),
                          pack_shards=True, report=rep)
        assert_bit_identical(table, golden)
        assert rep.engine["shards"] == "pack"
        journal = RunJournal.load(run_dir)
        assert journal.shard_store == "pack"
        assert journal.pack_path.exists()
        assert not journal.shards_dir.exists()
        done = journal.completed_chunks()
        assert sorted(done) == sorted(journal._chunks)
        # Resume follows the journalled layout (no flag needed) and
        # reuses every packed shard.
        rep2 = RunReport()
        table2 = run_sweep(dataset(), DEVICES, run_dir=str(run_dir),
                           resume=True, report=rep2)
        assert_bit_identical(table2, golden)
        assert rep2.engine["shards"] == "pack"
        assert rep2.chunks_resumed == len(journal._chunks)

    def test_corrupt_shard_pack_means_rerun_not_crash(self, tmp_path):
        from repro.core.table import SweepTable

        journal = RunJournal.create(
            tmp_path / "run", self.config(), [(0, 2), (2, 4)],
            shard_store="pack",
        )
        shard = SweepTable.from_rows([{"device": "A", "gflops": 1.0}])
        journal.write_shard(0, shard)
        journal.record_chunk(0, 0, 2, attempt=0)
        journal.pack_path.write_bytes(b"garbage, not a pack")
        reloaded = RunJournal.load(tmp_path / "run")
        assert reloaded.shard_store == "pack"
        assert reloaded.completed_chunks() == {}

    def test_retried_chunk_reappends_idempotently(self, tmp_path):
        from repro.core.table import SweepTable

        journal = RunJournal.create(
            tmp_path / "run", self.config(), [(0, 2)],
            shard_store="pack",
        )
        shard = SweepTable.from_rows([{"device": "A", "gflops": 1.0}])
        journal.write_shard(0, shard)
        size = journal.pack_path.stat().st_size
        journal.write_shard(0, shard)  # retry with identical payload
        assert journal.pack_path.stat().st_size == size
        loaded = journal.load_shard(0)
        assert loaded.names == shard.names

    def test_unknown_shard_store_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shard store"):
            RunJournal.create(
                tmp_path / "run", self.config(), [(0, 1)],
                shard_store="tape",
            )

"""Bit-level SweepTable equality helper shared by the resilience suites."""

import numpy as np


def assert_bit_identical(a, b):
    """Bit-level table equality: column order, dtypes, raw values
    (categorical codes, not decoded strings) and category tables.

    Raw ``.npz`` bytes are *not* compared — zip members carry mtimes —
    but the contract is the same: ``to_npz`` serialises exactly these
    arrays and category lists, nothing else.
    """
    assert a.names == b.names, "column sets differ"
    for name in a.names:
        ca, cb = a._columns[name], b._columns[name]
        assert ca.dtype == cb.dtype, f"column {name!r} dtype differs"
        np.testing.assert_array_equal(ca, cb, err_msg=f"column {name!r}")
    assert a._categories == b._categories, "category tables differ"

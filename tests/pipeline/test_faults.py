"""FaultPlan: spec parsing, determinism, firing semantics, corruption."""

import random

import pytest

from repro.pipeline import Fault, FaultPlan, InjectedFaultError, corrupt_file
from repro.pipeline.faults import FAULT_KINDS, HANG_SECONDS


class TestFaultTokens:
    def test_round_trip_every_form(self):
        for token in ("crash@2", "error@0x3", "hang@5x*", "corrupt@0",
                      "stop@7"):
            assert Fault.from_token(token).to_token() == token

    def test_default_attempts_is_one(self):
        fault = Fault.from_token("crash@4")
        assert fault.attempts == 1
        assert fault.to_token() == "crash@4"  # the x1 suffix is implied

    @pytest.mark.parametrize("token", [
        "crash2",          # no @
        "frobnicate@1",    # unknown kind
        "crash@-1",        # negative chunk
        "crash@1x0",       # zero attempts
        "crash@1x-3",      # negative attempts (not the -1 sentinel)
    ])
    def test_invalid_tokens_rejected(self, token):
        with pytest.raises(ValueError):
            Fault.from_token(token)

    def test_fires_counts_attempts(self):
        fault = Fault("crash", 3, attempts=2)
        assert fault.fires(3, 0) and fault.fires(3, 1)
        assert not fault.fires(3, 2)
        assert not fault.fires(2, 0)

    def test_fires_always_sentinel(self):
        fault = Fault("error", 1, attempts=-1)
        assert all(fault.fires(1, a) for a in range(10))


class TestFaultPlan:
    def test_empty_spec_is_no_plan(self):
        assert FaultPlan.from_spec(None) is None
        assert FaultPlan.from_spec("") is None

    def test_spec_round_trip_with_seed(self):
        spec = "crash@2,error@0x2,hang@5x*;seed=7"
        plan = FaultPlan.from_spec(spec)
        assert plan.seed == 7
        assert plan.to_spec() == spec

    def test_spec_round_trip_without_seed(self):
        plan = FaultPlan.from_spec("crash@1,stop@3")
        assert plan.seed == 0
        assert plan.to_spec() == "crash@1,stop@3"

    def test_bad_tail_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.from_spec("crash@1;sneed=7")

    def test_matching_filters_kind_and_attempt(self):
        plan = FaultPlan([Fault("crash", 0), Fault("error", 0, attempts=2),
                          Fault("crash", 1)])
        assert [f.kind for f in plan.matching(0, 0)] == ["crash", "error"]
        assert [f.kind for f in plan.matching(0, 1)] == ["error"]
        assert plan.matching(0, 0, kinds=("error",))[0].kind == "error"
        assert plan.matching(2, 0) == []

    def test_stop_after(self):
        plan = FaultPlan([Fault("stop", 4), Fault("crash", 2)])
        assert plan.stop_after(4)
        assert not plan.stop_after(2)

    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random(5, 20)
        b = FaultPlan.random(5, 20)
        assert a.to_spec() == b.to_spec()
        assert a.to_spec() != FaultPlan.random(6, 20).to_spec()

    def test_random_plan_respects_bounds_kinds_and_rate(self):
        plan = FaultPlan.random(3, 40, kinds=("crash", "error"), rate=0.5)
        assert all(0 <= f.chunk < 40 for f in plan.faults)
        assert {f.kind for f in plan.faults} <= {"crash", "error"}
        assert FaultPlan.random(3, 40, rate=0.0).faults == ()
        assert len(FaultPlan.random(3, 40, rate=1.0).faults) == 40

    def test_fire_error_raises_injected_fault(self):
        plan = FaultPlan([Fault("error", 2)])
        with pytest.raises(InjectedFaultError):
            plan.fire(2, 0)
        plan.fire(2, 1)  # attempt past the fault: a no-op
        plan.fire(0, 0)  # different chunk: a no-op

    def test_fire_crash_calls_os_exit(self, monkeypatch):
        codes = []
        monkeypatch.setattr("repro.pipeline.faults.os._exit",
                            lambda code: codes.append(code))
        plan = FaultPlan([Fault("crash", 0)])
        # With _exit stubbed out the loop falls through to the raise.
        with pytest.raises(InjectedFaultError):
            plan.fire(0, 0)
        assert codes == [17]

    def test_fire_hang_sleeps_past_any_deadline(self, monkeypatch):
        naps = []
        monkeypatch.setattr("repro.pipeline.faults.time.sleep",
                            lambda s: naps.append(s))
        plan = FaultPlan([Fault("hang", 0)])
        with pytest.raises(InjectedFaultError):
            plan.fire(0, 0)
        assert naps == [HANG_SECONDS]

    def test_fault_kinds_cover_spec_grammar(self):
        assert set(FAULT_KINDS) == {"crash", "error", "hang", "corrupt",
                                    "stop"}


class TestCorruptFile:
    def test_truncate_halves_the_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(range(100)))
        assert corrupt_file(path, mode="truncate") == "truncate"
        assert path.read_bytes() == bytes(range(50))

    def test_flip_changes_exactly_one_byte(self, tmp_path):
        data = bytes(range(200))
        path = tmp_path / "f.bin"
        path.write_bytes(data)
        assert corrupt_file(path, mode="flip",
                            rng=random.Random(1)) == "flip"
        damaged = path.read_bytes()
        assert len(damaged) == len(data)
        diffs = [i for i in range(len(data)) if damaged[i] != data[i]]
        assert len(diffs) == 1
        assert damaged[diffs[0]] == data[diffs[0]] ^ 0xFF

    def test_flip_is_deterministic_for_a_seeded_rng(self, tmp_path):
        results = []
        for name in ("a.bin", "b.bin"):
            path = tmp_path / name
            path.write_bytes(bytes(range(200)))
            corrupt_file(path, mode="flip", rng=random.Random(9))
            results.append(path.read_bytes())
        assert results[0] == results[1]

    def test_tiny_file_falls_back_to_truncation(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"x")
        assert corrupt_file(path, mode="flip") == "truncate"
        assert path.read_bytes() == b""

    def test_corrupt_fault_targets_the_given_keys(self, tmp_path):
        for name in ("aaa.npz", "bbb.npz", "ccc.json"):
            (tmp_path / name).write_bytes(bytes(range(64)))
        plan = FaultPlan([Fault("corrupt", 0)], seed=1)
        plan.fire(0, 0, cache_dir=str(tmp_path), keys=["bbb"])
        assert (tmp_path / "aaa.npz").read_bytes() == bytes(range(64))
        assert (tmp_path / "ccc.json").read_bytes() == bytes(range(64))
        assert (tmp_path / "bbb.npz").read_bytes() != bytes(range(64))

    def test_corrupt_fault_tolerates_missing_targets(self, tmp_path):
        plan = FaultPlan([Fault("corrupt", 0)], seed=1)
        plan.fire(0, 0, cache_dir=None)                    # no cache
        plan.fire(0, 0, cache_dir=str(tmp_path / "nope"))  # no directory
        plan.fire(0, 0, cache_dir=str(tmp_path))           # no files

"""Cache corruption → quarantine: never silent deletion, never bad data.

A corrupt ``<key>.npz``/``.json`` pair anywhere in the corpus must (a)
leave the sweep bit-identical to a clean run — the entry is treated as a
miss and rematerialised — and (b) move the damaged files into
``quarantine/`` so the evidence survives for inspection.
"""

import shutil

import pytest

from repro.core.dataset import Dataset
from repro.core.feature_space import build_dataset_specs
from repro.devices import TESTBEDS
from repro.pipeline import InstanceCache, RunReport, corrupt_file, run_sweep

from tests.pipeline.golden import assert_bit_identical

DEVICES = [TESTBEDS["Tesla-A100"]]
MAX_NNZ = 5_000
SPECS = build_dataset_specs("tiny")[::29]  # 7 specs


def dataset(cache=None):
    return Dataset(SPECS, max_nnz=MAX_NNZ, name="tiny", cache=cache)


@pytest.fixture(scope="module")
def golden_and_warm_cache(tmp_path_factory):
    warm = tmp_path_factory.mktemp("warm-cache")
    table = run_sweep(dataset(), DEVICES, cache_dir=str(warm))
    return table, warm


class TestQuarantine:
    @pytest.mark.parametrize("suffix", [".npz", ".json"])
    @pytest.mark.parametrize("mode", ["truncate", "flip"])
    def test_corrupt_entry_mid_corpus(self, golden_and_warm_cache,
                                      tmp_path, suffix, mode):
        golden, warm = golden_and_warm_cache
        cache_dir = tmp_path / "cache"
        shutil.copytree(warm, cache_dir)
        victims = sorted(cache_dir.glob(f"*{suffix}"))
        victim = victims[len(victims) // 2]
        corrupt_file(victim, mode=mode)

        cache = InstanceCache(cache_dir)
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, cache=cache, report=rep)
        assert_bit_identical(table, golden)
        assert cache.quarantined == 1
        assert rep.cache_quarantined == 1
        # Both halves of the pair moved together (only valid as a pair).
        moved = sorted(p.name for p in cache.quarantine_dir.iterdir())
        assert victim.name in moved
        assert len(moved) == 2
        # The entry healed: the full corpus is back on disk, and the
        # quarantine subdirectory does not inflate the census.
        assert len(InstanceCache(cache_dir)) == len(SPECS)

    def test_collisions_get_suffixes_not_overwritten(self, tmp_path):
        spec = SPECS[0]
        inst = Dataset([spec], max_nnz=MAX_NNZ, name="x").instance(0)
        for _ in range(2):
            store = InstanceCache(tmp_path)
            store.store(spec, MAX_NNZ, inst)
            next(tmp_path.glob("*.json")).write_text("{ torn")
            fresh = InstanceCache(tmp_path)
            assert fresh.fetch(spec, MAX_NNZ, name="x[0]") is None
            assert fresh.quarantined == 1
        names = sorted(p.name for p in (tmp_path / "quarantine").iterdir())
        # npz+json moved twice; the second pair picked up ``.1`` suffixes
        # instead of clobbering the first round's evidence.
        assert len(names) == 4
        assert sum(n.endswith(".1") for n in names) == 2
        assert len(InstanceCache(tmp_path)) == 0

    def test_worker_side_corrupt_fault(self, golden_and_warm_cache,
                                       tmp_path):
        """A ``corrupt`` fault fired inside a crew worker damages the
        fault chunk's own cache entry; the worker quarantines it, re-
        materialises, and its quarantine count reaches the RunReport."""
        golden, warm = golden_and_warm_cache
        cache_dir = tmp_path / "cache"
        shutil.copytree(warm, cache_dir)
        rep = RunReport()
        table = run_sweep(dataset(), DEVICES, jobs=2,
                          faults="corrupt@1;seed=3",
                          cache_dir=str(cache_dir), report=rep)
        assert_bit_identical(table, golden)
        assert rep.cache_quarantined >= 1
        assert list((cache_dir / "quarantine").iterdir())

"""Golden agreement: fused sweeps are bit-identical to the instance path.

The fused cold path (``repro.perfmodel.fused``) must reproduce the
instance-materialising sweep row for row — same measurements, same noise,
same skip reasons, same category order — across execution engines
(serial / pool), cache states (cold / warm) and every registered format,
including the scalar fallback and capacity-gated cells.  The hypothesis
section pins the ``stats_from_csr_batch`` contract itself: a batch entry
equals the scalar ``stats_from_csr`` outcome (errors included) and is
invariant under batch order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_dataset_specs
from repro.core.dataset import Dataset, fused_spec_table, grid_spec_table
from repro.core.matrix import CSRStructBatch, csr_from_coo
from repro.devices import get_device
from repro.formats import FORMAT_REGISTRY, FormatError
from repro.perfmodel.batch import _score_grid, simulate_grid
from repro.perfmodel.fused import FusedSpecSource
from repro.pipeline.engine import run_sweep

DEVICE_NAMES = ("AMD-EPYC-24", "Tesla-A100", "Alveo-U280")
MAX_NNZ = 60_000
# A cross-section of the tiny dataset: small, mid and the largest specs
# (the latter trip the Alveo capacity gate and the ELL/DIA refusals).
SPEC_INDICES = (0, 7, 23, 61, 96, 133, 158, 171, 179)


def _devices():
    return [get_device(name) for name in DEVICE_NAMES]


@pytest.fixture(scope="module")
def golden_specs():
    specs = build_dataset_specs("tiny")
    return [specs[i] for i in SPEC_INDICES]


def _dataset(specs, cache=None):
    return Dataset(specs, max_nnz=MAX_NNZ, name="golden", cache=cache)


def _assert_tables_equal(a, b, context=""):
    assert a.names == b.names, context
    for name in a.names:
        assert np.array_equal(a.column(name), b.column(name)), (
            context, name,
        )
        assert a.is_categorical(name) == b.is_categorical(name), (
            context, name,
        )
        if a.is_categorical(name):
            assert a.categories(name) == b.categories(name), (
                context, name,
            )
            assert np.array_equal(a.codes(name), b.codes(name)), (
                context, name,
            )


# ---------------------------------------------------------------------------
# sweep-level golden agreement
# ---------------------------------------------------------------------------
def test_fused_equals_instance_serial(golden_specs):
    for best_only in (True, False):
        ref = run_sweep(_dataset(golden_specs), _devices(),
                        best_only=best_only)
        got = run_sweep(_dataset(golden_specs), _devices(),
                        best_only=best_only, fused=True)
        _assert_tables_equal(ref, got, f"best_only={best_only}")


def test_fused_equals_instance_under_pool(golden_specs):
    ref = run_sweep(_dataset(golden_specs), _devices(), best_only=False)
    got = run_sweep(_dataset(golden_specs), _devices(), best_only=False,
                    fused=True, jobs=2)
    _assert_tables_equal(got, ref, "jobs=2")


def test_fused_agrees_with_cold_and_warm_cache(golden_specs, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_sweep(_dataset(golden_specs), _devices(), best_only=False,
                     cache_dir=cache_dir)
    warm = run_sweep(_dataset(golden_specs), _devices(), best_only=False,
                     cache_dir=cache_dir)
    fused = run_sweep(_dataset(golden_specs), _devices(), best_only=False,
                      fused=True, cache_dir=cache_dir)
    _assert_tables_equal(cold, warm, "cold vs warm")
    _assert_tables_equal(cold, fused, "cold vs fused")


def test_fused_covers_every_registered_format(golden_specs):
    """Explicit all-format sweep: the scalar-fallback formats (no
    vectorised ``stats_from_csr_batch`` override) must agree too."""
    formats = sorted(FORMAT_REGISTRY)
    ref = grid_spec_table(_dataset(golden_specs), 0, len(golden_specs),
                          _devices(), best_only=False, formats=formats)
    got = fused_spec_table(_dataset(golden_specs), 0, len(golden_specs),
                           _devices(), best_only=False, formats=formats)
    _assert_tables_equal(ref, got, "all formats")
    scored = set(ref.categories("format"))
    # The fallback path is genuinely exercised, not vacuously green.
    assert {"VSL", "SparseX", "BCSR"} <= scored


def test_fused_grid_bit_identity_and_skip_sets(golden_specs):
    """Grid-level check, stronger than the table: every cell of the
    structured array (scored or skipped), every skip reason string and
    the capacity-skip set must match exactly."""
    dataset = _dataset(golden_specs)
    n = len(golden_specs)
    # Explicit all-formats grid: the device Table-II defaults exclude the
    # refusing formats (ELL/DIA), so only the full registry exercises
    # format_error cells alongside the capacity gate.
    formats = sorted(FORMAT_REGISTRY)
    instances = [dataset.instance(i) for i in range(n)]
    ref = simulate_grid(instances, _devices(), formats=formats)
    source = FusedSpecSource(
        golden_specs, [f"golden[{i}]" for i in range(n)], max_nnz=MAX_NNZ
    )
    got = _score_grid(source, _devices(), formats=formats)

    assert ref.instance_names == got.instance_names
    assert ref.device_names == got.device_names
    assert ref.format_names == got.format_names
    assert ref.device_slices == got.device_slices
    for field in ref.data.dtype.names:
        a, b = ref.data[field], got.data[field]
        if a.dtype.kind == "f":
            assert np.array_equal(a, b, equal_nan=True), field
        else:
            assert np.array_equal(a, b), field
    assert ref.skip_reasons == got.skip_reasons
    assert ref.capacity_skip_set() == got.capacity_skip_set()
    # The golden spec selection must actually exercise both skip kinds.
    assert ref.skips(kind="capacity"), "no capacity skips in golden set"
    assert ref.skips(kind="format"), "no format refusals in golden set"


# ---------------------------------------------------------------------------
# stats_from_csr_batch properties
# ---------------------------------------------------------------------------
@st.composite
def csr_matrix_lists(draw):
    """1-4 small random matrices, degenerate shapes included."""
    n_mats = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    mats = []
    for _ in range(n_mats):
        mode = draw(st.sampled_from(["random", "empty", "dense-rows"]))
        if mode == "empty":
            mats.append(csr_from_coo(draw(st.integers(1, 12)),
                                     draw(st.integers(1, 12)), [], [], []))
            continue
        if mode == "dense-rows":
            n_rows = draw(st.integers(1, 8))
            n_cols = draw(st.integers(1, 40))
            rows = np.repeat(np.arange(n_rows), n_cols)
            cols = np.tile(np.arange(n_cols), n_rows)
            mats.append(csr_from_coo(n_rows, n_cols, rows, cols,
                                     rng.uniform(1, 5, n_rows * n_cols)))
            continue
        n_rows = draw(st.integers(1, 20))
        n_cols = draw(st.integers(1, 20))
        nnz = draw(st.integers(0, 50))
        vals = rng.uniform(1, 5, nnz)
        mats.append(csr_from_coo(n_rows, n_cols,
                                 rng.integers(0, n_rows, nnz),
                                 rng.integers(0, n_cols, nnz), vals))
    return mats


def _scalar_outcome(cls, mat):
    try:
        return cls.stats_from_csr(mat), None
    except FormatError as exc:
        return None, str(exc)


@given(mats=csr_matrix_lists())
@settings(max_examples=30, deadline=None)
def test_batch_stats_equal_scalar_stats(mats):
    """Entry ``i`` of the batch equals the scalar call on matrix ``i`` —
    including batch-of-1 and the exact refusal message (error parity)."""
    batch = CSRStructBatch.from_matrices(mats)
    for name in sorted(FORMAT_REGISTRY):
        cls = FORMAT_REGISTRY[name]
        fsb = cls.stats_from_csr_batch(batch, matrices=mats)
        assert len(fsb) == len(mats), name
        for i, mat in enumerate(mats):
            ref, ref_err = _scalar_outcome(cls, mat)
            if ref_err is not None:
                assert bool(fsb.fail[i]), (name, i)
                assert fsb.fail_reason[i] == ref_err, (name, i)
                with pytest.raises(FormatError):
                    fsb.stats(i)
            else:
                assert not fsb.fail[i], (name, i)
                assert fsb.stats(i) == ref, (name, i)


@given(mats=csr_matrix_lists(), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_batch_stats_order_invariance(mats, seed):
    """Permuting the batch permutes the entries and nothing else."""
    perm = np.random.default_rng(seed).permutation(len(mats))
    batch = CSRStructBatch.from_matrices(mats)
    shuffled = CSRStructBatch.from_matrices([mats[p] for p in perm])
    for name in sorted(FORMAT_REGISTRY):
        cls = FORMAT_REGISTRY[name]
        fsb = cls.stats_from_csr_batch(batch, matrices=mats)
        fsb_p = cls.stats_from_csr_batch(
            shuffled, matrices=[mats[p] for p in perm]
        )
        for j, p in enumerate(perm):
            assert bool(fsb_p.fail[j]) == bool(fsb.fail[p]), (name, j)
            if fsb.fail[p]:
                assert fsb_p.fail_reason[j] == fsb.fail_reason[p], (name, j)
            else:
                assert fsb_p.stats(j) == fsb.stats(p), (name, j)


@given(mats=csr_matrix_lists())
@settings(max_examples=20, deadline=None)
def test_structure_batch_matrices_roundtrip(mats):
    """``CSRStructBatch.matrix(i)`` reproduces each matrix's structure
    (data is zeroed by design — stats and features never read it)."""
    batch = CSRStructBatch.from_matrices(mats)
    for i, mat in enumerate(mats):
        rebuilt = batch.matrix(i)
        assert rebuilt.n_rows == mat.n_rows
        assert rebuilt.n_cols == mat.n_cols
        assert np.array_equal(rebuilt.indptr, mat.indptr)
        assert np.array_equal(rebuilt.indices, mat.indices)
        assert not rebuilt.data.any()

"""CLI exit-code matrix: every subcommand's bad-arg, unknown-name and
happy paths.

Conventions under test: argparse rejections exit 2 via ``SystemExit``;
unknown device/format/scale names (and other bad values) return 2 with
an actionable ``error:`` line on stderr naming the alternatives; happy
paths return 0 with parseable output.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def tiny_mtx(tmp_path):
    path = tmp_path / "t.mtx"
    assert main([
        "generate", "--rows", "300", "--avg", "4", "--seed", "1",
        "--out", str(path),
    ]) == 0
    return str(path)


def _exit_code(argv):
    with pytest.raises(SystemExit) as err:
        main(argv)
    return err.value.code


class TestParserRejections:
    """Malformed invocations die in argparse with exit code 2."""

    @pytest.mark.parametrize("argv", [
        [],                                        # no subcommand
        ["frobnicate"],                            # unknown subcommand
        ["generate", "--avg", "5", "--out", "x"],  # missing --rows
        ["generate", "--rows", "10", "--avg", "5"],        # missing --out
        ["generate", "--rows", "ten", "--avg", "5", "--out", "x"],
        ["features"],                              # missing matrix path
        ["sweep", "--scale", "galactic", "--out", "x.csv"],
        ["sweep", "--scale", "tiny"],              # missing --out
        ["validate", "--friends", "many"],
        ["experiment", "--protocol", "loocv"],
        ["experiment", "--model", "svm"],
        ["experiment", "--folds", "three"],
    ])
    def test_exits_2(self, argv):
        assert _exit_code(argv) == 2


class TestUnknownNames:
    """Registry misses return 2 and name the valid alternatives."""

    @pytest.mark.parametrize("argv, needle", [
        (["simulate", "MTX", "--device", "Cray-1"], "Tesla-A100"),
        (["simulate", "MTX", "--format", "CRS"], "CSR5"),
        (["sweep", "--devices", "Cray-1", "--out", "OUT"], "Tesla-A100"),
        (["validate", "--device", "Cray-1"], "Tesla-A100"),
        (["experiment", "--devices", "Cray-1"], "Tesla-A100"),
        (["experiment", "--formats", "CRS", "--limit", "4"], "CSR5"),
    ])
    def test_actionable_message(self, argv, needle, tiny_mtx, tmp_path,
                                capsys):
        argv = [tiny_mtx if a == "MTX" else a for a in argv]
        argv = [str(tmp_path / "o.csv") if a == "OUT" else a for a in argv]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown" in err
        assert needle in err  # the message lists what *is* available

    def test_missing_matrix_file(self, capsys):
        assert main(["features", "/nonexistent/m.mtx"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_validate_ids(self, capsys):
        assert main(["validate", "--ids", "1,two"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_experiment_bad_out_extension(self, capsys):
        assert main([
            "experiment", "--devices", "INTEL-XEON", "--limit", "4",
            "--folds", "2", "--model", "linear", "--max-nnz", "9000",
            "--out", "results.xlsx",
        ]) == 2
        assert ".json" in capsys.readouterr().err

    def test_experiment_unwritable_out_fails_before_sweep(self, capsys):
        # The writability probe must reject the path up front, not
        # after minutes of sweeping (the happy-path smoke below takes
        # seconds, so reaching the sweep would still exit 2 — the
        # stderr message pins the *probe* as the failure site).
        assert main([
            "experiment", "--devices", "INTEL-XEON", "--limit", "6",
            "--folds", "2", "--out", "/nonexistent-dir/r.json",
        ]) == 2
        err = capsys.readouterr().err
        assert "No such file or directory" in err

    def test_experiment_too_many_folds(self, capsys):
        assert main([
            "experiment", "--devices", "INTEL-XEON", "--limit", "3",
            "--folds", "5", "--max-nnz", "9000",
        ]) == 2
        assert "lower --folds" in capsys.readouterr().err

    def test_sweep_unknown_out_extension(self, capsys):
        # Rejected before any sweeping happens.
        assert main([
            "sweep", "--scale", "tiny", "--devices", "INTEL-XEON",
            "--out", "table.parquet",
        ]) == 2
        assert "npz" in capsys.readouterr().err

    def test_experiment_missing_table_file(self, capsys):
        assert main([
            "experiment", "--devices", "INTEL-XEON", "--folds", "2",
            "--table", "/nonexistent/t.npz",
        ]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_experiment_table_schema_version_mismatch(self, tmp_path,
                                                      monkeypatch,
                                                      capsys):
        from repro.core.table import SweepTable
        import repro.core.table as tbl

        path = tmp_path / "old.npz"
        SweepTable.from_rows([{
            "matrix": "m0", "device": "INTEL-XEON", "format": "CSR",
            "gflops": 1.0,
        }]).to_npz(path)
        monkeypatch.setattr(tbl, "SCHEMA_VERSION", tbl.SCHEMA_VERSION + 1)
        assert main([
            "experiment", "--devices", "INTEL-XEON", "--folds", "2",
            "--table", str(path),
        ]) == 2
        err = capsys.readouterr().err
        assert "schema version" in err and "regenerate" in err

    def test_experiment_foreign_npz_rejected(self, tmp_path, capsys):
        import numpy as np

        path = tmp_path / "not-a-table.npz"
        np.savez(path, data=np.zeros(3))
        assert main([
            "experiment", "--devices", "INTEL-XEON", "--folds", "2",
            "--table", str(path),
        ]) == 2
        assert "schema" in capsys.readouterr().err

    def test_experiment_table_precision_mismatch(self, tmp_path, capsys):
        from repro.core.table import SweepTable

        path = tmp_path / "fp64.npz"
        SweepTable.from_rows([
            {"matrix": f"m{i}", "device": "INTEL-XEON", "format": fmt,
             "precision": "fp64", "gflops": float(i + j)}
            for i in range(2) for j, fmt in enumerate(("CSR", "ELL"))
        ]).to_npz(path)
        assert main([
            "experiment", "--devices", "INTEL-XEON", "--folds", "2",
            "--fp32", "--table", str(path),
        ]) == 2
        assert "fp32" in capsys.readouterr().err


class TestHappyPaths:
    """Each subcommand exits 0 and prints/persists parseable output."""

    def test_generate_and_features(self, tiny_mtx, capsys):
        assert main(["features", tiny_mtx]) == 0
        assert "avg_nnz_per_row" in capsys.readouterr().out

    def test_simulate(self, tiny_mtx, capsys):
        assert main(["simulate", tiny_mtx, "--device", "INTEL-XEON"]) == 0
        assert "INTEL-XEON" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main([
            "validate", "--ids", "1", "--device", "INTEL-XEON",
            "--friends", "2",
        ]) == 0
        assert "MAPE" in capsys.readouterr().out

    def test_sweep(self, tmp_path, monkeypatch, capsys):
        import repro.core.feature_space as fs

        original = fs.build_dataset_specs
        monkeypatch.setattr(
            "repro.core.feature_space.build_dataset_specs",
            lambda scale, **kw: original(scale, **kw)[:3],
        )
        out = tmp_path / "rows.csv"
        assert main([
            "sweep", "--scale", "tiny", "--devices", "INTEL-XEON",
            "--max-nnz", "9000", "--out", str(out),
        ]) == 0
        from repro.io import read_rows

        assert len(read_rows(out)) == 3

    @pytest.mark.parametrize("suffix", ["json", "csv"])
    def test_experiment_outputs(self, tmp_path, capsys, suffix):
        out = tmp_path / f"res.{suffix}"
        assert main([
            "experiment", "--devices", "INTEL-XEON", "--limit", "6",
            "--folds", "2", "--model", "knn", "--max-nnz", "9000",
            "--out", str(out),
        ]) == 0
        assert "Summary" in capsys.readouterr().out
        if suffix == "json":
            payload = json.loads(out.read_text())
            assert payload["spec"]["protocol"] == "kfold"
            assert len(payload["folds"]) == 2
        else:
            from repro.io import read_rows

            rows = read_rows(out)
            assert len(rows) == 2
            assert all(r["device"] == "INTEL-XEON" for r in rows)

    def test_experiment_lodo(self, capsys):
        assert main([
            "experiment", "--devices", "INTEL-XEON,AMD-EPYC-24",
            "--protocol", "lodo", "--limit", "5", "--model", "linear",
            "--max-nnz", "9000",
        ]) == 0
        out = capsys.readouterr().out
        assert "lodo" in out and "AMD-EPYC-24" in out

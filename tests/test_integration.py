"""End-to-end pipeline integration: generator -> dataset -> sweep ->
analysis -> persistence -> prediction, on a micro dataset.

This is the library's smoke path: everything a bench does, in miniature.
"""

import numpy as np
import pytest

from repro.analysis import (
    bottleneck_census,
    box_stats,
    boxplot_panel,
    format_table,
    format_wins,
)
from repro.core.dataset import Dataset, sweep
from repro.core.generator import MatrixSpec
from repro.devices import TESTBEDS
from repro.io import read_rows, write_rows
from repro.ml import FormatSelector


@pytest.fixture(scope="module")
def micro_table():
    specs = [
        MatrixSpec.from_footprint(6, 10, seed=1),
        MatrixSpec.from_footprint(12, 50, skew_coeff=100, seed=2),
        MatrixSpec.from_footprint(40, 20, cross_row_sim=0.9,
                                  avg_num_neigh=1.6, seed=3),
        MatrixSpec.from_footprint(96, 5, cross_row_sim=0.05,
                                  avg_num_neigh=0.05, seed=4),
        MatrixSpec.from_footprint(300, 50, seed=5),
        MatrixSpec.from_footprint(600, 100, skew_coeff=1000, seed=6),
    ]
    ds = Dataset(specs, max_nnz=40_000, name="micro")
    devices = [TESTBEDS[d] for d in
               ("AMD-EPYC-24", "Tesla-A100", "Alveo-U280")]
    return sweep(ds, devices, best_only=True), ds


class TestPipeline:
    def test_row_schema_complete(self, micro_table):
        table, _ = micro_table
        required = {
            "matrix", "device", "format", "gflops", "watts",
            "gflops_per_watt", "bottleneck", "mem_footprint_mb",
            "avg_nnz_per_row", "skew_coeff", "cross_row_similarity",
            "avg_num_neighbours", "req_footprint_mb",
        }
        for r in table.rows:
            assert required <= set(r)

    def test_every_device_ran_something(self, micro_table):
        table, _ = micro_table
        devices = {r["device"] for r in table.rows}
        assert {"AMD-EPYC-24", "Tesla-A100"} <= devices

    def test_formats_belong_to_device(self, micro_table):
        table, _ = micro_table
        for r in table.rows:
            assert r["format"] in TESTBEDS[r["device"]].formats

    def test_analysis_layers_compose(self, micro_table):
        table, _ = micro_table
        cpu_rows = table.where(device="AMD-EPYC-24").rows
        wins = format_wins(cpu_rows)
        assert abs(sum(wins.values()) - 100.0) < 1e-9
        census = bottleneck_census(table.rows)
        assert all(
            abs(sum(f.values()) - 100.0) < 1e-9 for f in census.values()
        )
        panel = boxplot_panel(
            {"cpu": box_stats([r["gflops"] for r in cpu_rows])}
        )
        assert "med=" in panel
        text = format_table(
            ["device", "gflops"],
            [[r["device"], r["gflops"]] for r in table.rows[:3]],
        )
        assert "device" in text

    def test_csv_roundtrip_preserves_measurements(self, micro_table,
                                                  tmp_path):
        table, _ = micro_table
        path = tmp_path / "sweep.csv"
        write_rows(path, table.rows)
        back = read_rows(path)
        assert len(back) == len(table.rows)
        for a, b in zip(table.rows, back):
            assert a["device"] == b["device"]
            assert a["gflops"] == pytest.approx(b["gflops"], rel=1e-9)

    def test_selector_trains_on_sweep_schema(self, micro_table):
        _, ds = micro_table
        dev = TESTBEDS["AMD-EPYC-24"]
        full = sweep(ds, [dev], best_only=False)
        sel = FormatSelector(list(dev.formats)).fit(full.rows)
        choice = sel.select(full.rows[0])
        assert choice in dev.formats

    def test_determinism_across_sweeps(self, micro_table):
        table, ds = micro_table
        ds.drop_cache()
        again = sweep(
            ds, [TESTBEDS["AMD-EPYC-24"], TESTBEDS["Tesla-A100"],
                 TESTBEDS["Alveo-U280"]],
            best_only=True,
        )
        a = sorted(
            (r["matrix"], r["device"], round(r["gflops"], 9))
            for r in table.rows
        )
        b = sorted(
            (r["matrix"], r["device"], round(r["gflops"], 9))
            for r in again.rows
        )
        assert a == b

"""Pack store: round trips, append atomicity, corruption taxonomy.

Every corruption mode — truncation, bad magic, entry-table checksum
mismatch, schema-version drift, per-blob checksum failure — must raise
an actionable :class:`PackError`/:class:`PackVersionError`, never
return bad bytes, and never destroy the file (quarantining is the cache
layer's job, covered in tests/pipeline/test_pack_cache.py).
"""

import hashlib
import struct

import numpy as np
import pytest

from repro.core.table import SweepTable, decode_column, encode_column
from repro.io.pack import (
    HEADER_SIZE, PACK_MAGIC, PACK_VERSION, Pack, PackError,
    PackVersionError, PackWriter, append_entries, compact,
)


def make_pack(path, items=(("a", "kind", b"alpha"),
                           ("b", "kind", b"bravo"))):
    with PackWriter.create(path) as writer:
        for key, kind, data in items:
            writer.add(key, kind, data)
    return path


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        with Pack.open(path) as pack:
            assert len(pack) == 2
            assert pack.keys() == ["a", "b"]
            assert "a" in pack and "z" not in pack
            assert bytes(pack.read("a")) == b"alpha"
            assert bytes(pack.read("b")) == b"bravo"

    def test_raw_read_is_zero_copy_view(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        pack = Pack.open(path)
        view = pack.read("a")
        assert isinstance(view, memoryview)
        # Closing while the view is alive must not invalidate it.
        pack.close()
        assert bytes(view) == b"alpha"
        del view
        pack.close()

    def test_compressed_entry(self, tmp_path):
        payload = b"x" * 10_000
        path = tmp_path / "p.rpak"
        with PackWriter.create(path) as writer:
            entry = writer.add("big", "json", payload, compress=True)
        assert entry.compressed and entry.csize < entry.osize
        with Pack.open(path) as pack:
            data = pack.read("big")
            assert isinstance(data, bytes) and data == payload
            assert pack.entry("big").csize < len(payload)

    def test_entry_metadata(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        with Pack.open(path) as pack:
            entry = pack.entry("a")
            assert entry.kind == "kind"
            assert entry.osize == entry.csize == 5
            assert entry.offset == HEADER_SIZE
            assert entry.sha == hashlib.sha256(b"alpha").digest()

    def test_digest_ending_in_nul_byte_survives_table_roundtrip(
            self, tmp_path):
        """Regression: NumPy strips trailing NULs from S-typed record
        fields, so a stored SHA-256 ending in 0x00 used to read back
        short and fail verification on ~1/256 of entries."""
        payload = next(
            f"nul-digest-{i}".encode() for i in range(10_000)
            if hashlib.sha256(f"nul-digest-{i}".encode())
            .digest().endswith(b"\x00")
        )
        path = tmp_path / "p.rpak"
        with PackWriter.create(path) as writer:
            writer.add("k", "kind", payload)
        with Pack.open(path) as pack:
            assert pack.entry("k").sha == hashlib.sha256(payload).digest()
            assert bytes(pack.read("k")) == payload

    def test_unknown_key_is_actionable(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        with Pack.open(path) as pack:
            with pytest.raises(KeyError, match="unknown pack entry"):
                pack.entry("nope")

    def test_key_and_kind_validation(self, tmp_path):
        with PackWriter.create(tmp_path / "p.rpak") as writer:
            with pytest.raises(PackError, match="key"):
                writer.add("x" * 64, "k", b"")
            with pytest.raises(PackError, match="key"):
                writer.add("", "k", b"")
            with pytest.raises(PackError, match="kind"):
                writer.add("ok", "toolongkk", b"")
            writer.add("ok", "k", b"fine")

    def test_abort_leaves_no_file_or_temp(self, tmp_path):
        writer = PackWriter.create(tmp_path / "p.rpak")
        writer.add("a", "k", b"data")
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_context_manager_aborts_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with PackWriter.create(tmp_path / "p.rpak") as writer:
                writer.add("a", "k", b"data")
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []


class TestAppend:
    def test_append_to_missing_path_creates_pack(self, tmp_path):
        path = tmp_path / "p.rpak"
        added = append_entries(path, [("a", "k", b"alpha")])
        assert added == 1
        with Pack.open(path) as pack:
            assert bytes(pack.read("a")) == b"alpha"

    def test_append_is_idempotent_for_identical_payloads(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        size = path.stat().st_size
        assert append_entries(path, [("a", "kind", b"alpha")]) == 0
        # Nothing appended: the file did not grow at all.
        assert path.stat().st_size == size

    def test_changed_payload_shadows_old_record(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        assert append_entries(path, [("a", "kind", b"ALPHA2")]) == 1
        with Pack.open(path) as pack:
            assert bytes(pack.read("a")) == b"ALPHA2"
            assert pack.keys() == ["a", "b"]
            # The superseded record is still visible to `repro ls`.
            assert len(pack.records()) == 3

    def test_append_never_rewrites_existing_blobs(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        with Pack.open(path) as pack:
            before = {
                key: (pack.entry(key).offset, bytes(pack.read(key)))
                for key in pack.keys()
            }
        append_entries(path, [("c", "kind", b"charlie")])
        raw = path.read_bytes()
        with Pack.open(path) as pack:
            for key, (offset, payload) in before.items():
                assert pack.entry(key).offset == offset
                assert raw[offset:offset + len(payload)] == payload

    def test_torn_append_leaves_old_pack_readable(self, tmp_path):
        """A crash after the tail write but before the header commit
        must leave the previous pack state fully intact."""
        path = make_pack(tmp_path / "p.rpak")
        before = path.read_bytes()
        append_entries(path, [("c", "kind", b"charlie")])
        # Simulate dying before phase 2: restore the old header while
        # keeping the appended tail bytes in place.
        with open(path, "r+b") as fh:
            fh.write(before[:HEADER_SIZE])
        with Pack.open(path) as pack:
            assert pack.keys() == ["a", "b"]
            assert bytes(pack.read("a")) == b"alpha"

    def test_compact_drops_dead_regions(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        append_entries(path, [("a", "kind", b"much longer payload")])
        grown = path.stat().st_size
        kept = compact(path, path)
        assert kept == 2
        assert path.stat().st_size < grown
        with Pack.open(path) as pack:
            assert bytes(pack.read("a")) == b"much longer payload"
            assert bytes(pack.read("b")) == b"bravo"
            assert len(pack.records()) == 2


class TestCorruption:
    def test_truncated_pack(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(PackError, match="truncated"):
            Pack.open(path)
        path.write_bytes(data[: HEADER_SIZE - 1])
        with pytest.raises(PackError, match="truncated|shorter"):
            Pack.open(path)

    def test_bad_magic(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTAPACK"
        path.write_bytes(bytes(data))
        with pytest.raises(PackError, match="bad magic"):
            Pack.open(path)

    def test_entry_table_checksum_mismatch(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # last byte lives in the entry table
        path.write_bytes(bytes(data))
        with pytest.raises(PackError, match="checksum"):
            Pack.open(path)

    def test_schema_version_drift(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 8, PACK_VERSION + 1)
        path.write_bytes(bytes(data))
        with pytest.raises(PackVersionError, match="version"):
            Pack.open(path)

    def test_blob_checksum_mismatch_on_read(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE] ^= 0xFF  # first byte of entry "a"'s blob
        path.write_bytes(bytes(data))
        with Pack.open(path) as pack:
            with pytest.raises(PackError, match="checksum"):
                pack.read("a")
            # Unverified reads still work (quarantine evidence capture).
            assert len(bytes(pack.read("a", verify=False))) == 5
            # Other entries are unaffected.
            assert bytes(pack.read("b")) == b"bravo"

    def test_not_a_pack_at_all(self, tmp_path):
        path = tmp_path / "p.rpak"
        path.write_bytes(b"hello world, definitely not a pack file!" * 4)
        with pytest.raises(PackError, match="bad magic"):
            Pack.open(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PackError, match="cannot open"):
            Pack.open(tmp_path / "absent.rpak")

    def test_compact_refuses_corrupt_source(self, tmp_path):
        path = make_pack(tmp_path / "p.rpak")
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTAPACK"
        path.write_bytes(bytes(data))
        with pytest.raises(PackError):
            compact(path, tmp_path / "out.rpak")
        assert not (tmp_path / "out.rpak").exists()


class TestColumnBlobs:
    def table(self):
        return SweepTable.from_rows([
            {"device": "A", "gflops": 1.5, "nnz": 100, "best": True},
            {"device": "B", "gflops": 2.5, "nnz": 240, "best": False},
        ])

    def test_encode_decode_column(self):
        for arr in (np.arange(6, dtype=np.int64),
                    np.linspace(0, 1, 5),
                    np.array([True, False]),
                    np.array([], dtype=np.float64)):
            out = decode_column(encode_column(arr))
            assert out.dtype == arr.dtype
            np.testing.assert_array_equal(out, arr)

    def test_decode_rejects_missing_descriptor(self):
        with pytest.raises(ValueError, match="descriptor"):
            decode_column(b"\xff" * 300)

    def test_table_through_pack(self, tmp_path):
        table = self.table()
        blobs = table.to_blobs(prefix="t/")
        path = tmp_path / "p.rpak"
        with PackWriter.create(path) as writer:
            for key in sorted(blobs):
                writer.add(key, "col", blobs[key])
        with Pack.open(path) as pack:
            back = SweepTable.from_blobs(
                {k: pack.read(k) for k in pack.keys()}, prefix="t/"
            )
        assert back.names == table.names
        for name in table.names:
            np.testing.assert_array_equal(
                back._columns[name], table._columns[name]
            )

    def test_deterministic_npz_bytes(self, tmp_path):
        """Equal tables serialise to equal bytes (the property `repro
        pack`/`unpack` byte-identity rests on): the NPZ writer pins the
        zip timestamps instead of embedding wall-clock time."""
        table = self.table()
        table.to_npz(tmp_path / "a.npz")
        table.to_npz(tmp_path / "b.npz")
        a = (tmp_path / "a.npz").read_bytes()
        assert a == (tmp_path / "b.npz").read_bytes()
        back = SweepTable.from_npz(tmp_path / "a.npz")
        back.to_npz(tmp_path / "c.npz")
        assert a == (tmp_path / "c.npz").read_bytes()

"""MatrixMarket, CSV and table round-trips."""

import numpy as np
import pytest

from repro.core.matrix import csr_from_dense
from repro.core.table import SweepTable
from repro.io import (
    load_table, read_mtx, read_rows, read_table, save_table, write_mtx,
    write_rows, write_table,
)


class TestMtx:
    def test_roundtrip(self, tmp_path, regular_matrix):
        path = tmp_path / "m.mtx"
        write_mtx(path, regular_matrix)
        back = read_mtx(path)
        np.testing.assert_allclose(
            back.to_dense(), regular_matrix.to_dense(), rtol=1e-15
        )

    def test_gzip_roundtrip(self, tmp_path, tiny_csr):
        path = tmp_path / "m.mtx.gz"
        write_mtx(path, tiny_csr)
        back = read_mtx(path)
        np.testing.assert_allclose(back.to_dense(), tiny_csr.to_dense())

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        m = read_mtx(path)
        np.testing.assert_array_equal(m.to_dense(), np.eye(2))

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n2 1 5.0\n3 3 1.0\n"
        )
        m = read_mtx(path)
        dense = m.to_dense()
        assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0
        assert dense[2, 2] == 1.0
        assert m.nnz == 3

    def test_skew_symmetric(self, tmp_path):
        path = tmp_path / "k.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n"
        )
        dense = read_mtx(path).to_dense()
        assert dense[1, 0] == 3.0 and dense[0, 1] == -3.0

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n"
            "1 1 1\n1 1 2.5\n"
        )
        assert read_mtx(path).to_dense()[0, 0] == 2.5

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 1 0\n")
        with pytest.raises(ValueError, match="header"):
            read_mtx(path)

    def test_dense_format_rejected(self, tmp_path):
        path = tmp_path / "bad2.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_mtx(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "t.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        )
        with pytest.raises(ValueError, match="truncated"):
            read_mtx(path)

    def test_comments_and_blanks_inside_data(self, tmp_path):
        """Blank and %-comment lines are legal anywhere after the banner
        — SuiteSparse files carry both — and must be skipped, not
        mistaken for truncation."""
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% banner comment\n"
            "\n"
            "3 3 3\n"
            "1 1 1.0\n"
            "\n"
            "% a comment between entries\n"
            "2 2 2.0\n"
            "\n"
            "3 3 3.0\n"
        )
        m = read_mtx(path)
        np.testing.assert_allclose(
            np.diag(m.to_dense()), [1.0, 2.0, 3.0]
        )

    def test_crlf_line_endings(self, tmp_path):
        path = tmp_path / "w.mtx"
        path.write_bytes(
            b"%%MatrixMarket matrix coordinate real general\r\n"
            b"% dos-style file\r\n"
            b"2 2 2\r\n"
            b"1 1 4.0\r\n"
            b"\r\n"
            b"2 2 5.0\r\n"
        )
        m = read_mtx(path)
        np.testing.assert_allclose(np.diag(m.to_dense()), [4.0, 5.0])

    def test_gzip_with_interleaved_comments(self, tmp_path):
        import gzip

        path = tmp_path / "g.mtx.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(
                "%%MatrixMarket matrix coordinate pattern symmetric\n"
                "\n% x\n2 2 2\n1 1\n\n2 1\n"
            )
        assert read_mtx(path).nnz == 3

    def test_zero_nnz(self, tmp_path):
        path = tmp_path / "z.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 4 0\n"
        )
        m = read_mtx(path)
        assert m.n_rows == 3 and m.n_cols == 4 and m.nnz == 0

    def test_eof_before_size_line(self, tmp_path):
        path = tmp_path / "e.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n% only\n\n"
        )
        with pytest.raises(ValueError, match="truncated"):
            read_mtx(path)

    def test_malformed_size_line(self, tmp_path):
        path = tmp_path / "m.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\nnot numbers\n"
        )
        with pytest.raises(ValueError, match="size line"):
            read_mtx(path)

    def test_missing_value_column_rejected(self, tmp_path):
        path = tmp_path / "v.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 1\n2 2\n"
        )
        with pytest.raises(ValueError, match="columns"):
            read_mtx(path)


class TestCsv:
    def test_roundtrip_with_types(self, tmp_path):
        rows = [
            {"device": "A", "gflops": 1.5, "nnz": 100},
            {"device": "B", "gflops": 2.0, "nnz": 200},
        ]
        path = tmp_path / "r.csv"
        write_rows(path, rows)
        back = read_rows(path)
        assert back == rows
        assert isinstance(back[0]["nnz"], int)
        assert isinstance(back[0]["gflops"], float)

    def test_heterogeneous_keys(self, tmp_path):
        rows = [{"a": 1}, {"b": 2}]
        path = tmp_path / "h.csv"
        write_rows(path, rows)
        back = read_rows(path)
        assert back[0]["a"] == 1
        assert back[1]["b"] == 2

    def test_empty(self, tmp_path):
        path = tmp_path / "e.csv"
        write_rows(path, [])
        assert read_rows(path) == []

    def test_schema_types_survive_roundtrip(self, tmp_path):
        """Regression: read_rows used to guess types per cell, so a
        numeric-looking matrix name came back as an int and every value
        of an int column that printed like a float drifted.  Parsing
        through the table schema keeps write→read value-identical."""
        rows = [{
            "matrix": "123",            # categorical: must stay str
            "device": "1e9",            # categorical: must stay str
            "format": "CSR",
            "precision": "fp64",
            "bottleneck": "memory_bandwidth",
            "spec_index": 7,            # schema int
            "nnz": 100,
            "req_avg_nnz": 10.0,        # schema float
            "gflops": 0.1 + 0.2,        # repr round-trip exact
        }]
        path = tmp_path / "typed.csv"
        write_rows(path, rows)
        back = read_rows(path)
        assert back == rows
        assert isinstance(back[0]["matrix"], str)
        assert isinstance(back[0]["device"], str)
        assert isinstance(back[0]["spec_index"], int)
        assert isinstance(back[0]["req_avg_nnz"], float)
        assert back[0]["gflops"] == rows[0]["gflops"]  # bit-exact


class TestTableIO:
    ROWS = [
        {"matrix": "m0", "device": "cpu", "format": "CSR",
         "gflops": 1.0 / 3.0, "nnz": 10},
        {"matrix": "m1", "device": "cpu", "format": "ELL",
         "gflops": 2.5e-17, "nnz": 20},
    ]

    def test_csv_roundtrip_value_identical(self, tmp_path):
        table = SweepTable.from_rows(self.ROWS)
        path = tmp_path / "t.csv"
        write_table(path, table)
        back = read_table(path)
        assert back == table
        assert back.to_rows() == self.ROWS

    def test_csv_empty_table(self, tmp_path):
        path = tmp_path / "e.csv"
        write_table(path, SweepTable({}))
        assert len(read_table(path)) == 0

    @pytest.mark.parametrize("ext", ["npz", "csv", "json"])
    def test_save_load_dispatch(self, tmp_path, ext):
        table = SweepTable.from_rows(self.ROWS)
        path = tmp_path / f"t.{ext}"
        assert save_table(path, table) == ext
        assert load_table(path) == table

    def test_format_override_beats_extension(self, tmp_path):
        table = SweepTable.from_rows(self.ROWS)
        path = tmp_path / "t.dat"
        save_table(path, table, fmt="npz")
        assert load_table(path, fmt="npz") == table

    def test_unknown_extension_actionable(self, tmp_path):
        with pytest.raises(ValueError, match="npz"):
            save_table(tmp_path / "t.parquet",
                       SweepTable.from_rows(self.ROWS))

    def test_missing_file_actionable(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            load_table(tmp_path / "absent.npz")

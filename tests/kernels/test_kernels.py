"""Host kernel timing and the verification harness."""

import numpy as np
import pytest

from repro.formats import NaiveCSR
from repro.kernels import (
    make_x,
    spmv_reference,
    time_spmv,
    verify_all_formats,
    verify_format,
)


class TestMakeX:
    def test_deterministic(self):
        np.testing.assert_array_equal(make_x(10, seed=1), make_x(10, seed=1))

    def test_away_from_zero(self):
        x = make_x(1000)
        assert x.min() >= 0.5


class TestTiming:
    def test_timing_fields(self, regular_matrix):
        fmt = NaiveCSR.from_csr(regular_matrix)
        t = time_spmv(fmt, iterations=3, warmup=1)
        assert t.seconds_per_iter > 0
        assert t.gflops > 0
        assert t.nnz == regular_matrix.nnz
        assert t.format == "Naive-CSR"
        assert t.gflops == pytest.approx(
            2.0 * t.nnz / t.seconds_per_iter / 1e9, rel=1e-9
        )

    def test_bad_iterations(self, regular_matrix):
        fmt = NaiveCSR.from_csr(regular_matrix)
        with pytest.raises(ValueError):
            time_spmv(fmt, iterations=0)


class TestVerify:
    def test_reference_matches_scipy(self, regular_matrix):
        x = make_x(regular_matrix.n_cols)
        np.testing.assert_allclose(
            spmv_reference(regular_matrix, x),
            regular_matrix.to_scipy() @ x,
        )

    def test_all_formats_ok_on_regular(self, regular_matrix):
        result = verify_all_formats(regular_matrix)
        assert result.all_ok
        assert result["Naive-CSR"] == "ok"

    def test_refusals_are_not_failures(self, irregular_matrix):
        result = verify_all_formats(irregular_matrix)
        assert result.all_ok  # DIA refuses; refusal is acceptable
        assert result["DIA"].startswith("refused")

    def test_broken_kernel_detected(self, regular_matrix, monkeypatch):
        from repro.formats import csr

        def bad_spmv(self, x):
            return np.zeros(self.mat.n_rows)

        monkeypatch.setattr(csr.NaiveCSR, "spmv", bad_spmv)
        out = verify_format(regular_matrix, "Naive-CSR")
        assert out.startswith("FAILED")

    def test_subset_selection(self, regular_matrix):
        result = verify_all_formats(regular_matrix, names=["COO", "CSR5"])
        assert set(result) == {"COO", "CSR5"}

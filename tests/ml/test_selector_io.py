"""FormatSelector save/load round trips and schema-version checks."""

import numpy as np
import pytest

from repro.ml import (
    FormatSelector, SELECTOR_SCHEMA_VERSION, SelectorVersionError,
)
from repro.ml.knn import KNeighborsRegressor
from repro.ml.linear import RidgeRegression

from .test_selector import _synthetic_rows


def _probe_features(n=20, seed=3):
    rng = np.random.default_rng(seed)
    probes = []
    for _ in range(n):
        probes.append({
            "mem_footprint_mb": float(rng.uniform(4, 512)),
            "avg_nnz_per_row": float(rng.uniform(5, 100)),
            "skew_coeff": float(rng.choice([1.0, 5000.0])),
            "cross_row_similarity": float(rng.uniform(0, 1)),
            "avg_num_neighbours": float(rng.uniform(0, 2)),
        })
    return probes


FACTORIES = {
    "forest": None,  # selector default
    "knn": lambda: KNeighborsRegressor(n_neighbors=5,
                                       weights="distance"),
    "ridge": lambda: RidgeRegression(alpha=1.0),
}


class TestRoundTrip:
    @pytest.mark.parametrize("family", sorted(FACTORIES))
    def test_predictions_bit_identical(self, family, tmp_path):
        factory = FACTORIES[family]
        sel = FormatSelector(
            ["Fast", "Bal"],
            **({} if factory is None else {"model_factory": factory}),
        ).fit(_synthetic_rows())
        path = tmp_path / "sel.npz"
        sel.to_npz(path)
        loaded = FormatSelector.from_npz(path)

        assert loaded.formats == sel.formats
        assert loaded.feature_keys == sel.feature_keys
        for probe in _probe_features():
            assert loaded.select(probe) == sel.select(probe)
            got = loaded.predict_gflops(probe)
            want = sel.predict_gflops(probe)
            for fmt in sel.formats:
                assert got[fmt] == want[fmt]  # exact, not approx

    def test_artifact_bytes_are_deterministic(self, tmp_path):
        sel = FormatSelector(["Fast", "Bal"]).fit(_synthetic_rows())
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        sel.to_npz(a)
        sel.to_npz(b)
        assert a.read_bytes() == b.read_bytes()


class TestErrors:
    def test_unfitted_selector_refuses_to_save(self, tmp_path):
        with pytest.raises(RuntimeError, match="not fitted"):
            FormatSelector(["Fast"]).to_npz(tmp_path / "x.npz")

    def test_version_drift_is_actionable(self, tmp_path):
        sel = FormatSelector(["Fast", "Bal"]).fit(_synthetic_rows())
        path = tmp_path / "sel.npz"
        sel.to_npz(path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["__selector_schema__"] = np.int64(
            SELECTOR_SCHEMA_VERSION + 1
        )
        np.savez(path, **payload)
        with pytest.raises(SelectorVersionError, match="retrain"):
            FormatSelector.from_npz(path)

    def test_plain_npz_is_not_an_artifact(self, tmp_path):
        path = tmp_path / "table.npz"
        np.savez(path, rows=np.arange(3))
        with pytest.raises(SelectorVersionError,
                           match="not a selector artifact"):
            FormatSelector.from_npz(path)

    def test_garbage_file_is_not_an_artifact(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(SelectorVersionError,
                           match="not a selector artifact"):
            FormatSelector.from_npz(path)

    def test_unknown_model_kind_is_rejected(self, tmp_path):
        sel = FormatSelector(["Fast", "Bal"]).fit(_synthetic_rows())
        path = tmp_path / "sel.npz"
        sel.to_npz(path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["model/0/__kind__"] = np.array("transformer")
        np.savez(path, **payload)
        with pytest.raises(SelectorVersionError,
                           match="unknown model kind"):
            FormatSelector.from_npz(path)

    def test_error_is_a_value_error(self):
        # CLI error handling maps ValueError to exit 2; the version
        # error must ride that path.
        assert issubclass(SelectorVersionError, ValueError)

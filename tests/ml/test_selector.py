"""Feature-based format selector."""

import numpy as np
import pytest

from repro.ml import FormatSelector


def _synthetic_rows(n=80, seed=0):
    """Two formats with a crisp decision boundary on the skew feature:
    'Bal' wins on skewed matrices, 'Fast' on balanced ones."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        skew = float(rng.choice([1.0, 5000.0]))
        feats = {
            "matrix": f"m{i}",
            "mem_footprint_mb": float(rng.uniform(4, 512)),
            "avg_nnz_per_row": float(rng.uniform(5, 100)),
            "skew_coeff": skew,
            "cross_row_similarity": float(rng.uniform(0, 1)),
            "avg_num_neighbours": float(rng.uniform(0, 2)),
        }
        fast = 100.0 if skew < 100 else 20.0
        bal = 60.0
        rows.append({**feats, "format": "Fast", "gflops": fast})
        rows.append({**feats, "format": "Bal", "gflops": bal})
    return rows


class TestSelector:
    def test_learns_decision_boundary(self):
        rows = _synthetic_rows()
        sel = FormatSelector(["Fast", "Bal"]).fit(rows)
        balanced = {
            "mem_footprint_mb": 64, "avg_nnz_per_row": 50,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0,
        }
        skewed = dict(balanced, skew_coeff=5000.0)
        assert sel.select(balanced) == "Fast"
        assert sel.select(skewed) == "Bal"

    def test_predict_scores_all_formats(self):
        sel = FormatSelector(["Fast", "Bal"]).fit(_synthetic_rows())
        scores = sel.predict_gflops({
            "mem_footprint_mb": 64, "avg_nnz_per_row": 50,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0,
        })
        assert set(scores) == {"Fast", "Bal"}

    def test_evaluate_report(self):
        rows = _synthetic_rows(seed=1)
        sel = FormatSelector(["Fast", "Bal"]).fit(rows)
        report = sel.evaluate(_synthetic_rows(n=30, seed=2))
        assert report.accuracy > 0.9
        assert report.retained > 0.9
        assert report["n_matrices"] == 30

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FormatSelector(["A"]).select({})

    def test_empty_formats_rejected(self):
        with pytest.raises(ValueError):
            FormatSelector([])

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            FormatSelector(["A"]).fit([])

    def test_missing_format_rows_treated_as_zero(self):
        # Format 'Rare' only appears for one matrix; the selector must
        # still fit and never crash at selection time.
        rows = _synthetic_rows(n=20)
        rows.append({
            "matrix": "m0", "mem_footprint_mb": 4, "avg_nnz_per_row": 5,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0, "format": "Rare", "gflops": 1.0,
        })
        sel = FormatSelector(["Fast", "Bal", "Rare"]).fit(rows)
        choice = sel.select({
            "mem_footprint_mb": 64, "avg_nnz_per_row": 50,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0,
        })
        assert choice in ("Fast", "Bal", "Rare")


class TestSelectorOnSimulator:
    """Integration: train on simulated sweeps, beat the single-format
    baseline (the use-case the paper's related work motivates)."""

    def test_beats_fixed_format(self):
        from repro.core.dataset import Dataset, sweep
        from repro.core.feature_space import build_dataset_specs
        from repro.devices import TESTBEDS

        dev = TESTBEDS["INTEL-XEON"]
        specs = build_dataset_specs("tiny")[:40]
        ds = Dataset(specs, max_nnz=30_000, name="sel")
        table = sweep(ds, [dev], best_only=False)
        rows = table.rows
        split = len({r["matrix"] for r in rows}) // 2
        names = sorted({r["matrix"] for r in rows})
        train = [r for r in rows if r["matrix"] in names[:split]]
        test = [r for r in rows if r["matrix"] in names[split:]]

        sel = FormatSelector(list(dev.formats)).fit(train)
        report = sel.evaluate(test)
        # Selector retains most of the oracle's performance.
        assert report.retained > 0.7

"""Feature-based format selector."""

import numpy as np
import pytest

from repro.ml import FormatSelector


def _synthetic_rows(n=80, seed=0):
    """Two formats with a crisp decision boundary on the skew feature:
    'Bal' wins on skewed matrices, 'Fast' on balanced ones."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        skew = float(rng.choice([1.0, 5000.0]))
        feats = {
            "matrix": f"m{i}",
            "mem_footprint_mb": float(rng.uniform(4, 512)),
            "avg_nnz_per_row": float(rng.uniform(5, 100)),
            "skew_coeff": skew,
            "cross_row_similarity": float(rng.uniform(0, 1)),
            "avg_num_neighbours": float(rng.uniform(0, 2)),
        }
        fast = 100.0 if skew < 100 else 20.0
        bal = 60.0
        rows.append({**feats, "format": "Fast", "gflops": fast})
        rows.append({**feats, "format": "Bal", "gflops": bal})
    return rows


class TestSelector:
    def test_learns_decision_boundary(self):
        rows = _synthetic_rows()
        sel = FormatSelector(["Fast", "Bal"]).fit(rows)
        balanced = {
            "mem_footprint_mb": 64, "avg_nnz_per_row": 50,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0,
        }
        skewed = dict(balanced, skew_coeff=5000.0)
        assert sel.select(balanced) == "Fast"
        assert sel.select(skewed) == "Bal"

    def test_predict_scores_all_formats(self):
        sel = FormatSelector(["Fast", "Bal"]).fit(_synthetic_rows())
        scores = sel.predict_gflops({
            "mem_footprint_mb": 64, "avg_nnz_per_row": 50,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0,
        })
        assert set(scores) == {"Fast", "Bal"}

    def test_evaluate_report(self):
        rows = _synthetic_rows(seed=1)
        sel = FormatSelector(["Fast", "Bal"]).fit(rows)
        report = sel.evaluate(_synthetic_rows(n=30, seed=2))
        assert report.accuracy > 0.9
        assert report.retained > 0.9
        assert report["n_matrices"] == 30

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FormatSelector(["A"]).select({})

    def test_empty_formats_rejected(self):
        with pytest.raises(ValueError):
            FormatSelector([])

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            FormatSelector(["A"]).fit([])

    def test_missing_format_rows_treated_as_zero(self):
        # Format 'Rare' only appears for one matrix; the selector must
        # still fit and never crash at selection time.
        rows = _synthetic_rows(n=20)
        rows.append({
            "matrix": "m0", "mem_footprint_mb": 4, "avg_nnz_per_row": 5,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0, "format": "Rare", "gflops": 1.0,
        })
        sel = FormatSelector(["Fast", "Bal", "Rare"]).fit(rows)
        choice = sel.select({
            "mem_footprint_mb": 64, "avg_nnz_per_row": 50,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0,
        })
        assert choice in ("Fast", "Bal", "Rare")


class TestRowGrouping:
    """Regression: per-format rows of one unnamed matrix must collapse to
    one training example, never silently become distinct 'matrices'."""

    def _unnamed_rows(self):
        rows = []
        for i in range(12):
            feats = {
                "matrix": "",            # unnamed instance
                "spec_index": i,         # ...but explicitly keyed
                "mem_footprint_mb": 8.0 + i,
                "avg_nnz_per_row": 20.0,
                "skew_coeff": 1.0 if i % 2 else 4000.0,
                "cross_row_similarity": 0.5,
                "avg_num_neighbours": 1.0,
            }
            fast = 100.0 if i % 2 else 20.0
            rows.append({**feats, "format": "Fast", "gflops": fast})
            rows.append({**feats, "format": "Bal", "gflops": 60.0})
        return rows

    def test_unnamed_rows_group_by_spec_index(self):
        rows = self._unnamed_rows()
        sel = FormatSelector(["Fast", "Bal"]).fit(rows)
        report = sel.evaluate(rows)
        # 12 matrices, not 24: the two format rows of each spec merged.
        assert report["n_matrices"] == 12
        # With correct grouping the oracle is learnable: retained
        # performance reflects both formats being visible per matrix.
        assert report.retained > 0.5

    def test_grid_instance_key_accepted(self):
        rows = [dict(r, spec_index=None, instance=r["spec_index"])
                for r in self._unnamed_rows()]
        sel = FormatSelector(["Fast", "Bal"]).fit(rows)
        assert sel.evaluate(rows)["n_matrices"] == 12

    def test_anonymous_rows_rejected(self):
        row = {
            "matrix": "", "mem_footprint_mb": 8.0, "avg_nnz_per_row": 20.0,
            "skew_coeff": 1.0, "cross_row_similarity": 0.5,
            "avg_num_neighbours": 1.0, "format": "Fast", "gflops": 1.0,
        }
        with pytest.raises(ValueError, match="group"):
            FormatSelector(["Fast"]).fit([row])
        with pytest.raises(ValueError, match="group"):
            FormatSelector(["Fast"]).fit([dict(row, matrix=None)])

    def test_mixed_device_rows_rejected(self):
        """A selector's feature vector has no device coordinate, so rows
        from several devices (or precisions) would silently overwrite
        each other per format — refuse instead."""
        rows = self._unnamed_rows()
        for r in rows:
            r["device"] = "AMD-EPYC-24" if r["format"] == "Fast" \
                else "Tesla-A100"
        with pytest.raises(ValueError, match="device"):
            FormatSelector(["Fast", "Bal"]).fit(rows)
        mixed_prec = self._unnamed_rows()
        for k, r in enumerate(mixed_prec):
            r["precision"] = "fp64" if k % 2 else "fp32"
        with pytest.raises(ValueError, match="precision"):
            FormatSelector(["Fast", "Bal"]).fit(mixed_prec)

    def test_multi_device_gridresult_rejected(self):
        from repro.core.generator import MatrixSpec
        from repro.devices import TESTBEDS
        from repro.perfmodel import MatrixInstance, simulate_grid

        inst = MatrixInstance.from_spec(
            MatrixSpec.from_footprint(4.0, 10.0, seed=0), max_nnz=6_000,
            name="m",
        )
        grid = simulate_grid(
            [inst], [TESTBEDS["INTEL-XEON"], TESTBEDS["Tesla-A100"]]
        )
        with pytest.raises(ValueError, match="device"):
            FormatSelector(["Naive-CSR"]).fit(grid)

    def test_fit_and_evaluate_consume_gridresult(self):
        from repro.core.generator import MatrixSpec
        from repro.devices import TESTBEDS
        from repro.perfmodel import MatrixInstance, simulate_grid

        instances = [
            MatrixInstance.from_spec(
                MatrixSpec.from_footprint(
                    4.0 + 6 * k, 10.0 + 5 * k, skew_coeff=float(50 * k),
                    seed=k,
                ),
                max_nnz=6_000, name="",  # unnamed: grid 'instance' key
            )
            for k in range(6)
        ]
        dev = TESTBEDS["INTEL-XEON"]
        grid = simulate_grid(instances, [dev])
        sel = FormatSelector(list(dev.formats)).fit(grid)
        report = sel.evaluate(grid)
        assert report["n_matrices"] == len(instances)
        assert 0.0 < report.retained <= 1.0


class TestSelectorOnSimulator:
    """Integration: train on simulated sweeps, beat the single-format
    baseline (the use-case the paper's related work motivates)."""

    def test_beats_fixed_format(self):
        from repro.core.dataset import Dataset, sweep
        from repro.core.feature_space import build_dataset_specs
        from repro.devices import TESTBEDS

        dev = TESTBEDS["INTEL-XEON"]
        specs = build_dataset_specs("tiny")[:40]
        ds = Dataset(specs, max_nnz=30_000, name="sel")
        table = sweep(ds, [dev], best_only=False)
        rows = table.rows
        split = len({r["matrix"] for r in rows}) // 2
        names = sorted({r["matrix"] for r in rows})
        train = [r for r in rows if r["matrix"] in names[:split]]
        test = [r for r in rows if r["matrix"] in names[split:]]

        sel = FormatSelector(list(dev.formats)).fit(train)
        report = sel.evaluate(test)
        # Selector retains most of the oracle's performance.
        assert report.retained > 0.7

"""Batched selector scoring must be bit-identical to the scalar oracle.

The experiment runner evaluates whole held-out folds with one
``model.predict`` per format; these tests pin that path to the
per-instance scalar loop for every model family the experiments use.
"""

import numpy as np
import pytest

from repro.ml import (
    FormatSelector, KNeighborsRegressor, RandomForestRegressor,
    RidgeRegression,
)


def _rows(n=60, seed=0, fmt_names=("Fast", "Bal", "Rare")):
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        feats = {
            "matrix": f"m{i}",
            "mem_footprint_mb": float(rng.uniform(4, 512)),
            "avg_nnz_per_row": float(rng.uniform(5, 100)),
            "skew_coeff": float(rng.choice([1.0, 50.0, 5000.0])),
            "cross_row_similarity": float(rng.uniform(0, 1)),
            "avg_num_neighbours": float(rng.uniform(0, 2)),
        }
        for j, fmt in enumerate(fmt_names):
            rows.append({
                **feats, "format": fmt,
                "gflops": float(rng.uniform(5, 120)) + 10.0 * j,
            })
    return rows


MODEL_FACTORIES = {
    "forest": lambda: RandomForestRegressor(n_estimators=10, random_state=0),
    "knn": lambda: KNeighborsRegressor(n_neighbors=3, weights="distance"),
    "linear": lambda: RidgeRegression(alpha=0.5),
}


@pytest.mark.parametrize("model", sorted(MODEL_FACTORIES))
class TestBatchAgreement:
    def _fitted(self, model):
        return FormatSelector(
            ["Fast", "Bal", "Rare"],
            model_factory=MODEL_FACTORIES[model],
        ).fit(_rows(seed=1))

    def test_predict_gflops_batch_matches_scalar(self, model):
        sel = self._fitted(model)
        held_out = _rows(n=25, seed=2)
        feats = [r for r in held_out if r["format"] == "Fast"]
        batch = sel.predict_gflops_batch(feats)
        assert set(batch) == set(sel.formats)
        for i, f in enumerate(feats):
            scalar = sel.predict_gflops(f)
            for fmt in sel.formats:
                assert batch[fmt][i] == scalar[fmt]

    def test_select_batch_matches_scalar(self, model):
        sel = self._fitted(model)
        feats = [r for r in _rows(n=25, seed=3) if r["format"] == "Fast"]
        assert sel.select_batch(feats) == [sel.select(f) for f in feats]

    def test_evaluate_batch_matches_scalar(self, model):
        sel = self._fitted(model)
        held_out = _rows(n=30, seed=4)
        fast = sel.evaluate(held_out, batch=True)
        oracle = sel.evaluate(held_out, batch=False)
        assert fast == oracle

    def test_evaluate_detail_choices(self, model):
        sel = self._fitted(model)
        report = sel.evaluate(_rows(n=10, seed=5), detail=True)
        choices = report["choices"]
        assert len(choices) == report["n_matrices"] == 10
        for c in choices:
            assert set(c) == {"instance", "oracle", "chosen", "retained"}
            assert 0.0 <= c["retained"] <= 1.0
        # Aggregates recompute from the detail rows.
        acc = sum(c["oracle"] == c["chosen"] for c in choices) / len(choices)
        assert acc == report["top1_accuracy"]


class TestBatchEdgeCases:
    def test_feature_matrix_matches_vector_rows(self):
        sel = FormatSelector(["A"])
        feats = [r for r in _rows(n=8, seed=6) if r["format"] == "Fast"]
        X = sel._matrix(feats)
        for i, f in enumerate(feats):
            np.testing.assert_array_equal(X[i], sel._vector(f))

    def test_empty_matrix_shape(self):
        assert FormatSelector(["A"])._matrix([]).shape == (0, 5)

    def test_unfitted_batch_raises(self):
        with pytest.raises(RuntimeError):
            FormatSelector(["A"]).predict_gflops_batch([])
        with pytest.raises(RuntimeError):
            FormatSelector(["A"]).select_batch([])

    def test_fitted_empty_batch(self):
        sel = FormatSelector(
            ["Fast", "Bal", "Rare"],
            model_factory=MODEL_FACTORIES["knn"],
        ).fit(_rows(n=10, seed=7))
        assert sel.select_batch([]) == []

    def test_tie_break_matches_scalar_first_format(self):
        # A constant model ties every format; both paths must pick the
        # first fitted format.
        class Const:
            def fit(self, X, y):
                return self

            def predict(self, X):
                return np.zeros(len(np.atleast_2d(X)))

        sel = FormatSelector(
            ["B-second", "A-first"], model_factory=Const
        ).fit(_rows(n=6, seed=8, fmt_names=("B-second", "A-first")))
        feats = [r for r in _rows(n=6, seed=9) if r["format"] == "Fast"]
        assert sel.select(feats[0]) == "B-second"
        assert sel.select_batch(feats) == ["B-second"] * len(feats)

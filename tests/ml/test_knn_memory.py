"""k-NN predict must not materialise the full (n_query, n_train, d)
broadcast temporary — queries are chunked to a fixed byte budget."""

import tracemalloc

import numpy as np
import pytest

import repro.ml.knn as knn_mod
from repro.ml import KNeighborsRegressor


def _fitted(n_train=200, d=4, seed=0, **kw):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_train, d))
    y = rng.normal(size=n_train)
    return KNeighborsRegressor(**kw).fit(X, y), rng


@pytest.mark.parametrize("weights", ["uniform", "distance"])
def test_chunked_predict_bit_identical_to_one_shot(weights, monkeypatch):
    model, rng = _fitted(n_train=37, weights=weights, n_neighbors=4)
    queries = rng.normal(size=(53, 4))
    reference = model.predict(queries)  # single chunk (fits the budget)
    monkeypatch.setattr(knn_mod, "CHUNK_BUDGET_BYTES", 37 * 4 * 8 * 5)
    forced = model.predict(queries)  # ~5-query chunks
    np.testing.assert_array_equal(forced, reference)
    monkeypatch.setattr(knn_mod, "CHUNK_BUDGET_BYTES", 1)  # 1-query chunks
    np.testing.assert_array_equal(model.predict(queries), reference)


def test_single_query_and_empty_query():
    model, rng = _fitted()
    single = model.predict(rng.normal(size=(1, 4)))
    assert single.shape == (1,)
    assert model.predict(np.empty((0, 4))).shape == (0,)


def test_large_query_fits_memory_envelope():
    """A 5k x 5k query at d=4 would need an 800 MB one-shot temporary;
    chunking must keep peak allocations within a sane envelope."""
    n = 5_000
    model, rng = _fitted(n_train=n, d=4, n_neighbors=5)
    queries = rng.normal(size=(n, 4))
    tracemalloc.start()
    tracemalloc.reset_peak()
    pred = model.predict(queries)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert pred.shape == (n,)
    naive_bytes = n * n * 4 * 8
    # Budgeted chunks + the (chunk, n_train) distance matrix: well under
    # half the naive temporary even with slack for interpreter noise.
    assert peak < naive_bytes / 2, (
        f"peak {peak / 2**20:.0f} MiB vs naive {naive_bytes / 2**20:.0f} MiB"
    )
    assert peak < 400 * 2**20

"""ML substrate: each model recovers known structure; metrics behave."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    KNeighborsRegressor,
    LinearRegression,
    RandomForestRegressor,
    RidgeRegression,
    kfold,
    mape_score,
    r2_score,
    rmse,
    train_test_split,
)


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(1)
    X = rng.uniform(-2, 2, (300, 4))
    y = 3.0 * X[:, 0] - 1.5 * X[:, 2] + 0.5
    return X, y


@pytest.fixture(scope="module")
def step_data():
    """Piecewise-constant target: trees should nail it, linear cannot."""
    rng = np.random.default_rng(2)
    X = rng.uniform(0, 1, (400, 2))
    y = np.where(X[:, 0] > 0.5, 10.0, 1.0) + np.where(X[:, 1] > 0.3, 5, 0)
    return X, y


class TestLinear:
    def test_recovers_coefficients(self, linear_data):
        X, y = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(
            model.coef_, [3.0, 0.0, -1.5, 0.0], atol=1e-8
        )
        assert model.intercept_ == pytest.approx(0.5, abs=1e-8)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.ones((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.ones(5), np.ones(5))

    def test_ridge_shrinks(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=1000.0).fit(X, y)
        assert np.abs(ridge.coef_).sum() < np.abs(ols.coef_).sum()

    def test_ridge_alpha_zero_matches_ols(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestTree:
    def test_fits_step_function(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_depth_limit_respected(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert model.depth() <= 2

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).uniform(0, 1, (50, 3))
        model = DecisionTreeRegressor().fit(X, np.full(50, 7.0))
        assert model.depth() == 0
        np.testing.assert_allclose(model.predict(X), 7.0)

    def test_min_samples_leaf(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor(min_samples_leaf=100).fit(X, y)
        # With 400 points and >=100 per leaf, at most 4 leaves (depth <= 2)
        assert model.depth() <= 2

    def test_predict_shape_validation(self, step_data):
        X, y = step_data
        model = DecisionTreeRegressor().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.ones((3, 9)))

    def test_bad_hyperparams(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_beats_linear_on_step(self, step_data):
        X, y = step_data
        lin = LinearRegression().fit(X, y)
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert rmse(y, tree.predict(X)) < rmse(y, lin.predict(X)) / 2


class TestForest:
    def test_generalises(self, step_data):
        X, y = step_data
        Xtr, Xte, ytr, yte = train_test_split(X, y, seed=3)
        model = RandomForestRegressor(n_estimators=15, random_state=1)
        model.fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.9

    def test_deterministic_given_state(self, step_data):
        X, y = step_data
        a = RandomForestRegressor(n_estimators=5, random_state=7).fit(X, y)
        b = RandomForestRegressor(n_estimators=5, random_state=7).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_estimator_count(self, step_data):
        X, y = step_data
        model = RandomForestRegressor(n_estimators=9).fit(X, y)
        assert len(model.trees_) == 9

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)


class TestKNN:
    def test_exact_on_training_points(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([10.0, 20.0, 30.0])
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_uniform_averages(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(5.0)

    def test_distance_weighting_pulls_closer(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance")
        model.fit(X, y)
        assert model.predict(np.array([[0.1]]))[0] < 5.0

    def test_k_capped_at_train_size(self):
        model = KNeighborsRegressor(n_neighbors=50).fit(
            np.ones((3, 1)), np.array([1.0, 2.0, 3.0])
        )
        assert model.predict(np.ones((1, 1)))[0] == pytest.approx(2.0)

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="cosine")


class TestMetricsAndSplits:
    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_constant_target(self):
        assert r2_score([2, 2], [1, 3]) == 0.0

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_mape(self):
        assert mape_score([10.0, 20.0], [11.0, 18.0]) == pytest.approx(10.0)

    def test_split_disjoint_and_complete(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25)
        assert len(yte) == 5 and len(ytr) == 15
        assert set(ytr) | set(yte) == set(range(20))
        assert not set(ytr) & set(yte)

    def test_split_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(4), test_fraction=1.5)

    def test_kfold_covers_everything(self):
        folds = list(kfold(20, n_splits=4, seed=1))
        assert len(folds) == 4
        all_test = np.concatenate([te for _, te in folds])
        assert sorted(all_test) == list(range(20))
        for train, test in folds:
            assert not set(train) & set(test)

    def test_kfold_bad_splits(self):
        with pytest.raises(ValueError):
            list(kfold(3, n_splits=10))

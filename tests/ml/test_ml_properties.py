"""Property tests for the ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeRegressor, KNeighborsRegressor


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(5, 80),
    d=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_tree_predictions_within_target_range(seed, n, d):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, d))
    y = rng.uniform(-100, 100, n)
    model = DecisionTreeRegressor(max_depth=6).fit(X, y)
    pred = model.predict(X)
    # Leaves are means of subsets: predictions can never leave [min, max].
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9


@given(seed=st.integers(0, 2**31 - 1), n=st.integers(3, 50))
@settings(max_examples=25, deadline=None)
def test_knn_predictions_within_target_range(seed, n):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = rng.uniform(-10, 10, n)
    model = KNeighborsRegressor(n_neighbors=3).fit(X, y)
    pred = model.predict(rng.uniform(-1, 1, (10, 2)))
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_tree_is_deterministic(seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, (60, 3))
    y = rng.uniform(0, 1, 60)
    a = DecisionTreeRegressor(random_state=0).fit(X, y).predict(X)
    b = DecisionTreeRegressor(random_state=0).fit(X, y).predict(X)
    np.testing.assert_array_equal(a, b)

"""Presorted split search: bit-identical trees to the re-sorting search.

The presort engine (argsort each feature once per fit, partition the
sorted orders per node) must reproduce the legacy per-node re-sort
exactly — same splits, same thresholds, same leaf values — across
stopping rules, tie-heavy features and forest feature subsampling, and
through a full fixed-seed selector run.
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor


def _signature(node, out=None):
    """Flattened (feature, threshold, value, is_leaf) preorder walk."""
    if out is None:
        out = []
    out.append((node.feature, node.threshold, node.value, node.is_leaf))
    if not node.is_leaf:
        _signature(node.left, out)
        _signature(node.right, out)
    return out


def _data(n, d, seed, ties=True):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    if ties:
        # Coarse quantisation forces equal feature values, exercising the
        # (value, original position) tie-break the partition must keep.
        X[:, 0] = np.round(X[:, 0], 1)
        X[:, -1] = np.round(X[:, -1])
    y = X @ rng.normal(size=d) + 0.25 * rng.normal(size=n)
    return X, y


@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"max_depth": 3},
        {"max_depth": 25},
        {"min_samples_leaf": 12},
        {"min_impurity_decrease": 0.05},
        {"max_features": 2, "random_state": 7},
        {"max_features": 1, "random_state": 0, "max_depth": 6},
    ],
)
@pytest.mark.parametrize("seed", [0, 3])
def test_presort_tree_identical(kwargs, seed):
    X, y = _data(400, 6, seed)
    fast = DecisionTreeRegressor(presort=True, **kwargs).fit(X, y)
    ref = DecisionTreeRegressor(presort=False, **kwargs).fit(X, y)
    assert _signature(fast._root) == _signature(ref._root)
    np.testing.assert_array_equal(fast.predict(X), ref.predict(X))
    assert fast.depth() == ref.depth()


def test_presort_constant_targets():
    X = np.arange(20, dtype=float).reshape(-1, 1)
    y = np.ones(20)
    fast = DecisionTreeRegressor(presort=True).fit(X, y)
    ref = DecisionTreeRegressor(presort=False).fit(X, y)
    assert _signature(fast._root) == _signature(ref._root)


def test_presort_single_sample_and_duplicate_rows():
    fast = DecisionTreeRegressor(presort=True).fit([[1.0, 2.0]], [3.0])
    ref = DecisionTreeRegressor(presort=False).fit([[1.0, 2.0]], [3.0])
    assert _signature(fast._root) == _signature(ref._root)

    X = np.tile(np.array([[1.0, 2.0], [1.0, 2.0], [3.0, 4.0]]), (5, 1))
    y = np.arange(15, dtype=float)
    fast = DecisionTreeRegressor(presort=True, min_samples_leaf=1).fit(X, y)
    ref = DecisionTreeRegressor(presort=False, min_samples_leaf=1).fit(X, y)
    assert _signature(fast._root) == _signature(ref._root)


def test_presort_forest_identical():
    """Bagged trees draw the same bootstrap/feature randomness and grow
    identical forests under either split engine."""
    X, y = _data(250, 5, seed=11)
    fast = RandomForestRegressor(
        n_estimators=8, random_state=3, presort=True
    ).fit(X, y)
    ref = RandomForestRegressor(
        n_estimators=8, random_state=3, presort=False
    ).fit(X, y)
    assert len(fast.trees_) == len(ref.trees_)
    for a, b in zip(fast.trees_, ref.trees_):
        assert _signature(a._root) == _signature(b._root)
    np.testing.assert_array_equal(fast.predict(X), ref.predict(X))


def test_presort_selector_run_identical(all_archetypes):
    """Fixed-seed end-to-end selector training picks identical formats."""
    from repro.devices import TESTBEDS
    from repro.ml.selector import FormatSelector
    from repro.perfmodel import MatrixInstance, simulate_grid

    instances = [
        MatrixInstance.from_matrix(m, name=k)
        for k, m in sorted(all_archetypes.items())
    ]
    dev = TESTBEDS["AMD-EPYC-24"]
    grid = simulate_grid(instances, [dev], seed=0)

    selectors = {}
    for presort in (True, False):
        sel = FormatSelector(
            list(dev.formats),
            model_factory=lambda p=presort: RandomForestRegressor(
                n_estimators=10, random_state=0, presort=p
            ),
        ).fit(grid)
        selectors[presort] = sel
    feats = [inst.features.to_dict() for inst in instances]
    picks_fast = [selectors[True].select(f) for f in feats]
    picks_ref = [selectors[False].select(f) for f in feats]
    assert picks_fast == picks_ref
    for fmt, model in selectors[True]._models.items():
        ref_model = selectors[False]._models[fmt]
        for a, b in zip(model.trees_, ref_model.trees_):
            assert _signature(a._root) == _signature(b._root)

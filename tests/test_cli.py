"""CLI: every subcommand end-to-end on small inputs."""

import pytest

from repro.cli import build_parser, main
from repro.io import read_mtx


@pytest.fixture()
def small_mtx(tmp_path):
    path = tmp_path / "m.mtx"
    rc = main([
        "generate", "--rows", "2000", "--avg", "8", "--skew", "10",
        "--seed", "3", "--out", str(path),
    ])
    assert rc == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_valid_mtx(self, small_mtx):
        mat = read_mtx(small_mtx)
        assert mat.shape == (2000, 2000)
        assert mat.nnz > 10_000

    def test_rectangular(self, tmp_path):
        path = tmp_path / "r.mtx"
        main(["generate", "--rows", "100", "--cols", "300", "--avg", "4",
              "--out", str(path)])
        assert read_mtx(path).shape == (100, 300)


class TestFeatures:
    def test_prints_all_features(self, small_mtx, capsys):
        assert main(["features", str(small_mtx)]) == 0
        out = capsys.readouterr().out
        for key in ("mem_footprint_mb", "avg_nnz_per_row", "skew_coeff",
                    "cross_row_similarity", "avg_num_neighbours",
                    "regularity_class"):
            assert key in out


class TestSimulate:
    def test_single_device(self, small_mtx, capsys):
        assert main(["simulate", str(small_mtx), "--device",
                     "Tesla-V100"]) == 0
        out = capsys.readouterr().out
        assert "Tesla-V100" in out
        assert "fp64" in out

    def test_all_devices(self, small_mtx, capsys):
        assert main(["simulate", str(small_mtx)]) == 0
        out = capsys.readouterr().out
        assert "Alveo-U280" in out and "AMD-EPYC-24" in out

    def test_explicit_format_fp32(self, small_mtx, capsys):
        assert main(["simulate", str(small_mtx), "--device", "INTEL-XEON",
                     "--format", "CSR5", "--fp32"]) == 0
        out = capsys.readouterr().out
        assert "CSR5" in out and "fp32" in out

    def test_infeasible_format_reported(self, small_mtx, capsys):
        # DIA refuses scattered matrices (too many populated diagonals).
        assert main(["simulate", str(small_mtx), "--device",
                     "AMD-EPYC-24", "--format", "DIA"]) == 0
        assert "failed" in capsys.readouterr().out


class TestValidate:
    def test_subset_run(self, capsys):
        assert main(["validate", "--ids", "1,3", "--device", "INTEL-XEON",
                     "--friends", "3"]) == 0
        out = capsys.readouterr().out
        assert "scircuit" in out and "MAPE" in out


class TestSweep:
    def test_writes_csv(self, tmp_path, capsys, monkeypatch):
        # Shrink the sweep: tiny dataset, one device, small reps.
        out_csv = tmp_path / "rows.csv"
        import repro.core.feature_space as fs

        original = fs.build_dataset_specs

        def small_specs(scale, **kw):
            return original(scale, **kw)[:4]

        monkeypatch.setattr(
            "repro.core.feature_space.build_dataset_specs", small_specs
        )
        assert main([
            "sweep", "--scale", "tiny", "--devices", "INTEL-XEON",
            "--max-nnz", "20000", "--out", str(out_csv),
        ]) == 0
        from repro.io import read_rows

        rows = read_rows(out_csv)
        assert len(rows) == 4
        assert all(r["device"] == "INTEL-XEON" for r in rows)

    def test_jobs_and_cache_dir_flags(self, tmp_path, capsys, monkeypatch):
        # Parallel + cached runs must produce the same CSV as the serial,
        # uncached reference above.
        import repro.core.feature_space as fs

        original = fs.build_dataset_specs

        def small_specs(scale, **kw):
            return original(scale, **kw)[:4]

        monkeypatch.setattr(
            "repro.core.feature_space.build_dataset_specs", small_specs
        )
        from repro.io import read_rows

        serial_csv = tmp_path / "serial.csv"
        assert main([
            "sweep", "--scale", "tiny", "--devices", "INTEL-XEON",
            "--max-nnz", "20000", "--out", str(serial_csv),
        ]) == 0
        cache_dir = tmp_path / "cache"
        for tag in ("cold", "warm"):
            out_csv = tmp_path / f"{tag}.csv"
            assert main([
                "sweep", "--scale", "tiny", "--devices", "INTEL-XEON",
                "--max-nnz", "20000", "--jobs", "2",
                "--cache-dir", str(cache_dir), "--out", str(out_csv),
            ]) == 0
            assert read_rows(out_csv) == read_rows(serial_csv)
        assert list(cache_dir.glob("*.npz"))  # cache was populated

    def test_npz_out_feeds_experiment(self, tmp_path, capsys,
                                      monkeypatch):
        """sweep --out table.npz → experiment --table table.npz equals
        the re-sweeping experiment byte for byte."""
        import repro.core.feature_space as fs

        original = fs.build_dataset_specs
        monkeypatch.setattr(
            "repro.core.feature_space.build_dataset_specs",
            lambda scale, **kw: original(scale, **kw)[:6],
        )
        npz = tmp_path / "table.npz"
        assert main([
            "sweep", "--scale", "tiny", "--devices", "INTEL-XEON",
            "--max-nnz", "20000", "--all-formats", "--out", str(npz),
        ]) == 0
        from repro.core.table import SweepTable

        table = SweepTable.from_npz(npz)
        assert len(table.unique("matrix")) == 6
        assert len(table) > 6  # per-format rows, not best-only

        ref, via_table = tmp_path / "ref.json", tmp_path / "tab.json"
        # --limit shrinks the re-sweeping reference to the same first 6
        # specs the (monkeypatched) sweep command persisted.
        base = ["experiment", "--scale", "tiny", "--devices",
                "INTEL-XEON", "--max-nnz", "20000", "--folds", "2",
                "--model", "knn", "--limit", "6"]
        assert main(base + ["--out", str(ref)]) == 0
        assert main(base + ["--table", str(npz),
                            "--out", str(via_table)]) == 0
        assert via_table.read_bytes() == ref.read_bytes()

    def test_format_flag_overrides_extension(self, tmp_path,
                                             monkeypatch):
        import repro.core.feature_space as fs

        original = fs.build_dataset_specs
        monkeypatch.setattr(
            "repro.core.feature_space.build_dataset_specs",
            lambda scale, **kw: original(scale, **kw)[:2],
        )
        out = tmp_path / "table.dat"
        assert main([
            "sweep", "--scale", "tiny", "--devices", "INTEL-XEON",
            "--max-nnz", "20000", "--format", "json", "--out", str(out),
        ]) == 0
        import json

        rows = json.loads(out.read_text())
        assert len(rows) == 2
        assert rows[0]["device"] == "INTEL-XEON"

"""Batched-vs-scalar agreement: the golden suite.

:func:`repro.perfmodel.simulate_grid` promises row-for-row *bit-identical*
output to the scalar :func:`simulate_spmv` oracle over the full
(testbed device x its Table-II format list x fp64/fp32) grid — including
which cells are capacity-gated, with the very same reason strings.  These
tests enforce that promise on a varied pool of generated instances; if a
future change to either path breaks the lockstep, a cell here fails with
the exact coordinates.
"""

import numpy as np
import pytest

from repro.core.dataset import Dataset, grid_spec_rows, spec_rows, sweep
from repro.core.feature_space import build_dataset_specs
from repro.core.generator import MatrixSpec
from repro.devices import TESTBEDS
from repro.formats.base import CapacityError, FormatError
from repro.perfmodel import (
    MatrixInstance,
    simulate_best,
    simulate_best_detailed,
    simulate_grid,
    simulate_spmv,
)
from repro.perfmodel.batch import (
    STATUS_CAPACITY_ERROR,
    STATUS_FORMAT_ERROR,
    STATUS_OK,
)
from repro.perfmodel.simulator import BOTTLENECKS

PRECISIONS = ("fp64", "fp32")
DEVICES = list(TESTBEDS.values())
SEED = 0

_DIAG_KEYS = (
    "t_mem", "t_comp", "t_lat", "imbalance", "utilisation", "bw_gbs",
    "miss_rate", "padding_ratio", "bytes_total", "simd_util",
)


def _inst(mb, avg, name, seed=0, max_nnz=20_000, **kw):
    spec = MatrixSpec.from_footprint(mb, avg, seed=seed, **kw)
    return MatrixInstance.from_spec(spec, max_nnz=max_nnz, name=name)


@pytest.fixture(scope="module")
def instances():
    """Eight structurally varied instances covering the paper's axes:
    cache-resident and DRAM-resident footprints, short and long rows,
    balanced and skewed profiles, regular and irregular access — plus an
    FPGA-capacity-overflowing one and an *unnamed* one (exercising the
    tuple-keyed noise path)."""
    return [
        _inst(4, 5, "small-short"),
        _inst(64, 50, "llc-medium", seed=1, skew_coeff=10.0,
              cross_row_sim=0.8),
        _inst(256, 100, "large-irregular", seed=2, cross_row_sim=0.05,
              avg_num_neigh=0.05),
        _inst(1024, 5, "fpga-overflow", seed=3),
        _inst(24, 500, "long-rows", seed=4, cross_row_sim=0.8,
              avg_num_neigh=1.4),
        _inst(128, 50, "skewed", seed=5, skew_coeff=1000.0),
        _inst(8, 10, "tiny-skewed", seed=6, skew_coeff=5000.0),
        _inst(64, 20, "", seed=7),  # unnamed
    ]


@pytest.fixture(scope="module")
def grid(instances):
    return simulate_grid(
        instances, DEVICES, precisions=PRECISIONS, seed=SEED
    )


def _scalar_cell(inst, fmt, dev, precision):
    """(status, payload): payload is the measurement or the reason str."""
    try:
        return STATUS_OK, simulate_spmv(
            inst, fmt, dev, seed=SEED, precision=precision
        )
    except CapacityError as exc:
        return STATUS_CAPACITY_ERROR, str(exc)
    except FormatError as exc:
        return STATUS_FORMAT_ERROR, str(exc)


@pytest.mark.parametrize("device_name", sorted(TESTBEDS))
def test_every_cell_matches_scalar(grid, instances, device_name):
    """Exact equality over every (instance, format, precision) cell of
    one device — measurements, diagnostics, bottleneck attribution and
    skip reasons alike."""
    d = [dev.name for dev in DEVICES].index(device_name)
    dev = DEVICES[d]
    lo, hi = grid.device_slices[d]
    checked = 0
    for p, precision in enumerate(grid.precisions):
        for i, inst in enumerate(instances):
            for off in range(lo, hi):
                idx = grid.cell_index(p, i, off)
                rec = grid.data[idx]
                fmt = grid.format_names[rec["format"]]
                status, payload = _scalar_cell(inst, fmt, dev, precision)
                cell = (inst.name, device_name, fmt, precision)
                assert rec["status"] == status, cell
                if status != STATUS_OK:
                    assert grid.skip_reasons[idx] == payload, cell
                    assert np.isnan(rec["gflops"]), cell
                    continue
                assert rec["gflops"] == payload.gflops, cell
                assert rec["time_s"] == payload.time_s, cell
                assert rec["watts"] == payload.watts, cell
                assert rec["gflops_per_watt"] == payload.gflops_per_watt, \
                    cell
                assert BOTTLENECKS[rec["bottleneck"]] == \
                    payload.bottleneck, cell
                for key in _DIAG_KEYS:
                    assert rec[key] == payload.diagnostics[key], (cell, key)
                checked += 1
    assert checked > 0, f"no scored cells on {device_name}"


def test_capacity_skip_sets_identical(grid, instances):
    """The set of capacity-gated cells is exactly the set of scalar
    CapacityError raises over the whole grid."""
    scalar_skips = set()
    for precision in PRECISIONS:
        for inst in instances:
            for d, dev in enumerate(DEVICES):
                for fmt in dev.formats:
                    status, _ = _scalar_cell(inst, fmt, dev, precision)
                    if status == STATUS_CAPACITY_ERROR:
                        scalar_skips.add(
                            (inst.name, dev.name, fmt, precision)
                        )
    assert grid.capacity_skip_set() == scalar_skips
    # The pool must actually exercise the gate (FPGA HBM overflow).
    assert any(s[1] == "Alveo-U280" for s in scalar_skips)


def test_best_per_matches_simulate_best(grid, instances):
    best = grid.best_per()
    for p, precision in enumerate(grid.precisions):
        for i, inst in enumerate(instances):
            for d, dev in enumerate(DEVICES):
                m = simulate_best(inst, dev, seed=SEED,
                                  precision=precision)
                idx = best[p, i, d]
                if m is None:
                    assert idx == -1, (inst.name, dev.name, precision)
                    continue
                rec = grid.data[idx]
                assert grid.format_names[rec["format"]] == m.format
                assert rec["gflops"] == m.gflops


def test_explicit_format_list_matches_scalar(instances):
    """An explicit ``formats`` list applies to every device and still
    mirrors the scalar path — including non-Table-II formats that refuse
    some matrices (the format_error path)."""
    formats = ["Naive-CSR", "ELL", "DIA", "COO"]
    devices = [TESTBEDS["AMD-EPYC-24"], TESTBEDS["Tesla-V100"]]
    grid = simulate_grid(instances, devices, formats=formats)
    saw_format_error = False
    for i, inst in enumerate(instances):
        for d, dev in enumerate(devices):
            lo, hi = grid.device_slices[d]
            for off in range(lo, hi):
                idx = grid.cell_index(0, i, off)
                rec = grid.data[idx]
                fmt = grid.format_names[rec["format"]]
                status, payload = _scalar_cell(inst, fmt, dev, "fp64")
                assert rec["status"] == status
                if status == STATUS_OK:
                    assert rec["gflops"] == payload.gflops
                elif status == STATUS_FORMAT_ERROR:
                    saw_format_error = True
                    assert grid.skip_reasons[idx] == payload
    assert saw_format_error, "pool never exercised a format refusal"


def test_unknown_format_and_precision_rejected(instances):
    with pytest.raises(KeyError):
        simulate_grid(instances[:1], DEVICES[:1], formats=["NOPE"])
    with pytest.raises(ValueError, match="precision"):
        simulate_grid(instances[:1], DEVICES[:1], precisions=("fp16",))


def test_row_of_skipped_cell_raises(grid):
    """Skipped cells have no measurements; asking for their row must
    fail loudly, never return NaNs under a wrapped bottleneck label."""
    skipped = sorted(grid.skip_reasons)
    assert skipped, "pool produced no skipped cells"
    with pytest.raises(ValueError, match="skipped"):
        grid.row(skipped[0])


def test_grid_rows_schema_and_order(grid):
    rows = grid.to_rows()
    assert rows, "grid produced no scored rows"
    first = rows[0]
    for key in ("matrix", "instance", "device", "format", "precision",
                "gflops", "time_s", "watts", "gflops_per_watt",
                "bottleneck", "mem_footprint_mb", "avg_nnz_per_row",
                "skew_coeff", "cross_row_similarity",
                "avg_num_neighbours", "nnz", "n_rows"):
        assert key in first, key
    # Grid order: precision-major, then instance, then device blocks.
    precs = [r["precision"] for r in rows]
    assert precs == sorted(precs, key=list(PRECISIONS).index)


class TestSweepEngines:
    """The pipeline's batched chunk scoring is row-for-row identical to
    the scalar spec_rows reference — the property that lets the batch
    path be the default engine."""

    @pytest.fixture(scope="class")
    def dataset(self):
        specs = build_dataset_specs("tiny")[::31]  # strided cross-section
        return Dataset(specs, max_nnz=6_000, name="agree")

    @pytest.mark.parametrize("best_only", [True, False])
    def test_grid_spec_rows_equals_scalar(self, dataset, best_only):
        devices = [TESTBEDS["AMD-EPYC-24"], TESTBEDS["Tesla-A100"],
                   TESTBEDS["Alveo-U280"]]
        reference = []
        for i in range(len(dataset)):
            reference.extend(
                spec_rows(dataset, i, devices, best_only=best_only)
            )
        batched = grid_spec_rows(
            dataset, 0, len(dataset), devices, best_only=best_only
        )
        assert batched == reference

    def test_sweep_batch_equals_scalar_engine(self, dataset):
        devices = [TESTBEDS["INTEL-XEON"]]
        batch = sweep(dataset, devices, batch=True)
        scalar = sweep(dataset, devices, batch=False)
        assert batch.rows == scalar.rows


class TestBestDetailed:
    """simulate_best reports why formats were skipped (satellite: the
    all-formats-fail path must explain itself, not return a bare None)."""

    def test_all_formats_fail_reports_reasons(self):
        inst = _inst(1024, 5, "overflow", seed=3)
        dev = TESTBEDS["Alveo-U280"]
        outcome = simulate_best_detailed(inst, dev)
        assert outcome.best is None
        assert outcome.all_failed
        assert outcome.attempted == ("VSL",)
        assert [s.format for s in outcome.skipped] == ["VSL"]
        assert outcome.skipped[0].capacity
        assert "capacity" in outcome.skipped[0].reason
        assert outcome.skip_reasons["VSL"] == outcome.skipped[0].reason
        # The bare simulate_best keeps its None contract.
        assert simulate_best(inst, dev) is None

    def test_partial_skips_recorded_alongside_best(self):
        inst = _inst(8, 10, "tiny-skewed2", seed=6, skew_coeff=5000.0)
        dev = TESTBEDS["AMD-EPYC-24"]
        outcome = simulate_best_detailed(
            inst, dev, formats=["Naive-CSR", "ELL"]
        )
        assert outcome.best is not None
        assert outcome.best.format == "Naive-CSR"
        assert [s.format for s in outcome.skipped] == ["ELL"]
        assert not outcome.skipped[0].capacity
        assert not outcome.all_failed

    def test_no_formats_attempted_is_not_all_failed(self):
        inst = _inst(4, 5, "x")
        outcome = simulate_best_detailed(
            inst, TESTBEDS["AMD-EPYC-24"], formats=[]
        )
        assert outcome.best is None
        assert not outcome.all_failed

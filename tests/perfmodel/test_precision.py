"""Single-precision extension (the paper's deferred future work)."""

import pytest

from repro.core.generator import MatrixSpec
from repro.devices import TESTBEDS
from repro.perfmodel import MatrixInstance, simulate_best, simulate_spmv
from repro.perfmodel.simulator import PRECISIONS


@pytest.fixture(scope="module")
def inst():
    spec = MatrixSpec.from_footprint(
        64, 50, skew_coeff=2, cross_row_sim=0.6, avg_num_neigh=1.0, seed=21
    )
    return MatrixInstance.from_spec(spec, max_nnz=80_000, name="prec")


def test_known_precisions():
    assert set(PRECISIONS) == {"fp64", "fp32"}


def test_unknown_precision_rejected(inst):
    with pytest.raises(ValueError, match="precision"):
        simulate_spmv(inst, "Naive-CSR", TESTBEDS["INTEL-XEON"],
                      precision="fp16")


@pytest.mark.parametrize(
    "device", ["AMD-EPYC-64", "Tesla-A100", "Alveo-U280"]
)
def test_fp32_speedup_bounded(inst, device):
    """fp32 halves value traffic but not index metadata, so the
    memory-bound speedup lies strictly between 1x and 2x."""
    dev = TESTBEDS[device]
    f64 = simulate_best(inst, dev, noise_sigma=0.0, precision="fp64")
    f32 = simulate_best(inst, dev, noise_sigma=0.0, precision="fp32")
    speedup = f32.gflops / f64.gflops
    assert 1.0 < speedup < 2.0


def test_fp32_helps_value_heavy_formats_most(inst):
    """COO carries 8 metadata bytes per nonzero vs CSR's ~4, so CSR's
    value fraction is higher and fp32 buys it more."""
    dev = TESTBEDS["AMD-EPYC-24"]

    def speedup(fmt):
        f64 = simulate_spmv(inst, fmt, dev, noise_sigma=0.0,
                            precision="fp64")
        f32 = simulate_spmv(inst, fmt, dev, noise_sigma=0.0,
                            precision="fp32")
        return f32.gflops / f64.gflops

    # COO is not in the EPYC format list but is still simulatable.
    assert speedup("Naive-CSR") > speedup("COO")


def test_fp32_capacity_gate_relaxes():
    """A matrix that overflows the FPGA in fp64 can fit in fp32."""
    spec = MatrixSpec.from_footprint(470, 100, seed=9)
    inst = MatrixInstance.from_spec(spec, max_nnz=80_000, name="cap")
    dev = TESTBEDS["Alveo-U280"]
    f64_bytes = inst.format_stats("VSL").memory_bytes * inst.scale
    # Only meaningful if fp64 sits near the 4 GiB matrix budget.
    if f64_bytes > dev.matrix_capacity_bytes:
        assert simulate_best(inst, dev, precision="fp32") is not None

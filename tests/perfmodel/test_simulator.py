"""Performance simulator: invariants, failure gates, and — crucially — the
paper's per-feature trends (the takeaways of Section V encoded as tests)."""

import pytest

from repro.core.generator import MatrixSpec
from repro.devices import TESTBEDS, roofline_bounds
from repro.formats import CapacityError, FormatError
from repro.perfmodel import (
    MatrixInstance,
    simulate_best,
    simulate_spmv,
)


def _inst(mb, avg, skew=2.0, sim=0.5, neigh=1.0, seed=0, **kw):
    spec = MatrixSpec.from_footprint(
        mb, avg, skew_coeff=skew, cross_row_sim=sim, avg_num_neigh=neigh,
        seed=seed, **kw,
    )
    return MatrixInstance.from_spec(spec, max_nnz=100_000,
                                    name=f"t{mb}-{avg}-{skew}-{seed}")


@pytest.fixture(scope="module")
def medium_inst():
    return _inst(64, 50, seed=1)


class TestInvariants:
    def test_measurement_fields(self, medium_inst):
        m = simulate_spmv(medium_inst, "Naive-CSR", TESTBEDS["AMD-EPYC-24"])
        assert m.gflops > 0
        assert m.time_s > 0
        assert m.watts >= TESTBEDS["AMD-EPYC-24"].idle_w
        assert m.gflops_per_watt == pytest.approx(
            m.gflops / m.watts, rel=1e-9
        )
        assert m.bottleneck in (
            "memory_bandwidth", "low_ilp", "memory_latency", "load_imbalance"
        )

    def test_deterministic(self, medium_inst):
        a = simulate_spmv(medium_inst, "Naive-CSR", TESTBEDS["INTEL-XEON"])
        b = simulate_spmv(medium_inst, "Naive-CSR", TESTBEDS["INTEL-XEON"])
        assert a.gflops == b.gflops

    def test_seed_perturbs_within_noise(self, medium_inst):
        a = simulate_spmv(medium_inst, "Naive-CSR", TESTBEDS["INTEL-XEON"],
                          seed=0)
        b = simulate_spmv(medium_inst, "Naive-CSR", TESTBEDS["INTEL-XEON"],
                          seed=1)
        assert a.gflops != b.gflops
        assert abs(a.gflops - b.gflops) / a.gflops < 0.3

    def test_noise_disable(self, medium_inst):
        a = simulate_spmv(medium_inst, "Naive-CSR", TESTBEDS["INTEL-XEON"],
                          seed=0, noise_sigma=0.0)
        b = simulate_spmv(medium_inst, "Naive-CSR", TESTBEDS["INTEL-XEON"],
                          seed=99, noise_sigma=0.0)
        assert a.gflops == b.gflops

    def test_below_compute_peak(self, medium_inst):
        for dev in TESTBEDS.values():
            best = simulate_best(medium_inst, dev)
            if best is not None:
                assert best.gflops < dev.peak_gflops

    def test_near_or_below_roofline(self, medium_inst):
        # The paper's Fig 1: measurements sit at or under the memory roof
        # (small slack allowed for noise).
        f = medium_inst.features
        for name in ("AMD-EPYC-24", "Tesla-A100"):
            dev = TESTBEDS[name]
            rp = roofline_bounds(dev, f.nnz, f.n_rows, f.n_cols)
            best = simulate_best(medium_inst, dev, noise_sigma=0.0)
            assert best.gflops <= rp.llc_bound_gflops * 1.05

    def test_unknown_format_rejected(self, medium_inst):
        with pytest.raises(KeyError):
            simulate_spmv(medium_inst, "NOPE", TESTBEDS["INTEL-XEON"])


class TestCapacityGates:
    def test_vsl_hbm_overflow(self):
        # 1 GB at avg 5 -> heavily padded stream >> 4 GiB matrix budget.
        inst = _inst(1024, 5, seed=3)
        with pytest.raises(CapacityError):
            simulate_spmv(inst, "VSL", TESTBEDS["Alveo-U280"])

    def test_best_returns_none_when_all_fail(self):
        inst = _inst(1024, 5, seed=3)
        assert simulate_best(inst, TESTBEDS["Alveo-U280"]) is None

    def test_gpu_memory_overflow(self):
        inst = _inst(2000, 20, seed=4)  # ~2 GB fits a 12 GB P100
        m = simulate_spmv(inst, "cuSPARSE-CSR", TESTBEDS["Tesla-P100"])
        assert m.gflops > 0

    def test_format_refusal_propagates(self):
        inst = _inst(8, 5, skew=10000, seed=5)
        with pytest.raises(FormatError):
            inst.format_stats("ELL")


class TestPaperTrends:
    """Section V takeaways, asserted quantitatively."""

    def test_cpu_cache_cutoff(self):
        """Takeaway 5 (CPU): >= 4x drop when the matrix leaves the LLC."""
        small = simulate_best(_inst(64, 50, seed=6), TESTBEDS["AMD-EPYC-64"],
                              noise_sigma=0.0)
        large = simulate_best(_inst(1024, 50, seed=6),
                              TESTBEDS["AMD-EPYC-64"], noise_sigma=0.0)
        assert small.gflops / large.gflops > 4.0

    def test_gpu_prefers_large(self):
        """Takeaway 5 (GPU): large matrices up to ~2x faster than small."""
        small = simulate_best(_inst(6, 50, seed=7), TESTBEDS["Tesla-A100"],
                              noise_sigma=0.0)
        large = simulate_best(_inst(512, 50, seed=7), TESTBEDS["Tesla-A100"],
                              noise_sigma=0.0)
        ratio = large.gflops / small.gflops
        assert 1.5 < ratio < 5.0

    def test_row_size_penalty(self):
        """Fig 4: short rows cost ~2x on CPUs and GPUs."""
        for dev_name in ("AMD-EPYC-64", "Tesla-A100"):
            short = simulate_best(_inst(512, 5, seed=8),
                                  TESTBEDS[dev_name], noise_sigma=0.0)
            long_ = simulate_best(_inst(512, 100, seed=8),
                                  TESTBEDS[dev_name], noise_sigma=0.0)
            assert long_.gflops / short.gflops > 1.4, dev_name

    def test_fpga_row_size_catastrophe(self):
        """Fig 4 (FPGA): highly sparse rows are ~an order of magnitude
        slower due to VSL padding."""
        short = simulate_best(_inst(24, 5, seed=9), TESTBEDS["Alveo-U280"],
                              noise_sigma=0.0)
        long_ = simulate_best(_inst(24, 500, seed=9),
                              TESTBEDS["Alveo-U280"], noise_sigma=0.0)
        assert long_.gflops / short.gflops > 5.0

    def test_imbalance_handled_by_gpu(self):
        """Fig 5: best-format GPU performance moves <= ~1.3x with skew."""
        bal = simulate_best(_inst(128, 50, skew=0, seed=10),
                            TESTBEDS["Tesla-A100"], noise_sigma=0.0)
        skewed = simulate_best(_inst(128, 50, skew=1000, seed=10),
                               TESTBEDS["Tesla-A100"], noise_sigma=0.0)
        assert bal.gflops / skewed.gflops < 1.4

    def test_imbalance_hurts_fpga(self):
        """Fig 5 (FPGA): skew visibly degrades performance (paper ~4x; our
        channel-lockstep model reproduces a ~2x drop — see EXPERIMENTS.md)."""
        bal = simulate_best(_inst(24, 50, skew=0, seed=11),
                            TESTBEDS["Alveo-U280"], noise_sigma=0.0)
        skewed = simulate_best(_inst(24, 50, skew=1000, seed=11),
                               TESTBEDS["Alveo-U280"], noise_sigma=0.0)
        assert bal.gflops / skewed.gflops > 1.3

    def test_irregularity_hurts_gpu_large(self):
        """Fig 6: large irregular matrices drop GPU performance (up to 2x);
        the CPU penalty is milder."""
        reg = simulate_best(
            _inst(512, 50, sim=0.9, neigh=1.6, seed=12),
            TESTBEDS["Tesla-A100"], noise_sigma=0.0,
        )
        irr = simulate_best(
            _inst(512, 50, sim=0.05, neigh=0.05, seed=12),
            TESTBEDS["Tesla-A100"], noise_sigma=0.0,
        )
        gpu_ratio = reg.gflops / irr.gflops
        assert 1.3 < gpu_ratio < 3.0

    def test_cpu_medium_matrices_verge_on_gpu(self):
        """Takeaway 4: EPYC-64 reaches >= 50% of A100 in its favourable
        64-256 MB window."""
        inst = _inst(128, 50, sim=0.8, neigh=1.4, seed=13)
        cpu = simulate_best(inst, TESTBEDS["AMD-EPYC-64"], noise_sigma=0.0)
        gpu = simulate_best(inst, TESTBEDS["Tesla-A100"], noise_sigma=0.0)
        assert cpu.gflops / gpu.gflops > 0.5

    def test_fpga_energy_efficiency_peak(self):
        """Takeaway 3: the FPGA's favourable matrices beat every other
        device in GFLOPS/W."""
        # Large matrices: CPUs fall off their caches, the GPU pays full
        # board power, and the FPGA streams its lightly-padded matrix.
        inst = _inst(512, 500, sim=0.8, neigh=1.4, seed=14)
        fpga = simulate_best(inst, TESTBEDS["Alveo-U280"], noise_sigma=0.0)
        for name in ("Tesla-A100", "AMD-EPYC-64", "ARM-NEON"):
            other = simulate_best(inst, TESTBEDS[name], noise_sigma=0.0)
            assert fpga.gflops_per_watt > other.gflops_per_watt, name

    def test_research_formats_win_problematic_cases(self):
        """Takeaway 7: research formats take the problematic (large,
        unbalanced) matrices on CPUs."""
        inst = _inst(512, 10, skew=10000, seed=15)
        best = simulate_best(inst, TESTBEDS["AMD-EPYC-24"], noise_sigma=0.0)
        from repro.formats import get_format

        assert get_format(best.format).category == "research"

"""MatrixInstance caching/scaling and the noise model."""

import numpy as np
import pytest

from repro.core.generator import MatrixSpec
from repro.core.matrix import csr_from_dense
from repro.formats import FormatError
from repro.perfmodel import MatrixInstance
from repro.perfmodel.noise import measurement_noise


class TestInstance:
    def test_unscaled_passthrough(self, regular_matrix):
        inst = MatrixInstance.from_matrix(regular_matrix, name="m")
        assert inst.scale == 1.0
        assert inst.nnz == regular_matrix.nnz
        assert inst.n_rows == regular_matrix.n_rows
        np.testing.assert_array_equal(
            inst.row_profile(), regular_matrix.row_lengths
        )

    def test_scaled_instance(self):
        spec = MatrixSpec.from_footprint(256.0, 20, seed=1)
        inst = MatrixInstance.from_spec(spec, max_nnz=50_000)
        assert inst.scale > 1.0
        assert inst.n_rows == spec.n_rows
        assert inst.nnz == pytest.approx(spec.nnz_estimate, rel=0.15)

    def test_scaled_row_profile_has_declared_rows(self):
        spec = MatrixSpec.from_footprint(64.0, 10, skew_coeff=100, seed=2)
        inst = MatrixInstance.from_spec(spec, max_nnz=30_000)
        profile = inst.row_profile()
        assert len(profile) == min(spec.n_rows, 2_000_000)
        # Heavy row fraction preserved at declared scale.
        assert profile.max() == pytest.approx(10 * 101, rel=0.1)

    def test_features_carry_declared_footprint(self):
        spec = MatrixSpec.from_footprint(128.0, 20, seed=3)
        inst = MatrixInstance.from_spec(spec, max_nnz=40_000)
        assert inst.features.mem_footprint_mb == pytest.approx(128.0,
                                                               rel=0.1)

    def test_format_stats_cached(self, regular_matrix):
        inst = MatrixInstance.from_matrix(regular_matrix)
        a = inst.format_stats("Naive-CSR")
        b = inst.format_stats("Naive-CSR")
        assert a is b

    def test_format_failure_cached_and_replayed(self):
        # Scattered matrix: DIA refuses; second call replays from cache.
        rng = np.random.default_rng(4)
        dense = (rng.random((60, 60)) < 0.05).astype(float)
        inst = MatrixInstance.from_matrix(csr_from_dense(dense))
        with pytest.raises(FormatError):
            inst.format_stats("DIA")
        with pytest.raises(FormatError):
            inst.format_stats("DIA")


class TestNoise:
    def test_median_one(self):
        samples = [
            measurement_noise("d", "f", i, seed=0) for i in range(500)
        ]
        assert np.median(samples) == pytest.approx(1.0, abs=0.02)

    def test_deterministic(self):
        assert measurement_noise("d", "f", "m", 1) == measurement_noise(
            "d", "f", "m", 1
        )

    def test_coordinates_decorrelate(self):
        a = measurement_noise("d1", "f", "m", 0)
        b = measurement_noise("d2", "f", "m", 0)
        assert a != b

    def test_sigma_zero_disables(self):
        assert measurement_noise("d", "f", "m", 0, sigma=0.0) == 1.0

    def test_spread_matches_sigma(self):
        samples = np.array(
            [measurement_noise("d", "f", i, 0, sigma=0.1)
             for i in range(2000)]
        )
        assert np.log(samples).std() == pytest.approx(0.1, rel=0.1)

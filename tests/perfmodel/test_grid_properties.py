"""Hypothesis property tests for simulator invariants shared by the
scalar and batched paths.

Each property is asserted on *both* engines for the same randomly
generated instance, so a violation pinpoints whether the model or the
vectorisation broke it: more bandwidth can never slow SpMV down, fp32 on
a cache-resident working set buys strictly more than 1x and at most 2x,
the measured imbalance factor is >= 1, noise is reproducible per seed,
and the capacity gate trips identically in both paths.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.generator import MatrixSpec, artificial_matrix_generation
from repro.devices import TESTBEDS
from repro.formats.base import CapacityError, FormatError
from repro.perfmodel import (
    MatrixInstance,
    measurement_noise,
    noise_factors,
    simulate_grid,
    simulate_spmv,
)
from repro.perfmodel.batch import STATUS_CAPACITY_ERROR, STATUS_OK
from repro.perfmodel.noise import component_hash

DEVICE_NAMES = sorted(TESTBEDS)

# Formats every testbed-relevant matrix can host, spanning row-block,
# nnz-balanced and SIMD-friendly partitioning.
SAFE_FORMATS = ("Naive-CSR", "COO", "Merge-CSR", "SELL-C-s")


@st.composite
def small_instances(draw):
    """Small fully-materialised instances (cache-resident by
    construction: a few hundred rows never leaves any testbed's LLC)."""
    n = draw(st.integers(50, 400))
    avg = draw(st.floats(2.0, 12.0))
    skew = draw(st.floats(0.0, 50.0))
    sim = draw(st.floats(0.0, 1.0))
    neigh = draw(st.floats(0.0, 2.0))
    seed = draw(st.integers(0, 2**31 - 1))
    mat = artificial_matrix_generation(
        n, n, avg, skew_coeff=skew, cross_row_sim=sim,
        avg_num_neigh=neigh, seed=seed,
    )
    assume(mat.nnz > 0)
    return MatrixInstance.from_matrix(mat, name=f"prop-{seed}")


def _cell(inst, fmt, dev, **kw):
    """Scalar + batched measurement of one cell (noise off by default)."""
    kw.setdefault("noise_sigma", 0.0)
    scalar = simulate_spmv(inst, fmt, dev, **kw)
    grid = simulate_grid(
        [inst], [dev], formats=[fmt],
        precisions=(kw.get("precision", "fp64"),),
        seed=kw.get("seed", 0), noise_sigma=kw["noise_sigma"],
    )
    rec = grid.data[0]
    assert rec["status"] == STATUS_OK
    return scalar, rec


@given(inst=small_instances(), device=st.sampled_from(DEVICE_NAMES),
       fmt=st.sampled_from(SAFE_FORMATS), factor=st.floats(1.1, 8.0))
@settings(max_examples=20, deadline=None)
def test_time_monotone_in_bandwidth(inst, device, fmt, factor):
    """Scaling LLC+DRAM bandwidth up never increases execution time."""
    dev = TESTBEDS[device]
    fast = dataclasses.replace(
        dev, llc_bw_gbs=dev.llc_bw_gbs * factor,
        dram_bw_gbs=dev.dram_bw_gbs * factor,
    )
    try:
        base_scalar, base_rec = _cell(inst, fmt, dev)
        fast_scalar, fast_rec = _cell(inst, fmt, fast)
    except FormatError:
        assume(False)
    assert fast_scalar.time_s <= base_scalar.time_s
    assert fast_rec["time_s"] <= base_rec["time_s"]


@given(inst=small_instances(), device=st.sampled_from(DEVICE_NAMES),
       fmt=st.sampled_from(SAFE_FORMATS))
@settings(max_examples=20, deadline=None)
def test_fp32_speedup_in_unit_interval(inst, device, fmt):
    """On a cache-resident working set fp32 buys strictly more than 1x
    (values halve) and at most 2x (index metadata does not shrink, the
    compute peak only doubles)."""
    dev = TESTBEDS[device]
    try:
        f64_scalar, f64_rec = _cell(inst, fmt, dev, precision="fp64")
        f32_scalar, f32_rec = _cell(inst, fmt, dev, precision="fp32")
    except FormatError:
        assume(False)
    for f64_t, f32_t in ((f64_scalar.time_s, f32_scalar.time_s),
                         (f64_rec["time_s"], f32_rec["time_s"])):
        speedup = f64_t / f32_t
        assert 1.0 < speedup <= 2.0, speedup


@given(inst=small_instances(), device=st.sampled_from(DEVICE_NAMES),
       fmt=st.sampled_from(SAFE_FORMATS))
@settings(max_examples=20, deadline=None)
def test_imbalance_factor_at_least_one(inst, device, fmt):
    dev = TESTBEDS[device]
    try:
        scalar, rec = _cell(inst, fmt, dev)
    except FormatError:
        assume(False)
    assert scalar.diagnostics["imbalance"] >= 1.0
    assert rec["imbalance"] >= 1.0
    assert rec["imbalance"] == scalar.diagnostics["imbalance"]


@given(inst=small_instances(), device=st.sampled_from(DEVICE_NAMES),
       fmt=st.sampled_from(SAFE_FORMATS), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_noise_reproducible_per_seed(inst, device, fmt, seed):
    """Same seed -> bit-identical measurement, in and across both paths."""
    dev = TESTBEDS[device]
    try:
        a_scalar, a_rec = _cell(inst, fmt, dev, seed=seed,
                                noise_sigma=None)
        b_scalar, b_rec = _cell(inst, fmt, dev, seed=seed,
                                noise_sigma=None)
    except FormatError:
        assume(False)
    assert a_scalar.gflops == b_scalar.gflops
    assert a_rec["gflops"] == b_rec["gflops"]
    assert a_rec["gflops"] == a_scalar.gflops


@given(seed=st.integers(0, 2**63 - 1),
       parts=st.tuples(st.text(max_size=8), st.text(max_size=8),
                       st.text(max_size=8)))
@settings(max_examples=50, deadline=None)
def test_noise_scalar_equals_vectorised(seed, parts):
    """measurement_noise and noise_factors are one distribution: the
    Python-int fast path and the uint64 array path agree bitwise."""
    d, f, m = parts
    scalar = measurement_noise(d, f, m, seed)
    vec = noise_factors(
        np.array([component_hash(d)], dtype=np.uint64),
        np.array([component_hash(f)], dtype=np.uint64),
        np.array([component_hash(m)], dtype=np.uint64),
        seed=seed,
    )
    assert scalar == float(vec[0])


@given(mb=st.floats(1.0, 2048.0), avg=st.floats(3.0, 60.0),
       seed=st.integers(0, 2**31 - 1),
       precision=st.sampled_from(["fp64", "fp32"]))
@settings(max_examples=15, deadline=None)
def test_capacity_gate_consistent_between_paths(mb, avg, seed, precision):
    """The FPGA's HBM gate trips in the batched path exactly when the
    scalar path raises CapacityError, with the same message."""
    spec = MatrixSpec.from_footprint(mb, avg, seed=seed)
    inst = MatrixInstance.from_spec(spec, max_nnz=5_000,
                                    name=f"cap-{seed}")
    dev = TESTBEDS["Alveo-U280"]
    try:
        scalar = simulate_spmv(inst, "VSL", dev, precision=precision)
        scalar_status, reason = STATUS_OK, None
    except CapacityError as exc:
        scalar_status, reason = STATUS_CAPACITY_ERROR, str(exc)
    except FormatError:
        assume(False)
    grid = simulate_grid([inst], [dev], precisions=(precision,))
    rec = grid.data[0]
    assert rec["status"] == scalar_status
    if scalar_status == STATUS_CAPACITY_ERROR:
        assert grid.skip_reasons[0] == reason
    else:
        assert rec["gflops"] == scalar.gflops

"""Deterministic CV splits: partition, seeding, order independence."""

import pytest

from repro.experiments import kfold_splits, leave_one_device_out


class TestKFold:
    def test_folds_partition_keys(self):
        keys = [f"m{i}" for i in range(17)]
        folds = kfold_splits(keys, 5, seed=3)
        assert len(folds) == 5
        tests = [set(f.test) for f in folds]
        assert set().union(*tests) == set(keys)  # exhaustive
        for i in range(5):
            for j in range(i + 1, 5):
                assert not tests[i] & tests[j]  # disjoint
        for f in folds:
            assert set(f.train) == set(keys) - set(f.test)

    def test_seed_stable_and_seed_sensitive(self):
        keys = [f"m{i}" for i in range(20)]
        assert kfold_splits(keys, 4, seed=1) == kfold_splits(keys, 4, seed=1)
        assert kfold_splits(keys, 4, seed=1) != kfold_splits(keys, 4, seed=2)

    def test_row_order_and_duplicates_do_not_matter(self):
        keys = [f"m{i}" for i in range(9)]
        shuffled = list(reversed(keys)) + keys  # reordered + duplicated
        assert kfold_splits(keys, 3, seed=0) == \
            kfold_splits(shuffled, 3, seed=0)

    def test_bad_split_counts(self):
        with pytest.raises(ValueError, match="n_splits"):
            kfold_splits(["a", "b", "c"], 4)
        with pytest.raises(ValueError, match="n_splits"):
            kfold_splits(["a", "b", "c"], 1)
        with pytest.raises(ValueError, match="no keys"):
            kfold_splits([], 2)

    def test_fold_accessors(self):
        fold = kfold_splits(["a", "b", "c"], 3, seed=0)[0]
        assert fold.train == fold[0]
        assert fold.test == fold[1]
        assert len(fold.test) == 1


class TestLodo:
    def test_one_fold_per_device(self):
        devs = ["A", "B", "C"]
        folds = leave_one_device_out(devs)
        assert [f.test for f in folds] == [("A",), ("B",), ("C",)]
        for f in folds:
            assert set(f.train) == set(devs) - set(f.test)

    def test_duplicates_and_singletons_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            leave_one_device_out(["A", "A"])
        with pytest.raises(ValueError, match="two devices"):
            leave_one_device_out(["A"])

"""Property tests for the selector/experiments invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import kfold_splits
from repro.ml import FormatSelector

FORMATS = ["F0", "F1", "F2"]


def _rows(seed, n_matrices, n_formats):
    """Synthetic per-format measurement rows with positive GFLOPS."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n_matrices):
        feats = {
            "matrix": f"m{i}",
            "mem_footprint_mb": float(rng.uniform(1, 512)),
            "avg_nnz_per_row": float(rng.uniform(1, 200)),
            "skew_coeff": float(rng.uniform(0, 5000)),
            "cross_row_similarity": float(rng.uniform(0, 1)),
            "avg_num_neighbours": float(rng.uniform(0, 2)),
        }
        for fmt in FORMATS[:n_formats]:
            rows.append({
                **feats, "format": fmt,
                "gflops": float(rng.uniform(1.0, 150.0)),
            })
    return rows


class _Memoriser:
    """Regressor that recalls training targets exactly by feature row —
    fed its own sweep, the selector becomes the oracle."""

    def fit(self, X, y):
        self._table = {tuple(row): t for row, t in zip(X, y)}
        return self

    def predict(self, X):
        return np.array([self._table[tuple(row)] for row in X])


@given(
    seed=st.integers(0, 2**31 - 1),
    n_matrices=st.integers(3, 30),
    n_formats=st.integers(1, 3),
    train_seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_report_fields_bounded(seed, n_matrices, n_formats, train_seed):
    from repro.ml import KNeighborsRegressor

    sel = FormatSelector(
        FORMATS[:n_formats],
        model_factory=lambda: KNeighborsRegressor(n_neighbors=3),
    ).fit(_rows(train_seed, 10, n_formats))
    report = sel.evaluate(_rows(seed, n_matrices, n_formats))
    assert 0.0 <= report["top1_accuracy"] <= 1.0
    assert report["worst_retained"] <= report["mean_retained"] <= 1.0
    assert report["n_matrices"] == n_matrices


@given(
    seed=st.integers(0, 2**31 - 1),
    n_matrices=st.integers(2, 30),
    n_formats=st.integers(1, 3),
)
@settings(max_examples=20, deadline=None)
def test_oracle_fed_selector_retains_exactly_one(
    seed, n_matrices, n_formats
):
    """A selector whose model recalls the true GFLOPS always picks the
    oracle format: accuracy and retained performance are exactly 1.0."""
    rows = _rows(seed, n_matrices, n_formats)
    sel = FormatSelector(
        FORMATS[:n_formats], model_factory=lambda: _Memoriser()
    ).fit(rows)
    report = sel.evaluate(rows)
    assert report["top1_accuracy"] == 1.0
    assert report["mean_retained"] == 1.0
    assert report["worst_retained"] == 1.0


@given(
    n_keys=st.integers(2, 60),
    n_splits=st.integers(2, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_kfold_partitions_instances(n_keys, n_splits, seed):
    keys = [f"m{i}" for i in range(n_keys)]
    n_splits = min(n_splits, n_keys)
    folds = kfold_splits(keys, n_splits, seed=seed)
    tests = [set(f.test) for f in folds]
    # Exhaustive: every key held out exactly once.
    assert sorted(k for t in tests for k in t) == sorted(keys)
    # Disjoint test folds, and train = complement of test.
    for i, fold in enumerate(folds):
        assert set(fold.train) | tests[i] == set(keys)
        assert not set(fold.train) & tests[i]
        for j in range(i + 1, n_splits):
            assert not tests[i] & tests[j]
    # Seed-stable.
    assert folds == kfold_splits(keys, n_splits, seed=seed)

"""Experiment runner: end-to-end runs on tiny slices of the testbed."""

import json

import pytest

from repro.experiments import ExperimentSpec, run_experiment

SMOKE = dict(scale="tiny", limit=8, max_nnz=20_000, model="knn")


@pytest.fixture(scope="module")
def kfold_result():
    spec = ExperimentSpec(
        devices=("INTEL-XEON",), n_splits=3, **SMOKE
    )
    return run_experiment(spec)


class TestKFoldRun:
    def test_fold_bookkeeping(self, kfold_result):
        res = kfold_result
        assert res.n_instances == 8
        assert len(res.folds) == 3
        assert all(f.device == "INTEL-XEON" for f in res.folds)
        assert [f.fold for f in res.folds] == ["fold0", "fold1", "fold2"]
        # Held-out counts partition the instances.
        assert sum(f.n_test for f in res.folds) == 8
        for f in res.folds:
            assert f.n_train + f.n_test == 8
            assert f.scored
            assert len(f.choices) == f.report["n_matrices"] == f.n_test

    def test_report_fields_bounded(self, kfold_result):
        for f in kfold_result.scored_folds():
            assert 0.0 <= f.report["top1_accuracy"] <= 1.0
            assert 0.0 < f.report["worst_retained"] \
                <= f.report["mean_retained"] <= 1.0

    def test_summary_aggregates_folds(self, kfold_result):
        summary = kfold_result.summary()
        assert set(summary) == {"INTEL-XEON", "overall"}
        assert summary["INTEL-XEON"]["n_folds"] == 3
        assert summary["INTEL-XEON"]["n_matrices"] == 8
        assert summary["overall"] == summary["INTEL-XEON"]

    def test_confusion_counts_match_choices(self, kfold_result):
        confusion = kfold_result.confusion()
        total = sum(n for row in confusion.values() for n in row.values())
        assert total == 8
        diagonal = sum(
            confusion.get(fmt, {}).get(fmt, 0) for fmt in confusion
        )
        overall = kfold_result.summary()["overall"]
        assert diagonal == round(overall["top1_accuracy"] * 8)

    def test_win_rates_sum_to_100(self, kfold_result):
        rates = kfold_result.win_rates()
        assert sum(r["oracle_pct"] for r in rates.values()) == \
            pytest.approx(100.0)
        assert sum(r["selected_pct"] for r in rates.values()) == \
            pytest.approx(100.0)

    def test_json_and_csv_exports(self, kfold_result):
        payload = json.loads(kfold_result.to_json())
        assert payload["schema_version"] == 1
        assert payload["spec"]["devices"] == ["INTEL-XEON"]
        assert len(payload["folds"]) == 3
        rows = kfold_result.to_rows()
        assert len(rows) == 3
        assert all("top1_accuracy" in r for r in rows)

    def test_render_mentions_every_fold(self, kfold_result):
        text = kfold_result.render()
        for f in kfold_result.folds:
            assert f.fold in text
        assert "Summary" in text


class TestDeterminism:
    def test_same_seed_byte_identical_json(self):
        spec = ExperimentSpec(devices=("INTEL-XEON",), n_splits=2, **SMOKE)
        a = run_experiment(spec).to_json()
        b = run_experiment(spec).to_json()
        assert a == b

    def test_engine_knobs_do_not_change_results(self, tmp_path):
        spec = ExperimentSpec(devices=("INTEL-XEON",), n_splits=2, **SMOKE)
        reference = run_experiment(spec).to_json()
        assert run_experiment(spec, jobs=2).to_json() == reference
        assert run_experiment(spec, batch=False).to_json() == reference
        cache = str(tmp_path / "cache")
        assert run_experiment(spec, cache_dir=cache).to_json() == reference
        # warm cache
        assert run_experiment(spec, cache_dir=cache).to_json() == reference

    def test_seed_changes_results(self):
        base = dict(devices=("INTEL-XEON",), n_splits=2, **SMOKE)
        a = run_experiment(ExperimentSpec(seed=0, **base))
        b = run_experiment(ExperimentSpec(seed=1, **base))
        assert a.to_json() != b.to_json()
        # ...but only through folds/noise, never the bookkeeping.
        assert len(a.folds) == len(b.folds)

    def test_precision_slices_differ(self):
        base = dict(devices=("INTEL-XEON",), n_splits=2, **SMOKE)
        fp64 = run_experiment(ExperimentSpec(**base))
        fp32 = run_experiment(ExperimentSpec(precision="fp32", **base))
        assert fp64.to_json() != fp32.to_json()
        assert json.loads(fp32.to_json())["spec"]["precision"] == "fp32"


class TestLodoRun:
    def test_transfer_and_skipped_folds(self):
        spec = ExperimentSpec(
            devices=("INTEL-XEON", "AMD-EPYC-24", "Alveo-U280"),
            protocol="lodo", **SMOKE,
        )
        res = run_experiment(spec)
        assert [f.fold for f in res.folds] == list(spec.device_names)
        by_dev = {f.device: f for f in res.folds}
        # CPU folds transfer (CPUs share most Table-II formats)...
        assert by_dev["INTEL-XEON"].scored
        assert by_dev["AMD-EPYC-24"].scored
        # ...but nothing lists the FPGA's VSL, so its fold is skipped
        # with an actionable note instead of a crash.
        fpga = by_dev["Alveo-U280"]
        assert not fpga.scored
        assert "candidate formats" in fpga.note
        assert fpga.to_dict()["report"] is None

    def test_device_with_too_few_matrices_skipped_gracefully(self):
        """Capacity skips can shrink one device below the fold count
        after the sweep already ran; that device records a skipped fold
        instead of discarding the whole run."""
        from repro.devices import TESTBEDS
        from repro.experiments.runner import _kfold_folds

        spec = ExperimentSpec(devices=("INTEL-XEON",), n_splits=3,
                              model="knn")
        rows = [
            {
                "matrix": f"m{i}", "device": "INTEL-XEON",
                "format": "Naive-CSR", "gflops": 10.0 + i,
                "mem_footprint_mb": 4.0, "avg_nnz_per_row": 10.0,
                "skew_coeff": 1.0, "cross_row_similarity": 0.5,
                "avg_num_neighbours": 1.0,
            }
            for i in range(2)  # two matrices < three folds
        ]
        folds = _kfold_folds(spec, rows, [TESTBEDS["INTEL-XEON"]])
        assert len(folds) == 1
        assert not folds[0].scored
        assert "lower --folds" in folds[0].note

    def test_folds_exceeding_dataset_rejected_before_sweep(self):
        # No --limit, so the spec can't pre-reject; the runner must
        # still refuse before sweeping (instant, or this test would
        # sweep the full tiny dataset).
        spec = ExperimentSpec(
            devices=("INTEL-XEON",), n_splits=999, scale="tiny",
            model="knn",
        )
        with pytest.raises(ValueError, match="lower --folds"):
            run_experiment(spec)

    def test_too_few_matrices_is_actionable(self):
        # Statically doomed limit/fold combinations fail at spec
        # construction, before any sweep work.
        with pytest.raises(ValueError, match="lower --folds"):
            ExperimentSpec(
                devices=("INTEL-XEON",), n_splits=5, scale="tiny",
                limit=3, max_nnz=20_000, model="knn",
            )

"""ExperimentSpec: validation, defaults, manifest round-trips."""

import json

import pytest

from repro.devices import TESTBEDS
from repro.experiments import ExperimentSpec, MODEL_FAMILIES


class TestValidation:
    def test_defaults_are_valid(self):
        spec = ExperimentSpec()
        assert spec.protocol == "kfold"
        assert spec.device_names == tuple(TESTBEDS)

    @pytest.mark.parametrize("bad, match", [
        (dict(scale="galactic"), "unknown scale"),
        (dict(protocol="loo"), "unknown protocol"),
        (dict(model="xgboost"), "unknown model"),
        (dict(precision="fp16"), "unknown precision"),
        (dict(devices=("Cray-1",)), "unknown device"),
        (dict(formats=("NOT-A-FORMAT",)), "unknown format"),
        (dict(n_splits=1), "n_splits"),
        (dict(limit=3, n_splits=5), "fewer instances"),
        (dict(devices=("INTEL-XEON", "INTEL-XEON")), "duplicate devices"),
        (dict(formats=("CSR5", "CSR5")), "duplicate formats"),
        (dict(max_nnz=0), "max_nnz"),
        (dict(limit=0), "limit"),
        (dict(feature_keys=()), "feature key"),
        (dict(protocol="lodo", devices=("INTEL-XEON",)), "two devices"),
    ])
    def test_bad_values_raise_actionable(self, bad, match):
        with pytest.raises(ValueError, match=match):
            ExperimentSpec(**bad)

    def test_error_names_alternatives(self):
        with pytest.raises(ValueError, match="Tesla-A100"):
            ExperimentSpec(devices=("tesla-a100",))


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(
            scale="tiny", devices=("INTEL-XEON", "Tesla-V100"),
            formats=("Naive-CSR", "CSR5"), precision="fp32",
            limit=12, protocol="lodo", seed=7, model="knn",
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_with_lists(self):
        spec = ExperimentSpec(devices=("INTEL-XEON",), n_splits=3)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ExperimentSpec.from_dict(payload) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment spec"):
            ExperimentSpec.from_dict({"scale": "tiny", "shards": 4})


class TestFactories:
    @pytest.mark.parametrize("model", sorted(MODEL_FAMILIES))
    def test_model_factory_returns_fresh_regressors(self, model):
        spec = ExperimentSpec(model=model)
        factory = spec.model_factory()
        a, b = factory(), factory()
        assert a is not b
        assert hasattr(a, "fit") and hasattr(a, "predict")

    def test_forest_factory_seeded_by_spec(self):
        assert ExperimentSpec(seed=9).model_factory()().random_state == 9

    def test_candidate_formats_default_to_device_list(self):
        spec = ExperimentSpec()
        dev = TESTBEDS["INTEL-XEON"]
        assert spec.candidate_formats(dev) == tuple(dev.formats)
        pinned = ExperimentSpec(formats=("Naive-CSR",))
        assert pinned.candidate_formats(dev) == ("Naive-CSR",)
